"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``         — enumerate benchmarks, platforms and experiments;
* ``run``          — execute one benchmark on one platform, print the report;
* ``experiment``   — regenerate one (or all) paper tables/figures;
* ``compare``      — PointAcc vs every platform on one benchmark;
* ``inspect``      — dump a benchmark's layer trace;
* ``serve-sim``    — stream a request workload (synthetic or from a JSONL
                     request file) through the batched simulation engine;
* ``bench-engine`` — engine (cached) vs cold sequential throughput;
* ``serve-cluster``— stream a workload through a sharded engine cluster
                     with tiered (L1/L2/disk) map caching and deadline QoS;
* ``bench-cluster``— warm cluster vs cold single engine throughput, plus
                     the disk-persistence warm-start path;
* ``serve-stream`` — serve a temporal LiDAR frame sequence with
                     tile-granular incremental map reuse;
* ``bench-stream`` — warm streaming vs cold per-frame simulation;
* ``serve-fleet``  — serve several concurrent tenant streams over one
                     cluster with cross-stream world-tile sharing;
* ``bench-fleet``  — shared fleet vs the same streams with per-stream-only
                     caching;
* ``trace-report`` — per-phase time breakdown + top-N slow frames from a
                     ``--trace`` JSONL file (``--ledger-file`` joins a
                     ledger for a top-recompute-causes section);
* ``trace-diff``   — align two ``--trace`` files by phase and attribute
                     the self-time delta ("splice +38% on ~same calls").

The ``bench-*`` commands accept ``--json PATH`` to additionally write the
measured numbers as machine-readable JSON (CI archives these as
``BENCH_*.json`` perf trajectories).  Every payload carries a ``schema``
version field so downstream consumers can detect format drift.

Every serve/bench command also accepts ``--trace PATH`` (dump the run's
span trees as JSONL, plus a ``*.flight.jsonl`` sidecar holding the flight
recorder's retained slowest / deadline-missed frames), ``--metrics PATH``
(a :class:`repro.obs.MetricsRegistry` snapshot with per-phase latency
histograms and counters derived from the same spans, plus the handler's
session/cluster summary ingested as a registry source), and ``--ledger
PATH`` (the :class:`repro.obs.RecomputeLedger` event log recording *why*
each tile hit, recomputed, or fell back).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import ExitStack, contextmanager

from .baselines.mesorasi import UnsupportedModelError
from .cluster import (
    ROUTING_MODES,
    EngineCluster,
    WorkloadError,
    load_requests,
    synthetic_stream,
)
from .core import PointAccModel, POINTACC_FULL
from .engine import (
    ACCELERATORS,
    POLICIES,
    SimRequest,
    SimulationEngine,
    backend_names,
    resolve_backend,
    run_cold,
)
from .experiments import ALL_EXPERIMENTS
from .experiments.common import format_table
from .fleet import FleetSession, StreamSpec
from .nn.models.registry import BENCHMARKS, MINI_MINKUNET, build_trace
from .obs import (FlightRecorder, MetricsRegistry, RecomputeLedger, Tracer,
                  render_diff, render_report, trace_diff)
from .obs.ledger import use_ledger
from .obs.metrics import current_registry, use_registry
from .obs.trace import use_tracer
from .stream import FrameSequence, SequenceConfig, StreamSession

__all__ = ["main"]


class CLIError(Exception):
    """A user-input problem: main() prints the message and exits 2."""


#: Version of every ``bench-* --json`` payload format.  Bump when a key is
#: renamed/removed or its meaning changes; adding keys is compatible.
BENCH_JSON_SCHEMA = 1


def cmd_list(_args) -> int:
    print("benchmarks:")
    for notation, bench in BENCHMARKS.items():
        print(f"  {notation:18s} {bench.application:18s} {bench.dataset}")
    print(f"  {MINI_MINKUNET.notation:18s} "
          f"{MINI_MINKUNET.application:18s} {MINI_MINKUNET.dataset}")
    print("\nmachines:")
    for name in backend_names():
        print(f"  {name}")
    print("\nexperiments:")
    for exp_id, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:10s} {doc}")
    return 0


def _print_report(report) -> None:
    s = report.summary()
    print(f"platform : {report.platform}")
    print(f"network  : {report.network}")
    print(f"latency  : {s['latency_ms']:.3f} ms ({report.fps():.1f} FPS)")
    print(f"energy   : {s['energy_mj']:.3f} mJ")
    print(f"DRAM     : {s['dram_mb']:.2f} MB")
    print(f"MACs     : {s['macs_g']:.2f} G")
    parts = ", ".join(
        f"{k} {v * 100:.0f}%" for k, v in s["breakdown"].items() if v > 0.005
    )
    print(f"breakdown: {parts}")


def cmd_run(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    try:
        machine = resolve_backend(args.machine)
    except KeyError:
        print(f"error: unknown machine {args.machine!r}; "
              f"known: {backend_names()}", file=sys.stderr)
        return 2
    try:
        report = machine.run(trace)
    except UnsupportedModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_report(report)
    if args.layers:
        rows = [
            [r.name, r.kind, f"{r.seconds * 1e6:.1f}",
             f"{r.dram_bytes / 1e3:.1f}", f"{r.macs / 1e6:.1f}"]
            for r in report.records
        ]
        print()
        print(format_table(
            ["layer", "kind", "us", "DRAM KB", "MMACs"], rows,
            title="per-layer records",
        ))
    return 0


def cmd_experiment(args) -> int:
    names = list(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"error: unknown experiment {name!r}; "
                  f"known: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        result = ALL_EXPERIMENTS[name].run(scale=args.scale, seed=args.seed)
        print(result.table())
        print()
    return 0


def cmd_compare(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    base = PointAccModel(POINTACC_FULL).run(trace)
    rows = [[
        "PointAcc", f"{base.total_seconds * 1e3:.3f}",
        f"{base.energy_joules * 1e3:.3f}", "1.0x", "1.0x",
    ]]
    platforms = [n for n in backend_names() if n not in ACCELERATORS]
    for name in platforms:
        rep = resolve_backend(name).run(trace)
        rows.append([
            name,
            f"{rep.total_seconds * 1e3:.3f}",
            f"{rep.energy_joules * 1e3:.3f}",
            f"{rep.total_seconds / base.total_seconds:.1f}x",
            f"{rep.energy_joules / base.energy_joules:.1f}x",
        ])
    print(format_table(
        ["platform", "latency ms", "energy mJ", "slowdown", "energy ratio"],
        rows, title=f"{args.benchmark} @ scale {args.scale}",
    ))
    return 0


def cmd_inspect(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    summary = trace.summary()
    print(f"{args.benchmark}: {summary['layers']} ops, "
          f"{summary['total_macs'] / 1e9:.2f} GMACs, "
          f"{summary['total_maps']} maps, "
          f"{trace.input_points} input points")
    rows = [
        [s.name, s.kind.value, s.n_in, s.n_out, s.c_in, s.c_out, s.rows,
         s.n_maps]
        for s in trace
    ]
    print(format_table(
        ["name", "kind", "n_in", "n_out", "c_in", "c_out", "rows", "maps"],
        rows,
    ))
    return 0


def _parse_benchmarks(arg: str) -> list[str]:
    known = {*BENCHMARKS, MINI_MINKUNET.notation}
    names = [b.strip() for b in arg.split(",") if b.strip()]
    unknown = [b for b in names if b not in known]
    if unknown:
        raise CLIError(f"unknown benchmark(s) {unknown}; known: {sorted(known)}")
    return names


def _parse_backends(arg: str) -> list[str]:
    """Validate backends with the same resolution the engine uses
    (accelerator names are case-insensitive, platform names exact)."""
    backends = [b.strip() for b in arg.split(",") if b.strip()]
    unknown = []
    for b in backends:
        try:
            resolve_backend(b)
        except KeyError:
            unknown.append(b)
    if unknown:
        raise CLIError(f"unknown backend(s) {unknown}; known: {backend_names()}")
    return backends


def _build_workload(args, tenant_pool: int = 1,
                    deadline_ms: float | None = None) -> list[SimRequest]:
    """The serving commands' traffic: a request file, or a synthetic stream.

    Synthetic seeds cycle over a pool of ``--seed-pool`` distinct clouds, so
    the stream contains the repeated geometry real traffic has and the
    caches have something to earn.
    """
    try:
        if getattr(args, "request_file", None):
            return load_requests(args.request_file)
        benchmarks = _parse_benchmarks(args.benchmarks)
        return list(synthetic_stream(
            benchmarks, args.requests, scale=args.scale,
            seed_pool=args.seed_pool, tenant_pool=tenant_pool,
            deadline_ms=deadline_ms,
        ))
    except WorkloadError as exc:
        raise CLIError(str(exc)) from exc


def _format_by_op(by_op: dict) -> str:
    """One-line per-op hit/miss rendering, ops in a stable order."""
    if not by_op:
        return "(no mapping lookups)"
    return "  ".join(
        f"{op} {c['hits']}/{c['hits'] + c['misses']}"
        for op, c in sorted(by_op.items())
    )


def _merge_by_op(dicts) -> dict:
    merged: dict = {}
    for by_op in dicts:
        for op, c in (by_op or {}).items():
            slot = merged.setdefault(op, {"hits": 0, "misses": 0})
            slot["hits"] += c["hits"]
            slot["misses"] += c["misses"]
    return merged


def _write_json(path: str, payload: dict) -> None:
    payload = {"schema": BENCH_JSON_SCHEMA, **payload}
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        raise CLIError(f"cannot write --json file {path}: {exc}") from exc
    print(f"wrote {path}")


def _flight_path(trace_path: str) -> str:
    """The flight-recorder sidecar next to a ``--trace`` file."""
    stem, ext = os.path.splitext(trace_path)
    return f"{stem}.flight{ext or '.jsonl'}"


def _span_metrics(registry: MetricsRegistry, roots) -> None:
    """Fold finished span trees into the registry: one latency histogram
    and call counter per span name, plus every per-span counter summed."""
    for root in roots:
        for node in root.walk():
            registry.counter(f"spans.{node.name}")
            registry.observe(f"span_ms.{node.name}", node.duration * 1e3)
            for key, value in node.counters.items():
                registry.counter(f"{node.name}.{key}", value)


@contextmanager
def _observability(args):
    """Install a tracer (+ flight recorder), metrics registry, and
    recompute ledger around a serve/bench handler when
    ``--trace``/``--metrics``/``--ledger`` ask for them, and write the
    files after the handler returns — also on failure, so a partial run
    still leaves its telemetry behind for post-mortem.

    The registry is installed *before* the handler runs (see
    ``use_registry``) so handlers can ``ingest`` their session/cluster
    summaries — one metrics file then carries both span timings and
    cache counters."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    ledger_path = getattr(args, "ledger", None)
    if not trace_path and not metrics_path and not ledger_path:
        yield
        return
    tracer = Tracer(recorder=FlightRecorder())
    registry = MetricsRegistry() if metrics_path else None
    ledger = RecomputeLedger() if ledger_path else None
    try:
        with ExitStack() as stack:
            stack.enter_context(use_tracer(tracer))
            if registry is not None:
                stack.enter_context(use_registry(registry))
            if ledger is not None:
                stack.enter_context(use_ledger(ledger))
            yield
    finally:
        try:
            if trace_path:
                n = tracer.dump_jsonl(trace_path)
                print(f"wrote {trace_path} "
                      f"({n} spans in {len(tracer.roots)} roots)")
                records = tracer.recorder.records()
                if records:
                    flight = _flight_path(trace_path)
                    tracer.recorder.dump_jsonl(flight)
                    print(f"wrote {flight} "
                          f"({len(records)} flight-recorder records)")
            if ledger_path:
                n = ledger.dump_jsonl(ledger_path)
                dropped = f", {ledger.dropped} dropped" if ledger.dropped else ""
                print(f"wrote {ledger_path} ({n} ledger events{dropped})")
            if metrics_path:
                registry.gauge("trace.roots", float(len(tracer.roots)))
                _span_metrics(registry, tracer.roots)
                if ledger is not None:
                    registry.ingest("ledger", ledger.summary())
                with open(metrics_path, "w", encoding="utf-8") as fh:
                    json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote {metrics_path}")
        except OSError as exc:
            raise CLIError(f"cannot write observability file: {exc}") from exc


def _ingest_metrics(name: str, payload: dict) -> None:
    """Fold a session/cluster summary into the ``--metrics`` registry
    (no-op when no registry is active)."""
    registry = current_registry()
    if registry is not None:
        registry.ingest(name, payload)


def cmd_trace_report(args) -> int:
    """Per-phase time breakdown + top-N slow frames from a trace file.

    Malformed lines are skipped with a counted warning and an empty file
    reports "no spans" — both exit 0, so a truncated trace from a crashed
    run still yields whatever it can.  Only an unreadable *file* is an
    error (exit 2)."""
    path = args.trace_file
    try:
        report = render_report(path, top=args.top,
                               ledger=getattr(args, "ledger_file", None))
    except OSError as exc:
        raise CLIError(f"cannot read trace file {path}: {exc}") from exc
    print(report, end="")
    return 0


def cmd_trace_diff(args) -> int:
    """Attribute the delta between two trace files to phases.

    Informational: exits 0 whether or not the candidate regressed — the
    regression *gate* is ``scripts/bench_compare.py``, which attaches
    this verdict to its report when traces are available."""
    try:
        diff = trace_diff(args.baseline, args.candidate)
    except OSError as exc:
        raise CLIError(f"cannot read trace file: {exc}") from exc
    print(render_diff(diff, top=args.top), end="")
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(diff, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            raise CLIError(f"cannot write --json file {args.json}: {exc}") \
                from exc
        print(f"wrote {args.json}")
    return 0


def cmd_serve_sim(args) -> int:
    """Simulate serving: a request stream through the engine."""
    if args.window < 1:
        print(f"error: --window must be >= 1, got {args.window}", file=sys.stderr)
        return 2
    backends = _parse_backends(args.backends)
    requests = _build_workload(args)
    engine = SimulationEngine(backends=backends, policy=args.policy)
    first = backends[0]
    print(f"{'req':>5s} {'benchmark':16s} {'points':>7s} "
          f"{first + ' ms':>12s} {'trace':>6s} {'wall ms':>8s}")
    for result in engine.stream(requests, window=args.window):
        rep = result.reports.get(first)
        modeled = f"{rep.total_seconds * 1e3:12.3f}" if rep else " unsupported"
        n_pts = result.trace.input_points if result.trace else 0
        print(f"{result.request.tag:>5s} {result.request.benchmark:16s} "
              f"{n_pts:7d} {modeled} "
              f"{'reuse' if result.trace_reused else 'build':>6s} "
              f"{result.wall_seconds * 1e3:8.2f}")
    stats = engine.stats()
    _ingest_metrics("engine", stats.summary())
    cache = stats.map_cache or {}
    print(f"\nserved {stats.requests} requests in {stats.wall_seconds:.3f}s "
          f"({stats.throughput_rps:.1f} req/s, policy={args.policy})")
    print(f"traces: {stats.trace_builds} built, {stats.trace_reuses} reused; "
          f"map cache: {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses")
    print(f"map cache by op (hits/lookups): "
          f"{_format_by_op(cache.get('by_op', {}))}")
    for name in backends:
        print(f"modeled {name}: {stats.backend_seconds[name] * 1e3:.3f} ms total")
    return 0


def _repeated_workload(args) -> tuple[list[SimRequest], list[str]]:
    """The benchmark commands' stream: every distinct (benchmark, seed)
    cloud appears ``--repeats`` times — steady-state serving traffic."""
    benchmarks = _parse_benchmarks(args.benchmarks)
    requests = [
        SimRequest(benchmark=b, scale=args.scale, seed=s)
        for s in range(args.seeds)
        for b in benchmarks
        for _ in range(args.repeats)
    ]
    return requests, benchmarks


def _count_mismatches(baseline, results, backend: str = "pointacc") -> int:
    return sum(
        a.reports[backend] != b.reports[backend]
        for a, b in zip(baseline, results)
    )


def _print_speedup(slow_s: float, fast_s: float, mismatch: int) -> int:
    """Shared bench epilogue; the exit code (0 iff bit-identical)."""
    verdict = "yes" if mismatch == 0 else f"NO, {mismatch} differ"
    print(f"\nspeedup: {slow_s / fast_s:.2f}x  "
          f"(reports bit-identical: {verdict})")
    return 0 if mismatch == 0 else 1


def _bench_title(args, n: int, benchmarks) -> str:
    return (f"{n} requests: {','.join(benchmarks)} x {args.repeats} repeats "
            f"x {args.seeds} seeds @ scale {args.scale}")


def cmd_bench_engine(args) -> int:
    """Throughput comparison: engine with caches vs cold sequential runs."""
    requests, benchmarks = _repeated_workload(args)
    t0 = time.perf_counter()
    cold = [run_cold(r, backends=("pointacc",)) for r in requests]
    cold_s = time.perf_counter() - t0

    engine = SimulationEngine(backends=("pointacc",), policy=args.policy)
    t0 = time.perf_counter()
    results = engine.run_batch(requests)
    engine_s = time.perf_counter() - t0

    mismatch = _count_mismatches(cold, results)
    stats = engine.stats()
    cache = stats.map_cache or {}
    n = len(requests)
    rows = [
        ["cold sequential", f"{cold_s:.3f}", f"{n / cold_s:.1f}", "-", "-"],
        [f"engine ({args.policy})", f"{engine_s:.3f}", f"{n / engine_s:.1f}",
         f"{stats.trace_reuses}/{n}",
         f"{cache.get('hits', 0)}/{cache.get('lookups', 0)}"],
    ]
    print(format_table(
        ["mode", "wall s", "req/s", "trace reuse", "map-cache hits"],
        rows, title=_bench_title(args, n, benchmarks),
    ))
    code = _print_speedup(cold_s, engine_s, mismatch)
    if args.json:
        _write_json(args.json, {
            "command": "bench-engine",
            "requests": n,
            "benchmarks": benchmarks,
            "repeats": args.repeats,
            "seeds": args.seeds,
            "scale": args.scale,
            "policy": args.policy,
            "cold_seconds": cold_s,
            "engine_seconds": engine_s,
            "speedup": cold_s / engine_s,
            "mismatches": mismatch,
            "trace_reuses": stats.trace_reuses,
            "map_cache": cache,
        })
    return code


def cmd_serve_cluster(args) -> int:
    """Stream a workload through the sharded cluster with tiered caching."""
    if args.window < 1:
        print(f"error: --window must be >= 1, got {args.window}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 2
    backends = _parse_backends(args.backends)
    requests = _build_workload(
        args, tenant_pool=args.tenant_pool, deadline_ms=args.deadline_ms
    )
    cluster = EngineCluster(
        n_shards=args.shards,
        backends=backends,
        policy=args.policy,
        routing=args.routing,
        cache_dir=args.cache_dir,
        workers=args.workers,
    )
    first = backends[0]
    first_request_hits = None
    print(f"{'req':>5s} {'benchmark':16s} {'shard':>5s} {'tenant':8s} "
          f"{first + ' ms':>12s} {'trace':>6s} {'deadline':>8s}")
    for result in cluster.stream(requests, window=args.window):
        if "cluster" in result.errors:
            print(f"{result.request.tag:>5s} {result.request.benchmark:16s} "
                  f"{'-':>5s} {result.request.tenant:8s} "
                  f"{'rejected':>12s} {'-':>6s} {'-':>8s}")
            continue
        if first_request_hits is None:  # first *admitted* request
            first_request_hits = result.map_cache_hits
        rep = result.reports.get(first)
        modeled = f"{rep.total_seconds * 1e3:12.3f}" if rep else " unsupported"
        deadline = {True: "met", False: "MISSED", None: "-"}[result.deadline_met]
        print(f"{result.request.tag:>5s} {result.request.benchmark:16s} "
              f"{result.shard:5d} {result.request.tenant:8s} {modeled} "
              f"{'reuse' if result.trace_reused else 'build':>6s} "
              f"{deadline:>8s}")
    stats = cluster.stats()
    _ingest_metrics("cluster", stats.summary())
    cluster.close()  # stats already collected; stop worker processes
    workers = f", workers={stats.workers}" if stats.workers else ""
    print(f"\nserved {stats.admitted}/{stats.requests} requests "
          f"({stats.rejected} rejected) in {stats.wall_seconds:.3f}s "
          f"({stats.throughput_rps:.1f} req/s, shards={args.shards}, "
          f"routing={args.routing}, policy={args.policy}{workers})")
    print(f"deadlines: {stats.deadline_met} met, {stats.deadline_missed} missed")
    print(f"shard requests: {stats.routing['counts']}")
    l2 = stats.l2
    print(f"L2 store: {l2.get('hits', 0)} hits / {l2.get('misses', 0)} misses, "
          f"{l2.get('disk_hits', 0)} disk hits"
          + (f" (persisted under {args.cache_dir})" if args.cache_dir else ""))
    shard_by_op = _merge_by_op(
        shard.get("map_cache", {}).get("by_op") for shard in stats.shards
    )
    print(f"map lookups by op (hits/lookups): {_format_by_op(shard_by_op)}")
    # Warm-start observability: with a pre-populated --cache-dir the very
    # first admitted request already hits (the benchmark suite asserts on
    # this line); '-' when nothing was admitted.
    print(f"first-request map hits: "
          f"{'-' if first_request_hits is None else first_request_hits}")
    for tenant, acct in stats.tenants.items():
        print(f"tenant {tenant}: {acct['requests']} requests, "
              f"{acct['rejected']} rejected, "
              f"{acct['deadline_met']} met / {acct['deadline_missed']} missed, "
              f"{acct['modeled_seconds'] * 1e3:.3f} modeled ms")
    return 0


def cmd_bench_cluster(args) -> int:
    """Warm cluster vs cold single engine on a repeated-workload stream.

    With ``--workers N`` two further arms serve the same stream through a
    worker-mode cluster (fresh per-worker caches, no disk spill): a *cold*
    pass, whose real compute spreads over the worker processes, and a
    warm repeat.  The JSON payload records ``worker_scaling`` — cold
    single-engine wall over cold worker wall, i.e. how much of the
    compute the processes actually parallelized — for run-to-run gating
    (both sides are compute-bound, so the ratio is stable where a
    warm-vs-warm ratio of microsecond cache-hit passes would be noise).
    """
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 2
    requests, benchmarks = _repeated_workload(args)
    n = len(requests)

    engine = SimulationEngine(backends=("pointacc",), policy=args.policy)
    t0 = time.perf_counter()
    cold_results = engine.run_batch(requests)
    cold_s = time.perf_counter() - t0

    cluster = EngineCluster(
        n_shards=args.shards, backends=("pointacc",), policy=args.policy,
        routing=args.routing, cache_dir=args.cache_dir,
    )
    cluster.run_batch(requests)  # warm-up pass: caches hot, memos filled
    t0 = time.perf_counter()
    warm_results = cluster.run_batch(requests)
    warm_s = time.perf_counter() - t0

    mismatch = _count_mismatches(cold_results, warm_results)
    stats = cluster.stats()
    rows = [
        ["cold single engine", f"{cold_s:.3f}", f"{n / cold_s:.1f}", "-"],
        [f"warm cluster ({args.shards} shards, {args.routing})",
         f"{warm_s:.3f}", f"{n / warm_s:.1f}",
         str(stats.routing["counts"])],
    ]

    worker_s = worker_cold_s = None
    if args.workers > 0:
        # No cache_dir here: the warm pass above may have spilled to it,
        # and a disk warm-start would let cache reuse masquerade as
        # process scaling.
        with EngineCluster(
            n_shards=args.shards, backends=("pointacc",), policy=args.policy,
            routing=args.routing, workers=args.workers,
        ) as worker_cluster:
            t0 = time.perf_counter()
            worker_cold_results = worker_cluster.run_batch(requests)
            worker_cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            worker_results = worker_cluster.run_batch(requests)
            worker_s = time.perf_counter() - t0
            worker_stats = worker_cluster.stats()
        mismatch += _count_mismatches(cold_results, worker_cold_results)
        mismatch += _count_mismatches(cold_results, worker_results)
        rows.append([
            f"worker cluster cold ({worker_stats.workers} procs)",
            f"{worker_cold_s:.3f}", f"{n / worker_cold_s:.1f}",
            str(worker_stats.routing["counts"]),
        ])
        rows.append([
            f"worker cluster warm ({worker_stats.workers} procs)",
            f"{worker_s:.3f}", f"{n / worker_s:.1f}",
            str(worker_stats.routing["counts"]),
        ])

    print(format_table(
        ["mode", "wall s", "req/s", "shard requests"],
        rows, title=_bench_title(args, n, benchmarks),
    ))
    code = _print_speedup(cold_s, warm_s, mismatch)
    if worker_s is not None:
        print(f"worker scaling: {cold_s / worker_cold_s:.2f}x cold compute "
              f"over {args.workers} worker processes "
              f"(warm repeat {cold_s / worker_s:.2f}x over cold)")
    if args.cache_dir:
        print(f"map store persisted under {args.cache_dir} "
              f"(a later serve-cluster --cache-dir warm-starts from it)")
    if args.json:
        payload = {
            "command": "bench-cluster",
            "requests": n,
            "benchmarks": benchmarks,
            "repeats": args.repeats,
            "seeds": args.seeds,
            "scale": args.scale,
            "policy": args.policy,
            "shards": args.shards,
            "routing": args.routing,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s,
            "mismatches": mismatch,
            "shard_requests": stats.routing["counts"],
            "l2": stats.l2,
        }
        if worker_s is not None:
            payload.update({
                "workers": args.workers,
                "worker_cold_seconds": worker_cold_s,
                "worker_seconds": worker_s,
                "worker_speedup": cold_s / worker_s,
                "worker_scaling": cold_s / worker_cold_s,
            })
        _write_json(args.json, payload)
    return code


def cmd_serve_stream(args) -> int:
    """Serve a synthetic LiDAR sequence with tile-granular map reuse."""
    if args.frames < 1:
        print(f"error: --frames must be >= 1, got {args.frames}", file=sys.stderr)
        return 2
    try:
        session = _build_stream_session(args)
    except (KeyError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    print(f"{'frame':>5s} {'points':>7s} {'pointacc ms':>12s} "
          f"{'tile hits':>9s} {'wall ms':>8s} {'status':>8s}")
    prev_hits = 0
    for frame in session.play(args.frames):
        tile_hits = 0
        if session.tile_cache is not None:
            hits = session.tile_cache.stats().tile_hits
            tile_hits, prev_hits = hits - prev_hits, hits
        if frame.dropped or frame.rejected:
            status = "dropped" if frame.dropped else "rejected"
            print(f"{frame.index:5d} {'-':>7s} {'-':>12s} "
                  f"{'-':>9s} {'-':>8s} {status:>8s}")
            continue
        rep = frame.result.reports.get("pointacc")
        modeled = f"{rep.total_seconds * 1e3:12.3f}" if rep else " unsupported"
        n_pts = frame.result.trace.input_points if frame.result.trace else 0
        deadline = {True: "met", False: "MISSED", None: "ok"}[
            frame.result.deadline_met
        ]
        print(f"{frame.index:5d} {n_pts:7d} {modeled} "
              f"{tile_hits:9d} {frame.latency_ms:8.1f} {deadline:>8s}")
    summary = session.summary()
    _ingest_metrics("stream", summary)
    print(f"\nserved {summary['completed']}/{summary['frames']} frames "
          f"({summary['dropped']} dropped, {summary['rejected']} rejected) "
          f"in {summary['wall_seconds']:.3f}s "
          f"({summary['throughput_fps']:.1f} frames/s)")
    print(f"latency: p50 {summary['latency_p50_ms']:.1f} ms, "
          f"p99 {summary['latency_p99_ms']:.1f} ms; "
          f"geometry-only: {'yes' if summary['geometry_only'] else 'no'}")
    tiles = summary.get("tiles")
    if tiles:
        print(f"tile cache: {tiles['tile_hits']}/{tiles['tile_lookups']} "
              f"sub-lookups hit ({tiles['tile_hit_rate'] * 100:.0f}%), "
              f"{tiles['certified_rows']} rows certified, "
              f"{tiles['fallback_rows']} rows recomputed globally")
        print(f"tile reuse by op (hits/lookups): "
              f"{_format_by_op(tiles['by_op'])}")
    session.close()
    return 0


def cmd_bench_stream(args) -> int:
    """Warm streaming vs cold per-frame simulation on one sequence."""
    if args.frames < 1:
        print(f"error: --frames must be >= 1, got {args.frames}", file=sys.stderr)
        return 2
    backends = _parse_backends(args.backends)
    first = backends[0]
    try:
        session = _build_stream_session(args)
    except (KeyError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    if args.drop_late:
        # A throughput comparison needs every frame simulated on both
        # sides; load shedding belongs to serve-stream.
        raise CLIError("bench-stream compares complete passes; "
                       "--drop-late only applies to serve-stream")

    t0 = time.perf_counter()
    cold = [
        run_cold(
            SimRequest(benchmark=session.notation, scale=args.scale, seed=i),
            backends=backends,
        )
        for i in range(args.frames)
    ]
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = session.run(args.frames)
    warm_s = time.perf_counter() - t0

    incomplete = sum(not w.completed for w in warm)
    if incomplete:
        raise CLIError(
            f"{incomplete} of {args.frames} frames were rejected "
            f"(deadline admission) — relax --deadline-ms to benchmark "
            f"a complete pass"
        )
    # A backend that cannot run this model records the same error cold and
    # warm; compare whatever reports exist (None == None is a match).
    mismatch = sum(
        c.reports.get(first) != w.result.reports.get(first)
        for c, w in zip(cold, warm)
    )
    summary = session.summary()
    _ingest_metrics("stream", summary)
    session.close()  # stats collected; stop worker processes, when any
    tiles = summary.get("tiles") or {}
    n = args.frames
    rows = [
        ["cold per-frame", f"{cold_s:.3f}", f"{n / cold_s:.2f}", "-"],
        ["warm streaming", f"{warm_s:.3f}", f"{n / warm_s:.2f}",
         f"{tiles.get('tile_hits', 0)}/{tiles.get('tile_lookups', 0)}"],
    ]
    print(format_table(
        ["mode", "wall s", "frames/s", "tile hits"],
        rows,
        title=(f"{n} frames: {args.benchmark} @ scale {args.scale}, "
               f"tile {args.tile_size}m, halo {args.halo}"),
    ))
    code = _print_speedup(cold_s, warm_s, mismatch)
    if args.json:
        _write_json(args.json, {
            "command": "bench-stream",
            "frames": n,
            "benchmark": args.benchmark,
            "scale": args.scale,
            "tile_size": args.tile_size,
            "halo": args.halo,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s,
            "mismatches": mismatch,
            "latency_p50_ms": summary["latency_p50_ms"],
            "latency_p99_ms": summary["latency_p99_ms"],
            "tiles": tiles,
        })
    return code


def _fleet_specs(args) -> list[StreamSpec]:
    """The fleet's streams: N vehicles on one road (same world seed,
    staggered ``start_x``, per-vehicle sensor noise) or — with
    ``--disjoint`` — N separate worlds."""
    if args.streams < 1:
        raise CLIError(f"--streams must be >= 1, got {args.streams}")
    specs = []
    for i in range(args.streams):
        config = SequenceConfig(
            seed=args.seq_seed + (i if args.disjoint else 0),
            n_frames=args.frames,
            speed=args.speed,
            fov=args.fov,
            start_x=0.0 if args.disjoint else i * args.start_gap,
            sensor_seed=0 if args.disjoint else i,
        )
        specs.append(StreamSpec(
            name=f"veh{i}",
            sequence=FrameSequence(config),
            benchmark=args.benchmark,
            scale=args.scale,
            n_frames=args.frames,
            deadline_ms=args.deadline_ms,
        ))
    return specs


def _reject_no_batch(args) -> None:
    if getattr(args, "no_batch", False):
        raise CLIError(
            "--no-batch was removed: the per-tile front no longer serves "
            "traffic (it survives as repro.stream.incremental.PerTileOracle "
            "for property tests and ablation benchmarks)"
        )


def _build_fleet_session(args) -> FleetSession:
    """Shared serve-fleet / bench-fleet session construction."""
    _reject_no_batch(args)
    return FleetSession(
        _fleet_specs(args),
        backends=_parse_backends(args.backends),
        n_shards=args.shards,
        tile_size=args.tile_size,
        halo=args.halo,
        min_points_per_tile=args.min_tile_points,
        use_tiles=not args.no_tiles,
        share_world_tiles=not args.no_share,
        workers=args.workers,
    )


def _print_world_tiles(summary: dict) -> None:
    world = summary.get("world_tiles")
    if not world:
        return
    print(f"world tiles: {world['self_hits']} self hits, "
          f"{world['cross_hits']} cross-stream hits, "
          f"{world['external_hits']} external, {world['misses']} misses "
          f"({world['shared_keys']} tile keys shared across streams)")
    per_op = {
        op: {"hits": c["self_hits"] + c["cross_hits"] + c["external_hits"],
             "misses": c["misses"]}
        for op, c in world["by_op"].items()
    }
    print(f"tile reuse by op (hits/lookups): {_format_by_op(per_op)}")


def cmd_serve_fleet(args) -> int:
    """Serve N concurrent tenant streams over one shared cluster."""
    if args.frames < 1:
        print(f"error: --frames must be >= 1, got {args.frames}",
              file=sys.stderr)
        return 2
    try:
        session = _build_fleet_session(args)
    except (KeyError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    print(f"{'frame':>5s} {'stream':>6s} {'points':>7s} "
          f"{'pointacc ms':>12s} {'wall ms':>8s} {'deadline':>8s}")
    for round_results in session.play():
        for name, frame in round_results:
            if frame.rejected:
                print(f"{frame.index:5d} {name:>6s} {'-':>7s} "
                      f"{'rejected':>12s} {'-':>8s} {'-':>8s}")
                continue
            rep = frame.result.reports.get("pointacc")
            modeled = (f"{rep.total_seconds * 1e3:12.3f}" if rep
                       else " unsupported")
            n_pts = frame.result.trace.input_points if frame.result.trace else 0
            deadline = {True: "met", False: "MISSED", None: "-"}[
                frame.result.deadline_met
            ]
            print(f"{frame.index:5d} {name:>6s} {n_pts:7d} {modeled} "
                  f"{frame.latency_ms:8.1f} {deadline:>8s}")
    summary = session.summary()
    _ingest_metrics("fleet", summary)
    print(f"\nserved {summary['completed']}/{summary['frames']} frames "
          f"from {len(session.streams)} streams "
          f"({summary['rejected']} rejected) in "
          f"{summary['wall_seconds']:.3f}s "
          f"({summary['throughput_fps']:.1f} frames/s, "
          f"{summary['rounds']} rounds, shards={args.shards}"
          + (f", workers={args.workers}" if args.workers else "") + ")")
    for name, tally in summary["per_stream"].items():
        print(f"stream {name}: {tally['completed']}/{tally['frames']} "
              f"completed, {tally['deadline_met']} met / "
              f"{tally['deadline_missed']} missed")
    _print_world_tiles(summary)
    session.close()
    return 0


def cmd_bench_fleet(args) -> int:
    """Shared fleet vs the same streams with per-stream-only caching."""
    if args.frames < 1:
        print(f"error: --frames must be >= 1, got {args.frames}",
              file=sys.stderr)
        return 2
    backends = _parse_backends(args.backends)
    first = backends[0]
    try:
        session = _build_fleet_session(args)
        specs = session.streams
    except (KeyError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    # Pre-build each sequence's static world (and thereby the resident
    # model) outside both timed passes: the synthetic generator is shared
    # fixture, not the serving system, and whichever side ran first would
    # otherwise pay it for the other.
    for spec in specs:
        spec.sequence.frame(0, scale=spec.scale)

    # Baseline: the identical streams, each with its own engine and its
    # own private tile cache — temporal reuse yes, cross-stream reuse no.
    solo_sessions = {
        spec.name: StreamSession(
            spec.sequence, spec.benchmark, backends=backends,
            scale=spec.scale, tile_size=args.tile_size, halo=args.halo,
            min_points_per_tile=args.min_tile_points,
            use_tiles=not args.no_tiles, tenant=spec.name,
        )
        for spec in specs
    }
    t0 = time.perf_counter()
    solo_results = {
        name: s.run(args.frames) for name, s in solo_sessions.items()
    }
    solo_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fleet_results = session.run()
    fleet_s = time.perf_counter() - t0

    mismatch = sum(
        a.result.reports.get(first) != b.result.reports.get(first)
        for name in solo_results
        for a, b in zip(solo_results[name], fleet_results[name])
    )
    summary = session.summary()
    _ingest_metrics("fleet", summary)
    session.close()  # stats collected; stop worker processes, when any
    world = summary.get("world_tiles", {})
    n = summary["frames"]
    rows = [
        ["per-stream caching", f"{solo_s:.3f}", f"{n / solo_s:.2f}", "-"],
        ["shared fleet", f"{fleet_s:.3f}", f"{n / fleet_s:.2f}",
         f"{world.get('cross_hits', 0)}"],
    ]
    print(format_table(
        ["mode", "wall s", "frames/s", "cross-stream hits"],
        rows,
        title=(f"{len(specs)} streams x {args.frames} frames: "
               f"{args.benchmark} @ scale {args.scale}, "
               f"{'disjoint' if args.disjoint else 'overlapping'} regions"),
    ))
    code = _print_speedup(solo_s, fleet_s, mismatch)
    _print_world_tiles(summary)
    if args.json:
        _write_json(args.json, {
            "command": "bench-fleet",
            "streams": len(specs),
            "frames_per_stream": args.frames,
            "benchmark": args.benchmark,
            "scale": args.scale,
            "disjoint": bool(args.disjoint),
            "start_gap": args.start_gap,
            "shards": args.shards,
            "workers": args.workers,
            "tile_size": args.tile_size,
            "halo": args.halo,
            "solo_seconds": solo_s,
            "fleet_seconds": fleet_s,
            "speedup": solo_s / fleet_s,
            "mismatches": mismatch,
            "world_tiles": world,
        })
    return code


def _build_stream_session(args) -> StreamSession:
    """Shared serve-stream / bench-stream session construction."""
    _reject_no_batch(args)
    if args.workers > 0 and args.shards < 1:
        raise ValueError("--workers requires a cluster (--shards > 0)")
    sequence = FrameSequence(SequenceConfig(
        seed=args.seq_seed,
        n_frames=args.frames,
        speed=args.speed,
        fov=args.fov,
    ))
    cluster = None
    if args.shards > 0:
        from .stream import TileMapCache, streaming_map_cache

        # Worker processes fork when the cluster is built and resolve
        # stream-sourced benchmarks from their (inherited) process-local
        # registry — the sequence must be registered before that point.
        sequence.register()

        cluster = EngineCluster(
            n_shards=args.shards,
            backends=_parse_backends(args.backends),
            tile_cache=(
                TileMapCache(
                    tile_size=args.tile_size, halo=args.halo,
                    min_points_per_tile=args.min_tile_points,
                )
                if not args.no_tiles else None
            ),
            map_cache=streaming_map_cache,
            workers=args.workers,
        )
    return StreamSession(
        sequence,
        args.benchmark,
        cluster=cluster,
        backends=_parse_backends(args.backends),
        scale=args.scale,
        tile_size=args.tile_size,
        halo=args.halo,
        min_points_per_tile=args.min_tile_points,
        use_tiles=not args.no_tiles,
        deadline_ms=args.deadline_ms,
        period_ms=args.period_ms,
        drop_late=args.drop_late,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks/machines/experiments")

    run_p = sub.add_parser("run", help="run one benchmark on one machine")
    run_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    run_p.add_argument("--machine", default="pointacc")
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--layers", action="store_true",
                       help="print per-layer records")

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument("id", help="experiment id (or 'all')")
    exp_p.add_argument("--scale", type=float, default=0.25)
    exp_p.add_argument("--seed", type=int, default=0)

    cmp_p = sub.add_parser("compare", help="PointAcc vs all platforms")
    cmp_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    cmp_p.add_argument("--scale", type=float, default=0.25)
    cmp_p.add_argument("--seed", type=int, default=0)

    ins_p = sub.add_parser("inspect", help="dump a benchmark's trace")
    ins_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    ins_p.add_argument("--scale", type=float, default=0.1)
    ins_p.add_argument("--seed", type=int, default=0)

    def add_workload_args(p):
        p.add_argument("--requests", type=int, default=12)
        p.add_argument("--benchmarks", default="PointNet++(c),DGCNN")
        p.add_argument("--backends", default="pointacc")
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seed-pool", type=int, default=3,
                       help="distinct clouds in the stream (repeats feed caches)")
        p.add_argument("--request-file", default=None, metavar="PATH",
                       help="JSONL request file (overrides the synthetic stream)")
        p.add_argument("--policy", choices=POLICIES, default="bucketed")
        p.add_argument("--window", type=int, default=8,
                       help="streaming scheduling window")

    def add_obs_args(p):
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="write the run's span trees as JSONL (plus a "
                            "*.flight.jsonl sidecar with the slowest / "
                            "deadline-missed frames)")
        p.add_argument("--metrics", default=None, metavar="PATH",
                       help="write a metrics snapshot (per-phase latency "
                            "histograms and counters) as JSON")
        p.add_argument("--ledger", default=None, metavar="PATH",
                       help="write the recompute-lineage ledger (why each "
                            "tile hit, recomputed, or fell back) as JSONL")

    srv_p = sub.add_parser(
        "serve-sim", help="stream a workload through the engine"
    )
    add_workload_args(srv_p)
    add_obs_args(srv_p)

    def add_json_arg(p):
        p.add_argument("--json", default=None, metavar="PATH",
                       help="additionally write the measured numbers as JSON")

    be_p = sub.add_parser(
        "bench-engine", help="engine (cached) vs cold sequential throughput"
    )
    add_obs_args(be_p)
    be_p.add_argument("--benchmarks", default="PointNet++(c),DGCNN")
    be_p.add_argument("--repeats", type=int, default=3,
                      help="times each (benchmark, seed) cloud repeats")
    be_p.add_argument("--seeds", type=int, default=2)
    be_p.add_argument("--scale", type=float, default=0.25)
    be_p.add_argument("--policy", choices=POLICIES, default="bucketed")
    add_json_arg(be_p)

    sc_p = sub.add_parser(
        "serve-cluster",
        help="stream a workload through the sharded cluster (tiered cache, QoS)",
    )
    add_workload_args(sc_p)
    add_obs_args(sc_p)
    sc_p.add_argument("--shards", type=int, default=4)
    sc_p.add_argument("--routing", choices=ROUTING_MODES, default="affinity")
    sc_p.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persist the shared map store here (warm-starts "
                           "later invocations)")
    sc_p.add_argument("--workers", type=int, default=0,
                      help="run shards in this many worker processes "
                           "(0 = in-process)")
    sc_p.add_argument("--tenant-pool", type=int, default=2,
                      help="distinct tenants cycled through the synthetic stream")
    sc_p.add_argument("--deadline-ms", type=float, default=None,
                      help="stamp every synthetic request with this deadline "
                           "budget")

    bc_p = sub.add_parser(
        "bench-cluster",
        help="warm cluster vs cold single engine throughput",
    )
    add_obs_args(bc_p)
    bc_p.add_argument("--benchmarks", default="PointNet++(c),DGCNN")
    bc_p.add_argument("--repeats", type=int, default=3,
                      help="times each (benchmark, seed) cloud repeats")
    bc_p.add_argument("--seeds", type=int, default=2)
    bc_p.add_argument("--scale", type=float, default=0.25)
    bc_p.add_argument("--policy", choices=POLICIES, default="bucketed")
    bc_p.add_argument("--shards", type=int, default=4)
    bc_p.add_argument("--routing", choices=ROUTING_MODES, default="affinity")
    bc_p.add_argument("--cache-dir", default=None, metavar="DIR")
    bc_p.add_argument("--workers", type=int, default=0,
                      help="additionally time a worker-mode cluster with "
                           "this many processes (0 = skip the arm)")
    add_json_arg(bc_p)

    def add_stream_args(p):
        p.add_argument("--frames", type=int, default=8)
        p.add_argument("--benchmark", default="MinkNet(o)",
                       choices=[*BENCHMARKS, MINI_MINKUNET.notation])
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seq-seed", type=int, default=0,
                       help="sequence world/weights seed")
        p.add_argument("--speed", type=float, default=2.0,
                       help="ego meters per frame")
        p.add_argument("--fov", type=float, default=24.0,
                       help="field-of-view half-side, meters")
        p.add_argument("--tile-size", type=float, default=4.0,
                       help="tile side for continuous ops, meters")
        p.add_argument("--halo", type=int, default=1,
                       help="halo width in tiles for kNN/ball query")
        p.add_argument("--no-tiles", action="store_true",
                       help="disable the tile front (digest tiers only)")
        p.add_argument("--min-tile-points", type=int, default=0,
                       help="small-cloud bypass: skip tile decomposition "
                            "when a cloud has fewer than this many points "
                            "per occupied tile (0 = off)")
        p.add_argument("--no-batch", action="store_true",
                       help="removed: the per-tile front no longer serves "
                            "traffic (passing this flag is an error)")
        p.add_argument("--backends", default="pointacc")
        p.add_argument("--shards", type=int, default=0,
                       help="> 0 serves through an engine cluster")
        p.add_argument("--workers", type=int, default=0,
                       help="run cluster shards in this many worker "
                            "processes (needs --shards > 0)")
        p.add_argument("--deadline-ms", type=float, default=None)
        p.add_argument("--period-ms", type=float, default=100.0,
                       help="frame arrival period (the stream's native rate)")
        p.add_argument("--drop-late", action="store_true",
                       help="drop frames whose deadline expired before dispatch")

    ss_p = sub.add_parser(
        "serve-stream",
        help="serve a LiDAR frame sequence with tile-granular map reuse",
    )
    add_stream_args(ss_p)
    add_obs_args(ss_p)

    bs_p = sub.add_parser(
        "bench-stream",
        help="warm streaming vs cold per-frame simulation",
    )
    add_stream_args(bs_p)
    add_obs_args(bs_p)
    add_json_arg(bs_p)

    def add_fleet_args(p):
        p.add_argument("--streams", type=int, default=3,
                       help="concurrent tenant streams (vehicles)")
        p.add_argument("--frames", type=int, default=4,
                       help="frames per stream")
        p.add_argument("--benchmark", default="MinkNet(o)",
                       choices=[*BENCHMARKS, MINI_MINKUNET.notation])
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seq-seed", type=int, default=0,
                       help="world/weights seed (stream i adds i with "
                            "--disjoint)")
        p.add_argument("--speed", type=float, default=2.0,
                       help="ego meters per frame")
        p.add_argument("--fov", type=float, default=24.0,
                       help="field-of-view half-side, meters")
        p.add_argument("--start-gap", type=float, default=1.0,
                       help="start_x stagger between vehicles, meters")
        p.add_argument("--disjoint", action="store_true",
                       help="give each stream its own world (no overlap)")
        p.add_argument("--tile-size", type=float, default=4.0)
        p.add_argument("--halo", type=int, default=1)
        p.add_argument("--no-tiles", action="store_true",
                       help="disable the tile front (digest tiers only)")
        p.add_argument("--min-tile-points", type=int, default=0,
                       help="small-cloud bypass: skip tile decomposition "
                            "when a cloud has fewer than this many points "
                            "per occupied tile (0 = off)")
        p.add_argument("--no-batch", action="store_true",
                       help="removed: the per-tile front no longer serves "
                            "traffic (passing this flag is an error)")
        p.add_argument("--no-share", action="store_true",
                       help="drop the WorldTileStore attribution front")
        p.add_argument("--backends", default="pointacc")
        p.add_argument("--shards", type=int, default=2,
                       help="cluster shards (0 = single shared engine)")
        p.add_argument("--workers", type=int, default=0,
                       help="run cluster shards in this many worker "
                            "processes (needs --shards > 0)")
        p.add_argument("--deadline-ms", type=float, default=None)

    sf_p = sub.add_parser(
        "serve-fleet",
        help="serve concurrent tenant streams with cross-stream tile sharing",
    )
    add_fleet_args(sf_p)
    add_obs_args(sf_p)

    bf_p = sub.add_parser(
        "bench-fleet",
        help="shared fleet vs per-stream-only caching throughput",
    )
    add_fleet_args(bf_p)
    add_obs_args(bf_p)
    add_json_arg(bf_p)

    tr_p = sub.add_parser(
        "trace-report",
        help="per-phase time breakdown from a --trace JSONL file",
    )
    tr_p.add_argument("trace_file", metavar="PATH",
                      help="JSONL written by --trace (span trees) or a "
                           "*.flight.jsonl flight-recorder dump")
    tr_p.add_argument("--top", type=int, default=5,
                      help="slow frames to detail")
    tr_p.add_argument("--ledger-file", default=None, metavar="PATH",
                      help="join a --ledger JSONL by frame id for a top "
                           "recompute-causes section")

    td_p = sub.add_parser(
        "trace-diff",
        help="attribute the delta between two --trace files to phases",
    )
    td_p.add_argument("baseline", metavar="BASELINE",
                      help="baseline trace JSONL (the 'before' run)")
    td_p.add_argument("candidate", metavar="CANDIDATE",
                      help="candidate trace JSONL (the 'after' run)")
    td_p.add_argument("--top", type=int, default=None,
                      help="phases to show (default: all)")
    td_p.add_argument("--json", default=None, metavar="PATH",
                      help="additionally write the machine verdict as JSON")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "experiment": cmd_experiment,
        "compare": cmd_compare,
        "inspect": cmd_inspect,
        "serve-sim": cmd_serve_sim,
        "bench-engine": cmd_bench_engine,
        "serve-cluster": cmd_serve_cluster,
        "bench-cluster": cmd_bench_cluster,
        "serve-stream": cmd_serve_stream,
        "bench-stream": cmd_bench_stream,
        "serve-fleet": cmd_serve_fleet,
        "bench-fleet": cmd_bench_fleet,
        "trace-report": cmd_trace_report,
        "trace-diff": cmd_trace_diff,
    }
    try:
        with _observability(args):
            return handlers[args.command](args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
