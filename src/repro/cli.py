"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``         — enumerate benchmarks, platforms and experiments;
* ``run``          — execute one benchmark on one platform, print the report;
* ``experiment``   — regenerate one (or all) paper tables/figures;
* ``compare``      — PointAcc vs every platform on one benchmark;
* ``inspect``      — dump a benchmark's layer trace;
* ``serve-sim``    — stream a request workload (synthetic or from a JSONL
                     request file) through the batched simulation engine;
* ``bench-engine`` — engine (cached) vs cold sequential throughput;
* ``serve-cluster``— stream a workload through a sharded engine cluster
                     with tiered (L1/L2/disk) map caching and deadline QoS;
* ``bench-cluster``— warm cluster vs cold single engine throughput, plus
                     the disk-persistence warm-start path.
"""

from __future__ import annotations

import argparse
import sys
import time

from .baselines.mesorasi import UnsupportedModelError
from .cluster import (
    ROUTING_MODES,
    EngineCluster,
    WorkloadError,
    load_requests,
    synthetic_stream,
)
from .core import PointAccModel, POINTACC_FULL
from .engine import (
    ACCELERATORS,
    POLICIES,
    SimRequest,
    SimulationEngine,
    backend_names,
    resolve_backend,
    run_cold,
)
from .experiments import ALL_EXPERIMENTS
from .experiments.common import format_table
from .nn.models.registry import BENCHMARKS, MINI_MINKUNET, build_trace

__all__ = ["main"]


class CLIError(Exception):
    """A user-input problem: main() prints the message and exits 2."""


def cmd_list(_args) -> int:
    print("benchmarks:")
    for notation, bench in BENCHMARKS.items():
        print(f"  {notation:18s} {bench.application:18s} {bench.dataset}")
    print(f"  {MINI_MINKUNET.notation:18s} "
          f"{MINI_MINKUNET.application:18s} {MINI_MINKUNET.dataset}")
    print("\nmachines:")
    for name in backend_names():
        print(f"  {name}")
    print("\nexperiments:")
    for exp_id, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:10s} {doc}")
    return 0


def _print_report(report) -> None:
    s = report.summary()
    print(f"platform : {report.platform}")
    print(f"network  : {report.network}")
    print(f"latency  : {s['latency_ms']:.3f} ms ({report.fps():.1f} FPS)")
    print(f"energy   : {s['energy_mj']:.3f} mJ")
    print(f"DRAM     : {s['dram_mb']:.2f} MB")
    print(f"MACs     : {s['macs_g']:.2f} G")
    parts = ", ".join(
        f"{k} {v * 100:.0f}%" for k, v in s["breakdown"].items() if v > 0.005
    )
    print(f"breakdown: {parts}")


def cmd_run(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    try:
        machine = resolve_backend(args.machine)
    except KeyError:
        print(f"error: unknown machine {args.machine!r}; "
              f"known: {backend_names()}", file=sys.stderr)
        return 2
    try:
        report = machine.run(trace)
    except UnsupportedModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_report(report)
    if args.layers:
        rows = [
            [r.name, r.kind, f"{r.seconds * 1e6:.1f}",
             f"{r.dram_bytes / 1e3:.1f}", f"{r.macs / 1e6:.1f}"]
            for r in report.records
        ]
        print()
        print(format_table(
            ["layer", "kind", "us", "DRAM KB", "MMACs"], rows,
            title="per-layer records",
        ))
    return 0


def cmd_experiment(args) -> int:
    names = list(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"error: unknown experiment {name!r}; "
                  f"known: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        result = ALL_EXPERIMENTS[name].run(scale=args.scale, seed=args.seed)
        print(result.table())
        print()
    return 0


def cmd_compare(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    base = PointAccModel(POINTACC_FULL).run(trace)
    rows = [[
        "PointAcc", f"{base.total_seconds * 1e3:.3f}",
        f"{base.energy_joules * 1e3:.3f}", "1.0x", "1.0x",
    ]]
    platforms = [n for n in backend_names() if n not in ACCELERATORS]
    for name in platforms:
        rep = resolve_backend(name).run(trace)
        rows.append([
            name,
            f"{rep.total_seconds * 1e3:.3f}",
            f"{rep.energy_joules * 1e3:.3f}",
            f"{rep.total_seconds / base.total_seconds:.1f}x",
            f"{rep.energy_joules / base.energy_joules:.1f}x",
        ])
    print(format_table(
        ["platform", "latency ms", "energy mJ", "slowdown", "energy ratio"],
        rows, title=f"{args.benchmark} @ scale {args.scale}",
    ))
    return 0


def cmd_inspect(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    summary = trace.summary()
    print(f"{args.benchmark}: {summary['layers']} ops, "
          f"{summary['total_macs'] / 1e9:.2f} GMACs, "
          f"{summary['total_maps']} maps, "
          f"{trace.input_points} input points")
    rows = [
        [s.name, s.kind.value, s.n_in, s.n_out, s.c_in, s.c_out, s.rows,
         s.n_maps]
        for s in trace
    ]
    print(format_table(
        ["name", "kind", "n_in", "n_out", "c_in", "c_out", "rows", "maps"],
        rows,
    ))
    return 0


def _parse_benchmarks(arg: str) -> list[str]:
    known = {*BENCHMARKS, MINI_MINKUNET.notation}
    names = [b.strip() for b in arg.split(",") if b.strip()]
    unknown = [b for b in names if b not in known]
    if unknown:
        raise CLIError(f"unknown benchmark(s) {unknown}; known: {sorted(known)}")
    return names


def _parse_backends(arg: str) -> list[str]:
    """Validate backends with the same resolution the engine uses
    (accelerator names are case-insensitive, platform names exact)."""
    backends = [b.strip() for b in arg.split(",") if b.strip()]
    unknown = []
    for b in backends:
        try:
            resolve_backend(b)
        except KeyError:
            unknown.append(b)
    if unknown:
        raise CLIError(f"unknown backend(s) {unknown}; known: {backend_names()}")
    return backends


def _build_workload(args, tenant_pool: int = 1,
                    deadline_ms: float | None = None) -> list[SimRequest]:
    """The serving commands' traffic: a request file, or a synthetic stream.

    Synthetic seeds cycle over a pool of ``--seed-pool`` distinct clouds, so
    the stream contains the repeated geometry real traffic has and the
    caches have something to earn.
    """
    try:
        if getattr(args, "request_file", None):
            return load_requests(args.request_file)
        benchmarks = _parse_benchmarks(args.benchmarks)
        return list(synthetic_stream(
            benchmarks, args.requests, scale=args.scale,
            seed_pool=args.seed_pool, tenant_pool=tenant_pool,
            deadline_ms=deadline_ms,
        ))
    except WorkloadError as exc:
        raise CLIError(str(exc)) from exc


def cmd_serve_sim(args) -> int:
    """Simulate serving: a request stream through the engine."""
    if args.window < 1:
        print(f"error: --window must be >= 1, got {args.window}", file=sys.stderr)
        return 2
    backends = _parse_backends(args.backends)
    requests = _build_workload(args)
    engine = SimulationEngine(backends=backends, policy=args.policy)
    first = backends[0]
    print(f"{'req':>5s} {'benchmark':16s} {'points':>7s} "
          f"{first + ' ms':>12s} {'trace':>6s} {'wall ms':>8s}")
    for result in engine.stream(requests, window=args.window):
        rep = result.reports.get(first)
        modeled = f"{rep.total_seconds * 1e3:12.3f}" if rep else " unsupported"
        n_pts = result.trace.input_points if result.trace else 0
        print(f"{result.request.tag:>5s} {result.request.benchmark:16s} "
              f"{n_pts:7d} {modeled} "
              f"{'reuse' if result.trace_reused else 'build':>6s} "
              f"{result.wall_seconds * 1e3:8.2f}")
    stats = engine.stats()
    cache = stats.map_cache or {}
    print(f"\nserved {stats.requests} requests in {stats.wall_seconds:.3f}s "
          f"({stats.throughput_rps:.1f} req/s, policy={args.policy})")
    print(f"traces: {stats.trace_builds} built, {stats.trace_reuses} reused; "
          f"map cache: {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses")
    for name in backends:
        print(f"modeled {name}: {stats.backend_seconds[name] * 1e3:.3f} ms total")
    return 0


def _repeated_workload(args) -> tuple[list[SimRequest], list[str]]:
    """The benchmark commands' stream: every distinct (benchmark, seed)
    cloud appears ``--repeats`` times — steady-state serving traffic."""
    benchmarks = _parse_benchmarks(args.benchmarks)
    requests = [
        SimRequest(benchmark=b, scale=args.scale, seed=s)
        for s in range(args.seeds)
        for b in benchmarks
        for _ in range(args.repeats)
    ]
    return requests, benchmarks


def _count_mismatches(baseline, results, backend: str = "pointacc") -> int:
    return sum(
        a.reports[backend] != b.reports[backend]
        for a, b in zip(baseline, results)
    )


def _print_speedup(slow_s: float, fast_s: float, mismatch: int) -> int:
    """Shared bench epilogue; the exit code (0 iff bit-identical)."""
    verdict = "yes" if mismatch == 0 else f"NO, {mismatch} differ"
    print(f"\nspeedup: {slow_s / fast_s:.2f}x  "
          f"(reports bit-identical: {verdict})")
    return 0 if mismatch == 0 else 1


def _bench_title(args, n: int, benchmarks) -> str:
    return (f"{n} requests: {','.join(benchmarks)} x {args.repeats} repeats "
            f"x {args.seeds} seeds @ scale {args.scale}")


def cmd_bench_engine(args) -> int:
    """Throughput comparison: engine with caches vs cold sequential runs."""
    requests, benchmarks = _repeated_workload(args)
    t0 = time.perf_counter()
    cold = [run_cold(r, backends=("pointacc",)) for r in requests]
    cold_s = time.perf_counter() - t0

    engine = SimulationEngine(backends=("pointacc",), policy=args.policy)
    t0 = time.perf_counter()
    results = engine.run_batch(requests)
    engine_s = time.perf_counter() - t0

    mismatch = _count_mismatches(cold, results)
    stats = engine.stats()
    cache = stats.map_cache or {}
    n = len(requests)
    rows = [
        ["cold sequential", f"{cold_s:.3f}", f"{n / cold_s:.1f}", "-", "-"],
        [f"engine ({args.policy})", f"{engine_s:.3f}", f"{n / engine_s:.1f}",
         f"{stats.trace_reuses}/{n}",
         f"{cache.get('hits', 0)}/{cache.get('lookups', 0)}"],
    ]
    print(format_table(
        ["mode", "wall s", "req/s", "trace reuse", "map-cache hits"],
        rows, title=_bench_title(args, n, benchmarks),
    ))
    return _print_speedup(cold_s, engine_s, mismatch)


def cmd_serve_cluster(args) -> int:
    """Stream a workload through the sharded cluster with tiered caching."""
    if args.window < 1:
        print(f"error: --window must be >= 1, got {args.window}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    backends = _parse_backends(args.backends)
    requests = _build_workload(
        args, tenant_pool=args.tenant_pool, deadline_ms=args.deadline_ms
    )
    cluster = EngineCluster(
        n_shards=args.shards,
        backends=backends,
        policy=args.policy,
        routing=args.routing,
        cache_dir=args.cache_dir,
    )
    first = backends[0]
    first_request_hits = None
    print(f"{'req':>5s} {'benchmark':16s} {'shard':>5s} {'tenant':8s} "
          f"{first + ' ms':>12s} {'trace':>6s} {'deadline':>8s}")
    for result in cluster.stream(requests, window=args.window):
        if "cluster" in result.errors:
            print(f"{result.request.tag:>5s} {result.request.benchmark:16s} "
                  f"{'-':>5s} {result.request.tenant:8s} "
                  f"{'rejected':>12s} {'-':>6s} {'-':>8s}")
            continue
        if first_request_hits is None:  # first *admitted* request
            first_request_hits = result.map_cache_hits
        rep = result.reports.get(first)
        modeled = f"{rep.total_seconds * 1e3:12.3f}" if rep else " unsupported"
        deadline = {True: "met", False: "MISSED", None: "-"}[result.deadline_met]
        print(f"{result.request.tag:>5s} {result.request.benchmark:16s} "
              f"{result.shard:5d} {result.request.tenant:8s} {modeled} "
              f"{'reuse' if result.trace_reused else 'build':>6s} "
              f"{deadline:>8s}")
    stats = cluster.stats()
    print(f"\nserved {stats.admitted}/{stats.requests} requests "
          f"({stats.rejected} rejected) in {stats.wall_seconds:.3f}s "
          f"({stats.throughput_rps:.1f} req/s, shards={args.shards}, "
          f"routing={args.routing}, policy={args.policy})")
    print(f"deadlines: {stats.deadline_met} met, {stats.deadline_missed} missed")
    print(f"shard requests: {stats.routing['counts']}")
    l2 = stats.l2
    print(f"L2 store: {l2.get('hits', 0)} hits / {l2.get('misses', 0)} misses, "
          f"{l2.get('disk_hits', 0)} disk hits"
          + (f" (persisted under {args.cache_dir})" if args.cache_dir else ""))
    # Warm-start observability: with a pre-populated --cache-dir the very
    # first admitted request already hits (the benchmark suite asserts on
    # this line); '-' when nothing was admitted.
    print(f"first-request map hits: "
          f"{'-' if first_request_hits is None else first_request_hits}")
    for tenant, acct in stats.tenants.items():
        print(f"tenant {tenant}: {acct['requests']} requests, "
              f"{acct['rejected']} rejected, "
              f"{acct['deadline_met']} met / {acct['deadline_missed']} missed, "
              f"{acct['modeled_seconds'] * 1e3:.3f} modeled ms")
    return 0


def cmd_bench_cluster(args) -> int:
    """Warm cluster vs cold single engine on a repeated-workload stream."""
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    requests, benchmarks = _repeated_workload(args)
    n = len(requests)

    engine = SimulationEngine(backends=("pointacc",), policy=args.policy)
    t0 = time.perf_counter()
    cold_results = engine.run_batch(requests)
    cold_s = time.perf_counter() - t0

    cluster = EngineCluster(
        n_shards=args.shards, backends=("pointacc",), policy=args.policy,
        routing=args.routing, cache_dir=args.cache_dir,
    )
    cluster.run_batch(requests)  # warm-up pass: caches hot, memos filled
    t0 = time.perf_counter()
    warm_results = cluster.run_batch(requests)
    warm_s = time.perf_counter() - t0

    mismatch = _count_mismatches(cold_results, warm_results)
    stats = cluster.stats()
    rows = [
        ["cold single engine", f"{cold_s:.3f}", f"{n / cold_s:.1f}", "-"],
        [f"warm cluster ({args.shards} shards, {args.routing})",
         f"{warm_s:.3f}", f"{n / warm_s:.1f}",
         str(stats.routing["counts"])],
    ]
    print(format_table(
        ["mode", "wall s", "req/s", "shard requests"],
        rows, title=_bench_title(args, n, benchmarks),
    ))
    code = _print_speedup(cold_s, warm_s, mismatch)
    if args.cache_dir:
        print(f"map store persisted under {args.cache_dir} "
              f"(a later serve-cluster --cache-dir warm-starts from it)")
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks/machines/experiments")

    run_p = sub.add_parser("run", help="run one benchmark on one machine")
    run_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    run_p.add_argument("--machine", default="pointacc")
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--layers", action="store_true",
                       help="print per-layer records")

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument("id", help="experiment id (or 'all')")
    exp_p.add_argument("--scale", type=float, default=0.25)
    exp_p.add_argument("--seed", type=int, default=0)

    cmp_p = sub.add_parser("compare", help="PointAcc vs all platforms")
    cmp_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    cmp_p.add_argument("--scale", type=float, default=0.25)
    cmp_p.add_argument("--seed", type=int, default=0)

    ins_p = sub.add_parser("inspect", help="dump a benchmark's trace")
    ins_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    ins_p.add_argument("--scale", type=float, default=0.1)
    ins_p.add_argument("--seed", type=int, default=0)

    def add_workload_args(p):
        p.add_argument("--requests", type=int, default=12)
        p.add_argument("--benchmarks", default="PointNet++(c),DGCNN")
        p.add_argument("--backends", default="pointacc")
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seed-pool", type=int, default=3,
                       help="distinct clouds in the stream (repeats feed caches)")
        p.add_argument("--request-file", default=None, metavar="PATH",
                       help="JSONL request file (overrides the synthetic stream)")
        p.add_argument("--policy", choices=POLICIES, default="bucketed")
        p.add_argument("--window", type=int, default=8,
                       help="streaming scheduling window")

    srv_p = sub.add_parser(
        "serve-sim", help="stream a workload through the engine"
    )
    add_workload_args(srv_p)

    be_p = sub.add_parser(
        "bench-engine", help="engine (cached) vs cold sequential throughput"
    )
    be_p.add_argument("--benchmarks", default="PointNet++(c),DGCNN")
    be_p.add_argument("--repeats", type=int, default=3,
                      help="times each (benchmark, seed) cloud repeats")
    be_p.add_argument("--seeds", type=int, default=2)
    be_p.add_argument("--scale", type=float, default=0.25)
    be_p.add_argument("--policy", choices=POLICIES, default="bucketed")

    sc_p = sub.add_parser(
        "serve-cluster",
        help="stream a workload through the sharded cluster (tiered cache, QoS)",
    )
    add_workload_args(sc_p)
    sc_p.add_argument("--shards", type=int, default=4)
    sc_p.add_argument("--routing", choices=ROUTING_MODES, default="affinity")
    sc_p.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persist the shared map store here (warm-starts "
                           "later invocations)")
    sc_p.add_argument("--tenant-pool", type=int, default=2,
                      help="distinct tenants cycled through the synthetic stream")
    sc_p.add_argument("--deadline-ms", type=float, default=None,
                      help="stamp every synthetic request with this deadline "
                           "budget")

    bc_p = sub.add_parser(
        "bench-cluster",
        help="warm cluster vs cold single engine throughput",
    )
    bc_p.add_argument("--benchmarks", default="PointNet++(c),DGCNN")
    bc_p.add_argument("--repeats", type=int, default=3,
                      help="times each (benchmark, seed) cloud repeats")
    bc_p.add_argument("--seeds", type=int, default=2)
    bc_p.add_argument("--scale", type=float, default=0.25)
    bc_p.add_argument("--policy", choices=POLICIES, default="bucketed")
    bc_p.add_argument("--shards", type=int, default=4)
    bc_p.add_argument("--routing", choices=ROUTING_MODES, default="affinity")
    bc_p.add_argument("--cache-dir", default=None, metavar="DIR")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "experiment": cmd_experiment,
        "compare": cmd_compare,
        "inspect": cmd_inspect,
        "serve-sim": cmd_serve_sim,
        "bench-engine": cmd_bench_engine,
        "serve-cluster": cmd_serve_cluster,
        "bench-cluster": cmd_bench_cluster,
    }
    try:
        return handlers[args.command](args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
