"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``        — enumerate benchmarks, platforms and experiments;
* ``run``         — execute one benchmark on one platform, print the report;
* ``experiment``  — regenerate one (or all) paper tables/figures;
* ``compare``     — PointAcc vs every platform on one benchmark;
* ``inspect``     — dump a benchmark's layer trace.
"""

from __future__ import annotations

import argparse
import sys

from .baselines.mesorasi import MESORASI_HW, UnsupportedModelError
from .baselines.registry import EDGE_PLATFORMS, SERVER_PLATFORMS, get_platform
from .core import PointAccModel, POINTACC_EDGE, POINTACC_FULL
from .experiments import ALL_EXPERIMENTS
from .experiments.common import format_table
from .nn.models.registry import BENCHMARKS, MINI_MINKUNET, build_trace

__all__ = ["main"]

_ACCELERATORS = {
    "pointacc": lambda: PointAccModel(POINTACC_FULL),
    "pointacc-edge": lambda: PointAccModel(POINTACC_EDGE),
    "mesorasi": lambda: MESORASI_HW,
}


def _platform_names() -> list[str]:
    return [s.name for s in (*SERVER_PLATFORMS, *EDGE_PLATFORMS)]


def _resolve_machine(name: str):
    if name.lower() in _ACCELERATORS:
        return _ACCELERATORS[name.lower()]()
    return get_platform(name)


def cmd_list(_args) -> int:
    print("benchmarks:")
    for notation, bench in BENCHMARKS.items():
        print(f"  {notation:18s} {bench.application:18s} {bench.dataset}")
    print(f"  {MINI_MINKUNET.notation:18s} "
          f"{MINI_MINKUNET.application:18s} {MINI_MINKUNET.dataset}")
    print("\nmachines:")
    for name in _ACCELERATORS:
        print(f"  {name}")
    for name in _platform_names():
        print(f"  {name}")
    print("\nexperiments:")
    for exp_id, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:10s} {doc}")
    return 0


def _print_report(report) -> None:
    s = report.summary()
    print(f"platform : {report.platform}")
    print(f"network  : {report.network}")
    print(f"latency  : {s['latency_ms']:.3f} ms ({report.fps():.1f} FPS)")
    print(f"energy   : {s['energy_mj']:.3f} mJ")
    print(f"DRAM     : {s['dram_mb']:.2f} MB")
    print(f"MACs     : {s['macs_g']:.2f} G")
    parts = ", ".join(
        f"{k} {v * 100:.0f}%" for k, v in s["breakdown"].items() if v > 0.005
    )
    print(f"breakdown: {parts}")


def cmd_run(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    machine = _resolve_machine(args.machine)
    try:
        report = machine.run(trace)
    except UnsupportedModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_report(report)
    if args.layers:
        rows = [
            [r.name, r.kind, f"{r.seconds * 1e6:.1f}",
             f"{r.dram_bytes / 1e3:.1f}", f"{r.macs / 1e6:.1f}"]
            for r in report.records
        ]
        print()
        print(format_table(
            ["layer", "kind", "us", "DRAM KB", "MMACs"], rows,
            title="per-layer records",
        ))
    return 0


def cmd_experiment(args) -> int:
    names = list(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"error: unknown experiment {name!r}; "
                  f"known: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        result = ALL_EXPERIMENTS[name].run(scale=args.scale, seed=args.seed)
        print(result.table())
        print()
    return 0


def cmd_compare(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    base = PointAccModel(POINTACC_FULL).run(trace)
    rows = [[
        "PointAcc", f"{base.total_seconds * 1e3:.3f}",
        f"{base.energy_joules * 1e3:.3f}", "1.0x", "1.0x",
    ]]
    for name in _platform_names():
        rep = get_platform(name).run(trace)
        rows.append([
            name,
            f"{rep.total_seconds * 1e3:.3f}",
            f"{rep.energy_joules * 1e3:.3f}",
            f"{rep.total_seconds / base.total_seconds:.1f}x",
            f"{rep.energy_joules / base.energy_joules:.1f}x",
        ])
    print(format_table(
        ["platform", "latency ms", "energy mJ", "slowdown", "energy ratio"],
        rows, title=f"{args.benchmark} @ scale {args.scale}",
    ))
    return 0


def cmd_inspect(args) -> int:
    trace = build_trace(args.benchmark, scale=args.scale, seed=args.seed)
    summary = trace.summary()
    print(f"{args.benchmark}: {summary['layers']} ops, "
          f"{summary['total_macs'] / 1e9:.2f} GMACs, "
          f"{summary['total_maps']} maps, "
          f"{trace.input_points} input points")
    rows = [
        [s.name, s.kind.value, s.n_in, s.n_out, s.c_in, s.c_out, s.rows,
         s.n_maps]
        for s in trace
    ]
    print(format_table(
        ["name", "kind", "n_in", "n_out", "c_in", "c_out", "rows", "maps"],
        rows,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks/machines/experiments")

    run_p = sub.add_parser("run", help="run one benchmark on one machine")
    run_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    run_p.add_argument("--machine", default="pointacc")
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--layers", action="store_true",
                       help="print per-layer records")

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument("id", help="experiment id (or 'all')")
    exp_p.add_argument("--scale", type=float, default=0.25)
    exp_p.add_argument("--seed", type=int, default=0)

    cmp_p = sub.add_parser("compare", help="PointAcc vs all platforms")
    cmp_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    cmp_p.add_argument("--scale", type=float, default=0.25)
    cmp_p.add_argument("--seed", type=int, default=0)

    ins_p = sub.add_parser("inspect", help="dump a benchmark's trace")
    ins_p.add_argument("benchmark", choices=[*BENCHMARKS, MINI_MINKUNET.notation])
    ins_p.add_argument("--scale", type=float, default=0.1)
    ins_p.add_argument("--seed", type=int, default=0)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "experiment": cmd_experiment,
        "compare": cmd_compare,
        "inspect": cmd_inspect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
