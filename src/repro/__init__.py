"""repro — a full-system reproduction of PointAcc (MICRO 2021).

PointAcc is a domain-specific accelerator for point-cloud deep learning
(Lin, Zhang, Tang, Wang, Han — MIT).  This package implements, in pure
Python/numpy:

* the point-cloud and mapping-operation substrates the paper builds on
  (``repro.pointcloud``, ``repro.mapping``),
* functional numpy inference for the 8 benchmark networks (``repro.nn``),
* a functional + cycle-level model of the PointAcc architecture — Mapping
  Unit, Memory Management Unit, Matrix Unit (``repro.core``),
* analytical models of every baseline platform in the evaluation
  (``repro.baselines``),
* experiment runners regenerating every table and figure
  (``repro.experiments``),
* a batched simulation engine serving request streams through shared
  backends with content-addressed map caching (``repro.engine``),
* a sharded serving cluster over those engines — workload-affinity
  routing, a tiered L1/L2/disk map cache that persists across CLI
  invocations, and deadline/tenant QoS (``repro.cluster``),
* a temporal streaming subsystem serving LiDAR frame sequences with
  tile-granular incremental map reuse (kernel maps, kNN/ball query, and
  the voxelizer) and geometry-only trace construction (``repro.stream``),
* fleet serving: several concurrent tenant streams over one cluster with
  cross-stream world-tile sharing and per-stream hit attribution
  (``repro.fleet``).

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "0.1.0"

__all__ = [
    "pointcloud",
    "mapping",
    "nn",
    "core",
    "baselines",
    "analysis",
    "experiments",
    "engine",
    "cluster",
    "stream",
    "fleet",
]
