"""Mapping Unit (paper Section 4.1): ranking-based mapping operations."""

from .bitonic import (
    NetworkStats,
    bitonic_merge_network,
    bitonic_sort_network,
    merge_sorted_pair,
    merger_comparators,
    merger_stages,
    sorter_comparators,
    sorter_stages,
)
from .comparator import INVALID_KEY, INVALID_PAYLOAD, ComparatorArray
from .intersection import IntersectionStats, detect_intersections, detector_stages
from .merge_stream import MergeStats, StreamingMerger, streaming_merge_cycles
from .pipeline import MPUPipeline, STAGES, StageTrace
from .topk import (
    SortStats,
    mpu_sort,
    mpu_topk,
    quickselect_topk_cycles,
    sort_cycles,
    topk_cycles,
)
from .unit import MappingUnit, MPUStats

__all__ = [
    "NetworkStats",
    "bitonic_merge_network",
    "bitonic_sort_network",
    "merge_sorted_pair",
    "merger_comparators",
    "merger_stages",
    "sorter_comparators",
    "sorter_stages",
    "INVALID_KEY",
    "INVALID_PAYLOAD",
    "ComparatorArray",
    "IntersectionStats",
    "detect_intersections",
    "detector_stages",
    "MergeStats",
    "StreamingMerger",
    "streaming_merge_cycles",
    "MPUPipeline",
    "STAGES",
    "StageTrace",
    "SortStats",
    "mpu_sort",
    "mpu_topk",
    "quickselect_topk_cycles",
    "sort_cycles",
    "topk_cycles",
    "MappingUnit",
    "MPUStats",
]
