"""Arbitrary-length MergeSort on a fixed-width merger (paper Fig. 10a).

An N-element bitonic merger only merges two N/2 arrays, but point clouds
have 1e3-1e5 points.  The MPU inserts a *forwarding loop* after the merger:
each cycle the merger sees one N/2 window from each input stream, consumes
exactly the window whose last element is smaller (that element becomes the
validity *threshold*), emits up to N/2 elements no greater than the
threshold, and parks the remainder in a register for the next cycle.

:class:`StreamingMerger` reproduces those emission semantics faithfully —
one window consumption per cycle, threshold-bounded emission, carry
register — and is property-tested to produce exactly the sorted merge.
:func:`streaming_merge_cycles` is the closed-form cycle count used by the
fast cost model; a test pins it to the simulated count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .comparator import ComparatorArray
from .bitonic import merger_comparators

__all__ = ["MergeStats", "StreamingMerger", "streaming_merge_cycles"]


@dataclass
class MergeStats:
    """Cycle and energy counters of one streaming merge."""

    cycles: int = 0
    compare_ops: int = 0
    emitted: int = 0


def streaming_merge_cycles(len_a: int, len_b: int, width: int) -> int:
    """Closed-form cycle count of the streaming merger.

    Exactly one window (N/2 elements) of one stream is consumed per cycle,
    so a full merge takes ``ceil(len_a / (N/2)) + ceil(len_b / (N/2))``
    cycles.  Elements "stolen" early from the non-consumed window leave a
    matching deficit in that window's own consumption cycle, which is where
    the carry register drains — so no extra drain cycles accrue.  A property
    test pins this formula to the cycle-stepped :class:`StreamingMerger`.
    """
    half = width // 2
    return -(-len_a // half) + (-(-len_b // half))


class StreamingMerger:
    """Fixed-width merger + forwarding loop, faithful emission semantics."""

    def __init__(self, width: int) -> None:
        if width < 4 or width & (width - 1):
            raise ValueError(f"width must be a power of two >= 4, got {width}")
        self.width = width
        self.half = width // 2
        # Energy accounting: the physical merger runs every cycle.
        self._compare_ops_per_cycle = merger_comparators(width)

    def merge(
        self, a: ComparatorArray, b: ComparatorArray
    ) -> tuple[ComparatorArray, MergeStats]:
        """Merge two sorted streams of arbitrary length."""
        if not a.is_sorted() or not b.is_sorted():
            raise ValueError("streaming merge inputs must be sorted")
        half = self.half
        stats = MergeStats()
        out_keys: list[np.ndarray] = []
        out_payloads: list[np.ndarray] = []
        # Stream state: window start (sa/sb) and emitted-prefix (ea/eb).
        sa = sb = ea = eb = 0
        carry = ComparatorArray(np.empty(0, np.int64), np.empty(0, np.int64))
        len_a, len_b = len(a), len(b)

        def emit(candidates: ComparatorArray) -> ComparatorArray:
            """Emit up to N/2 of the sorted candidates; rest becomes carry."""
            take = min(half, len(candidates))
            out_keys.append(candidates.keys[:take])
            out_payloads.append(candidates.payloads[:take])
            stats.emitted += take
            return candidates[take:] if take < len(candidates) else ComparatorArray(
                np.empty(0, np.int64), np.empty(0, np.int64)
            )

        while sa < len_a or sb < len_b:
            stats.cycles += 1
            stats.compare_ops += self._compare_ops_per_cycle
            wa_end = min(sa + half, len_a)
            wb_end = min(sb + half, len_b)
            a_last = a.keys[wa_end - 1] if sa < len_a else None
            b_last = b.keys[wb_end - 1] if sb < len_b else None
            if b_last is None or (a_last is not None and a_last <= b_last):
                threshold = a_last
                consume_a = True
            else:
                threshold = b_last
                consume_a = False
            # Visible elements <= threshold from both windows join the pool.
            na = ea
            while na < wa_end and a.keys[na] <= threshold:
                na += 1
            nb = eb
            while nb < wb_end and b.keys[nb] <= threshold:
                nb += 1
            fresh_keys = np.concatenate([a.keys[ea:na], b.keys[eb:nb]])
            fresh_payloads = np.concatenate([a.payloads[ea:na], b.payloads[eb:nb]])
            order = np.argsort(fresh_keys, kind="stable")
            fresh = ComparatorArray(fresh_keys[order], fresh_payloads[order])
            # Carry precedes fresh elements: everything in the carry is <=
            # the previous threshold <= the current one.
            pool = carry.concat(fresh)
            carry = emit(pool)
            ea, eb = na, nb
            if consume_a:
                sa = wa_end
                ea = max(ea, sa)
            else:
                sb = wb_end
                eb = max(eb, sb)
        while len(carry):
            stats.cycles += 1
            stats.compare_ops += self._compare_ops_per_cycle
            carry = emit(carry)
        merged = ComparatorArray(
            np.concatenate(out_keys) if out_keys else np.empty(0, np.int64),
            np.concatenate(out_payloads) if out_payloads else np.empty(0, np.int64),
        )
        return merged, stats
