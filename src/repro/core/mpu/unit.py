"""The Mapping Unit: all four mapping operations on one ranking kernel.

Functional results delegate to the reference algorithms in
``repro.mapping`` (they are bit-identical to the sorting-network models —
property-tested in ``tests/core/test_mpu_*``); cycle/energy/traffic stats
come from the closed-form models of the pipeline stages:

* kernel mapping — per offset, one streaming-merge pass of the shifted
  input against the output cloud with the intersection detector fused in
  (Fig. 9); clouds arrive sorted (SparseTensor invariant), so no sort pass.
* FPS — m iterations of distance-update + running arg-max through the
  FS/CD/ST forwarding loop (Fig. 7 blue path).
* kNN / ball query — per query, distance computation streamed into the
  truncated merge-tree TopK (Fig. 7 green path).
* quantization — bit-clearing plus adjacent-duplicate removal on the
  already-sorted stream.

Per-element on-chip storage is KEY_BYTES (packed coordinates / distance)
plus PAYLOAD_BYTES (point index) — the ComparatorStruct layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...mapping.ball_query import ball_query_maps
from ...mapping.fps import farthest_point_sampling
from ...mapping.kernel_map import kernel_map_mergesort
from ...mapping.knn import knn_maps
from ...mapping.maps import MapTable
from ...pointcloud.coords import quantize_unique
from ..config import PointAccConfig
from .bitonic import merger_comparators
from .intersection import detector_stages
from .merge_stream import streaming_merge_cycles
from .topk import sort_cycles, topk_cycles

__all__ = ["MPUStats", "MappingUnit", "KEY_BYTES", "PAYLOAD_BYTES"]

KEY_BYTES = 8  # packed coordinate / distance key
PAYLOAD_BYTES = 4  # point index
ELEMENT_BYTES = KEY_BYTES + PAYLOAD_BYTES
MAP_ENTRY_BYTES = 12  # (in idx, out idx, weight idx) x int32


@dataclass
class MPUStats:
    """Work counters for one mapping operation."""

    cycles: int = 0
    compare_ops: int = 0
    distance_ops: int = 0
    sram_bytes: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0

    def add(self, other: "MPUStats") -> None:
        self.cycles += other.cycles
        self.compare_ops += other.compare_ops
        self.distance_ops += other.distance_ops
        self.sram_bytes += other.sram_bytes
        self.dram_read_bytes += other.dram_read_bytes
        self.dram_write_bytes += other.dram_write_bytes


class MappingUnit:
    """Cycle-level model of the MPU for one :class:`PointAccConfig`."""

    def __init__(self, config: PointAccConfig) -> None:
        self.config = config
        self.width = config.merger_width
        self.lanes = config.mpu_lanes
        self._merge_ops_per_cycle = merger_comparators(self.width)
        self._sorter_capacity = int(config.sram.sorter_kb * 1024)

    # ------------------------------------------------------------------
    # Kernel mapping (SparseConv)
    # ------------------------------------------------------------------

    def kernel_map(
        self,
        in_coords: np.ndarray,
        out_coords: np.ndarray,
        kernel_size: int = 3,
        tensor_stride: int = 1,
        offsets: np.ndarray | None = None,
        presorted: bool = True,
    ) -> tuple[MapTable, MPUStats]:
        """Merge-sort kernel mapping over all kernel offsets."""
        maps = kernel_map_mergesort(
            in_coords, out_coords, kernel_size, tensor_stride, offsets
        )
        n_in, n_out = len(in_coords), len(out_coords)
        k_vol = maps.kernel_volume
        stats = MPUStats()
        if not presorted:
            stats.cycles += sort_cycles(n_in, self.width)
            stats.cycles += sort_cycles(n_out, self.width)
        merge_cycles = streaming_merge_cycles(n_in, n_out, self.width)
        # DI is spatially pipelined after MS; only the fill latency adds.
        fill = detector_stages(self.width)
        stats.cycles += k_vol * (merge_cycles + fill)
        stats.compare_ops += k_vol * (
            merge_cycles * self._merge_ops_per_cycle + (n_in + n_out)
        )
        # Coordinates stream from DRAM once per offset pass (clouds exceed
        # the sorter buffer at realistic sizes); maps stream out once.
        stream_bytes = float(k_vol * (n_in + n_out) * ELEMENT_BYTES)
        stats.sram_bytes += stream_bytes
        stats.dram_read_bytes += stream_bytes
        stats.dram_write_bytes += float(maps.n_maps * MAP_ENTRY_BYTES)
        return maps, stats

    def hash_kernel_map_cycles(
        self, n_in: int, n_out: int, kernel_volume: int
    ) -> int:
        """Cycle model of the hash-table alternative (Section 4.1.1 ablation).

        Build: insert n_in keys, then probe every (output, offset) pair.
        Open addressing at load factor ~0.5 averages ~1.5 SRAM touches per
        operation; the banked table keeps all lanes busy in the common case
        (conflicts are second-order and folded into the probe factor).
        """
        probes_per_op = 1.5
        build = -(-int(n_in * probes_per_op) // self.lanes)
        probe = -(-int(n_out * kernel_volume * probes_per_op) // self.lanes)
        return build + probe

    # ------------------------------------------------------------------
    # Farthest point sampling
    # ------------------------------------------------------------------

    def fps(self, points: np.ndarray, n_samples: int) -> tuple[np.ndarray, MPUStats]:
        """FPS via the distance-update/arg-max forwarding loop."""
        indices = farthest_point_sampling(points, n_samples)
        n = len(points)
        m = len(indices)
        stats = MPUStats()
        per_iter = -(-n // self.lanes)
        stats.cycles = m * per_iter
        stats.distance_ops = m * n
        stats.compare_ops = m * n  # min-update plus running arg-max
        element_bytes = n * ELEMENT_BYTES
        # Distances live in the sorter buffer when they fit; otherwise each
        # iteration re-streams them from DRAM.
        if element_bytes <= self._sorter_capacity:
            stats.dram_read_bytes = float(element_bytes)
            stats.sram_bytes = float(2 * m * element_bytes)  # read + update
        else:
            stats.dram_read_bytes = float(m * element_bytes)
            stats.sram_bytes = float(m * element_bytes)
        stats.dram_write_bytes = float(m * PAYLOAD_BYTES)
        return indices, stats

    # ------------------------------------------------------------------
    # kNN / ball query
    # ------------------------------------------------------------------

    def _topk_search_stats(
        self, n_queries: int, n_refs: int, k: int, distance_dim: int
    ) -> MPUStats:
        stats = MPUStats()
        # The CD stage's per-lane datapath evaluates up to 8 coordinate
        # dimensions per cycle (3-D point distances in one pass);
        # feature-space distances (graph convs) take ceil(dim/8) passes.
        dim_factor = -(-distance_dim // 8)
        distance_cycles = -(-n_refs // self.lanes) * dim_factor
        select_cycles = topk_cycles(n_refs, k, self.width)
        # The TopK pipeline overlaps the next query's distance computation.
        per_query = max(distance_cycles, select_cycles)
        stats.cycles = n_queries * per_query
        stats.distance_ops = n_queries * n_refs * dim_factor
        stats.compare_ops = n_queries * select_cycles * self._merge_ops_per_cycle
        ref_bytes = n_refs * ELEMENT_BYTES
        if ref_bytes <= self._sorter_capacity:
            stats.dram_read_bytes = float(ref_bytes)
            stats.sram_bytes = float(n_queries * ref_bytes)
        else:
            stats.dram_read_bytes = float(n_queries * ref_bytes)
            stats.sram_bytes = float(n_queries * ref_bytes)
        stats.dram_write_bytes = float(n_queries * k * MAP_ENTRY_BYTES)
        return stats

    def knn(
        self,
        queries: np.ndarray,
        references: np.ndarray,
        k: int,
        distance_dim: int | None = None,
    ) -> tuple[MapTable, MPUStats]:
        maps = knn_maps(queries, references, k)
        dim = distance_dim if distance_dim is not None else queries.shape[1]
        stats = self._topk_search_stats(len(queries), len(references), k, dim)
        return maps, stats

    def ball_query(
        self,
        queries: np.ndarray,
        references: np.ndarray,
        radius: float,
        k: int,
    ) -> tuple[MapTable, MPUStats]:
        """Ball query: TopK plus a free radius threshold in the comparators."""
        maps = ball_query_maps(queries, references, radius, k)
        stats = self._topk_search_stats(
            len(queries), len(references), k, queries.shape[1]
        )
        return maps, stats

    # ------------------------------------------------------------------
    # Coordinate quantization (output cloud construction)
    # ------------------------------------------------------------------

    def quantize(
        self, coords: np.ndarray, tensor_stride: int
    ) -> tuple[np.ndarray, np.ndarray, MPUStats]:
        """Downsample by bit-clearing + adjacent-duplicate removal."""
        out_coords, inverse = quantize_unique(coords, tensor_stride)
        n = len(coords)
        stats = MPUStats()
        stats.cycles = -(-n // self.width)  # streamed through the detector
        stats.compare_ops = max(n - 1, 0)
        stream = float(n * ELEMENT_BYTES)
        stats.sram_bytes = stream
        stats.dram_read_bytes = stream
        stats.dram_write_bytes = float(len(out_coords) * ELEMENT_BYTES)
        return out_coords, inverse, stats
