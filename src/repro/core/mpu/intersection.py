"""Intersection detector (paper Fig. 10d).

After the merger combines the shifted input cloud with the output cloud,
kernel-mapping hits are *adjacent elements with equal keys*.  The hardware
detects them with comparators on adjacent wires and compacts the survivors
with a log N shifting network driven by prefix zero-counts — a pipelined
structure of log N stages processing one N-block per cycle.

The functional model finds (input, output) pairs among adjacent equals and
returns them with the detector's work counters.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

__all__ = ["IntersectionStats", "detect_intersections", "detector_stages"]


@dataclass
class IntersectionStats:
    cycles: int = 0
    compare_ops: int = 0
    pairs: int = 0


def detector_stages(width: int) -> int:
    """Pipeline depth of the compaction network: log2(N) shift stages."""
    if width < 2 or width & (width - 1):
        raise ValueError(f"width must be a power of two >= 2, got {width}")
    return int(math.log2(width))


def detect_intersections(
    keys: np.ndarray,
    payloads: np.ndarray,
    from_output: np.ndarray,
    width: int,
) -> tuple[np.ndarray, np.ndarray, IntersectionStats]:
    """Find (input_payload, output_payload) pairs among adjacent equal keys.

    ``from_output`` flags which elements belong to the output cloud (True)
    versus the shifted input cloud (False).  Both clouds are duplicate-free,
    so any equal-key run has exactly two elements — one from each side
    (guaranteed by construction; asserted here).

    Returns ``(input_payloads, output_payloads, stats)``; cycle count covers
    streaming the merged array through the width-N detector.
    """
    keys = np.asarray(keys, dtype=np.int64)
    payloads = np.asarray(payloads, dtype=np.int64)
    from_output = np.asarray(from_output, dtype=bool)
    if not (len(keys) == len(payloads) == len(from_output)):
        raise ValueError("keys/payloads/flags length mismatch")
    stats = IntersectionStats()
    n = len(keys)
    stats.cycles = -(-n // width) if n else 0
    stats.compare_ops = max(n - 1, 0)  # adjacent comparators
    if n < 2:
        return np.empty(0, np.int64), np.empty(0, np.int64), stats
    equal = keys[:-1] == keys[1:]
    idx = np.flatnonzero(equal)
    if len(idx) == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64), stats
    sides = from_output[idx] ^ from_output[idx + 1]
    if not np.all(sides):
        raise ValueError(
            "duplicate key within one cloud: kernel mapping requires "
            "duplicate-free input and output clouds"
        )
    first_is_output = from_output[idx]
    in_payloads = np.where(first_is_output, payloads[idx + 1], payloads[idx])
    out_payloads = np.where(first_is_output, payloads[idx], payloads[idx + 1])
    stats.pairs = len(idx)
    return in_payloads, out_payloads, stats
