"""Bitonic sorting networks: the fixed-width compute core of the MPU.

The MPU's Sort stage uses two N/2-input bitonic sorters and the MergeSort
stage an N-input bitonic merger (paper Fig. 7).  This module implements the
actual compare-exchange networks (vectorized over the wire dimension), with
comparator-operation counting for the energy model and stage counting for
the cycle model.

A width-N bitonic **merger** has log2(N) stages of N/2 comparators; a full
bitonic **sorter** has log2(N)*(log2(N)+1)/2 such stages.  Both are
pipelined in hardware: one N-element block enters per cycle and latency
equals the stage count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .comparator import ComparatorArray

__all__ = [
    "NetworkStats",
    "merger_stages",
    "sorter_stages",
    "merger_comparators",
    "sorter_comparators",
    "bitonic_merge_network",
    "merge_sorted_pair",
    "bitonic_sort_network",
]


@dataclass
class NetworkStats:
    """Work counters for passes through compare-exchange networks."""

    compare_ops: int = 0
    stages: int = 0

    def add(self, other: "NetworkStats") -> None:
        self.compare_ops += other.compare_ops
        self.stages += other.stages


def _check_power_of_two(n: int) -> None:
    if n < 2 or n & (n - 1):
        raise ValueError(f"network width must be a power of two >= 2, got {n}")


def merger_stages(width: int) -> int:
    _check_power_of_two(width)
    return int(math.log2(width))


def sorter_stages(width: int) -> int:
    _check_power_of_two(width)
    k = int(math.log2(width))
    return k * (k + 1) // 2


def merger_comparators(width: int) -> int:
    """Compare-exchange units in a width-N bitonic merger."""
    return merger_stages(width) * (width // 2)


def sorter_comparators(width: int) -> int:
    """Compare-exchange units in a width-N bitonic sorter."""
    return sorter_stages(width) * (width // 2)


def _compare_exchange(
    array: ComparatorArray,
    lo: np.ndarray,
    hi: np.ndarray,
    ascending: np.ndarray,
    stats: NetworkStats,
) -> None:
    """One network stage: per-pair directed compare-exchange, vectorized."""
    keys, payloads = array.keys, array.payloads
    gt = keys[lo] > keys[hi]
    swap = np.where(ascending, gt, ~gt)
    if np.any(swap):
        swap_lo = lo[swap]
        swap_hi = hi[swap]
        keys[swap_lo], keys[swap_hi] = keys[swap_hi].copy(), keys[swap_lo].copy()
        payloads[swap_lo], payloads[swap_hi] = (
            payloads[swap_hi].copy(),
            payloads[swap_lo].copy(),
        )
    stats.compare_ops += len(lo)
    stats.stages += 1


def bitonic_merge_network(
    array: ComparatorArray, stats: NetworkStats | None = None
) -> NetworkStats:
    """Run a width-N bitonic merger in place.

    Input must be a *bitonic* sequence (ascending run followed by a
    descending run, or any rotation thereof produced by the sorter stages);
    output is ascending.
    """
    stats = stats if stats is not None else NetworkStats()
    n = len(array)
    _check_power_of_two(n)
    idx = np.arange(n)
    span = n // 2
    while span >= 1:
        lo = idx[(idx & span) == 0]
        hi = lo + span
        _compare_exchange(array, lo, hi, np.ones(len(lo), dtype=bool), stats)
        span //= 2
    return stats


def merge_sorted_pair(
    a: ComparatorArray, b: ComparatorArray, stats: NetworkStats | None = None
) -> tuple[ComparatorArray, NetworkStats]:
    """Merge two ascending arrays of equal power-of-two length.

    ``a ++ reverse(b)`` is bitonic, so one merger pass sorts it — exactly
    how the hardware merger is fed (Fig. 10a).
    """
    stats = stats if stats is not None else NetworkStats()
    if len(a) != len(b):
        raise ValueError(f"mismatched merge inputs ({len(a)} vs {len(b)})")
    if not a.is_sorted() or not b.is_sorted():
        raise ValueError("merge inputs must be sorted")
    merged = a.concat(b[::-1])
    bitonic_merge_network(merged, stats)
    return merged, stats


def bitonic_sort_network(
    array: ComparatorArray, stats: NetworkStats | None = None
) -> NetworkStats:
    """Full bitonic sort (ascending) in place — the standard XOR network."""
    stats = stats if stats is not None else NetworkStats()
    n = len(array)
    _check_power_of_two(n)
    idx = np.arange(n)
    size = 2
    while size <= n:
        span = size // 2
        while span >= 1:
            partner = idx ^ span
            mask = partner > idx
            lo = idx[mask]
            hi = partner[mask]
            ascending = (lo & size) == 0
            _compare_exchange(array, lo, hi, ascending, stats)
            span //= 2
        size *= 2
    return stats
