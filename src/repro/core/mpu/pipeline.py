"""The six-stage MPU pipeline (paper Fig. 7): FS-CD-ST-BF-MS-DI.

This module models the *pipeline structure* itself — the stage graph and
its three configurations (which forwarding loops are active) — one level
above the kernel math in ``bitonic.py`` / ``merge_stream.py`` / ``topk.py``:

* **kernel mapping** (red path): FS -> MS -> DI; the ST/BF stages pass
  through because both clouds arrive pre-sorted.
* **k-nearest-neighbors / ball query** (green path): FS -> CD -> ST -> BF
  <-> MS, with the MS->BF forwarding loop realizing the iterative merge
  tree of arbitrary-length Sort/TopK.
* **farthest point sampling** (blue path): FS <-> CD <-> ST, with the
  distance-update and running-arg-max forwarding loops.

:class:`MPUPipeline` executes an operation stage by stage, recording a
:class:`StageTrace` of per-stage element counts and loop activations, and
verifies the result against the reference algorithms.  Tests use it to pin
the pipeline wiring (which stages run, which loops fire) to the paper's
description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...mapping.fps import farthest_point_sampling
from ...mapping.knn import knn_indices
from ...pointcloud.coords import coords_to_keys, pairwise_squared_distance
from .comparator import ComparatorArray
from .intersection import detect_intersections
from .merge_stream import StreamingMerger
from .topk import mpu_topk

__all__ = ["STAGES", "StageTrace", "MPUPipeline"]

STAGES = ("FS", "CD", "ST", "BF", "MS", "DI")


@dataclass
class StageTrace:
    """Per-stage activity of one MPU operation."""

    elements: dict[str, int] = field(
        default_factory=lambda: {s: 0 for s in STAGES}
    )
    loops: set = field(default_factory=set)  # active forwarding loops

    def touch(self, stage: str, n: int) -> None:
        if stage not in self.elements:
            raise ValueError(f"unknown stage {stage!r}")
        self.elements[stage] += n

    def active_stages(self) -> list[str]:
        return [s for s in STAGES if self.elements[s] > 0]


class MPUPipeline:
    """Stage-level functional walkthrough of the MPU."""

    def __init__(self, width: int = 64, lanes: int = 16) -> None:
        self.width = width
        self.lanes = lanes
        self.merger = StreamingMerger(width)

    # ------------------------------------------------------------------
    # Kernel mapping: FS -> (MS + DI), per offset
    # ------------------------------------------------------------------

    def kernel_mapping(
        self,
        in_coords: np.ndarray,
        out_coords: np.ndarray,
        offsets: np.ndarray,
    ) -> tuple[list[tuple[int, int, int]], StageTrace]:
        """Shift-merge-intersect per offset (Fig. 9), stage by stage."""
        trace = StageTrace()
        in_coords = np.asarray(in_coords, dtype=np.int64)
        out_coords = np.asarray(out_coords, dtype=np.int64)
        out_keys = coords_to_keys(out_coords)
        out_order = np.argsort(out_keys, kind="stable")
        maps: list[tuple[int, int, int]] = []
        for w_idx, delta in enumerate(np.asarray(offsets, dtype=np.int64)):
            # FS: fetch both clouds' ComparatorStructs.  The payload's low
            # bit carries the cloud tag (input=0 / output=1), exactly the
            # side flag the intersection detector consumes.
            shifted = in_coords - delta[None, :]
            shifted_keys = coords_to_keys(shifted)
            in_order = np.argsort(shifted_keys, kind="stable")
            trace.touch("FS", len(in_coords) + len(out_coords))
            a = ComparatorArray(shifted_keys[in_order], in_order * 2)
            b = ComparatorArray(out_keys[out_order], out_order * 2 + 1)
            # MS: streaming merge of the two sorted clouds.
            merged, _ = self.merger.merge(a, b)
            trace.touch("MS", len(merged))
            # DI: adjacent-equality detection on the merged stream.
            side = (merged.payloads % 2).astype(bool)
            payloads = merged.payloads // 2
            ins, outs, _ = detect_intersections(
                merged.keys, payloads, side, self.width
            )
            trace.touch("DI", len(merged))
            maps.extend(
                (int(i), int(o), w_idx) for i, o in zip(ins, outs)
            )
        trace.loops.add("none")
        return maps, trace

    # ------------------------------------------------------------------
    # kNN: FS -> CD -> ST -> BF <-> MS
    # ------------------------------------------------------------------

    def knn(
        self, queries: np.ndarray, references: np.ndarray, k: int
    ) -> tuple[np.ndarray, StageTrace]:
        trace = StageTrace()
        n_ref = len(references)
        result = np.empty((len(queries), min(k, n_ref)), dtype=np.int64)
        # Distances quantized to a fixed-point grid (the hardware compares
        # fixed-point keys); ties broken by index via the stable sort.
        for qi, q in enumerate(np.asarray(queries, dtype=np.float64)):
            trace.touch("FS", n_ref)
            sq = pairwise_squared_distance(q[None, :], references)[0]
            trace.touch("CD", n_ref)
            keys = np.round(sq * 2**20).astype(np.int64) * n_ref + np.arange(
                n_ref
            )
            trace.touch("ST", n_ref)
            topk, _ = mpu_topk(ComparatorArray.from_keys(keys), k, self.width)
            trace.touch("BF", n_ref)
            trace.touch("MS", n_ref)
            result[qi] = topk.payloads[: result.shape[1]]
        trace.loops.add("MS->BF")
        return result, trace

    # ------------------------------------------------------------------
    # FPS: FS <-> CD <-> ST
    # ------------------------------------------------------------------

    def fps(
        self, points: np.ndarray, n_samples: int
    ) -> tuple[np.ndarray, StageTrace]:
        trace = StageTrace()
        points = np.asarray(points, dtype=np.float64)
        n = len(points)
        n_samples = min(n_samples, n)
        selected = np.empty(n_samples, dtype=np.int64)
        selected[0] = 0
        min_sq = pairwise_squared_distance(points, points[:1])[:, 0]
        trace.touch("FS", n)
        trace.touch("CD", n)
        for t in range(1, n_samples):
            # ST: running arg-max over the maintained distances.
            trace.touch("ST", n)
            nxt = int(np.argmax(min_sq))
            selected[t] = nxt
            # CD: distance update against the new output point, forwarded
            # back through FS (the blue loop).
            diff = points - points[nxt]
            np.minimum(min_sq, np.einsum("ij,ij->i", diff, diff), out=min_sq)
            trace.touch("CD", n)
            trace.touch("FS", n)
        trace.loops.add("CD->FS")
        trace.loops.add("ST->CD")
        return selected, trace

    # ------------------------------------------------------------------
    # Reference checks
    # ------------------------------------------------------------------

    def verify_knn(self, queries, references, k) -> bool:
        got, _ = self.knn(queries, references, k)
        ref, _ = knn_indices(queries, references, k)
        return np.array_equal(got, ref[:, : got.shape[1]])

    def verify_fps(self, points, n_samples) -> bool:
        got, _ = self.fps(points, n_samples)
        return np.array_equal(got, farthest_point_sampling(points, n_samples))
