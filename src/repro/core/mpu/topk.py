"""Sort / TopK of arbitrary length on the MPU (paper Fig. 10b/c).

Sort: the input is split into width-N/2 chunks, each sorted by one pass
through the bitonic sorter stages, then chunks are iteratively merge-sorted
in a tree by forwarding the MergeSort stage's output back to the Buffering
stage.  TopK: identical dataflow, but every intermediate merged subarray is
truncated to length k — since k (16/32/64) is tiny against the cloud size
(8192+), the reuse overhead is negligible (Section 4.1.4).

Functional implementations return real results (tested against numpy);
``*_cycles`` functions give the closed-form counts used by the cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .bitonic import bitonic_sort_network, sorter_comparators
from .comparator import ComparatorArray
from .merge_stream import MergeStats, StreamingMerger, streaming_merge_cycles

__all__ = [
    "SortStats",
    "mpu_sort",
    "mpu_topk",
    "sort_cycles",
    "topk_cycles",
    "quickselect_topk_cycles",
]


@dataclass
class SortStats:
    cycles: int = 0
    compare_ops: int = 0


def _sorted_chunks(
    array: ComparatorArray, half: int, stats: SortStats
) -> list[ComparatorArray]:
    """Split & Sort stage: one bitonic-sorter pass per width-N/2 chunk."""
    chunks = []
    for start in range(0, len(array), half):
        chunk = array[start : start + half]
        padded = chunk.pad_to(half)  # invalid slots sort to the end
        net = bitonic_sort_network(padded)
        stats.compare_ops += net.compare_ops
        stats.cycles += 1  # pipelined: one chunk enters per cycle
        chunks.append(padded.valid())
    return chunks


def mpu_sort(array: ComparatorArray, width: int) -> tuple[ComparatorArray, SortStats]:
    """Sort an arbitrary-length array: split & sort, then a merge tree."""
    stats = SortStats()
    if len(array) == 0:
        return array, stats
    half = width // 2
    merger = StreamingMerger(width)
    level = _sorted_chunks(array, half, stats)
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            merged, mstats = merger.merge(level[i], level[i + 1])
            stats.cycles += mstats.cycles
            stats.compare_ops += mstats.compare_ops
            next_level.append(merged)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0], stats


def mpu_topk(
    array: ComparatorArray, k: int, width: int
) -> tuple[ComparatorArray, SortStats]:
    """Smallest-k selection by truncating the merge tree's subarrays to k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    stats = SortStats()
    if len(array) == 0:
        return array, stats
    half = width // 2
    merger = StreamingMerger(width)
    level = [chunk[: min(k, len(chunk))] for chunk in _sorted_chunks(array, half, stats)]
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            merged, mstats = merger.merge(level[i], level[i + 1])
            stats.cycles += mstats.cycles
            stats.compare_ops += mstats.compare_ops
            next_level.append(merged[: min(k, len(merged))])
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0][: min(k, len(level[0]))], stats


def sort_cycles(n: int, width: int) -> int:
    """Closed-form cycle count of :func:`mpu_sort` (tested to match)."""
    if n == 0:
        return 0
    half = width // 2
    n_chunks = -(-n // half)
    cycles = n_chunks  # split & sort pass, pipelined
    # Merge tree: each level streams every element once through the merger.
    sizes = [min(half, n - i * half) for i in range(n_chunks)]
    while len(sizes) > 1:
        next_sizes = []
        for i in range(0, len(sizes) - 1, 2):
            cycles += streaming_merge_cycles(sizes[i], sizes[i + 1], width)
            next_sizes.append(sizes[i] + sizes[i + 1])
        if len(sizes) % 2:
            next_sizes.append(sizes[-1])
        sizes = next_sizes
    return cycles


def topk_cycles(n: int, k: int, width: int) -> int:
    """Closed-form cycle count of :func:`mpu_topk` (tested to match)."""
    if n == 0:
        return 0
    half = width // 2
    n_chunks = -(-n // half)
    cycles = n_chunks
    sizes = [min(k, min(half, n - i * half)) for i in range(n_chunks)]
    while len(sizes) > 1:
        next_sizes = []
        for i in range(0, len(sizes) - 1, 2):
            cycles += streaming_merge_cycles(sizes[i], sizes[i + 1], width)
            next_sizes.append(min(k, sizes[i] + sizes[i + 1]))
        if len(sizes) % 2:
            next_sizes.append(sizes[-1])
        sizes = next_sizes
    return cycles


def quickselect_topk_cycles(
    n: int,
    k: int,
    lanes: int,
    seed: int = 0,
    max_passes: int = 64,
    pass_overhead: int = 40,
) -> int:
    """Cycle model of a quick-select top-k engine (SpAtten's design).

    Used by the Section 4.1.4 ablation: random-pivot partition passes over
    the survivor set, each streaming ``ceil(len / lanes)`` cycles, until the
    set shrinks to k.  Raw comparison work is ~2n (less than the merge
    tree's n log), but every pass is *serialized* on the previous one: the
    global pivot-count reduction and pipeline restart cost ``pass_overhead``
    cycles (reduction-tree depth + control) before the next pass may start,
    and the pass count is data-dependent.  The MPU's merge-tree TopK streams
    continuously with no inter-pass barriers, which is where its ~1.2x
    advantage at equal parallelism comes from.
    """
    rng = np.random.default_rng(seed)
    cycles = 0
    remaining = n
    target = k
    for _ in range(max_passes):
        if remaining <= target or remaining <= lanes:
            cycles += -(-remaining // lanes)
            break
        cycles += -(-remaining // lanes) + pass_overhead  # serialized pass
        # Random pivot rank: survivors on the small side of the pivot.
        pivot_rank = int(rng.integers(1, remaining))
        if pivot_rank >= target:
            remaining = pivot_rank
        else:
            target -= pivot_rank
            remaining -= pivot_rank
    return cycles
