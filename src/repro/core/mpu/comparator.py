"""ComparatorStruct: the element type flowing through the MPU pipeline.

Paper Section 4.1.2: "the comparator input element ... contains the
comparator key (coordinates or distance) and the payload (e.g., the point
index)".  We keep keys and payloads in parallel numpy arrays so
compare-exchange networks can be vectorized while still moving payloads
with their keys exactly as the hardware does.

``INVALID_KEY`` pads partial windows; it sorts after every real key, which
is also how the hardware's N/A slots behave (Fig. 10a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ComparatorArray", "INVALID_KEY", "INVALID_PAYLOAD"]

INVALID_KEY = np.iinfo(np.int64).max
INVALID_PAYLOAD = -1


@dataclass
class ComparatorArray:
    """A batch of ComparatorStructs: int64 keys with int64 payloads."""

    keys: np.ndarray
    payloads: np.ndarray

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        self.payloads = np.asarray(self.payloads, dtype=np.int64)
        if self.keys.shape != self.payloads.shape:
            raise ValueError(
                f"keys/payloads shape mismatch: {self.keys.shape} vs "
                f"{self.payloads.shape}"
            )
        if self.keys.ndim != 1:
            raise ValueError("ComparatorArray is 1-D")

    @classmethod
    def from_keys(cls, keys: np.ndarray) -> "ComparatorArray":
        """Keys with identity payloads.  Copies: sorting networks mutate
        their input in place, and the caller's array must stay intact."""
        keys = np.array(keys, dtype=np.int64, copy=True)
        return cls(keys, np.arange(len(keys), dtype=np.int64))

    @classmethod
    def padded(cls, n: int) -> "ComparatorArray":
        return cls(
            np.full(n, INVALID_KEY, dtype=np.int64),
            np.full(n, INVALID_PAYLOAD, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.keys)

    def __getitem__(self, index) -> "ComparatorArray":
        return ComparatorArray(
            np.atleast_1d(self.keys[index]), np.atleast_1d(self.payloads[index])
        )

    def concat(self, other: "ComparatorArray") -> "ComparatorArray":
        return ComparatorArray(
            np.concatenate([self.keys, other.keys]),
            np.concatenate([self.payloads, other.payloads]),
        )

    def pad_to(self, n: int) -> "ComparatorArray":
        """Right-pad with invalid slots up to length ``n``."""
        if len(self) > n:
            raise ValueError(f"cannot pad length {len(self)} down to {n}")
        if len(self) == n:
            return self
        return self.concat(ComparatorArray.padded(n - len(self)))

    def valid(self) -> "ComparatorArray":
        """Drop padding slots."""
        mask = self.keys != INVALID_KEY
        return ComparatorArray(self.keys[mask], self.payloads[mask])

    def is_sorted(self) -> bool:
        return len(self) < 2 or bool(np.all(np.diff(self.keys) >= 0))
