"""Memory Tile Meta-Info Registers and the MIR container (paper Fig. 11b).

The MMU manages on-chip buffers at "tile" granularity.  Each tile's address
range, capacity and occupancy live in a :class:`MIR`; the
:class:`MIRContainer` holds them and is *re-purposed by mode*:

* ``tag``   — direct-mapped tag array for the sparse-computation cache
              (Section 4.2.3),
* ``fifo``  — prefetch queue for dense scratchpad operation (Section 4.2.4),
* ``stack`` — temporal layer fusion, where the top entry is always the layer
              currently being computed (Fig. 12).

This container is the *mechanism* shared by the cache and fusion models; it
tracks allocation against the physical buffer capacity and raises on
overflow, which the fusion planner's tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MIR", "MIRContainer"]


@dataclass
class MIR:
    """Meta info of one memory tile."""

    tile_id: int
    offset: int  # byte offset of the tile in the buffer
    capacity: int  # allocated bytes
    occupancy: int = 0  # valid bytes
    tag: int | None = None  # cache-mode tag (block id)

    def release(self, n_bytes: int) -> None:
        if n_bytes > self.occupancy:
            raise ValueError(
                f"tile {self.tile_id}: releasing {n_bytes} > occupancy "
                f"{self.occupancy}"
            )
        self.occupancy -= n_bytes
        self.capacity -= n_bytes


class MIRContainer:
    """A pool of MIRs over a fixed-size buffer, usable as tag/fifo/stack."""

    def __init__(self, capacity_bytes: int, n_entries: int) -> None:
        if capacity_bytes <= 0 or n_entries <= 0:
            raise ValueError("capacity and entry count must be positive")
        self.capacity_bytes = capacity_bytes
        self.n_entries = n_entries
        self._entries: list[MIR] = []
        self._next_id = 0

    # -- shared bookkeeping -------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return sum(m.capacity for m in self._entries)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def _allocate(self, capacity: int, tag: int | None = None) -> MIR:
        if capacity <= 0:
            raise ValueError(f"tile capacity must be positive, got {capacity}")
        if len(self._entries) >= self.n_entries:
            raise OverflowError("MIR container entry limit exceeded")
        if capacity > self.free_bytes:
            raise OverflowError(
                f"buffer overflow: requesting {capacity} B with only "
                f"{self.free_bytes} B free"
            )
        mir = MIR(
            tile_id=self._next_id,
            offset=self.capacity_bytes - self.free_bytes,
            capacity=capacity,
            occupancy=capacity,
            tag=tag,
        )
        self._next_id += 1
        self._entries.append(mir)
        return mir

    # -- stack mode (layer fusion, Fig. 12) ---------------------------------

    def push(self, capacity: int) -> MIR:
        """Allocate a tile on top of the stack."""
        return self._allocate(capacity)

    def top(self) -> MIR:
        if not self._entries:
            raise IndexError("MIR stack is empty")
        return self._entries[-1]

    def pop(self) -> MIR:
        if not self._entries:
            raise IndexError("MIR stack is empty")
        return self._entries.pop()

    def shrink_top(self, n_bytes: int) -> None:
        """Release the *used* part of the top tile (Fig. 12 Stage 2)."""
        top = self.top()
        top.release(n_bytes)
        if top.capacity == 0:
            self._entries.pop()

    # -- fifo mode (dense prefetch, Section 4.2.4) ---------------------------

    def enqueue(self, capacity: int) -> MIR:
        return self._allocate(capacity)

    def front(self) -> MIR:
        if not self._entries:
            raise IndexError("MIR fifo is empty")
        return self._entries[0]

    def dequeue(self) -> MIR:
        if not self._entries:
            raise IndexError("MIR fifo is empty")
        return self._entries.pop(0)

    # -- tag-array mode (cache, Section 4.2.3) --------------------------------

    def init_tag_array(self, n_sets: int, block_bytes: int) -> None:
        """Carve the buffer into ``n_sets`` direct-mapped blocks."""
        if n_sets * block_bytes > self.capacity_bytes:
            raise OverflowError(
                f"{n_sets} blocks x {block_bytes} B exceed buffer "
                f"({self.capacity_bytes} B)"
            )
        if n_sets > self.n_entries:
            raise OverflowError("more cache sets than MIR entries")
        self._entries = [
            MIR(tile_id=i, offset=i * block_bytes, capacity=block_bytes,
                occupancy=0, tag=None)
            for i in range(n_sets)
        ]
        self._next_id = len(self._entries)

    def lookup(self, set_index: int, tag: int) -> bool:
        """Tag check; on miss, installs the tag (replacement is implicit
        direct-mapped).  Returns hit/miss."""
        entry = self._entries[set_index % len(self._entries)]
        if entry.tag == tag:
            return True
        entry.tag = tag
        entry.occupancy = entry.capacity
        return False
