"""DRAM timing model: the Ramulator substitution (paper Section 5.1).

The paper integrates its simulator with Ramulator to model DRAM behaviour
and derives DRAM energy from the dumped command trace.  This module plays
the same role at a coarser granularity: an open-page, multi-bank timing
model that processes an *access trace* (address, size, read/write) and
accounts row activations, column accesses and precharges with
per-technology timing/energy parameters.

Two use levels:

* the accelerator's fast path uses ``DRAMSpec`` (bandwidth + pJ/byte) from
  ``repro.core.config`` — appropriate because PointAcc's streams are
  overwhelmingly sequential;
* :class:`DRAMTimingModel` here answers the question that justifies that
  shortcut: replaying representative sequential vs random traces measures
  the effective-bandwidth gap (row-buffer hit rate), and the ``abl-dram``
  experiment sweeps memory technologies on the headline workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DRAMSpec

__all__ = ["DRAMTiming", "DRAMStats", "DRAMTimingModel", "TIMINGS"]


@dataclass(frozen=True)
class DRAMTiming:
    """Device timing/energy parameters (per technology).

    Cycle counts are in memory-controller cycles at ``freq_mhz``; energies
    in pJ per event.  Values follow public datasheets at the usual level of
    architectural abstraction.
    """

    name: str
    freq_mhz: float  # controller clock
    bus_bytes: int  # bytes transferred per burst beat x burst length
    n_banks: int
    row_bytes: int  # row-buffer (page) size per bank
    t_rcd: int  # activate -> column access
    t_cas: int  # column access latency
    t_rp: int  # precharge
    e_activate_pj: float  # per row activation (ACT+PRE pair)
    e_rdwr_pj_per_byte: float  # column access + I/O energy
    e_background_pw_per_bank: float = 0.0  # folded into access energy


# One channel each; bandwidth = freq * bus_bytes matches the Table 3 specs.
TIMINGS = {
    "HBM2": DRAMTiming(
        name="HBM2", freq_mhz=1000.0, bus_bytes=256, n_banks=32,
        row_bytes=1024, t_rcd=14, t_cas=14, t_rp=14,
        e_activate_pj=900.0, e_rdwr_pj_per_byte=30.0,
    ),
    "DDR4-2133": DRAMTiming(
        name="DDR4-2133", freq_mhz=1066.0, bus_bytes=16, n_banks=16,
        row_bytes=8192, t_rcd=15, t_cas=15, t_rp=15,
        e_activate_pj=2500.0, e_rdwr_pj_per_byte=110.0,
    ),
    "LPDDR3-1600": DRAMTiming(
        name="LPDDR3-1600", freq_mhz=800.0, bus_bytes=16, n_banks=8,
        row_bytes=4096, t_rcd=15, t_cas=12, t_rp=15,
        e_activate_pj=1500.0, e_rdwr_pj_per_byte=58.0,
    ),
}


@dataclass
class DRAMStats:
    accesses: int = 0
    bytes: float = 0.0
    row_hits: int = 0
    row_misses: int = 0
    cycles: float = 0.0
    energy_pj: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def effective_bandwidth_gbps(self, timing: DRAMTiming) -> float:
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / (timing.freq_mhz * 1e6)
        return self.bytes / seconds / 1e9


class DRAMTimingModel:
    """Open-page controller over ``n_banks`` with per-bank open-row state."""

    def __init__(self, timing: DRAMTiming) -> None:
        self.timing = timing
        self._open_rows: dict[int, int] = {}
        self.stats = DRAMStats()

    def reset(self) -> None:
        self._open_rows.clear()
        self.stats = DRAMStats()

    def access(self, address: int, n_bytes: int) -> None:
        """One request; split into bus bursts, tracked per bank/row."""
        t = self.timing
        if n_bytes <= 0:
            raise ValueError("access size must be positive")
        for offset in range(0, n_bytes, t.bus_bytes):
            addr = address + offset
            row = addr // t.row_bytes
            bank = row % t.n_banks
            burst = min(t.bus_bytes, n_bytes - offset)
            self.stats.accesses += 1
            self.stats.bytes += burst
            if self._open_rows.get(bank) == row:
                self.stats.row_hits += 1
                self.stats.cycles += t.t_cas / t.n_banks + 1
            else:
                self.stats.row_misses += 1
                self._open_rows[bank] = row
                # Bank-level parallelism hides part of ACT/PRE latency.
                self.stats.cycles += (
                    (t.t_rp + t.t_rcd + t.t_cas) / min(t.n_banks, 4) + 1
                )
                self.stats.energy_pj += t.e_activate_pj
            self.stats.energy_pj += burst * t.e_rdwr_pj_per_byte

    def run_trace(self, addresses: np.ndarray, size_bytes: int) -> DRAMStats:
        """Replay a sequence of equally-sized requests."""
        for addr in np.asarray(addresses, dtype=np.int64):
            self.access(int(addr), size_bytes)
        return self.stats


def sequential_vs_random_gap(
    timing: DRAMTiming, n_requests: int = 2000, request_bytes: int = 64,
    seed: int = 0,
) -> dict:
    """Measure the row-buffer locality gap that justifies the fast model.

    Returns effective bandwidths (GB/s) for a streaming trace and a
    uniformly random trace over a 64 MB footprint.
    """
    rng = np.random.default_rng(seed)
    model = DRAMTimingModel(timing)
    seq = np.arange(n_requests, dtype=np.int64) * request_bytes
    model.run_trace(seq, request_bytes)
    seq_bw = model.stats.effective_bandwidth_gbps(timing)
    seq_hit = model.stats.row_hit_rate
    model.reset()
    rand = rng.integers(0, 64 * 2**20, size=n_requests).astype(np.int64)
    model.run_trace(rand, request_bytes)
    rand_bw = model.stats.effective_bandwidth_gbps(timing)
    rand_hit = model.stats.row_hit_rate
    return {
        "sequential_gbps": seq_bw,
        "random_gbps": rand_bw,
        "sequential_hit_rate": seq_hit,
        "random_hit_rate": rand_hit,
        "gap": seq_bw / rand_bw if rand_bw else float("inf"),
    }
