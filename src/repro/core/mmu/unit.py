"""Memory Management Unit: ties cache, dataflow and fusion together.

For sparse computation the MMU runs fetch-on-demand with the input buffers
configured as a cache, auto-selecting the block size per layer ("MMU is
configured with different block sizes when running different SparseConv
layers" — Section 4.2.3).  For dense computation it runs scratchpad mode
with temporal layer fusion (Section 4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...mapping.maps import MapTable
from ...nn.trace import LayerKind, LayerSpec, Trace
from ..config import PointAccConfig
from .cache import CacheStats
from .dataflow import FlowCost, fetch_on_demand_cost, gather_matmul_scatter_cost
from .fusion import FusionGroup, FusionPlan, FusionPlanner

__all__ = ["MemCost", "MemoryManagementUnit", "CANDIDATE_BLOCK_POINTS"]

CANDIDATE_BLOCK_POINTS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class MemCost:
    """DRAM traffic of one layer (or fused group) plus cache telemetry."""

    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    block_points: int | None = None
    cache_stats: CacheStats | None = None

    @property
    def total_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


class MemoryManagementUnit:
    """Per-config MMU cost model."""

    def __init__(self, config: PointAccConfig) -> None:
        self.config = config
        self.input_buffer_bytes = int(config.sram.input_kb * 1024)
        self.weight_buffer_bytes = int(config.sram.weight_kb * 1024)
        self.output_buffer_bytes = int(config.sram.output_kb * 1024)
        self.elem_bytes = config.bytes_per_element
        self.planner = FusionPlanner(
            feature_buffer_bytes=self.input_buffer_bytes,
            weight_buffer_bytes=self.weight_buffer_bytes,
            elem_bytes=self.elem_bytes,
        )

    # -- sparse computation -------------------------------------------------

    def sparse_conv_cost(
        self, spec: LayerSpec, maps: MapTable | None = None
    ) -> MemCost:
        """Fetch-on-demand cost with per-layer block-size auto-tuning."""
        if maps is None:
            maps = spec.params.get("maps")
        best: tuple[float, FlowCost, CacheStats | None, int] | None = None
        if maps is not None:
            for block_points in CANDIDATE_BLOCK_POINTS:
                point_bytes = max(spec.c_in, 1) * self.elem_bytes
                if block_points * point_bytes > self.input_buffer_bytes:
                    break
                cost, stats = fetch_on_demand_cost(
                    spec,
                    self.input_buffer_bytes,
                    block_points=block_points,
                    elem_bytes=self.elem_bytes,
                    maps=maps,
                )
                if best is None or cost.total_bytes < best[0]:
                    best = (cost.total_bytes, cost, stats, block_points)
        if best is None:
            cost, stats = fetch_on_demand_cost(
                spec,
                self.input_buffer_bytes,
                elem_bytes=self.elem_bytes,
                maps=None,
            )
            best = (cost.total_bytes, cost, stats, 16)
        _, cost, stats, block_points = best
        return MemCost(
            dram_read_bytes=cost.read_bytes,
            dram_write_bytes=cost.write_bytes,
            block_points=block_points,
            cache_stats=stats,
        )

    def gather_scatter_cost(self, spec: LayerSpec) -> MemCost:
        """The GPU-style flow, for ablation comparisons (Fig. 17/19)."""
        cost = gather_matmul_scatter_cost(spec, self.elem_bytes)
        return MemCost(
            dram_read_bytes=cost.read_bytes, dram_write_bytes=cost.write_bytes
        )

    # -- dense computation --------------------------------------------------

    def plan_fusion(self, trace: Trace) -> FusionPlan:
        return self.planner.plan(trace)

    def fused_group_cost(self, group: FusionGroup) -> MemCost:
        """Scratchpad-mode traffic of a fused dense group."""
        eb = self.elem_bytes
        read = group.rows * group.c_in * eb + group.weight_bytes(eb)
        # A trailing global reduction consumes the final features on-chip
        # (elide_output): only the pooled vector leaves the chip, charged by
        # the pool record itself.
        out_rows = 0 if group.elide_output else group.rows
        write = out_rows * group.c_out * eb
        return MemCost(dram_read_bytes=float(read), dram_write_bytes=float(write))

    def unfused_dense_cost(self, spec: LayerSpec) -> MemCost:
        eb = self.elem_bytes
        return MemCost(
            dram_read_bytes=float(
                spec.rows * spec.c_in * eb + spec.c_in * spec.c_out * eb
            ),
            dram_write_bytes=float(spec.rows * spec.c_out * eb),
        )

    # -- lightweight ops ----------------------------------------------------

    def elementwise_cost(self, spec: LayerSpec) -> MemCost:
        """Pool / interp / elementwise: streams operands through the
        vector path; inputs usually arrive fused from the producing matmul,
        so only spilled traffic counts (outputs of pooling that feed a
        mapping op, etc.).  Conservatively charge one read + one write of
        the touched rows."""
        eb = self.elem_bytes
        c = max(spec.c_in, spec.c_out, 1)
        if spec.kind is LayerKind.GLOBAL_POOL:
            return MemCost(dram_read_bytes=0.0, dram_write_bytes=float(c * eb))
        return MemCost(
            dram_read_bytes=0.0,
            dram_write_bytes=float(spec.n_out * max(spec.c_out, 1) * eb),
        )
