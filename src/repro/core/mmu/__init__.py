"""Memory Management Unit (paper Section 4.2): explicit data orchestration."""

from .cache import CacheConfig, CacheStats, InputFeatureCache, simulate_conv_cache
from .dataflow import FlowCost, fetch_on_demand_cost, gather_matmul_scatter_cost
from .dram import DRAMStats, DRAMTiming, DRAMTimingModel, TIMINGS
from .fusion import (
    FusionGroup,
    FusionPlan,
    FusionPlanner,
    find_fusible_chains,
    simulate_fusion_stack,
)
from .mir import MIR, MIRContainer
from .unit import CANDIDATE_BLOCK_POINTS, MemCost, MemoryManagementUnit

__all__ = [
    "CacheConfig",
    "CacheStats",
    "InputFeatureCache",
    "simulate_conv_cache",
    "FlowCost",
    "fetch_on_demand_cost",
    "gather_matmul_scatter_cost",
    "DRAMStats",
    "DRAMTiming",
    "DRAMTimingModel",
    "TIMINGS",
    "FusionGroup",
    "FusionPlan",
    "FusionPlanner",
    "find_fusible_chains",
    "simulate_fusion_stack",
    "MIR",
    "MIRContainer",
    "CANDIDATE_BLOCK_POINTS",
    "MemCost",
    "MemoryManagementUnit",
]
