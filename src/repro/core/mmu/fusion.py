"""Temporal layer fusion of consecutive dense layers (paper §4.2.4, Fig. 12).

Point-cloud networks interleave sparse convs with runs of dense pointwise
FCs (shared MLPs).  PointAcc fuses each run *temporally*: the MIR container
becomes a stack, the Matrix Unit always works on the top entry, and point
tiles flow through the fused layers depth-first — so intermediate features
never visit DRAM.

The planner follows the paper's compilation rule: "for each set of
consecutive FCs, try to fuse all unprocessed FCs.  If the estimated memory
of the required intermediate data overflows for all possible tilings,
discard the last layer and try to fuse the remaining ones.  Repeat until
all layers are processed."  Tiling is over the point dimension only (no
halos).

:func:`simulate_fusion_stack` replays a fused group through an actual
:class:`~repro.core.mmu.mir.MIRContainer` stack, reproducing the Fig. 12
stage walkthrough; tests assert it never overflows the planned buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...nn.trace import LayerKind, LayerSpec, Trace
from .mir import MIRContainer

__all__ = [
    "FusionGroup",
    "FusionPlan",
    "FusionPlanner",
    "find_fusible_chains",
    "simulate_fusion_stack",
]


@dataclass
class FusionGroup:
    """A run of dense layers executed as one fused unit.

    ``elide_output`` marks groups whose trailing consumer is a global
    reduction (GLOBAL_POOL): the final feature matrix is consumed on-chip
    as it drains from the array, so only the pooled vector leaves the chip.
    """

    specs: list[LayerSpec]
    tile_points: int
    elide_output: bool = False

    @property
    def n_layers(self) -> int:
        return len(self.specs)

    @property
    def rows(self) -> int:
        return self.specs[0].rows

    @property
    def c_in(self) -> int:
        return self.specs[0].c_in

    @property
    def c_out(self) -> int:
        return self.specs[-1].c_out

    @property
    def macs(self) -> int:
        return sum(s.macs for s in self.specs)

    def weight_bytes(self, elem_bytes: int) -> float:
        return float(sum(s.c_in * s.c_out for s in self.specs) * elem_bytes)

    def dram_bytes(self, elem_bytes: int) -> float:
        """Fused traffic: first input in, last output out, weights once."""
        out_rows = 1 if self.elide_output else self.rows
        return (
            (self.rows * self.c_in + out_rows * self.c_out) * elem_bytes
            + self.weight_bytes(elem_bytes)
        )

    def unfused_dram_bytes(self, elem_bytes: int) -> float:
        """Layer-by-layer traffic: every intermediate round-trips DRAM."""
        total = 0.0
        for spec in self.specs:
            total += spec.rows * (spec.c_in + spec.c_out) * elem_bytes
            total += spec.c_in * spec.c_out * elem_bytes
        return total


@dataclass
class FusionPlan:
    groups: list[FusionGroup] = field(default_factory=list)

    def dram_bytes(self, elem_bytes: int) -> float:
        return sum(g.dram_bytes(elem_bytes) for g in self.groups)

    def unfused_dram_bytes(self, elem_bytes: int) -> float:
        return sum(g.unfused_dram_bytes(elem_bytes) for g in self.groups)

    def reduction(self, elem_bytes: int = 2) -> float:
        """Fractional DRAM saving of fusion mode (the Fig. 20 metric)."""
        unfused = self.unfused_dram_bytes(elem_bytes)
        if unfused == 0:
            return 0.0
        return 1.0 - self.dram_bytes(elem_bytes) / unfused


def find_fusible_chains(
    trace: Trace,
) -> list[tuple[list[LayerSpec], bool]]:
    """Maximal runs of consecutive fusible dense specs on one point set.

    A chain breaks whenever a non-fusible op intervenes (pooling, mapping,
    sparse conv, gather/scatter) or the row count changes — those are real
    dataflow boundaries the stack cannot fuse across.  Returns
    ``(chain, feeds_global_pool)`` pairs; a chain feeding a GLOBAL_POOL over
    the same rows can keep its final features on-chip (the reduction
    consumes them as the array drains).
    """
    chains: list[tuple[list[LayerSpec], bool]] = []
    current: list[LayerSpec] = []
    for spec in trace:
        fusible_here = spec.kind is LayerKind.DENSE_MM and spec.fusible
        if fusible_here and (not current or current[-1].rows == spec.rows):
            current.append(spec)
            continue
        if current:
            feeds_pool = (
                spec.kind is LayerKind.GLOBAL_POOL
                and spec.rows == current[-1].rows
            )
            chains.append((current, feeds_pool))
            current = []
        # Every intervening op is a dataflow boundary; a fusible spec with
        # a different row count starts its own chain.
        if fusible_here:
            current.append(spec)
    if current:
        chains.append((current, False))
    return chains


class FusionPlanner:
    """The paper's greedy fuse-all-else-drop-last compilation pass."""

    def __init__(
        self,
        feature_buffer_bytes: int,
        weight_buffer_bytes: int,
        elem_bytes: int = 2,
        min_tile_points: int = 32,
    ) -> None:
        if feature_buffer_bytes <= 0 or weight_buffer_bytes <= 0:
            raise ValueError("buffer sizes must be positive")
        self.feature_buffer_bytes = feature_buffer_bytes
        self.weight_buffer_bytes = weight_buffer_bytes
        self.elem_bytes = elem_bytes
        self.min_tile_points = min_tile_points

    def _stack_bytes_per_point(self, specs: list[LayerSpec]) -> int:
        """Peak stack footprint per point when tiles flow depth-first.

        At the deepest stage every live layer holds at most one tile of its
        input features (Fig. 12): layer i's input width c_in plus the final
        output width.
        """
        widths = [spec.c_in for spec in specs] + [specs[-1].c_out]
        return sum(widths) * self.elem_bytes

    def _max_tile(self, specs: list[LayerSpec]) -> int:
        per_point = self._stack_bytes_per_point(specs)
        return self.feature_buffer_bytes // per_point if per_point else 0

    def _weights_fit(self, specs: list[LayerSpec]) -> bool:
        weight_bytes = sum(s.c_in * s.c_out for s in specs) * self.elem_bytes
        return weight_bytes <= self.weight_buffer_bytes

    def plan_chain(self, chain: list[LayerSpec]) -> list[FusionGroup]:
        """Greedily split one fusible chain into feasible fused groups."""
        if not chain:
            return []
        groups: list[FusionGroup] = []
        start = 0
        while start < len(chain):
            end = len(chain)
            while end > start + 1:
                candidate = chain[start:end]
                tile = min(self._max_tile(candidate), candidate[0].rows)
                if tile >= self.min_tile_points and self._weights_fit(candidate):
                    break
                end -= 1
            candidate = chain[start:end]
            tile = max(1, min(self._max_tile(candidate), candidate[0].rows))
            groups.append(FusionGroup(specs=candidate, tile_points=tile))
            start = end
        return groups

    def plan(self, trace: Trace) -> FusionPlan:
        plan = FusionPlan()
        for chain, feeds_pool in find_fusible_chains(trace):
            groups = self.plan_chain(chain)
            if groups and feeds_pool:
                groups[-1].elide_output = True
            plan.groups.extend(groups)
        return plan


def simulate_fusion_stack(
    group: FusionGroup, feature_buffer_bytes: int, elem_bytes: int = 2
) -> dict:
    """Replay a fused group through a MIR-container stack (Fig. 12).

    Follows the paper's stage walkthrough exactly: the tile on top of the
    stack is always the layer currently computing; a layer processes its
    input tile in sub-chunks sized so the downstream stack fits (the Fig. 12
    halving), releasing the *used part* of its tile before pushing the next
    layer's input; a tile whose capacity reaches zero pops, returning
    control to the previous unfinished layer.  The container raises if the
    schedule would overflow the physical buffer.

    Returns counters: rows computed per layer, stack pushes, peak depth,
    peak bytes.
    """
    specs = group.specs
    container = MIRContainer(
        capacity_bytes=feature_buffer_bytes, n_entries=group.n_layers + 1
    )
    counters = {
        "pushes": 0,
        "peak_depth": 0,
        "peak_bytes": 0,
        "rows_computed": [0] * len(specs),
    }
    # Per-point bytes the downstream stack needs while layer i runs: the
    # inputs of layers i+1.. plus nothing for the last layer (its output
    # streams straight out through the output buffers).
    downstream = [0] * len(specs)
    for i in range(len(specs) - 2, -1, -1):
        downstream[i] = downstream[i + 1] + specs[i + 1].c_in * elem_bytes

    def push(n_bytes: int) -> None:
        container.push(n_bytes)
        counters["pushes"] += 1
        counters["peak_depth"] = max(counters["peak_depth"], len(container))
        counters["peak_bytes"] = max(
            counters["peak_bytes"], container.allocated_bytes
        )

    def run_layer(i: int, tile_rows: int) -> None:
        """Precondition: top of stack holds layer i's input tile."""
        spec = specs[i]
        remaining = tile_rows
        if i == len(specs) - 1:
            counters["rows_computed"][i] += remaining
            container.shrink_top(remaining * spec.c_in * elem_bytes)
            return
        while remaining > 0:
            free = container.free_bytes + 0  # snapshot
            per_row_down = downstream[i]
            chunk = remaining if per_row_down == 0 else max(
                1, min(remaining, free // per_row_down)
            )
            counters["rows_computed"][i] += chunk
            container.shrink_top(chunk * spec.c_in * elem_bytes)
            push(chunk * specs[i + 1].c_in * elem_bytes)
            run_layer(i + 1, chunk)
            remaining -= chunk

    rows = group.rows
    tile = max(1, group.tile_points)
    for tile_start in range(0, rows, tile):
        tile_rows = min(tile, rows - tile_start)
        push(tile_rows * specs[0].c_in * elem_bytes)  # layer 0 input from DRAM
        run_layer(0, tile_rows)
        if len(container) != 0:
            raise RuntimeError("fusion stack not empty after a tile")
    return counters
