"""Configurable-block direct-mapped cache over the input buffers (§4.2.3).

In fetch-on-demand mode the MMU reuses the MIR container as a shared tag
array so the input feature buffers behave as a cache whose *block size is
software-controllable* (a block = ``block_points`` consecutive input points'
features).  Requests arrive at bus-word granularity — one word is
``word_bytes`` of a point's feature vector — so a single point read issues
``ceil(c_in * elem_bytes / word_bytes)`` sequential word requests of which
only the first can miss in the steady state.  That request granularity is
why the paper's Fig. 18 miss rate *decreases with channel count*: wider
features mean more words per (necessarily missing) first touch.

:func:`simulate_conv_cache` replays the exact fetch-on-demand request stream
of a sparse convolution (maps grouped per weight, outputs in order) and
returns measured miss rate + DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...mapping.maps import MapTable
from .mir import MIRContainer

__all__ = ["CacheConfig", "CacheStats", "InputFeatureCache", "simulate_conv_cache"]

DEFAULT_WORD_BYTES = 32  # bus word: 16 fp16 feature elements


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the input-buffer cache."""

    capacity_bytes: int
    block_points: int
    c_in: int
    elem_bytes: int = 2
    word_bytes: int = DEFAULT_WORD_BYTES

    def __post_init__(self) -> None:
        if self.block_points < 1:
            raise ValueError("block_points must be >= 1")
        if self.capacity_bytes < self.block_bytes:
            raise ValueError(
                f"cache capacity {self.capacity_bytes} B below one block "
                f"({self.block_bytes} B)"
            )

    @property
    def point_bytes(self) -> int:
        return self.c_in * self.elem_bytes

    @property
    def block_bytes(self) -> int:
        return self.block_points * self.point_bytes

    @property
    def n_sets(self) -> int:
        return max(1, self.capacity_bytes // self.block_bytes)

    @property
    def words_per_point(self) -> int:
        return max(1, -(-self.point_bytes // self.word_bytes))


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    dram_bytes: float = 0.0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class InputFeatureCache:
    """Direct-mapped cache with the MIR container as its tag array."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.container = MIRContainer(
            capacity_bytes=config.n_sets * config.block_bytes,
            n_entries=config.n_sets,
        )
        self.container.init_tag_array(config.n_sets, config.block_bytes)
        self.stats = CacheStats()

    def access_point(self, point_index: int) -> bool:
        """Read one point's full feature vector (word-granular requests).

        Returns True on block hit.  A miss loads the whole block from DRAM;
        the remaining words of the point then hit.
        """
        cfg = self.config
        block_id = point_index // cfg.block_points
        hit = self.container.lookup(block_id % cfg.n_sets, block_id)
        self.stats.accesses += cfg.words_per_point
        if not hit:
            self.stats.misses += 1
            self.stats.dram_bytes += cfg.block_bytes
        return hit


def simulate_conv_cache(maps: MapTable, config: CacheConfig) -> CacheStats:
    """Replay a sparse conv's fetch-on-demand input stream through the cache.

    Loop order matches the MMU dataflow (Section 4.2.2): weight-stationary
    inner loops — for each weight offset, stream all its maps in output
    order — under an output-stationary outer loop, so partial sums never
    leave the chip and input fetches are the only demand traffic.

    Vectorized exact simulation: a direct-mapped access hits iff the
    previous access to the same set carried the same tag, so grouping the
    access stream by set (stable, preserving arrival order) and diffing
    tags yields the exact miss sequence without a Python-level loop.  This
    is property-tested against the step-wise :class:`InputFeatureCache`.

    Replays are memoized on the table per cache geometry (the same
    convention — tables are immutable — as ``MapTable.sorted_by``):
    networks reuse one map table across paired layers, and the MMU's
    block-size auto-tune replays each table under every candidate
    geometry per layer, so shared tables would otherwise pay the full
    sweep once per consumer.  Returned stats are fresh copies.
    """
    geometry = (config.capacity_bytes, config.block_points, config.c_in,
                config.elem_bytes, config.word_bytes)
    memo = getattr(maps, "_cache_sims", None)
    if memo is None:
        memo = {}
        maps._cache_sims = memo
    cached = memo.get(geometry)
    if cached is not None:
        return CacheStats(cached.accesses, cached.misses, cached.dram_bytes)
    table = maps.sorted_by(by="weight")
    stats = CacheStats()
    n_access_points = len(table.in_idx)
    stats.accesses = n_access_points * config.words_per_point
    if n_access_points == 0:
        memo[geometry] = stats
        return CacheStats(stats.accesses, stats.misses, stats.dram_bytes)
    # This function is the backend's hot loop: the block-size sweep runs
    # it 8x per conv layer, each pass over the full map stream.  Two
    # micro-shapes matter: power-of-two block sizes divide by shifting,
    # and set ids (< n_sets, small) sort with fewer radix passes in a
    # narrow dtype.
    bp = config.block_points
    if bp & (bp - 1) == 0:
        block_ids = table.in_idx >> bp.bit_length() - 1
    else:
        block_ids = table.in_idx // bp
    n_sets = config.n_sets
    if n_sets == 1:
        # One set: the arrival order is already set-grouped.
        sorted_tags = block_ids
    else:
        set_ids = block_ids % n_sets
        if n_sets <= 1 << 15:
            set_ids = set_ids.astype(np.int16)
        elif n_sets <= 1 << 31:
            set_ids = set_ids.astype(np.int32)
        order = np.argsort(set_ids, kind="stable")
        sorted_tags = block_ids[order]
    # A miss is an access whose predecessor *in its set* carried another
    # tag.  Equal tags force equal sets (set = tag % n_sets), so in the
    # set-grouped stream every group boundary is also a tag change, and
    # counting adjacent tag changes alone is exact.
    misses = 1 + int(np.count_nonzero(sorted_tags[1:] != sorted_tags[:-1]))
    stats.misses = misses
    stats.dram_bytes = float(misses * config.block_bytes)
    memo[geometry] = stats
    return CacheStats(stats.accesses, stats.misses, stats.dram_bytes)
