"""Sparse-computation dataflows: Gather-MatMul-Scatter vs Fetch-on-Demand.

Paper Section 4.2.3 and Fig. 11c.  Both flows execute identical arithmetic;
they differ in DRAM traffic:

* **Gather-MatMul-Scatter** (the CPU/GPU implementation): materializes the
  gathered input matrix and the scattered partial sums in DRAM — every map
  entry moves ``c_in`` features three times (read source, write gathered,
  read gathered) and ``c_out`` partials twice, plus the final output
  accumulation.
* **Fetch-on-Demand** (PointAcc): features stream through the input-buffer
  cache directly into the systolic array; partial sums accumulate in the
  output buffers (output-stationary outer loop), so DRAM sees only cache
  miss fills, one weight pass and one output write.

The ``3x``-or-better DRAM saving the paper quotes for input features falls
out of the arithmetic; :func:`flow_comparison` measures it for a real layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...mapping.maps import MapTable
from ...nn.trace import LayerKind, LayerSpec
from .cache import CacheConfig, CacheStats, simulate_conv_cache

__all__ = ["FlowCost", "gather_matmul_scatter_cost", "fetch_on_demand_cost"]


@dataclass
class FlowCost:
    """DRAM traffic of one sparse conv under one dataflow (bytes)."""

    input_read: float = 0.0
    gathered_write: float = 0.0
    gathered_read: float = 0.0
    psum_write: float = 0.0
    psum_read: float = 0.0
    weight_read: float = 0.0
    output_write: float = 0.0

    @property
    def read_bytes(self) -> float:
        return (
            self.input_read + self.gathered_read + self.psum_read
            + self.weight_read
        )

    @property
    def write_bytes(self) -> float:
        return self.gathered_write + self.psum_write + self.output_write

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    @property
    def input_feature_bytes(self) -> float:
        """Traffic attributable to input features (the paper's 3x metric)."""
        return self.input_read + self.gathered_write + self.gathered_read


def _weight_bytes(spec: LayerSpec, elem_bytes: int) -> float:
    return float(spec.kernel_volume * spec.c_in * spec.c_out * elem_bytes)


def gather_matmul_scatter_cost(spec: LayerSpec, elem_bytes: int = 2) -> FlowCost:
    """DRAM bytes of the explicit gather/scatter flow (Fig. 11c, left)."""
    if spec.kind is not LayerKind.SPARSE_CONV:
        raise ValueError(f"expected SPARSE_CONV spec, got {spec.kind}")
    n_maps = spec.n_maps
    return FlowCost(
        input_read=float(n_maps * spec.c_in * elem_bytes),
        gathered_write=float(n_maps * spec.c_in * elem_bytes),
        gathered_read=float(n_maps * spec.c_in * elem_bytes),
        psum_write=float(n_maps * spec.c_out * elem_bytes),
        psum_read=float(n_maps * spec.c_out * elem_bytes),
        weight_read=_weight_bytes(spec, elem_bytes),
        output_write=float(spec.n_out * spec.c_out * elem_bytes),
    )


def fetch_on_demand_cost(
    spec: LayerSpec,
    input_buffer_bytes: int,
    block_points: int = 16,
    elem_bytes: int = 2,
    maps: MapTable | None = None,
    assumed_miss_rate: float = 0.12,
) -> tuple[FlowCost, CacheStats | None]:
    """DRAM bytes of PointAcc's streaming flow (Fig. 11c, right).

    With ``maps`` supplied, the input traffic is *measured* by replaying the
    request stream through the configurable cache; otherwise
    ``assumed_miss_rate`` (a mid-range Fig. 18 value) estimates it.
    """
    if spec.kind is not LayerKind.SPARSE_CONV:
        raise ValueError(f"expected SPARSE_CONV spec, got {spec.kind}")
    cache_stats: CacheStats | None = None
    point_bytes = spec.c_in * elem_bytes
    if maps is not None:
        config = CacheConfig(
            capacity_bytes=input_buffer_bytes,
            block_points=block_points,
            c_in=max(spec.c_in, 1),
            elem_bytes=elem_bytes,
        )
        cache_stats = simulate_conv_cache(maps, config)
        input_read = cache_stats.dram_bytes
    else:
        # Analytical fallback: each map entry refetches a fraction of a
        # point's features (``assumed_miss_rate`` of a block-amortized
        # fill), floored at one cold pass over the live inputs.
        input_read = max(
            spec.n_maps * assumed_miss_rate * point_bytes,
            spec.n_in * point_bytes,
        )
    cost = FlowCost(
        input_read=float(input_read),
        weight_read=_weight_bytes(spec, elem_bytes),
        output_write=float(spec.n_out * spec.c_out * elem_bytes),
    )
    return cost, cache_stats
