"""Performance reports: per-layer records and paper-style breakdowns.

Latency is attributed to the paper's three categories (Fig. 6 / Fig. 21a):
``mapping`` (MPU time), ``matmul`` (array compute time) and ``movement``
(memory stalls not hidden behind compute, plus explicit gather/scatter on
platforms that have them).  Energy is a :class:`~repro.core.energy.
EnergyLedger` (compute / SRAM / DRAM — Fig. 21b).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .energy import EnergyLedger

__all__ = ["LayerRecord", "PerfReport", "CATEGORIES"]

CATEGORIES = ("mapping", "matmul", "movement", "other")


@dataclass
class LayerRecord:
    """One executed op (or fused group)."""

    name: str
    kind: str
    seconds: float
    category_seconds: dict[str, float]
    cycles: float = 0.0
    macs: int = 0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    energy: EnergyLedger = field(default_factory=EnergyLedger)
    detail: dict = field(default_factory=dict)

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    def copy(self) -> "LayerRecord":
        """An independent copy with fresh category/energy/detail objects.

        The backend cost-record memo hands copies out because records are
        mutated after the fact — a report's static leakage is folded into
        its last record — and a shared object would let one request's
        report corrupt another's.
        """
        # dataclasses.replace keeps future scalar fields in sync by
        # construction; only the mutable containers need fresh objects.
        return replace(
            self,
            category_seconds=dict(self.category_seconds),
            energy=replace(self.energy),
            detail=dict(self.detail),
        )


@dataclass
class PerfReport:
    """Aggregate execution report of one network on one platform model."""

    platform: str
    network: str
    records: list[LayerRecord] = field(default_factory=list)

    def add(self, record: LayerRecord) -> None:
        unknown = set(record.category_seconds) - set(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown latency categories: {unknown}")
        self.records.append(record)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def total_macs(self) -> int:
        return sum(r.macs for r in self.records)

    @property
    def dram_bytes(self) -> float:
        return sum(r.dram_bytes for r in self.records)

    @property
    def energy(self) -> EnergyLedger:
        total = EnergyLedger()
        for r in self.records:
            total.add(r.energy)
        return total

    @property
    def energy_joules(self) -> float:
        return self.energy.total_joules

    def latency_breakdown(self) -> dict[str, float]:
        """Seconds per category (mapping / matmul / movement / other)."""
        out = {c: 0.0 for c in CATEGORIES}
        for r in self.records:
            for cat, sec in r.category_seconds.items():
                out[cat] += sec
        return out

    def latency_fractions(self) -> dict[str, float]:
        total = self.total_seconds
        if total <= 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: s / total for c, s in self.latency_breakdown().items()}

    def fps(self) -> float:
        total = self.total_seconds
        return 1.0 / total if total > 0 else float("inf")

    def summary(self) -> dict:
        return {
            "platform": self.platform,
            "network": self.network,
            "latency_ms": self.total_seconds * 1e3,
            "energy_mj": self.energy_joules * 1e3,
            "dram_mb": self.dram_bytes / 1e6,
            "macs_g": self.total_macs / 1e9,
            "breakdown": self.latency_fractions(),
        }
