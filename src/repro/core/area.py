"""Area model at 40 nm (paper Table 3: 15.7 mm² full, 3.9 mm² edge).

Component constants follow 40 nm design-kit rules of thumb:

* fp16 MAC PE with pipeline registers and psum accumulator: ~1900 um²
* 6T SRAM including periphery: ~0.008 mm² per KB
* compare-exchange unit (64-bit key + 32-bit payload swap): ~650 um²
* DRAM controller + PHY block: fixed per-chip overhead
* 5% top-level integration overhead (clock tree, misc control)

The Section 4.1.1 hash-engine comparison models the alternative design the
paper rejected: an N-lane parallel hash probe requires an NxN all-to-all
crossbar into banked SRAM (O(N^2) wiring) plus a table several times the
cloud's working set — that is where the ~14x area gap comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import PointAccConfig
from .mpu.bitonic import merger_comparators, sorter_comparators

__all__ = ["AreaModel", "AreaBreakdown"]

PE_MM2 = 1.9e-3
SRAM_MM2_PER_KB = 0.008
COMPARATOR_MM2 = 6.5e-4
DISTANCE_LANE_MM2 = 2.5e-3  # 3x fp mul + adder tree per CD lane
DRAM_CTRL_MM2 = 0.45
INTEGRATION_OVERHEAD = 1.05
CROSSBAR_PORT_MM2 = 2.2e-3  # per port-pair of the NxN hash crossbar
HASH_TABLE_SORTER_RATIO = 10.0  # on-the-fly hash table vs sorter buffer size


@dataclass
class AreaBreakdown:
    pe_array: float
    sram: float
    mpu_logic: float
    dram_ctrl: float

    @property
    def total(self) -> float:
        raw = self.pe_array + self.sram + self.mpu_logic + self.dram_ctrl
        return raw * INTEGRATION_OVERHEAD


class AreaModel:
    """Component-level area accounting for one configuration."""

    def __init__(self, config: PointAccConfig) -> None:
        self.config = config

    def mpu_comparator_count(self) -> int:
        """Comparators in the MPU pipeline: two N/2 sorters, one N merger,
        and the N-wide intersection detector's adjacent comparators."""
        width = self.config.merger_width
        return (
            2 * sorter_comparators(width // 2)
            + merger_comparators(width)
            + width
        )

    def mergesort_mpu_mm2(self) -> float:
        """Area of the ranking-based MPU logic (buffers counted in SRAM)."""
        comparators = self.mpu_comparator_count()
        lanes = self.config.mpu_lanes
        return comparators * COMPARATOR_MM2 + lanes * DISTANCE_LANE_MM2

    def hash_mpu_mm2(self) -> float:
        """Area of the hash-engine alternative at the same parallelism.

        The hash table must hold a locality window of the input cloud
        (coordinates + indices at a practical load factor), roughly 10x the
        merge design's sorter buffer; parallel lanes need an NxN crossbar
        into the banked table.
        """
        lanes = self.config.mpu_lanes
        crossbar = lanes * lanes * CROSSBAR_PORT_MM2
        table = (
            HASH_TABLE_SORTER_RATIO * self.config.sram.sorter_kb * SRAM_MM2_PER_KB
        )
        hash_logic = lanes * (DISTANCE_LANE_MM2 + 2 * COMPARATOR_MM2)
        return crossbar + table + hash_logic

    def breakdown(self) -> AreaBreakdown:
        cfg = self.config
        return AreaBreakdown(
            pe_array=cfg.n_pes * PE_MM2,
            sram=cfg.sram.total_kb * SRAM_MM2_PER_KB,
            mpu_logic=self.mergesort_mpu_mm2(),
            dram_ctrl=DRAM_CTRL_MM2,
        )

    @property
    def total_mm2(self) -> float:
        return self.breakdown().total

    def hash_vs_mergesort_ratio(self) -> float:
        """Area ratio of the rejected hash design to the shipped MPU."""
        return self.hash_mpu_mm2() / self.mergesort_mpu_mm2()
