"""Energy model: per-event constants for a 40 nm node plus aggregation.

The paper obtains SRAM energy from CACTI and DRAM energy from Ramulator
command traces (Section 5.1); we substitute documented per-event constants
in the same roles.  Values are in picojoules and follow the usual 40-45 nm
literature (Horowitz ISSCC'14 scaling, CACTI 6.5 sweeps):

* fp16 MAC: ~1.5 pJ bare arithmetic at 40-45 nm (Horowitz) times ~3x for
  pipeline registers, operand muxing, array interconnect and clock load
* compare-exchange on a 64-bit key + payload, with staging registers: ~1.2 pJ
* SRAM access: grows with macro size, ~0.35 pJ/byte at 8 KB to ~1.3 pJ/byte
  at 512 KB (modeled with a log fit of CACTI sweeps)
* DRAM: per-technology pJ/byte constants live on the DRAMSpec.

The absolute numbers carry the usual factor-of-2 modeling uncertainty; the
figures that depend on them (Fig. 13/14 energy savings, Fig. 21 energy
breakdown) reproduce at the order-of-magnitude level, which is the paper's
claim granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["EnergyConstants", "EnergyLedger", "DEFAULT_ENERGY", "sram_pj_per_byte"]


def sram_pj_per_byte(size_kb: float) -> float:
    """CACTI-style access energy per byte for an SRAM macro of given size."""
    if size_kb <= 0:
        raise ValueError("SRAM size must be positive")
    # log fit: 8 KB -> 0.8 pJ/B, 64 KB -> 1.7 pJ/B, 512 KB -> 2.6 pJ/B
    return 0.8 + 0.3 * max(0.0, math.log2(size_kb / 8.0))


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies in pJ (40 nm)."""

    # Per-event energies include the datapath overheads a synthesized
    # design pays beyond the bare arithmetic cell (pipeline registers,
    # operand muxing, clock load): roughly 2x the cell energy at 40 nm.
    mac_pj: float = 4.2
    compare_pj: float = 1.2
    vector_op_pj: float = 1.0  # pooling/elementwise per element
    leakage_w: float = 3.0  # static + clock-tree power of the whole chip

    def sram_access_pj(self, n_bytes: float, macro_kb: float) -> float:
        return n_bytes * sram_pj_per_byte(macro_kb)


DEFAULT_ENERGY = EnergyConstants()


@dataclass
class EnergyLedger:
    """Accumulates energy by category (the Fig. 21b pie)."""

    compute_pj: float = 0.0
    sram_pj: float = 0.0
    dram_pj: float = 0.0
    static_pj: float = 0.0

    def add(self, other: "EnergyLedger") -> None:
        self.compute_pj += other.compute_pj
        self.sram_pj += other.sram_pj
        self.dram_pj += other.dram_pj
        self.static_pj += other.static_pj

    @property
    def total_pj(self) -> float:
        return self.compute_pj + self.sram_pj + self.dram_pj + self.static_pj

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    def breakdown(self) -> dict[str, float]:
        """Fractions by category; static power folded into compute as the
        paper's pie does (it reports Compute / SRAM / DRAM only)."""
        total = self.total_pj
        if total <= 0:
            return {"compute": 0.0, "sram": 0.0, "dram": 0.0}
        return {
            "compute": (self.compute_pj + self.static_pj) / total,
            "sram": self.sram_pj / total,
            "dram": self.dram_pj / total,
        }
