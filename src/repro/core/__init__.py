"""PointAcc architecture model — the paper's primary contribution.

Submodules: ``mpu`` (Mapping Unit, Section 4.1), ``mmu`` (Memory Management
Unit, Section 4.2), ``mxu`` (Matrix Unit, Section 4.3), plus the top-level
:class:`PointAccModel` scheduler, the energy/area models and Table 3
configurations.
"""

from .accelerator import PointAccModel
from .area import AreaModel
from .config import (
    DDR4_2133,
    HBM2,
    LPDDR3_1600,
    POINTACC_EDGE,
    POINTACC_FULL,
    DRAMSpec,
    PointAccConfig,
    SRAMBudget,
)
from .energy import DEFAULT_ENERGY, EnergyConstants, EnergyLedger, sram_pj_per_byte
from .report import CATEGORIES, LayerRecord, PerfReport

__all__ = [
    "PointAccModel",
    "AreaModel",
    "DDR4_2133",
    "HBM2",
    "LPDDR3_1600",
    "POINTACC_EDGE",
    "POINTACC_FULL",
    "DRAMSpec",
    "PointAccConfig",
    "SRAMBudget",
    "DEFAULT_ENERGY",
    "EnergyConstants",
    "EnergyLedger",
    "sram_pj_per_byte",
    "CATEGORIES",
    "LayerRecord",
    "PerfReport",
]
