"""The PointAcc top-level model: schedule a trace, produce a PerfReport.

Walks a workload trace (Section 5.1's methodology: a cycle-level simulator
driven by the real network execution) and dispatches each op:

* mapping ops -> Mapping Unit cost model,
* runs of fusible dense layers -> fused groups (MMU stack mode) on the
  Matrix Unit,
* sparse convolutions -> Matrix Unit + MMU fetch-on-demand cache,
* pooling / interpolation / elementwise -> the vector path,
* explicit GATHER/SCATTER specs -> skipped (PointAcc absorbs them into the
  MMU; they exist in traces for the baseline platforms).

Per layer, memory transfers double-buffer behind compute, so layer latency
is ``max(compute, dram)`` with the un-hidden remainder attributed to the
``movement`` category (Fig. 21a).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..mapping.maps import MapTable
from ..nn.trace import LayerKind, LayerSpec, Trace
from .config import PointAccConfig, POINTACC_FULL
from .energy import DEFAULT_ENERGY, EnergyConstants, EnergyLedger
from .mmu.fusion import FusionGroup
from .mmu.unit import MemCost, MemoryManagementUnit
from .mpu.unit import ELEMENT_BYTES, MAP_ENTRY_BYTES, MappingUnit, MPUStats
from .mxu.systolic import MatrixUnit, MXUStats
from .report import LayerRecord, PerfReport

__all__ = ["PointAccModel"]


def _map_digest(table: MapTable) -> bytes:
    """Content digest of a map table, memoized on the instance.

    The tile front's whole-call reuse hands the *same* table object to
    every layer (and frame) presenting equal geometry, so after the first
    hash the digest probe is a free attribute read.
    """
    digest = getattr(table, "_content_digest", None)
    if digest is None:
        h = hashlib.blake2b(digest_size=16)
        for arr in (table.in_idx, table.out_idx, table.weight_idx):
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update(repr(int(table.kernel_volume)).encode())
        digest = h.digest()
        table._content_digest = digest
    return digest


def _params_key(params: dict):
    """Hashable rendering of a spec's params, or ``None`` if any value is
    of a type the memo does not understand (then the layer is costed
    plainly — the memo must never guess at content identity)."""
    parts = []
    for name in sorted(params):
        value = params[name]
        if isinstance(value, MapTable):
            parts.append((name, "map", _map_digest(value)))
        elif isinstance(value, np.ndarray):
            arr = np.ascontiguousarray(value)
            parts.append((name, "arr", str(arr.dtype), arr.shape,
                          arr.tobytes()))
        elif isinstance(value, (bool, int, float, str, bytes, type(None))):
            parts.append((name, repr(value)))
        else:
            return None
    return tuple(parts)


def _spec_key(spec: LayerSpec, *extra):
    """Content key of one layer's cost inputs (``None`` = uncacheable)."""
    params_key = _params_key(spec.params)
    if params_key is None:
        return None
    return (
        spec.name, spec.kind.value, spec.n_in, spec.n_out, spec.c_in,
        spec.c_out, spec.rows, spec.n_maps, spec.kernel_volume,
        spec.fusible, params_key, *extra,
    )


def _group_key(group: FusionGroup):
    """Content key of a fused dense group: every member's key plus the
    group-level planning facts its cost depends on."""
    members = []
    for spec in group.specs:
        key = _spec_key(spec)
        if key is None:
            return None
        members.append(key)
    return ("fused", tuple(members), group.tile_points, group.elide_output)


class PointAccModel:
    """Cycle-level cost model of one PointAcc configuration.

    ``record_memo_entries`` bounds the per-layer cost-record memo: every
    :class:`~repro.core.report.LayerRecord` this model produces is a pure
    function of the layer's content (spec fields, params — map tables by
    content digest — and the flow/fusion context), so near-identical
    frames re-served by an engine share cost-model work per *layer*, not
    just per whole trace.  Hits hand out independent copies; ``0``
    disables the memo (the always-recompute ablation).
    """

    def __init__(
        self,
        config: PointAccConfig = POINTACC_FULL,
        energy: EnergyConstants = DEFAULT_ENERGY,
        record_memo_entries: int = 4096,
    ) -> None:
        self.config = config
        self.energy = energy
        self.mpu = MappingUnit(config)
        self.mmu = MemoryManagementUnit(config)
        self.mxu = MatrixUnit(config.pe_rows, config.pe_cols,
                              config.bytes_per_element)
        self.record_memo_entries = int(record_memo_entries)
        self._record_memo: OrderedDict = OrderedDict()
        self.record_memo_stats = {"hits": 0, "misses": 0, "uncacheable": 0}

    def _memo_record(self, key, build) -> LayerRecord:
        """Return ``build()``'s record through the content-keyed memo."""
        if key is None or self.record_memo_entries < 1:
            self.record_memo_stats["uncacheable"] += 1
            return build()
        entry = self._record_memo.get(key)
        if entry is not None:
            self._record_memo.move_to_end(key)
            self.record_memo_stats["hits"] += 1
            return entry.copy()
        self.record_memo_stats["misses"] += 1
        record = build()
        self._record_memo[key] = record.copy()
        while len(self._record_memo) > self.record_memo_entries:
            self._record_memo.popitem(last=False)
        return record

    # ------------------------------------------------------------------
    # Mapping-op costing from spec counts
    # ------------------------------------------------------------------

    def _mapping_stats(self, spec: LayerSpec) -> MPUStats:
        kind = spec.kind
        width = self.config.merger_width
        lanes = self.config.mpu_lanes
        stats = MPUStats()
        if spec.params.get("cached"):
            # Maps computed earlier in the run (same clouds, same offsets)
            # are re-streamed from DRAM through the map FIFO, not recomputed.
            stats.cycles = -(-spec.n_maps // width)
            stats.dram_read_bytes = float(spec.n_maps * MAP_ENTRY_BYTES)
            return stats
        if kind is LayerKind.MAP_KERNEL:
            from .mpu.intersection import detector_stages
            from .mpu.merge_stream import streaming_merge_cycles
            from .mpu.bitonic import merger_comparators

            merge_cycles = streaming_merge_cycles(spec.n_in, spec.n_out, width)
            stats.cycles = spec.kernel_volume * (
                merge_cycles + detector_stages(width)
            )
            stats.compare_ops = spec.kernel_volume * (
                merge_cycles * merger_comparators(width)
                + (spec.n_in + spec.n_out)
            )
            stream = float(
                spec.kernel_volume * (spec.n_in + spec.n_out) * ELEMENT_BYTES
            )
            stats.sram_bytes = stream
            stats.dram_read_bytes = stream
            stats.dram_write_bytes = float(spec.n_maps * MAP_ENTRY_BYTES)
        elif kind in (LayerKind.MAP_FPS, LayerKind.MAP_RANDOM):
            n, m = spec.n_in, spec.n_out
            if kind is LayerKind.MAP_RANDOM:
                stats.cycles = -(-m // lanes)
                stats.dram_write_bytes = float(m * 4)
            else:
                per_iter = -(-n // lanes)
                stats.cycles = m * per_iter
                stats.distance_ops = m * n
                stats.compare_ops = m * n
                element_bytes = n * ELEMENT_BYTES
                if element_bytes <= self.config.sram.sorter_kb * 1024:
                    stats.dram_read_bytes = float(element_bytes)
                    stats.sram_bytes = float(2 * m * element_bytes)
                else:
                    stats.dram_read_bytes = float(m * element_bytes)
                    stats.sram_bytes = float(m * element_bytes)
                stats.dram_write_bytes = float(m * 4)
        elif kind in (LayerKind.MAP_KNN, LayerKind.MAP_BALL):
            k = spec.kernel_volume
            dim = int(spec.params.get("feature_dim", 3))
            stats = self.mpu._topk_search_stats(spec.n_out, spec.n_in, k, dim)
        elif kind is LayerKind.MAP_QUANT:
            n = spec.n_in
            stats.cycles = -(-n // width)
            stats.compare_ops = max(n - 1, 0)
            stream = float(n * ELEMENT_BYTES)
            stats.sram_bytes = stream
            stats.dram_read_bytes = stream
            stats.dram_write_bytes = float(spec.n_out * ELEMENT_BYTES)
        else:
            raise ValueError(f"not a mapping op: {kind}")
        return stats

    def _mapping_record(self, spec: LayerSpec) -> LayerRecord:
        stats = self._mapping_stats(spec)
        cfg = self.config
        compute_s = cfg.cycles_to_seconds(stats.cycles)
        dram_bytes = stats.dram_read_bytes + stats.dram_write_bytes
        dram_s = cfg.dram.transfer_seconds(dram_bytes)
        seconds = max(compute_s, dram_s)
        ledger = EnergyLedger(
            compute_pj=(
                stats.compare_ops * self.energy.compare_pj
                + stats.distance_ops * 3 * self.energy.vector_op_pj
            ),
            sram_pj=self.energy.sram_access_pj(
                stats.sram_bytes, cfg.sram.sorter_kb
            ),
            dram_pj=cfg.dram.transfer_energy_pj(dram_bytes),
        )
        return LayerRecord(
            name=spec.name,
            kind=spec.kind.value,
            seconds=seconds,
            category_seconds={"mapping": seconds},
            cycles=stats.cycles,
            dram_read_bytes=stats.dram_read_bytes,
            dram_write_bytes=stats.dram_write_bytes,
            energy=ledger,
        )

    # ------------------------------------------------------------------
    # Matmul costing
    # ------------------------------------------------------------------

    def _matmul_record(
        self, name: str, kind: str, mxu: MXUStats, mem: MemCost
    ) -> LayerRecord:
        cfg = self.config
        compute_s = cfg.cycles_to_seconds(mxu.cycles)
        dram_s = cfg.dram.transfer_seconds(mem.total_bytes)
        seconds = max(compute_s, dram_s)
        stall = max(0.0, dram_s - compute_s)
        ledger = EnergyLedger(
            compute_pj=mxu.macs * self.energy.mac_pj,
            sram_pj=(
                self.energy.sram_access_pj(
                    mxu.input_sram_bytes, cfg.sram.input_kb
                )
                + self.energy.sram_access_pj(
                    mxu.weight_sram_bytes, cfg.sram.weight_kb
                )
                + self.energy.sram_access_pj(
                    mxu.output_sram_bytes, cfg.sram.output_kb
                )
            ),
            dram_pj=cfg.dram.transfer_energy_pj(mem.total_bytes),
        )
        detail = {}
        if mem.block_points is not None:
            detail["block_points"] = mem.block_points
        if mem.cache_stats is not None:
            detail["miss_rate"] = mem.cache_stats.miss_rate
        return LayerRecord(
            name=name,
            kind=kind,
            seconds=seconds,
            category_seconds={"matmul": compute_s, "movement": stall},
            cycles=mxu.cycles,
            macs=mxu.macs,
            dram_read_bytes=mem.dram_read_bytes,
            dram_write_bytes=mem.dram_write_bytes,
            energy=ledger,
            detail=detail,
        )

    def _sparse_conv_record(
        self, spec: LayerSpec, flow: str = "fetch_on_demand"
    ) -> LayerRecord:
        mxu = self.mxu.sparse_conv(spec)
        if flow == "fetch_on_demand":
            mem = self.mmu.sparse_conv_cost(spec)
        elif flow == "gather_scatter":
            mem = self.mmu.gather_scatter_cost(spec)
        else:
            raise ValueError(f"unknown flow {flow!r}")
        return self._matmul_record(spec.name, spec.kind.value, mxu, mem)

    def _fused_group_record(self, group: FusionGroup) -> LayerRecord:
        mxu_total = MXUStats()
        for spec in group.specs:
            mxu_total.add(self.mxu.dense_mm(spec.rows, spec.c_in, spec.c_out))
        mem = self.mmu.fused_group_cost(group)
        name = group.specs[0].name
        if group.n_layers > 1:
            name += f"+{group.n_layers - 1}fused"
        return self._matmul_record(name, "dense_fused", mxu_total, mem)

    def _dense_record(self, spec: LayerSpec) -> LayerRecord:
        mxu = self.mxu.dense_mm(spec.rows, spec.c_in, spec.c_out)
        mem = self.mmu.unfused_dense_cost(spec)
        return self._matmul_record(spec.name, spec.kind.value, mxu, mem)

    # ------------------------------------------------------------------
    # Vector path
    # ------------------------------------------------------------------

    def _vector_record(self, spec: LayerSpec) -> LayerRecord:
        cfg = self.config
        elems = spec.rows * max(spec.c_in, spec.c_out, 1)
        cycles = -(-elems // cfg.vector_lanes)
        mem = self.mmu.elementwise_cost(spec)
        compute_s = cfg.cycles_to_seconds(cycles)
        dram_s = cfg.dram.transfer_seconds(mem.total_bytes)
        seconds = max(compute_s, dram_s)
        ledger = EnergyLedger(
            compute_pj=elems * self.energy.vector_op_pj,
            sram_pj=self.energy.sram_access_pj(
                elems * cfg.bytes_per_element, cfg.sram.output_kb
            ),
            dram_pj=cfg.dram.transfer_energy_pj(mem.total_bytes),
        )
        return LayerRecord(
            name=spec.name,
            kind=spec.kind.value,
            seconds=seconds,
            category_seconds={"other": seconds},
            cycles=cycles,
            dram_read_bytes=mem.dram_read_bytes,
            dram_write_bytes=mem.dram_write_bytes,
            energy=ledger,
        )

    # ------------------------------------------------------------------
    # Trace walk
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        fusion: bool = True,
        flow: str = "fetch_on_demand",
    ) -> PerfReport:
        """Execute a trace; returns the full per-layer report."""
        report = PerfReport(platform=self.config.name, network=trace.name)
        group_of: dict[int, FusionGroup] = {}
        first_of_group: dict[int, int] = {}
        if fusion:
            plan = self.mmu.plan_fusion(trace)
            for group in plan.groups:
                head = id(group.specs[0])
                for spec in group.specs:
                    group_of[id(spec)] = group
                    first_of_group[id(spec)] = head
        for spec in trace:
            kind = spec.kind
            if kind.is_mapping:
                report.add(self._memo_record(
                    _spec_key(spec), lambda: self._mapping_record(spec)
                ))
            elif kind.is_movement:
                continue  # absorbed by the MMU on PointAcc
            elif kind is LayerKind.SPARSE_CONV:
                report.add(self._memo_record(
                    _spec_key(spec, flow),
                    lambda: self._sparse_conv_record(spec, flow),
                ))
            elif kind is LayerKind.DENSE_MM:
                group = group_of.get(id(spec))
                if group is None:
                    report.add(self._memo_record(
                        _spec_key(spec), lambda: self._dense_record(spec)
                    ))
                elif first_of_group[id(spec)] == id(spec):
                    report.add(self._memo_record(
                        _group_key(group),
                        lambda: self._fused_group_record(group),
                    ))
                # non-head members are covered by the group record
            elif kind in (
                LayerKind.POOL_MAX,
                LayerKind.GLOBAL_POOL,
                LayerKind.INTERP,
                LayerKind.ELEMWISE,
            ):
                report.add(self._memo_record(
                    _spec_key(spec), lambda: self._vector_record(spec)
                ))
            else:
                raise ValueError(f"unhandled spec kind {kind}")
        # Static energy over the whole run.
        total_s = report.total_seconds
        if report.records:
            report.records[-1].energy.static_pj += (
                self.energy.leakage_w * total_s * 1e12
            )
        return report
