"""Architecture configurations (paper Table 3).

Two PointAcc instances are evaluated: the full-size server configuration
(64x64 systolic array, HBM2) and PointAcc.Edge (16x16, DDR4), both at 1 GHz
in a 40 nm node.  Mesorasi's NPU configuration is also described here since
``repro.baselines.mesorasi`` models it with the same building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DRAMSpec",
    "SRAMBudget",
    "PointAccConfig",
    "POINTACC_FULL",
    "POINTACC_EDGE",
    "HBM2",
    "DDR4_2133",
    "LPDDR3_1600",
]


@dataclass(frozen=True)
class DRAMSpec:
    """Off-chip memory: bandwidth sets streaming time, pJ/byte sets energy.

    Energy constants are per-technology access energies (pJ per byte moved,
    including I/O and activation amortization) from vendor/ISSCC figures:
    HBM2 ~4 pJ/bit, DDR4 ~15 pJ/bit, LPDDR3 ~8 pJ/bit.
    """

    name: str
    bandwidth_gbps: float  # GB/s
    energy_pj_per_byte: float
    burst_bytes: int = 64

    def transfer_seconds(self, n_bytes: float) -> float:
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        return n_bytes / (self.bandwidth_gbps * 1e9)

    def transfer_energy_pj(self, n_bytes: float) -> float:
        return n_bytes * self.energy_pj_per_byte


HBM2 = DRAMSpec(name="HBM2", bandwidth_gbps=256.0, energy_pj_per_byte=44.0)
DDR4_2133 = DRAMSpec(name="DDR4-2133", bandwidth_gbps=17.0, energy_pj_per_byte=120.0)
LPDDR3_1600 = DRAMSpec(name="LPDDR3-1600", bandwidth_gbps=12.8, energy_pj_per_byte=64.0)


@dataclass(frozen=True)
class SRAMBudget:
    """On-chip buffer allocation in KB (sums to Table 3's SRAM totals)."""

    input_kb: float
    weight_kb: float
    output_kb: float
    sorter_kb: float
    merger_kb: float
    map_fifo_kb: float
    misc_kb: float = 0.0

    @property
    def total_kb(self) -> float:
        return (
            self.input_kb
            + self.weight_kb
            + self.output_kb
            + self.sorter_kb
            + self.merger_kb
            + self.map_fifo_kb
            + self.misc_kb
        )

    @property
    def total_bytes(self) -> int:
        return int(self.total_kb * 1024)


@dataclass(frozen=True)
class PointAccConfig:
    """One PointAcc instance.

    ``pe_rows`` parallelizes input channels and ``pe_cols`` output channels
    (Section 4.3); ``merger_width`` is the bitonic merger's N (Section 4.1.3)
    and ``mpu_lanes`` the distance-computation parallelism of the CD stage.
    """

    name: str
    pe_rows: int
    pe_cols: int
    frequency_hz: float
    sram: SRAMBudget
    dram: DRAMSpec
    merger_width: int = 64
    mpu_lanes: int = 16
    vector_lanes: int = 64  # pooling / elementwise throughput (elems/cycle)
    bytes_per_element: int = 2  # fp16 features
    technology_nm: int = 40

    @property
    def n_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def peak_ops(self) -> float:
        """Peak OPS (2 ops per MAC per cycle) — Table 3's bottom row."""
        return 2.0 * self.n_pes * self.frequency_hz

    @property
    def peak_macs_per_s(self) -> float:
        return float(self.n_pes) * self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz


# Full-size PointAcc: 64x64 PEs, 776 KB SRAM, HBM2 (Table 3).
POINTACC_FULL = PointAccConfig(
    name="PointAcc",
    pe_rows=64,
    pe_cols=64,
    frequency_hz=1e9,
    sram=SRAMBudget(
        input_kb=256.0,
        weight_kb=128.0,
        output_kb=256.0,
        sorter_kb=64.0,
        merger_kb=16.0,
        map_fifo_kb=32.0,
        misc_kb=24.0,
    ),
    dram=HBM2,
    merger_width=64,
    mpu_lanes=16,
    vector_lanes=64,
)

# PointAcc.Edge: 16x16 PEs, 274 KB SRAM, DDR4 (Table 3).
POINTACC_EDGE = PointAccConfig(
    name="PointAcc.Edge",
    pe_rows=16,
    pe_cols=16,
    frequency_hz=1e9,
    sram=SRAMBudget(
        input_kb=96.0,
        weight_kb=32.0,
        output_kb=96.0,
        sorter_kb=32.0,
        merger_kb=8.0,
        map_fifo_kb=8.0,
        misc_kb=2.0,
    ),
    dram=DDR4_2133,
    merger_width=32,
    mpu_lanes=8,
    vector_lanes=16,
)
