"""Matrix Unit: weight-stationary systolic array (paper Section 4.3).

The array parallelizes input channels along PE rows and output channels
along PE columns, so one output point's features are accessed per cycle and
no on-chip scatter crossbar is needed.  The inner loops are weight
stationary (weights parked in PEs while all points stream through); the
outer loops are output stationary (partial sums stay in the output buffers
across kernel offsets and input-channel tiles).

:func:`systolic_matmul` is a cycle-stepped functional simulation of the
array on small matrices (tested against numpy); :class:`MatrixUnit` is the
closed-form cost model used on full traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...nn.trace import LayerKind, LayerSpec

__all__ = ["MXUStats", "MatrixUnit", "systolic_matmul"]


def systolic_matmul(
    x: np.ndarray, w: np.ndarray, rows: int, cols: int
) -> tuple[np.ndarray, int]:
    """Cycle-stepped weight-stationary systolic array simulation.

    Computes ``x @ w`` for ``x: (n, c_in)``, ``w: (c_in, c_out)`` with
    ``c_in <= rows`` and ``c_out <= cols`` (one weight tile).  Values of
    ``x`` enter skewed from the left, partial sums accumulate downward, one
    result row drains per cycle after the pipeline fills.  Returns the
    product and the exact cycle count ``n + rows + cols - 1``.
    """
    n, c_in = x.shape
    c_in_w, c_out = w.shape
    if c_in != c_in_w:
        raise ValueError(f"shape mismatch: {x.shape} @ {w.shape}")
    if c_in > rows or c_out > cols:
        raise ValueError(
            f"tile ({c_in}x{c_out}) exceeds array ({rows}x{cols})"
        )
    # PE state: stationary weight and the h-register pipeline.
    weights = np.zeros((rows, cols))
    weights[:c_in, :c_out] = w
    out = np.zeros((n, cols))
    # Skewed schedule: x[t - r] enters row r at cycle t; psum for point p
    # exits column c at cycle p + r_max + c.  Simulate literally.
    total_cycles = n + rows + cols - 1
    # acc[r][c] holds the moving partial sum lattice: implement by tracking,
    # for each diagonal wavefront, the accumulated dot products.
    psum = np.zeros((rows + 1, cols, total_cycles + rows + cols))
    xin = np.zeros((rows, total_cycles + rows + cols))
    for r in range(rows):
        for t in range(n):
            if r < c_in:
                xin[r, t + r] = x[t, r]
    for t in range(total_cycles + rows + cols - 1):
        for r in range(rows - 1, -1, -1):
            for c in range(cols):
                # At cycle t, PE(r,c) sees x input delayed by c hops east.
                tt = t - c
                if 0 <= tt:
                    psum[r + 1, c, t + 1] = (
                        psum[r, c, t] + weights[r, c] * xin[r, tt]
                    )
    # Column c's result for point p exits the bottom at cycle p + rows + c.
    for p in range(n):
        for c in range(c_out):
            out[p, c] = psum[rows, c, p + rows + c]
    return out[:, :c_out], total_cycles


@dataclass
class MXUStats:
    """Cost of one matmul op on the array."""

    cycles: int = 0
    macs: int = 0
    input_sram_bytes: float = 0.0
    weight_sram_bytes: float = 0.0
    output_sram_bytes: float = 0.0

    def add(self, other: "MXUStats") -> None:
        self.cycles += other.cycles
        self.macs += other.macs
        self.input_sram_bytes += other.input_sram_bytes
        self.weight_sram_bytes += other.weight_sram_bytes
        self.output_sram_bytes += other.output_sram_bytes


class MatrixUnit:
    """Closed-form cost model of the systolic array on trace specs."""

    def __init__(self, pe_rows: int, pe_cols: int, elem_bytes: int = 2) -> None:
        if pe_rows < 1 or pe_cols < 1:
            raise ValueError("array dimensions must be positive")
        self.pe_rows = pe_rows
        self.pe_cols = pe_cols
        self.elem_bytes = elem_bytes

    def _fill_drain(self) -> int:
        return self.pe_rows + self.pe_cols - 1

    def tile_counts(self, c_in: int, c_out: int) -> tuple[int, int]:
        return -(-c_in // self.pe_rows), -(-c_out // self.pe_cols)

    def dense_mm(self, rows: int, c_in: int, c_out: int) -> MXUStats:
        """FC / pointwise conv: rows stream through each weight tile once."""
        ic_tiles, oc_tiles = self.tile_counts(c_in, c_out)
        n_tiles = ic_tiles * oc_tiles
        # Weight load overlaps the previous tile's drain (double-buffered
        # weight registers); per-tile cost is stream + fill/drain.
        cycles = n_tiles * (rows + self._fill_drain())
        eb = self.elem_bytes
        return MXUStats(
            cycles=cycles,
            macs=rows * c_in * c_out,
            input_sram_bytes=float(rows * c_in * oc_tiles * eb),
            weight_sram_bytes=float(c_in * c_out * eb),
            output_sram_bytes=float(rows * c_out * ic_tiles * 2 * eb),
        )

    def sparse_conv(self, spec: LayerSpec) -> MXUStats:
        """Map-driven conv: each weight offset streams its own map rows.

        Under the fetch-on-demand flow the array computes matrix-vector
        products per map entry — on PointAcc this runs at full array
        utilization because rows stream back-to-back (Section 5.2.3), so
        the cost is the same streaming form as dense_mm with ``n_maps``
        rows, plus a fill/drain per (offset, tile) weight swap.
        """
        if spec.kind is not LayerKind.SPARSE_CONV:
            raise ValueError(f"expected SPARSE_CONV spec, got {spec.kind}")
        ic_tiles, oc_tiles = self.tile_counts(spec.c_in, spec.c_out)
        n_tiles = ic_tiles * oc_tiles
        cycles = n_tiles * (
            spec.n_maps + spec.kernel_volume * self._fill_drain()
        )
        eb = self.elem_bytes
        return MXUStats(
            cycles=cycles,
            macs=spec.n_maps * spec.c_in * spec.c_out,
            input_sram_bytes=float(spec.n_maps * spec.c_in * oc_tiles * eb),
            weight_sram_bytes=float(
                spec.kernel_volume * spec.c_in * spec.c_out * eb
            ),
            output_sram_bytes=float(spec.n_maps * spec.c_out * ic_tiles * 2 * eb),
        )

    def spec_cost(self, spec: LayerSpec) -> MXUStats:
        if spec.kind is LayerKind.DENSE_MM:
            return self.dense_mm(spec.rows, spec.c_in, spec.c_out)
        if spec.kind is LayerKind.SPARSE_CONV:
            return self.sparse_conv(spec)
        raise ValueError(f"MXU does not execute {spec.kind}")
