"""Matrix Unit (paper Section 4.3): systolic-array matmul."""

from .systolic import MatrixUnit, MXUStats, systolic_matmul

__all__ = ["MatrixUnit", "MXUStats", "systolic_matmul"]
