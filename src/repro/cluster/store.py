"""The cluster's shared L2 map store, with a disk-persistence spill.

Every shard keeps a private L1 :class:`~repro.engine.map_cache.MapCache`;
behind all of them sits one :class:`SharedMapStore` — the same bounded
content-addressed LRU, but shared across shards (a mapping table computed by
shard 0 is a hit for shard 3) and optionally backed by a cache directory on
disk so repeated CLI invocations warm-start.

Disk layout is one file per entry, named by the hex of the existing BLAKE2b
content digest (``<digest>.map``), holding a pickled mapping value (ndarray,
MapTable, or tuple of them).  Lookups that miss in memory probe the
directory lazily, so a freshly constructed store serves persisted entries on
its very first request; stores created with ``write_through=True`` (the
default) spill each insert as it happens, making an explicit :meth:`save`
unnecessary in the common path.  Memory eviction never deletes spilled
files — disk *is* the capacity overflow tier.

Corrupt or unreadable spill files are treated as misses (counted in
``disk_errors``) and deleted on sight, never surfaced as failures: the
store is a cache, and the contract everywhere in this repo is that caching
may change wall-clock only, never a result.  Deleting the bad file lets
the recompute that the miss triggers rewrite the slot cleanly.

Disk growth is bounded when ``max_disk_bytes`` is set: after each spill the
directory is brought back under budget by deleting least-recently-used
entry files (disk hits refresh a file's mtime, so recency survives across
processes).  An unbounded store (the default) keeps the original
disk-is-the-overflow-tier behaviour.

Several processes may share one cache directory (that is the worker-mode
cluster's cross-process L2).  Writes stay atomic (``os.replace`` of a
pid-suffixed temp file), and every path that touches a spill file
tolerates the file vanishing underneath it — another worker's budget
enforcement may unlink any entry at any time.  A vanished file is a plain
miss (or a skipped eviction), never an error and never an exception.
Temp files orphaned by a process killed mid-write are swept on store
construction and during budget rescans (dead owner pid, or older than
``_TMP_MAX_AGE_S``).
"""

from __future__ import annotations

import os
import pathlib
import pickle
import time

from ..engine.map_cache import MapCache, _copy_value
from ..obs.ledger import current_ledger as _current_ledger

__all__ = ["SharedMapStore"]

_SUFFIX = ".map"
_TMP_MARKER = _SUFFIX + ".tmp"
#: Age beyond which an orphaned ``.map.tmp<pid>`` file is swept even when
#: its owner pid appears alive (pid reuse protection): no healthy write
#: holds a temp file for an hour.
_TMP_MAX_AGE_S = 3600.0


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown errors count as alive (sweeping
    a live writer's temp file would corrupt its in-flight spill)."""
    if pid < 1:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours to signal
    return True


class SharedMapStore(MapCache):
    """Shared, disk-spillable second cache tier (``MapCache`` protocol).

    Parameters
    ----------
    max_entries / max_bytes:
        In-memory bounds, inherited from :class:`MapCache`; defaults are
        larger because one store backs every shard.
    cache_dir:
        Directory for the persistence spill, or ``None`` for a purely
        in-memory L2.  Created on first write.
    write_through:
        Spill every insert immediately (default).  With ``False``, disk is
        only written by an explicit :meth:`save`.
    max_disk_bytes:
        Byte budget for the spill directory, or ``None`` (default) for
        unbounded growth.  Enforced after every write: least-recently-used
        spill files (oldest mtime, name-tiebroken) are deleted until the
        directory's ``*.map`` payload fits the budget — strictly, so an
        entry larger than the whole budget is itself dropped from disk
        (it stays served from memory).  Evictions count in
        ``disk_evictions``; an evicted key simply misses on disk later and
        recomputes, never fails.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = 1024 * 1024 * 1024,
        cache_dir: str | os.PathLike | None = None,
        write_through: bool = True,
        max_disk_bytes: int | None = None,
    ) -> None:
        super().__init__(max_entries=max_entries, max_bytes=max_bytes)
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None else None
        self.write_through = write_through
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError(
                f"max_disk_bytes must be >= 1 or None, got {max_disk_bytes}"
            )
        self.max_disk_bytes = max_disk_bytes
        # Running estimate of the spill payload; None until the first
        # ground-truth scan.  Kept so budgeted stores do not re-scan the
        # directory on every write — see _enforce_disk_budget.
        self._disk_bytes_estimate: int | None = None
        # Disk-tier counters live in the stats object's `extra` slot so they
        # appear in every snapshot, including nested tier snapshots taken by
        # TieredLookup.
        self.stats().extra.update(
            {"disk_hits": 0, "disk_errors": 0, "disk_evictions": 0,
             "persistent": self.cache_dir is not None}
        )
        if self.cache_dir is not None:
            # A process killed between open() and os.replace() leaves a
            # `.map.tmp<pid>` orphan that the *.map-filtered budget scan
            # never sees; sweep debris from dead writers up front.
            self._sweep_stale_tmp(self.cache_dir)

    @property
    def disk_hits(self) -> int:
        return self.stats().extra["disk_hits"]

    @property
    def disk_errors(self) -> int:
        return self.stats().extra["disk_errors"]

    # ------------------------------------------------------------------
    # Disk spill
    # ------------------------------------------------------------------

    def _path(self, key: bytes, cache_dir: pathlib.Path | None = None) -> pathlib.Path:
        base = cache_dir if cache_dir is not None else self.cache_dir
        return base / (key.hex() + _SUFFIX)

    def _sweep_stale_tmp(self, cache_dir: pathlib.Path) -> int:
        """Unlink ``<digest>.map.tmp<pid>`` orphans from dead writers.

        A process killed between ``open`` and ``os.replace`` leaves its
        temp file behind forever: invisible to the ``*.map``-filtered
        budget scan, never reused (temp names are pid-suffixed), growing
        the directory unboundedly.  A temp file is debris iff its owner
        pid is gone — or it is old enough (:data:`_TMP_MAX_AGE_S`) that
        the pid must have been recycled.  Live writers (including this
        process) are never touched.  Returns the number swept.
        """
        try:
            with os.scandir(cache_dir) as it:
                candidates = [
                    dirent.name for dirent in it if _TMP_MARKER in dirent.name
                ]
        except OSError:
            return 0
        swept = 0
        now = time.time()
        for name in candidates:
            pid_text = name.rsplit(_TMP_MARKER, 1)[-1]
            try:
                pid = int(pid_text)
            except ValueError:
                continue  # not one of our temp files
            if pid == os.getpid():
                continue
            if _pid_alive(pid):
                try:
                    age = now - (cache_dir / name).stat().st_mtime
                except OSError:
                    continue  # vanished (owner finished or another sweep won)
                if age < _TMP_MAX_AGE_S:
                    continue
            try:
                os.unlink(cache_dir / name)
            except OSError:
                continue
            swept += 1
        return swept

    def _write_entry(self, key: bytes, value, cache_dir: pathlib.Path) -> None:
        cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key, cache_dir)
        replaced = 0
        if self.max_disk_bytes is not None:
            # Overwrites reuse the file via os.replace: without remembering
            # the prior size, the running estimate would add the full size
            # on every put of the same key and drift upward forever.
            try:
                replaced = path.stat().st_size
            except OSError:
                replaced = 0
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: a reader never sees a partial file
        self._enforce_disk_budget(cache_dir, path, replaced=replaced)

    def _enforce_disk_budget(self, cache_dir: pathlib.Path,
                             wrote: pathlib.Path, replaced: int = 0) -> None:
        """Delete LRU spill files until the directory fits the budget.

        Recency is file mtime (writes stamp it, disk hits refresh it), so
        the order is meaningful across store instances and processes
        sharing one directory.  Ties break on name for determinism.

        The directory is only re-scanned when the running byte estimate
        crosses the budget (or does not exist yet): the estimate adds each
        write's *net* growth (new size minus the size of the file the
        write replaced) and never shrinks on its own — other processes'
        writes are invisible until a rescan, so the estimate trades
        exactness for an O(1) common write, resynchronizing on every
        rescan.  Rescans also sweep orphaned temp files (see
        :meth:`_sweep_stale_tmp`) so mid-write-kill debris cannot
        accumulate outside the budget's sight.
        """
        if self.max_disk_bytes is None:
            return
        if self._disk_bytes_estimate is not None:
            try:
                self._disk_bytes_estimate += wrote.stat().st_size - replaced
            except OSError:
                self._disk_bytes_estimate = None  # force a rescan
            if (
                self._disk_bytes_estimate is not None
                and self._disk_bytes_estimate <= self.max_disk_bytes
            ):
                return
        self._sweep_stale_tmp(cache_dir)
        entries = []
        try:
            with os.scandir(cache_dir) as it:
                for dirent in it:
                    if not dirent.name.endswith(_SUFFIX):
                        continue
                    try:
                        st = dirent.stat()
                    except OSError:
                        continue
                    entries.append((st.st_mtime, dirent.name, st.st_size))
        except OSError:
            return
        total = sum(size for _, _, size in entries)
        self._disk_bytes_estimate = total
        if total <= self.max_disk_bytes:
            return
        for _, name, size in sorted(entries):
            try:
                os.unlink(cache_dir / name)
            except OSError:
                continue
            self.stats().extra["disk_evictions"] += 1
            ledger = _current_ledger()
            if ledger is not None:
                ledger.eviction("disk", name.rsplit(".", 1)[0], size)
            total -= size
            self._disk_bytes_estimate = total
            if total <= self.max_disk_bytes:
                return

    def _read_entry(self, key: bytes):
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            # Never spilled — or spilled and since evicted by another
            # process sharing this directory.  A plain miss either way
            # (opening directly instead of pre-checking is_file() also
            # closes the check-then-open race against a concurrent
            # eviction).
            return None
        except Exception:
            # Corrupt/truncated spill (killed process, disk-full partial
            # write): count it, *delete it* so the slot can be rewritten by
            # the recompute this miss triggers, and carry on.  A cache file
            # must never be able to take the store down.
            self.stats().extra["disk_errors"] += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # ------------------------------------------------------------------
    # MapCache protocol, extended with the disk tier
    # ------------------------------------------------------------------

    def get(self, key: bytes, op: str = "?", copy: bool = True):
        stats = self.stats()
        eviction_misses_before = stats.eviction_misses
        value = super().get(key, op, copy=copy)
        if value is not None or self.cache_dir is None:
            return value
        value = self._read_entry(key)
        if value is None:
            return None
        # Disk hit: promote into memory (no re-spill) and repair the
        # counters — super().get already recorded a miss (and, for a
        # memory-evicted key, an eviction miss) for this lookup.  Refresh
        # the file's mtime so the disk-budget LRU sees the reuse.
        if self.max_disk_bytes is not None:
            try:
                os.utime(self._path(key))
            except OSError:
                # Another process's budget enforcement unlinked the file
                # between our read and this refresh.  We already hold the
                # value, so the lookup stays a hit; the entry simply lives
                # on only in our memory tier from here.
                pass
        stats.extra["disk_hits"] += 1
        stats.misses -= 1
        stats.by_op[op]["misses"] -= 1
        stats.eviction_misses = eviction_misses_before
        stats._count(op, hit=True)
        # The unpickled object is exclusively ours: store it by reference
        # and only copy toward the caller when asked to.
        super().put(key, value, op, copy=False)
        return _copy_value(value) if copy else value

    def put(self, key: bytes, value, op: str = "?", copy: bool = True) -> None:
        super().put(key, value, op, copy=copy)
        if self.cache_dir is not None and self.write_through:
            self._write_entry(key, value, self.cache_dir)

    # ------------------------------------------------------------------
    # Whole-store persistence
    # ------------------------------------------------------------------

    def save(self, cache_dir: str | os.PathLike | None = None) -> int:
        """Spill every in-memory entry; returns the number written."""
        base = pathlib.Path(cache_dir) if cache_dir is not None else self.cache_dir
        if base is None:
            raise ValueError("no cache_dir configured and none given to save()")
        written = 0
        for key, value in self._entries.items():
            self._write_entry(key, value, base)
            written += 1
        return written

    def load(self, cache_dir: str | os.PathLike | None = None) -> int:
        """Bulk-load every spilled entry into memory; returns the count.

        Lazy per-key probing (see :meth:`get`) makes this optional for
        correctness — it exists for benchmarks that want a fully warm
        store up front.  Unreadable files are skipped (``disk_errors``).
        """
        base = pathlib.Path(cache_dir) if cache_dir is not None else self.cache_dir
        if base is None:
            raise ValueError("no cache_dir configured and none given to load()")
        loaded = 0
        if not base.is_dir():
            return loaded
        for path in sorted(base.glob(f"*{_SUFFIX}")):
            try:
                key = bytes.fromhex(path.stem)
            except ValueError:
                # Not one of our spill files: count it, leave it alone.
                self.stats().extra["disk_errors"] += 1
                continue
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except Exception:
                self.stats().extra["disk_errors"] += 1
                try:
                    path.unlink()  # same contract as the lazy probe
                except OSError:
                    pass
                continue
            MapCache.put(self, key, value)  # no re-spill of what disk already has
            loaded += 1
        return loaded
