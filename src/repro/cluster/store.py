"""The cluster's shared L2 map store, with a disk-persistence spill.

Every shard keeps a private L1 :class:`~repro.engine.map_cache.MapCache`;
behind all of them sits one :class:`SharedMapStore` — the same bounded
content-addressed LRU, but shared across shards (a mapping table computed by
shard 0 is a hit for shard 3) and optionally backed by a cache directory on
disk so repeated CLI invocations warm-start.

Disk layout is one file per entry, named by the hex of the existing BLAKE2b
content digest (``<digest>.map``), holding a pickled mapping value (ndarray,
MapTable, or tuple of them).  Lookups that miss in memory probe the
directory lazily, so a freshly constructed store serves persisted entries on
its very first request; stores created with ``write_through=True`` (the
default) spill each insert as it happens, making an explicit :meth:`save`
unnecessary in the common path.  Memory eviction never deletes spilled
files — disk *is* the capacity overflow tier.

Corrupt or unreadable spill files are treated as misses (counted in
``disk_errors``) and deleted on sight, never surfaced as failures: the
store is a cache, and the contract everywhere in this repo is that caching
may change wall-clock only, never a result.  Deleting the bad file lets
the recompute that the miss triggers rewrite the slot cleanly.

Disk growth is bounded when ``max_disk_bytes`` is set: after each spill the
directory is brought back under budget by deleting least-recently-used
entry files (disk hits refresh a file's mtime, so recency survives across
processes).  An unbounded store (the default) keeps the original
disk-is-the-overflow-tier behaviour.
"""

from __future__ import annotations

import os
import pathlib
import pickle

from ..engine.map_cache import MapCache, _copy_value

__all__ = ["SharedMapStore"]

_SUFFIX = ".map"


class SharedMapStore(MapCache):
    """Shared, disk-spillable second cache tier (``MapCache`` protocol).

    Parameters
    ----------
    max_entries / max_bytes:
        In-memory bounds, inherited from :class:`MapCache`; defaults are
        larger because one store backs every shard.
    cache_dir:
        Directory for the persistence spill, or ``None`` for a purely
        in-memory L2.  Created on first write.
    write_through:
        Spill every insert immediately (default).  With ``False``, disk is
        only written by an explicit :meth:`save`.
    max_disk_bytes:
        Byte budget for the spill directory, or ``None`` (default) for
        unbounded growth.  Enforced after every write: least-recently-used
        spill files (oldest mtime, name-tiebroken) are deleted until the
        directory's ``*.map`` payload fits the budget — strictly, so an
        entry larger than the whole budget is itself dropped from disk
        (it stays served from memory).  Evictions count in
        ``disk_evictions``; an evicted key simply misses on disk later and
        recomputes, never fails.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = 1024 * 1024 * 1024,
        cache_dir: str | os.PathLike | None = None,
        write_through: bool = True,
        max_disk_bytes: int | None = None,
    ) -> None:
        super().__init__(max_entries=max_entries, max_bytes=max_bytes)
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None else None
        self.write_through = write_through
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError(
                f"max_disk_bytes must be >= 1 or None, got {max_disk_bytes}"
            )
        self.max_disk_bytes = max_disk_bytes
        # Running estimate of the spill payload; None until the first
        # ground-truth scan.  Kept so budgeted stores do not re-scan the
        # directory on every write — see _enforce_disk_budget.
        self._disk_bytes_estimate: int | None = None
        # Disk-tier counters live in the stats object's `extra` slot so they
        # appear in every snapshot, including nested tier snapshots taken by
        # TieredLookup.
        self.stats().extra.update(
            {"disk_hits": 0, "disk_errors": 0, "disk_evictions": 0,
             "persistent": self.cache_dir is not None}
        )

    @property
    def disk_hits(self) -> int:
        return self.stats().extra["disk_hits"]

    @property
    def disk_errors(self) -> int:
        return self.stats().extra["disk_errors"]

    # ------------------------------------------------------------------
    # Disk spill
    # ------------------------------------------------------------------

    def _path(self, key: bytes, cache_dir: pathlib.Path | None = None) -> pathlib.Path:
        base = cache_dir if cache_dir is not None else self.cache_dir
        return base / (key.hex() + _SUFFIX)

    def _write_entry(self, key: bytes, value, cache_dir: pathlib.Path) -> None:
        cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key, cache_dir)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: a reader never sees a partial file
        self._enforce_disk_budget(cache_dir, path)

    def _enforce_disk_budget(self, cache_dir: pathlib.Path,
                             wrote: pathlib.Path) -> None:
        """Delete LRU spill files until the directory fits the budget.

        Recency is file mtime (writes stamp it, disk hits refresh it), so
        the order is meaningful across store instances and processes
        sharing one directory.  Ties break on name for determinism.

        The directory is only re-scanned when the running byte estimate
        crosses the budget (or does not exist yet): the estimate grows on
        every write and never shrinks on its own, so it can only err
        *upward* — toward an early rescan, never toward missing an
        overflow — which keeps the common write O(1) instead of
        O(spilled files), while staying correct when several processes
        share one directory.
        """
        if self.max_disk_bytes is None:
            return
        if self._disk_bytes_estimate is not None:
            try:
                self._disk_bytes_estimate += wrote.stat().st_size
            except OSError:
                self._disk_bytes_estimate = None  # force a rescan
            if (
                self._disk_bytes_estimate is not None
                and self._disk_bytes_estimate <= self.max_disk_bytes
            ):
                return
        entries = []
        try:
            with os.scandir(cache_dir) as it:
                for dirent in it:
                    if not dirent.name.endswith(_SUFFIX):
                        continue
                    try:
                        st = dirent.stat()
                    except OSError:
                        continue
                    entries.append((st.st_mtime, dirent.name, st.st_size))
        except OSError:
            return
        total = sum(size for _, _, size in entries)
        self._disk_bytes_estimate = total
        if total <= self.max_disk_bytes:
            return
        for _, name, size in sorted(entries):
            try:
                os.unlink(cache_dir / name)
            except OSError:
                continue
            self.stats().extra["disk_evictions"] += 1
            total -= size
            self._disk_bytes_estimate = total
            if total <= self.max_disk_bytes:
                return

    def _read_entry(self, key: bytes):
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            # Corrupt/truncated spill (killed process, disk-full partial
            # write): count it, *delete it* so the slot can be rewritten by
            # the recompute this miss triggers, and carry on.  A cache file
            # must never be able to take the store down.
            self.stats().extra["disk_errors"] += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # ------------------------------------------------------------------
    # MapCache protocol, extended with the disk tier
    # ------------------------------------------------------------------

    def get(self, key: bytes, op: str = "?", copy: bool = True):
        stats = self.stats()
        eviction_misses_before = stats.eviction_misses
        value = super().get(key, op, copy=copy)
        if value is not None or self.cache_dir is None:
            return value
        value = self._read_entry(key)
        if value is None:
            return None
        # Disk hit: promote into memory (no re-spill) and repair the
        # counters — super().get already recorded a miss (and, for a
        # memory-evicted key, an eviction miss) for this lookup.  Refresh
        # the file's mtime so the disk-budget LRU sees the reuse.
        if self.max_disk_bytes is not None:
            try:
                os.utime(self._path(key))
            except OSError:
                pass
        stats.extra["disk_hits"] += 1
        stats.misses -= 1
        stats.by_op[op]["misses"] -= 1
        stats.eviction_misses = eviction_misses_before
        stats._count(op, hit=True)
        # The unpickled object is exclusively ours: store it by reference
        # and only copy toward the caller when asked to.
        super().put(key, value, op, copy=False)
        return _copy_value(value) if copy else value

    def put(self, key: bytes, value, op: str = "?", copy: bool = True) -> None:
        super().put(key, value, op, copy=copy)
        if self.cache_dir is not None and self.write_through:
            self._write_entry(key, value, self.cache_dir)

    # ------------------------------------------------------------------
    # Whole-store persistence
    # ------------------------------------------------------------------

    def save(self, cache_dir: str | os.PathLike | None = None) -> int:
        """Spill every in-memory entry; returns the number written."""
        base = pathlib.Path(cache_dir) if cache_dir is not None else self.cache_dir
        if base is None:
            raise ValueError("no cache_dir configured and none given to save()")
        written = 0
        for key, value in self._entries.items():
            self._write_entry(key, value, base)
            written += 1
        return written

    def load(self, cache_dir: str | os.PathLike | None = None) -> int:
        """Bulk-load every spilled entry into memory; returns the count.

        Lazy per-key probing (see :meth:`get`) makes this optional for
        correctness — it exists for benchmarks that want a fully warm
        store up front.  Unreadable files are skipped (``disk_errors``).
        """
        base = pathlib.Path(cache_dir) if cache_dir is not None else self.cache_dir
        if base is None:
            raise ValueError("no cache_dir configured and none given to load()")
        loaded = 0
        if not base.is_dir():
            return loaded
        for path in sorted(base.glob(f"*{_SUFFIX}")):
            try:
                key = bytes.fromhex(path.stem)
            except ValueError:
                # Not one of our spill files: count it, leave it alone.
                self.stats().extra["disk_errors"] += 1
                continue
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except Exception:
                self.stats().extra["disk_errors"] += 1
                try:
                    path.unlink()  # same contract as the lazy probe
                except OSError:
                    pass
                continue
            MapCache.put(self, key, value)  # no re-spill of what disk already has
            loaded += 1
        return loaded
