"""Shard routing: which engine instance serves a request.

FractalCloud's partition-then-process argument applies to serving too:
PointAcc-style mapping work is dominated by per-cloud geometry, so the win
of a multi-engine fleet comes from *where* requests land, not from raw
fan-out.  Two modes:

* ``affinity`` — a stable BLAKE2b hash of the workload key picks the shard,
  so the same ``(benchmark, scale, seed)`` always lands on the same engine.
  That maximizes trace-memo and L1 map-cache hits (each shard's private
  cache sees all the repeats of its workloads) at the cost of possible
  imbalance under skewed traffic.
* ``least-loaded`` — each request goes to the shard with the least
  accumulated *estimated* work (the scheduler's nominal point count), ties
  to the lowest shard index.  Balanced by construction, but repeats may
  scatter — the cluster's shared L2 store is what keeps mapping reuse alive
  in this mode.

Routing is deterministic in both modes: the affinity hash is content-based
(not Python's randomized ``hash``), and least-loaded tie-breaks are fixed,
so a replayed stream routes identically across runs.
"""

from __future__ import annotations

import hashlib

from ..engine.scheduler import estimate_points

__all__ = ["ROUTING_MODES", "ShardRouter"]

ROUTING_MODES = ("affinity", "least-loaded")


def _affinity_hash(workload_key: tuple) -> int:
    digest = hashlib.blake2b(repr(workload_key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Deterministic request-to-shard placement for :class:`EngineCluster`."""

    def __init__(self, n_shards: int, mode: str = "affinity") -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if mode not in ROUTING_MODES:
            raise ValueError(
                f"unknown routing mode {mode!r}; known: {list(ROUTING_MODES)}"
            )
        self.n_shards = n_shards
        self.mode = mode
        self.counts = [0] * n_shards  # requests routed to each shard
        self._load = [0.0] * n_shards  # accumulated estimated points

    def route(self, request) -> int:
        """Pick (and record) the shard for ``request``."""
        if self.mode == "affinity":
            shard = _affinity_hash(request.workload_key) % self.n_shards
        else:  # least-loaded: min accumulated estimate, lowest index on ties
            shard = min(range(self.n_shards), key=lambda s: (self._load[s], s))
        self.counts[shard] += 1
        self._load[shard] += estimate_points(request.benchmark, request.scale)
        return shard

    def snapshot(self) -> dict:
        return {
            "mode": self.mode,
            "n_shards": self.n_shards,
            "counts": list(self.counts),
            "estimated_load": list(self._load),
        }
