"""Process-based shard workers: true parallelism for :class:`EngineCluster`.

Until now a cluster "shard" was a routing fiction — every engine ran on one
thread, and wall-clock gains were pure cache hits.  PointAcc's speedups
come from running its mapping, memory-management, and matmul units
*concurrently*; FractalCloud scales by executing partitioned point-cloud
ops in parallel.  This module is the serving-stack analogue: with
``EngineCluster(workers=N)`` each shard's :class:`~repro.engine.SimulationEngine`
lives in a real OS process, so shards simulate concurrently on a
multi-core box.

Topology and protocol
---------------------
``N`` worker processes host ``n_shards`` engines, shard ``s`` living in
worker ``s % N`` — so every request routed to a shard always lands in the
same process and the routing determinism (and with it the trace-memo
affinity story) is preserved verbatim.  The parent talks to each worker
over one duplex pipe; everything that crosses is pickled:

* ``("run", run_id, shard, [SimRequest, ...])`` →
  ``("ok", run_id, [SimResult, ...])`` — one contiguous same-shard
  sub-batch, executed under the shard engine's own scheduling policy,
  exactly like the in-process path;
* ``("stats",)`` → per-shard :class:`~repro.engine.EngineStats` summaries
  plus the worker's L2 / tile-front snapshots, merged by the parent into
  one :class:`~repro.cluster.ClusterStats`;
* ``("close",)`` → clean shutdown.

A worker failure surfaces as ``("err", run_id, traceback)`` and raises in
the parent — a dead worker is a serving failure, not a silent wrong
answer.

Cache tiers across the process boundary
---------------------------------------
Per-shard L1 map caches stay private, as always.  The in-memory L2 cannot
be shared across processes, so each worker builds its *own*
:class:`~repro.cluster.store.SharedMapStore` — and when the cluster has a
``cache_dir``, those stores all point at the same directory: the BLAKE2b
content-keyed, atomically-written disk tier becomes the cross-process L2.
A mapping table spilled by worker 0 is a lazy-probe disk hit for worker 3,
no shared memory required.  The store's multi-writer hardening (stale-tmp
sweeps, vanish-tolerant reads, budget races) is what makes this safe; see
``tests/cluster/test_store_concurrency.py``.

None of it may change a result: worker-mode output is property-proved
bit-identical to ``workers=0`` (``tests/properties/test_prop_workers.py``)
— processes, pickling, and disk sharing are wall-clock phenomena only.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from multiprocessing.connection import wait as _wait

from ..obs.metrics import merge_snapshots as _merge_snapshots

__all__ = ["WorkerPool", "engine_spec", "merge_snapshots"]


def engine_spec(
    backends,
    policy: str,
    map_cache,
    l2,
    cache_dir,
    tile_cache,
    reuse_traces: bool,
    overlap: bool,
) -> dict:
    """The picklable recipe a worker rebuilds its shard engines from.

    ``tile_cache`` is pickled *here*, once, while still pristine: each
    worker unpickles its own private copy of the front (tile fronts hold
    only plain dicts/arrays).  ``map_cache`` may be ``"auto"``, ``None``,
    or a module-level factory callable — all picklable by reference.
    ``l2`` must be ``"auto"`` or ``None``: a pre-built in-memory store
    cannot cross a process boundary (the cluster validates this before
    building a pool).
    """
    import os

    return {
        "backends": tuple(backends),
        "policy": policy,
        "map_cache": map_cache,
        "l2": l2,
        "cache_dir": os.fspath(cache_dir) if cache_dir is not None else None,
        "tile_cache": pickle.dumps(tile_cache) if tile_cache is not None else None,
        "reuse_traces": bool(reuse_traces),
        "overlap": bool(overlap),
    }


def _worker_main(conn, worker_id: int, shard_ids, spec: dict) -> None:
    """One worker process: build the assigned shard engines, serve the pipe.

    Imports happen here (not at module import) so a ``spawn``-start child
    pays them once; under ``fork`` they are already resident.
    """
    from ..engine.engine import SimulationEngine
    from ..engine.map_cache import MapCache
    from ..obs.trace import Tracer, _set_tracer, use_tracer
    from .store import SharedMapStore

    # A fork-start child inherits the parent's module globals, including
    # any active tracer.  Recording into that ghost copy would waste time
    # and ship spans back even when the parent didn't ask for them.
    _set_tracer(None)

    l2 = None
    if spec["l2"] == "auto":
        l2 = SharedMapStore(cache_dir=spec["cache_dir"])
    tile_cache = (
        pickle.loads(spec["tile_cache"]) if spec["tile_cache"] is not None else None
    )
    map_cache = spec["map_cache"]

    def shard_l1():
        if map_cache == "auto":
            return MapCache()
        if callable(map_cache):
            return map_cache()
        return map_cache

    engines = {
        shard: SimulationEngine(
            backends=spec["backends"],
            policy=spec["policy"],
            map_cache=shard_l1(),
            l2=l2,
            tile_cache=tile_cache,
            reuse_traces=spec["reuse_traces"],
            overlap=spec["overlap"],
        )
        for shard in shard_ids
    }
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing to clean up but us
            command = message[0]
            if command == "run":
                run_id, shard, requests = message[1], message[2], message[3]
                # Element 5 (optional, protocol-compatible with pre-trace
                # parents) asks the worker to trace this run: request
                # spans become roots, so the engine attaches them to each
                # SimResult and they ride the pickle home.
                trace_on = len(message) > 4 and bool(message[4])
                try:
                    if trace_on:
                        with use_tracer(Tracer()):
                            results = engines[shard].run_batch(requests)
                    else:
                        results = engines[shard].run_batch(requests)
                    conn.send(("ok", run_id, results))
                except Exception:
                    conn.send(("err", run_id, traceback.format_exc()))
            elif command == "stats":
                payload = {
                    "shards": {
                        shard: engine.stats().summary()
                        for shard, engine in engines.items()
                    },
                    "l2": l2.stats().snapshot() if l2 is not None else {},
                    "front": (
                        tile_cache.stats().snapshot()
                        if tile_cache is not None else {}
                    ),
                    "front_inner": (
                        tile_cache.inner.stats().snapshot()
                        if tile_cache is not None
                        and hasattr(tile_cache, "inner") else {}
                    ),
                }
                conn.send(("stats", payload))
            elif command == "close":
                conn.send(("closed",))
                return
            else:  # unknown command: protocol bug, fail loudly
                conn.send(("err", None, f"unknown worker command {command!r}"))
    finally:
        conn.close()


def merge_snapshots(snapshots) -> dict:
    """Merge per-worker stats snapshots into one cluster-level view.

    Now a thin alias for :func:`repro.obs.metrics.merge_snapshots` — the
    algorithm moved into the unified telemetry layer so cluster, workers,
    and :class:`~repro.obs.MetricsRegistry` all merge with one set of
    rules (numeric leaves sum, dicts recurse, non-numerics keep-first,
    ``*rate`` leaves recomputed from their merged counters).
    """
    return _merge_snapshots(snapshots)


class WorkerPool:
    """N shard-worker processes behind pipes, owned by one cluster.

    Parameters
    ----------
    n_workers:
        Worker processes; clamped to ``n_shards`` (an engine cannot be
        split below shard granularity, so extra workers would only idle).
    n_shards:
        Total shards; shard ``s`` is hosted by worker ``s % n_workers``.
    spec:
        Engine recipe from :func:`engine_spec`.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap: the child inherits the warm interpreter and resident
        model registry) and falls back to ``spawn`` where fork does not
        exist.
    """

    def __init__(self, n_workers: int, n_shards: int, spec: dict,
                 start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self.n_workers = min(n_workers, n_shards)
        self.start_method = start_method
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for worker_id in range(self.n_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                shard_ids = [
                    shard for shard in range(n_shards)
                    if shard % self.n_workers == worker_id
                ]
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, worker_id, shard_ids, spec),
                    name=f"repro-shard-worker-{worker_id}",
                    daemon=True,  # never outlive the serving process
                )
                proc.start()
                child_conn.close()  # parent keeps only its end
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _worker_for(self, shard: int) -> int:
        return shard % self.n_workers

    def run_window(self, runs, requests, trace: bool = False):
        """Dispatch one window's same-shard runs; yield results as they
        complete.

        ``runs`` is the cluster's QoS-ordered ``[(shard, idxs), ...]``.
        All runs are sent up front — each worker drains its pipe FIFO, so
        same-shard runs execute in QoS order while different workers run
        concurrently — then ``(run_id, [SimResult, ...])`` pairs are
        yielded in completion order, which is what lets the caller score
        deadlines against real elapsed time.

        With ``trace=True`` each worker records telemetry spans for the
        run and ships them back on every ``SimResult.spans``; the caller
        re-parents them under its own dispatch spans.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        pending: dict[int, int] = {}
        for run_id, (shard, idxs) in enumerate(runs):
            worker = self._worker_for(shard)
            payload = [requests[i] for i in idxs]
            message = (("run", run_id, shard, payload, True) if trace
                       else ("run", run_id, shard, payload))
            self._send(worker, message)
            pending[run_id] = worker
        by_conn = {id(conn): i for i, conn in enumerate(self._conns)}
        while pending:
            busy = sorted({worker for worker in pending.values()})
            ready = _wait([self._conns[w] for w in busy])
            for conn in ready:
                worker = by_conn[id(conn)]
                reply = self._recv(worker)
                kind, run_id = reply[0], reply[1]
                if kind == "err":
                    raise RuntimeError(
                        f"shard worker {worker} failed:\n{reply[2]}"
                    )
                if kind != "ok" or run_id not in pending:
                    raise RuntimeError(
                        f"shard worker {worker} protocol violation: {reply[:2]}"
                    )
                del pending[run_id]
                yield run_id, reply[2]

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> list[dict]:
        """One stats payload per worker (see the protocol in the module
        docstring); callers merge with :func:`merge_snapshots`."""
        if self._closed:
            return []
        payloads = []
        for worker in range(self.n_workers):
            self._send(worker, ("stats",))
        for worker in range(self.n_workers):
            reply = self._recv(worker)
            if reply[0] != "stats":
                raise RuntimeError(
                    f"shard worker {worker} protocol violation: {reply[:1]}"
                )
            payloads.append(reply[1])
        return payloads

    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {worker} died (exitcode "
                f"{self._procs[worker].exitcode})"
            ) from exc

    def _recv(self, worker: int):
        try:
            return self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {worker} died (exitcode "
                f"{self._procs[worker].exitcode})"
            ) from exc

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down; terminate stragglers.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in zip(self._procs, self._conns):
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
