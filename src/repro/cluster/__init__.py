"""Sharded multi-engine serving with tiered map caching and deadline QoS.

The production-scale layer above :mod:`repro.engine`: an
:class:`EngineCluster` routes request streams across N engine shards
(:class:`ShardRouter` — workload-affinity hashing or least-loaded), backs
every shard's private L1 map cache with one shared, disk-persistable
:class:`SharedMapStore`, and layers deadline-aware admission plus
per-tenant fair share (:class:`QoSScheduler`) on top — all surfaced through
an aggregated :class:`ClusterStats`.  With ``workers=N`` the shards run in
real OS processes (:class:`WorkerPool`) sharing the store's disk tier as a
cross-process L2.  See ``README.md`` ("Cluster architecture") for the tier
diagram and deadline semantics.
"""

from .cluster import ClusterStats, EngineCluster
from .qos import QoSScheduler, TenantAccount
from .router import ROUTING_MODES, ShardRouter
from .store import SharedMapStore
from .workers import WorkerPool
from .workload import WorkloadError, known_benchmarks, load_requests, synthetic_stream

__all__ = [
    "ClusterStats",
    "EngineCluster",
    "QoSScheduler",
    "WorkerPool",
    "ROUTING_MODES",
    "ShardRouter",
    "SharedMapStore",
    "TenantAccount",
    "WorkloadError",
    "known_benchmarks",
    "load_requests",
    "synthetic_stream",
]
