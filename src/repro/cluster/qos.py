"""Admission and QoS: deadlines and per-tenant fair share for the cluster.

The engine's ``priority`` policy orders a batch by a single integer.  A
serving fleet needs two more signals, both carried on
:class:`~repro.engine.SimRequest`:

* ``deadline_ms`` — a wall-clock budget from admission to completion.
  Requests whose budget is already spent (``<= 0``) are *rejected at
  admission* (they could only waste shard time); admitted deadlines order
  the window earliest-deadline-first, and every deadlined request is scored
  met/missed on completion.
* ``tenant`` — the fair-share accounting bucket.  Among requests of equal
  deadline class, tenants that have consumed less modeled backend time so
  far go first, so one chatty tenant cannot starve the rest.  Modeled
  (simulated) seconds — not host wall clock — are the currency, which keeps
  the ordering deterministic for a replayed stream.

Ordering key per window: ``(deadline, tenant seconds served, -priority,
submission index)`` — the engine's priority policy extended, with the same
stable submission-index tie-break the scheduler satellite fixed.

Like every scheduling layer in this repo, QoS may change *which order* and
*whether* (admission) requests run — never what an admitted request
computes; ``tests/properties/test_prop_cluster.py`` holds the line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["QoSScheduler", "TenantAccount"]


@dataclass
class TenantAccount:
    """Accumulated per-tenant serving behaviour."""

    requests: int = 0
    rejected: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0
    modeled_seconds: float = 0.0  # simulated backend time consumed

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "rejected": self.rejected,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "modeled_seconds": self.modeled_seconds,
        }


class QoSScheduler:
    """Deadline-aware admission + tenant-fair window ordering.

    **Fairness / starvation bound.**  Every admitted request in a window
    executes — ordering can only delay a request *within* its window,
    never across windows, so no admitted request is ever starved
    outright.  Within a window, among requests of the same deadline
    class, tenants are served in ascending cumulative *modeled* seconds:
    a tenant that has consumed less backend time than every other tenant
    in its class is dispatched before **all** of their requests, however
    many they submitted.  Consequently a persistently light tenant waits
    behind heavier same-class tenants for at most the windows in which it
    has no request at all — in any window it participates in, its request
    runs first in its deadline class, and its queueing delay there is
    bounded by the earlier deadline classes of that window, not by the
    heavy tenants' volume.  Balances freeze at window entry
    (:meth:`order`), so the guarantee is deterministic for a replayed
    stream.  ``tests/cluster/test_qos.py`` holds the bound under
    sustained 10:1 load.
    """

    def __init__(self) -> None:
        self.tenants: dict[str, TenantAccount] = {}

    def account(self, tenant: str) -> TenantAccount:
        return self.tenants.setdefault(tenant, TenantAccount())

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, request) -> str | None:
        """``None`` to admit, else the rejection reason (recorded)."""
        acct = self.account(request.tenant)
        acct.requests += 1
        if request.deadline_ms is not None and request.deadline_ms <= 0:
            acct.rejected += 1
            return (
                f"rejected at admission: deadline budget "
                f"{request.deadline_ms:g} ms already spent"
            )
        return None

    # ------------------------------------------------------------------
    # Window ordering
    # ------------------------------------------------------------------

    def order(self, requests, indices) -> list[int]:
        """Dispatch order for the admitted ``indices`` into ``requests``.

        Tenant fair-share balances are frozen at window entry, so the sort
        key is total (no re-sorting mid-window) and the result is a plain
        deterministic permutation.
        """
        served = {t: acct.modeled_seconds for t, acct in self.tenants.items()}

        def key(i):
            req = requests[i]
            deadline = req.deadline_ms if req.deadline_ms is not None else math.inf
            return (deadline, served.get(req.tenant, 0.0), -req.priority, i)

        return sorted(indices, key=key)

    # ------------------------------------------------------------------
    # Completion accounting
    # ------------------------------------------------------------------

    def record(self, request, elapsed_seconds: float, modeled_seconds: float):
        """Score one completed request; returns met/missed (or ``None``)."""
        acct = self.account(request.tenant)
        acct.modeled_seconds += modeled_seconds
        if request.deadline_ms is None:
            return None
        met = elapsed_seconds * 1e3 <= request.deadline_ms
        if met:
            acct.deadline_met += 1
        else:
            acct.deadline_missed += 1
        return met

    def summary(self) -> dict:
        return {tenant: acct.summary() for tenant, acct in sorted(self.tenants.items())}
