"""Sharded multi-engine serving: route, admit, execute, aggregate.

:class:`EngineCluster` turns the single :class:`~repro.engine.SimulationEngine`
into a servable fleet:

1. admission — the QoS layer rejects requests whose deadline budget is
   already spent (a rejected request comes back as a report-less
   :class:`~repro.engine.SimResult` with an ``errors["cluster"]`` reason);
2. ordering — admitted requests in a window are ordered
   earliest-deadline-first with per-tenant fair share and the priority /
   submission-index tie-breaks (:mod:`repro.cluster.qos`);
3. routing — each request lands on a shard (:mod:`repro.cluster.router`):
   ``affinity`` keeps equal workloads on one engine for trace-memo hits,
   ``least-loaded`` balances estimated work;
4. execution — consecutive same-shard requests are handed to that shard's
   engine as one sub-batch (the shard's own policy applies inside it);
   every shard shares one L2 :class:`~repro.cluster.store.SharedMapStore`
   behind its private L1 map cache, so mapping tables computed anywhere
   serve everywhere — and persist across CLI invocations when the store
   has a cache directory.

The correctness contract is inherited, not relaxed: for admitted requests,
cluster output is bit-identical to cold sequential ``PointAccModel`` runs
for every shard count, routing mode, and cache-tier configuration
(``tests/properties/test_prop_cluster.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.engine import SimRequest, SimResult, SimulationEngine
from ..engine.map_cache import MapCache
from .qos import QoSScheduler
from .router import ShardRouter
from .store import SharedMapStore

__all__ = ["ClusterStats", "EngineCluster"]


@dataclass
class ClusterStats:
    """Aggregate fleet behaviour: admission, deadlines, shards, cache tiers."""

    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    wall_seconds: float = 0.0
    deadline_met: int = 0
    deadline_missed: int = 0
    routing: dict = field(default_factory=dict)  # ShardRouter.snapshot()
    tenants: dict = field(default_factory=dict)  # tenant -> TenantAccount.summary()
    shards: list = field(default_factory=list)  # per-shard EngineStats.summary()
    l2: dict = field(default_factory=dict)  # SharedMapStore snapshot
    front: dict = field(default_factory=dict)  # shared tile front snapshot

    @property
    def throughput_rps(self) -> float:
        """Admitted requests served per wall-clock second."""
        return self.admitted / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "routing": dict(self.routing),
            "tenants": dict(self.tenants),
            "shards": list(self.shards),
            "l2": dict(self.l2),
            "front": dict(self.front),
        }


class EngineCluster:
    """N engine shards behind one router, QoS layer, and shared map store.

    Parameters
    ----------
    n_shards:
        Engine instances in the fleet.
    backends / policy / reuse_traces:
        Forwarded to every shard's :class:`SimulationEngine`.
    routing:
        ``"affinity"`` (hash of workload key; repeats co-locate) or
        ``"least-loaded"`` (balance estimated work).
    map_cache:
        Per-shard L1 policy: ``"auto"`` gives each shard a private
        :class:`MapCache`, ``None`` disables the L1 tier, and a callable
        is invoked once per shard to build its cache — the hook for
        sizing L1s to the workload (tile-decomposed streaming emits
        thousands of sub-entries per frame, far beyond the default
        4096-entry bound).
    l2:
        The shared tier: ``"auto"`` builds a :class:`SharedMapStore`
        (persistent iff ``cache_dir`` is given), ``None`` disables L2, or
        pass a pre-built store to share one across clusters.
    cache_dir:
        Disk-spill directory for the auto-built L2 store.  Lazy per-key
        probing means a second cluster pointed at the same directory
        warm-starts on its very first request.
    tile_cache:
        Optional content-aware front shared by every shard (see
        :class:`~repro.engine.SimulationEngine`); tile sub-results land in
        each shard's private L1 *and* the shared L2, so a tile computed on
        one shard serves every shard — and persists with ``cache_dir``.
        Fleet serving passes a :class:`~repro.fleet.WorldTileStore`-wrapped
        front here so those hits are additionally attributed per stream;
        its snapshot surfaces as ``ClusterStats.front``.
    """

    def __init__(
        self,
        n_shards: int = 2,
        backends=("pointacc",),
        policy: str = "fifo",
        routing: str = "affinity",
        map_cache: str | None = "auto",
        l2: SharedMapStore | str | None = "auto",
        cache_dir=None,
        tile_cache=None,
        reuse_traces: bool = True,
    ) -> None:
        if l2 == "auto":
            l2 = SharedMapStore(cache_dir=cache_dir)
        elif cache_dir is not None:
            raise ValueError("cache_dir requires the auto-built L2 store")
        self.router = ShardRouter(n_shards, mode=routing)
        self.l2 = l2
        self.tile_cache = tile_cache
        self.qos = QoSScheduler()
        def shard_l1():
            if map_cache == "auto":
                return MapCache()
            if callable(map_cache):
                return map_cache()
            return map_cache

        self.shards = [
            SimulationEngine(
                backends=backends,
                policy=policy,
                map_cache=shard_l1(),
                l2=l2,
                tile_cache=tile_cache,
                reuse_traces=reuse_traces,
            )
            for _ in range(n_shards)
        ]
        self._served = 0
        self._rejected = 0
        self._wall = 0.0
        self._deadline_met = 0
        self._deadline_missed = 0

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_window(self, requests: list[SimRequest]) -> list[tuple[int, SimResult]]:
        """Serve one window; returns ``(window_index, result)`` pairs in
        dispatch-completion order (rejections first — they finish at
        admission).  Deadlines are scored against elapsed wall time since
        window entry, so queueing behind earlier dispatches counts."""
        t0 = time.perf_counter()
        base = self._served
        completed: list[tuple[int, SimResult]] = []
        admitted: list[int] = []
        for i, request in enumerate(requests):
            reason = self.qos.admit(request)
            if reason is None:
                admitted.append(i)
            else:
                self._rejected += 1
                completed.append(
                    (i, SimResult(request=request, index=base + i,
                                  errors={"cluster": reason}))
                )
        # QoS dispatch order, then group maximal same-shard runs so each
        # shard engine still sees contiguous sub-batches (its own policy
        # applies within a run).
        runs: list[tuple[int, list[int]]] = []
        for i in self.qos.order(requests, admitted):
            shard = self.router.route(requests[i])
            if runs and runs[-1][0] == shard:
                runs[-1][1].append(i)
            else:
                runs.append((shard, [i]))
        for shard, idxs in runs:
            results = self.shards[shard].run_batch([requests[i] for i in idxs])
            elapsed = time.perf_counter() - t0
            for i, result in zip(idxs, results):
                result.index = base + i  # rebase engine-local -> cluster index
                result.shard = shard
                modeled = sum(r.total_seconds for r in result.reports.values())
                met = self.qos.record(requests[i], elapsed, modeled)
                result.deadline_met = met
                if met is True:
                    self._deadline_met += 1
                elif met is False:
                    self._deadline_missed += 1
                completed.append((i, result))
        self._served += len(requests)
        self._wall += time.perf_counter() - t0
        return completed

    def run_batch(self, requests) -> list[SimResult]:
        """Serve a batch; results come back in *submission* order.

        Rejected requests occupy their slot with an ``errors["cluster"]``
        entry and no reports; everything admitted carries its shard id and
        (when a deadline was set) the met/missed verdict.
        """
        requests = list(requests)
        results: list[SimResult | None] = [None] * len(requests)
        for i, result in self._run_window(requests):
            results[i] = result
        return results  # type: ignore[return-value]

    def stream(self, requests, window: int = 8):
        """Streaming iterator mirroring ``SimulationEngine.stream``.

        Admission and QoS ordering apply per window; results are yielded
        in dispatch-completion order.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        requests = iter(requests)
        while True:
            chunk = []
            for request in requests:
                chunk.append(request)
                if len(chunk) == window:
                    break
            if not chunk:
                return
            for _, result in self._run_window(chunk):
                yield result

    # ------------------------------------------------------------------
    # Observability and persistence
    # ------------------------------------------------------------------

    def stats(self) -> ClusterStats:
        """Aggregated fleet snapshot (shard stats taken at call time)."""
        return ClusterStats(
            requests=self._served,
            admitted=self._served - self._rejected,
            rejected=self._rejected,
            wall_seconds=self._wall,
            deadline_met=self._deadline_met,
            deadline_missed=self._deadline_missed,
            routing=self.router.snapshot(),
            tenants=self.qos.summary(),
            shards=[shard.stats().summary() for shard in self.shards],
            l2=self.l2.stats().snapshot() if self.l2 is not None else {},
            front=(
                self.tile_cache.stats().snapshot()
                if self.tile_cache is not None else {}
            ),
        )

    def save_cache(self, cache_dir=None) -> int:
        """Spill the shared store to disk; returns entries written.

        A no-op returning 0 when the cluster has no L2 tier.  With the
        default write-through store this only matters for stores built
        with ``write_through=False`` or an alternate ``cache_dir``.
        """
        if self.l2 is None:
            return 0
        return self.l2.save(cache_dir)
