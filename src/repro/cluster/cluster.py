"""Sharded multi-engine serving: route, admit, execute, aggregate.

:class:`EngineCluster` turns the single :class:`~repro.engine.SimulationEngine`
into a servable fleet:

1. admission — the QoS layer rejects requests whose deadline budget is
   already spent (a rejected request comes back as a report-less
   :class:`~repro.engine.SimResult` with an ``errors["cluster"]`` reason);
2. ordering — admitted requests in a window are ordered
   earliest-deadline-first with per-tenant fair share and the priority /
   submission-index tie-breaks (:mod:`repro.cluster.qos`);
3. routing — each request lands on a shard (:mod:`repro.cluster.router`):
   ``affinity`` keeps equal workloads on one engine for trace-memo hits,
   ``least-loaded`` balances estimated work;
4. execution — consecutive same-shard requests are handed to that shard's
   engine as one sub-batch (the shard's own policy applies inside it);
   every shard shares one L2 :class:`~repro.cluster.store.SharedMapStore`
   behind its private L1 map cache, so mapping tables computed anywhere
   serve everywhere — and persist across CLI invocations when the store
   has a cache directory.

With ``workers=N`` the shards stop being a routing fiction: each shard's
engine runs in a real OS process (:mod:`repro.cluster.workers`), requests
and results cross the boundary pickled, and the BLAKE2b-keyed disk tier of
:class:`~repro.cluster.store.SharedMapStore` becomes the cross-process L2.
The default ``workers=0`` keeps today's in-process execution exactly.

The correctness contract is inherited, not relaxed: for admitted requests,
cluster output is bit-identical to cold sequential ``PointAccModel`` runs
for every shard count, routing mode, cache-tier configuration *and worker
count* (``tests/properties/test_prop_cluster.py``,
``tests/properties/test_prop_workers.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.engine import SimRequest, SimResult, SimulationEngine
from ..engine.map_cache import MapCache
from ..obs.trace import Span, current_tracer, span
from .qos import QoSScheduler
from .router import ShardRouter
from .store import SharedMapStore
from .workers import WorkerPool, engine_spec, merge_snapshots

__all__ = ["ClusterStats", "EngineCluster"]


@dataclass
class ClusterStats:
    """Aggregate fleet behaviour: admission, deadlines, shards, cache tiers."""

    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    wall_seconds: float = 0.0
    deadline_met: int = 0
    deadline_missed: int = 0
    routing: dict = field(default_factory=dict)  # ShardRouter.snapshot()
    tenants: dict = field(default_factory=dict)  # tenant -> TenantAccount.summary()
    shards: list = field(default_factory=list)  # per-shard EngineStats.summary()
    l2: dict = field(default_factory=dict)  # SharedMapStore snapshot
    front: dict = field(default_factory=dict)  # shared tile front snapshot
    workers: int = 0  # worker processes (0 = in-process execution)
    front_inner: dict = field(default_factory=dict)  # inner front (worker mode)

    @property
    def throughput_rps(self) -> float:
        """Admitted requests served per wall-clock second."""
        return self.admitted / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "routing": dict(self.routing),
            "tenants": dict(self.tenants),
            "shards": list(self.shards),
            "l2": dict(self.l2),
            "front": dict(self.front),
            "workers": self.workers,
            "front_inner": dict(self.front_inner),
        }


class EngineCluster:
    """N engine shards behind one router, QoS layer, and shared map store.

    Parameters
    ----------
    n_shards:
        Engine instances in the fleet.
    backends / policy / reuse_traces:
        Forwarded to every shard's :class:`SimulationEngine`.
    routing:
        ``"affinity"`` (hash of workload key; repeats co-locate) or
        ``"least-loaded"`` (balance estimated work).
    map_cache:
        Per-shard L1 policy: ``"auto"`` gives each shard a private
        :class:`MapCache`, ``None`` disables the L1 tier, and a callable
        is invoked once per shard to build its cache — the hook for
        sizing L1s to the workload (tile-decomposed streaming emits
        thousands of sub-entries per frame, far beyond the default
        4096-entry bound).
    l2:
        The shared tier: ``"auto"`` builds a :class:`SharedMapStore`
        (persistent iff ``cache_dir`` is given), ``None`` disables L2, or
        pass a pre-built store to share one across clusters.
    cache_dir:
        Disk-spill directory for the auto-built L2 store.  Lazy per-key
        probing means a second cluster pointed at the same directory
        warm-starts on its very first request.
    tile_cache:
        Optional content-aware front shared by every shard (see
        :class:`~repro.engine.SimulationEngine`); tile sub-results land in
        each shard's private L1 *and* the shared L2, so a tile computed on
        one shard serves every shard — and persists with ``cache_dir``.
        Fleet serving passes a :class:`~repro.fleet.WorldTileStore`-wrapped
        front here so those hits are additionally attributed per stream;
        its snapshot surfaces as ``ClusterStats.front``.
    workers:
        ``0`` (default) runs every shard in-process, exactly as before.
        ``N >= 1`` starts ``min(N, n_shards)`` worker processes
        (:class:`~repro.cluster.workers.WorkerPool`), shard ``s`` living in
        worker ``s % N``, so shards execute concurrently on a multi-core
        box.  Requests and results must pickle; ``l2`` must be left
        ``"auto"`` or ``None`` (each worker builds its own store — with a
        ``cache_dir`` those stores share the disk tier, which is the
        cross-process L2); ``tile_cache`` is copied into each worker (hits
        no longer cross workers in-memory, only via the disk tier).
        Output stays bit-identical to ``workers=0``.
    overlap:
        Pipeline trace building with backend cost-model evaluation inside
        each shard engine (frame k+1's trace builds while frame k's cost
        model runs).  ``None`` (default) enables it exactly when
        ``workers > 0``; pass ``True``/``False`` to force.  Bit-identical
        either way — builds stay strictly sequential on one builder
        thread.
    """

    def __init__(
        self,
        n_shards: int = 2,
        backends=("pointacc",),
        policy: str = "fifo",
        routing: str = "affinity",
        map_cache: str | None = "auto",
        l2: SharedMapStore | str | None = "auto",
        cache_dir=None,
        tile_cache=None,
        reuse_traces: bool = True,
        workers: int = 0,
        overlap: bool | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers > 0 and not (l2 == "auto" or l2 is None):
            raise ValueError(
                "workers>0 cannot share a pre-built in-memory L2 store; "
                "leave l2='auto' (with cache_dir for a shared disk tier) "
                "or l2=None"
            )
        overlap = workers > 0 if overlap is None else bool(overlap)
        self.overlap = overlap
        if l2 == "auto":
            l2 = SharedMapStore(cache_dir=cache_dir)
        elif cache_dir is not None:
            raise ValueError("cache_dir requires the auto-built L2 store")
        self.router = ShardRouter(n_shards, mode=routing)
        self.l2 = l2
        self.tile_cache = tile_cache
        self.qos = QoSScheduler()
        def shard_l1():
            if map_cache == "auto":
                return MapCache()
            if callable(map_cache):
                return map_cache()
            return map_cache

        self._n_shards = n_shards
        self._pool: WorkerPool | None = None
        if workers > 0:
            # Shard engines live in the pool's processes; the parent keeps
            # no in-process engines (self.shards stays empty) and its own
            # L2 store object only as the save_cache()/introspection
            # surface — worker stores write through to the same cache_dir.
            self.shards = []
            spec = engine_spec(
                backends=backends,
                policy=policy,
                map_cache=map_cache,
                l2="auto" if l2 is not None else None,
                cache_dir=cache_dir,
                tile_cache=tile_cache,
                reuse_traces=reuse_traces,
                overlap=overlap,
            )
            self._pool = WorkerPool(workers, n_shards, spec)
        else:
            self.shards = [
                SimulationEngine(
                    backends=backends,
                    policy=policy,
                    map_cache=shard_l1(),
                    l2=l2,
                    tile_cache=tile_cache,
                    reuse_traces=reuse_traces,
                    overlap=overlap,
                )
                for _ in range(n_shards)
            ]
        self._served = 0
        self._rejected = 0
        self._wall = 0.0
        self._deadline_met = 0
        self._deadline_missed = 0

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def workers(self) -> int:
        """Worker processes backing the shards (0 = in-process)."""
        return self._pool.n_workers if self._pool is not None else 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_window(self, requests: list[SimRequest]) -> list[tuple[int, SimResult]]:
        """Serve one window; returns ``(window_index, result)`` pairs in
        dispatch-completion order (rejections first — they finish at
        admission).  Deadlines are scored against elapsed wall time since
        window entry, so queueing behind earlier dispatches counts."""
        t0 = time.perf_counter()
        base = self._served
        completed: list[tuple[int, SimResult]] = []
        admitted: list[int] = []
        for i, request in enumerate(requests):
            reason = self.qos.admit(request)
            if reason is None:
                admitted.append(i)
            else:
                self._rejected += 1
                completed.append(
                    (i, SimResult(request=request, index=base + i,
                                  errors={"cluster": reason}))
                )
        # QoS dispatch order, then group maximal same-shard runs so each
        # shard engine still sees contiguous sub-batches (its own policy
        # applies within a run).
        runs: list[tuple[int, list[int]]] = []
        for i in self.qos.order(requests, admitted):
            shard = self.router.route(requests[i])
            if runs and runs[-1][0] == shard:
                runs[-1][1].append(i)
            else:
                runs.append((shard, [i]))
        tracer = current_tracer()
        if self._pool is not None:
            # Worker mode: every run is dispatched up front (each worker
            # drains its pipe FIFO, so same-shard QoS order is preserved
            # while different workers execute concurrently); deadlines are
            # scored when a run's reply arrives, against real elapsed time.
            trace_on = tracer is not None
            t_send = time.perf_counter()
            for run_id, results in self._pool.run_window(
                runs, requests, trace=trace_on
            ):
                shard, idxs = runs[run_id]
                if trace_on:
                    self._attach_worker_spans(
                        tracer, results, shard, t_send,
                        time.perf_counter() - t_send,
                    )
                self._score_run(requests, idxs, results, shard, base,
                                time.perf_counter() - t0, completed)
        else:
            for shard, idxs in runs:
                with span("dispatch", shard=shard, workers=False):
                    results = self.shards[shard].run_batch(
                        [requests[i] for i in idxs]
                    )
                self._score_run(requests, idxs, results, shard, base,
                                time.perf_counter() - t0, completed)
        self._served += len(requests)
        self._wall += time.perf_counter() - t0
        return completed

    @staticmethod
    def _attach_worker_spans(tracer, results, shard: int,
                             t_send: float, elapsed: float) -> None:
        """Re-parent one worker run's pickled spans under a dispatch span.

        The dispatch span covers send-to-receipt for the run; whatever
        the worker did not account for — pickling requests, the pipe both
        ways, unpickling results, queueing behind earlier runs on the
        same worker — lands in an explicit ``ipc`` child, so
        cross-process overhead is attributed rather than vanishing into
        the gap between frame and request spans.
        """
        dispatch = Span("dispatch", {"shard": shard, "workers": True})
        dispatch.start = t_send
        dispatch.duration = elapsed
        remote_seconds = 0.0
        n_spans = 0
        for result in results:
            for node in result.spans:
                remote_seconds += node.duration
                n_spans += 1
                dispatch.children.append(node)
            result.spans = []  # now owned by the dispatch tree
        ipc = Span("ipc", {"shard": shard})
        ipc.start = t_send
        ipc.duration = max(0.0, elapsed - remote_seconds)
        ipc.count("results", float(len(results)))
        dispatch.children.append(ipc)
        tracer.attach(dispatch)

    def _score_run(self, requests, idxs, results, shard: int, base: int,
                   elapsed: float, completed: list) -> None:
        """Rebase one same-shard run's results and score its deadlines."""
        for i, result in zip(idxs, results):
            result.index = base + i  # rebase engine-local -> cluster index
            result.shard = shard
            modeled = sum(r.total_seconds for r in result.reports.values())
            met = self.qos.record(requests[i], elapsed, modeled)
            result.deadline_met = met
            if met is True:
                self._deadline_met += 1
            elif met is False:
                self._deadline_missed += 1
            completed.append((i, result))

    def run_batch(self, requests) -> list[SimResult]:
        """Serve a batch; results come back in *submission* order.

        Rejected requests occupy their slot with an ``errors["cluster"]``
        entry and no reports; everything admitted carries its shard id and
        (when a deadline was set) the met/missed verdict.
        """
        requests = list(requests)
        results: list[SimResult | None] = [None] * len(requests)
        for i, result in self._run_window(requests):
            results[i] = result
        return results  # type: ignore[return-value]

    def stream(self, requests, window: int = 8):
        """Streaming iterator mirroring ``SimulationEngine.stream``.

        Admission and QoS ordering apply per window; results are yielded
        in dispatch-completion order.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        requests = iter(requests)
        while True:
            chunk = []
            for request in requests:
                chunk.append(request)
                if len(chunk) == window:
                    break
            if not chunk:
                return
            for _, result in self._run_window(chunk):
                yield result

    # ------------------------------------------------------------------
    # Observability and persistence
    # ------------------------------------------------------------------

    def stats(self) -> ClusterStats:
        """Aggregated fleet snapshot (shard stats taken at call time).

        In worker mode the per-shard engine summaries and L2 / tile-front
        snapshots live in the worker processes; they are collected over
        the pipes and merged (counters summed, rates recomputed — see
        :func:`~repro.cluster.workers.merge_snapshots`)."""
        stats = ClusterStats(
            requests=self._served,
            admitted=self._served - self._rejected,
            rejected=self._rejected,
            wall_seconds=self._wall,
            deadline_met=self._deadline_met,
            deadline_missed=self._deadline_missed,
            routing=self.router.snapshot(),
            tenants=self.qos.summary(),
            workers=self.workers,
        )
        if self._pool is not None:
            payloads = self._pool.stats()
            by_shard: dict[int, dict] = {}
            for payload in payloads:
                by_shard.update(payload["shards"])
            stats.shards = [by_shard[s] for s in sorted(by_shard)]
            stats.l2 = merge_snapshots(p["l2"] for p in payloads)
            stats.front = merge_snapshots(p["front"] for p in payloads)
            stats.front_inner = merge_snapshots(
                p["front_inner"] for p in payloads
            )
        else:
            stats.shards = [shard.stats().summary() for shard in self.shards]
            stats.l2 = self.l2.stats().snapshot() if self.l2 is not None else {}
            stats.front = (
                self.tile_cache.stats().snapshot()
                if self.tile_cache is not None else {}
            )
        return stats

    def save_cache(self, cache_dir=None) -> int:
        """Spill the shared store to disk; returns entries written.

        A no-op returning 0 when the cluster has no L2 tier.  With the
        default write-through store this only matters for stores built
        with ``write_through=False`` or an alternate ``cache_dir``.
        """
        if self.l2 is None:
            return 0
        return self.l2.save(cache_dir)

    def close(self) -> None:
        """Shut down worker processes (no-op for ``workers=0``).

        Idempotent; the cluster must not serve after close in worker
        mode.  Prefer ``with EngineCluster(workers=N) as cluster: ...``.
        """
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "EngineCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
