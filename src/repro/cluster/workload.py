"""Workload construction: request files and synthetic streams.

The serving CLIs accept their traffic two ways:

* ``--request-file`` — JSON Lines, one request object per line.  The only
  required key is ``benchmark``; ``scale``, ``seed``, ``priority``,
  ``tag``, ``tenant`` and ``deadline_ms`` are optional and default exactly
  as :class:`~repro.engine.SimRequest` does.  Blank lines and ``#``
  comments are allowed.  Anything else — unparseable JSON, a non-object
  line, unknown keys, wrong types, an unknown benchmark — raises
  :class:`WorkloadError` naming the line, which the CLI turns into a
  nonzero exit with that message.
* synthetic — :func:`synthetic_stream` cycles benchmarks, a bounded seed
  pool (so the stream contains the repeated geometry real traffic has),
  and optional tenant/deadline rotation for exercising the QoS layer.
"""

from __future__ import annotations

import json
import os

from ..engine.engine import SimRequest
from ..nn.models.registry import BENCHMARKS, MINI_MINKUNET

__all__ = ["WorkloadError", "known_benchmarks", "load_requests", "synthetic_stream"]

_FIELDS = {
    "benchmark": str,
    "scale": (int, float),
    "seed": int,
    "priority": int,
    "tag": str,
    "tenant": str,
    "deadline_ms": (int, float, type(None)),
}


class WorkloadError(ValueError):
    """A request file (or stream spec) that cannot be turned into requests."""


def known_benchmarks() -> set[str]:
    return {*BENCHMARKS, MINI_MINKUNET.notation}


def _request_from_obj(obj, where: str) -> SimRequest:
    if not isinstance(obj, dict):
        raise WorkloadError(
            f"{where}: expected a JSON object per line, got {type(obj).__name__}"
        )
    unknown = sorted(set(obj) - set(_FIELDS))
    if unknown:
        raise WorkloadError(
            f"{where}: unknown request field(s) {unknown}; "
            f"known: {sorted(_FIELDS)}"
        )
    if "benchmark" not in obj:
        raise WorkloadError(f"{where}: missing required field 'benchmark'")
    for name, types in _FIELDS.items():
        if name not in obj:
            continue
        # bool is a subclass of int; JSON true/false in a numeric field is
        # malformed, not scale=1.0.
        bad_bool = isinstance(obj[name], bool) and types is not str
        if bad_bool or not isinstance(obj[name], types):
            wanted = "/".join(
                t.__name__ for t in (types if isinstance(types, tuple) else (types,))
            )
            raise WorkloadError(
                f"{where}: field {name!r} has type "
                f"{type(obj[name]).__name__}, expected {wanted}"
            )
    if obj["benchmark"] not in known_benchmarks():
        raise WorkloadError(
            f"{where}: unknown benchmark {obj['benchmark']!r}; "
            f"known: {sorted(known_benchmarks())}"
        )
    return SimRequest(**obj)


def load_requests(path: str | os.PathLike) -> list[SimRequest]:
    """Parse a JSON Lines request file into :class:`SimRequest`\\ s."""
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise WorkloadError(f"cannot read request file {path}: {exc}") from exc
    requests = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{path}:{lineno}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"{where}: malformed JSON ({exc.msg})") from exc
        requests.append(_request_from_obj(obj, where))
    if not requests:
        raise WorkloadError(f"request file {path} contains no requests")
    return requests


def synthetic_stream(
    benchmarks,
    n_requests: int,
    scale: float = 0.25,
    seed_pool: int = 3,
    tenant_pool: int = 1,
    deadline_ms: float | None = None,
):
    """Generate a deterministic mixed request stream.

    Benchmarks, seeds (``seed_pool`` distinct clouds — repeats feed the
    caches), priorities (0..2) and tenants (``tenantA``, ``tenantB``, …)
    all cycle; ``deadline_ms`` stamps every request with the same budget
    when given.
    """
    if seed_pool < 1:
        raise WorkloadError(f"seed_pool must be >= 1, got {seed_pool}")
    if tenant_pool < 1:
        raise WorkloadError(f"tenant_pool must be >= 1, got {tenant_pool}")
    benchmarks = list(benchmarks)
    for i in range(n_requests):
        yield SimRequest(
            benchmark=benchmarks[i % len(benchmarks)],
            scale=scale,
            seed=i % seed_pool,
            priority=i % 3,
            tag=f"req{i}",
            tenant=f"tenant{chr(ord('A') + i % tenant_pool)}",
            deadline_ms=deadline_ms,
        )
