"""Cross-stream tile sharing: world-region content keys, per-stream books.

The streaming tile front (:class:`~repro.stream.incremental.TileMapCache`)
already addresses every tile sub-result by a *content* digest of the world
region it covers — nothing about the key says which stream computed it.
That is exactly what makes fleet serving work: two vehicles driving the
same map region produce byte-identical static tiles, so the second
vehicle's kNN / ball-query / kernel-map / voxelize sub-lookups hit entries
the first vehicle paid for.  What the plain front *cannot* tell you is
that it happened — a hit is a hit.

:class:`WorldTileStore` is the attribution layer: a wrapping front
(``front=WorldTileStore(TileMapCache(...))``) that delegates every
decomposition decision to the inner tile front but interposes on the
chain handle it hands down.  Each sub-key's first writer is recorded as
its *owner stream* (the tenant from
:func:`repro.mapping.hooks.current_tenant`, stamped by the engine from
``SimRequest.tenant``); each later hit is classified:

``self``
    the owning stream hit its own tile — ordinary temporal reuse;
``cross``
    a *different* stream hit it — the fleet win this subsystem exists to
    produce (and the number ``benchmarks/test_fleet_throughput.py``
    asserts is nonzero);
``external``
    the key was never written through this store — a disk-spill
    warm-start from an earlier process, or an owner record evicted from
    the bounded ownership book.

Attribution is observability only: values flow through unchanged, so the
wrapped front keeps the bit-identity contract of the bare one
(``tests/properties/test_prop_fleet.py``).  Per op, the three hit classes
plus misses sum exactly to the inner front's hit/miss counters — the
chained-front accounting ``tests/fleet/test_world_store.py`` pins down.
"""

from __future__ import annotations

from collections import OrderedDict

from ..mapping.hooks import batch_get, batch_put, count_by_op, current_tenant

__all__ = ["WorldTileStats", "WorldTileStore"]

_TILE_SUFFIX = "/tile"


def _base_op(op: str) -> str:
    """Chain sub-lookups are labelled ``<op>/tile``; attribute to ``<op>``
    so the books line up with the inner front's per-op counters.  The
    batched planner's whole-call probes arrive as ``<op>/whole`` and keep
    that label on both sides of the accounting — the inner front counts
    them under the same op string, so the partition invariant holds."""
    if op.endswith(_TILE_SUFFIX):
        return op[: -len(_TILE_SUFFIX)]
    return op


class WorldTileStats:
    """Per-stream attribution of tile sub-lookup traffic.

    ``by_op`` maps each mapping op to
    ``{"self_hits", "cross_hits", "external_hits", "misses"}``; the
    aggregate counters sum the same events.  ``shared_keys`` counts
    distinct world-tile keys that earned at least one cross-stream hit —
    the size of the map region the fleet is actually sharing.
    """

    def __init__(self) -> None:
        self.self_hits = 0
        self.cross_hits = 0
        self.external_hits = 0
        self.misses = 0
        self.shared_keys = 0
        self.by_op: dict = {}  # op -> {self_hits, cross_hits, external_hits, misses}
        self.by_stream: dict = {}  # tenant -> {"hits": int, "misses": int}

    @property
    def hits(self) -> int:
        return self.self_hits + self.cross_hits + self.external_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def cross_hit_rate(self) -> float:
        return self.cross_hits / self.lookups if self.lookups else 0.0

    def _slot(self, op: str) -> dict:
        return self.by_op.setdefault(
            op,
            {"self_hits": 0, "cross_hits": 0, "external_hits": 0, "misses": 0},
        )

    def _count(self, op: str, kind: str) -> None:
        self._slot(op)[kind] += 1
        setattr(self, kind, getattr(self, kind) + 1)
        count_by_op(self.by_stream, current_tenant() or "?",
                    hit=kind != "misses")

    def snapshot(self) -> dict:
        return {
            "self_hits": self.self_hits,
            "cross_hits": self.cross_hits,
            "external_hits": self.external_hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "cross_hit_rate": self.cross_hit_rate,
            "shared_keys": self.shared_keys,
            "by_op": {op: dict(c) for op, c in self.by_op.items()},
            "by_stream": {t: dict(c) for t, c in self.by_stream.items()},
        }


class WorldTileStore:
    """Wrapping cache front that attributes tile hits across streams.

    Parameters
    ----------
    inner:
        The decomposing front to wrap — anything with the front protocol
        (``handles`` / ``memoize(op, arrays, params, compute, chain)`` /
        ``stats()``), in practice a
        :class:`~repro.stream.incremental.TileMapCache`.
    max_owned_keys:
        Bound on the ownership book.  Ownership records are tiny
        (digest -> tenant string), but fleets run indefinitely; the oldest
        records are forgotten first, after which hits on those keys count
        as ``external`` rather than mis-attributing an owner.
    """

    def __init__(self, inner, max_owned_keys: int = 1 << 20) -> None:
        if inner is None:
            raise ValueError("WorldTileStore needs an inner front to wrap")
        if max_owned_keys < 1:
            raise ValueError(
                f"max_owned_keys must be >= 1, got {max_owned_keys}"
            )
        self.inner = inner
        self.max_owned_keys = int(max_owned_keys)
        # key -> [owner tenant, has_earned_a_cross_hit]
        self._owners: OrderedDict[bytes, list] = OrderedDict()
        self._stats = WorldTileStats()

    def stats(self) -> WorldTileStats:
        return self._stats

    # ------------------------------------------------------------------
    # Front protocol (delegation + chain interposition)
    # ------------------------------------------------------------------

    def handles(self, op: str, arrays, params: dict) -> bool:
        return self.inner.handles(op, arrays, params)

    def memoize(self, op: str, arrays, params: dict, compute, chain):
        return self.inner.memoize(
            op, arrays, params, compute, _AttributingChain(self, chain)
        )

    # ------------------------------------------------------------------
    # Ownership book
    # ------------------------------------------------------------------

    def _record_owner(self, key: bytes) -> None:
        if key not in self._owners:
            self._owners[key] = [current_tenant(), False]
            while len(self._owners) > self.max_owned_keys:
                self._owners.popitem(last=False)

    def _classify(self, key: bytes, op: str) -> None:
        record = self._owners.get(key)
        if record is None:
            self._stats._count(op, "external_hits")
            return
        if record[0] == current_tenant():
            self._stats._count(op, "self_hits")
            return
        self._stats._count(op, "cross_hits")
        if not record[1]:
            record[1] = True
            self._stats.shared_keys += 1


class _AttributingChain:
    """The chain handle the wrapped front sees: same ``get``/``put``
    surface as :class:`~repro.mapping.hooks.TieredLookup`, with every
    outcome booked against the current tenant before the value (or miss)
    flows through untouched."""

    def __init__(self, store: WorldTileStore, chain) -> None:
        self._store = store
        self._chain = chain

    def get(self, key: bytes, op: str = "?", copy: bool = True):
        value = self._chain.get(key, op, copy=copy)
        base = _base_op(op)
        if value is None:
            self._store._stats._count(base, "misses")
        else:
            self._store._classify(key, base)
        return value

    def put(self, key: bytes, value, op: str = "?", copy: bool = True) -> None:
        self._chain.put(key, value, op, copy=copy)
        self._store._record_owner(key)

    def get_many(self, keys, op: str = "?", copy: bool = True) -> list:
        """Batched probe: delegate in one call, book every outcome.

        The wrapped front's plan path issues one ``get_many`` per mapping
        call; attribution must not reintroduce a per-key chain walk, so
        the batch flows through and only the (cheap) classification loops.
        """
        values = batch_get(self._chain, keys, op, copy=copy)
        base = _base_op(op)
        stats = self._store._stats
        for key, value in zip(keys, values):
            if value is None:
                stats._count(base, "misses")
            else:
                self._store._classify(key, base)
        return values

    def put_many(self, keys, values, op: str = "?", copy: bool = True) -> None:
        batch_put(self._chain, keys, values, op, copy=copy)
        for key in keys:
            self._store._record_owner(key)
