"""Fleet serving: multi-stream tenancy with cross-stream tile sharing.

The serving regime the ROADMAP's north star actually describes — many
LiDAR sources, one backend fleet — has structure the single-stream layers
cannot exploit alone: vehicles traverse the *same world*.  PointAcc's
mapping-unit savings, Mesorasi's delayed aggregation and FractalCloud's
spatial partitioning all argue the same thing — restructure point-cloud
work around shared spatial structure instead of per-request recomputation.
``repro.fleet`` is that idea at the serving layer:

* :class:`FleetSession` (:mod:`repro.fleet.session`) — N tenant streams
  (:class:`StreamSpec`) interleaved over one shared
  :class:`~repro.cluster.EngineCluster`: in-order delivery per stream,
  EDF/fair-share across streams via the existing QoS layer, aggregate
  :class:`FleetStats`;
* :class:`WorldTileStore` (:mod:`repro.fleet.world_store`) — the
  cross-stream sharing front: tile sub-results stay keyed by world-region
  content digest (never stream identity), and every hit is attributed
  self vs cross-stream vs external, so the fleet's sharing is observable
  and testable.

The incremental voxelizer rides the same tile machinery: see the
``voxelize`` entry in :mod:`repro.stream.incremental`.  See ``README.md``
("Fleet serving") for the cache-hierarchy diagram.
"""

from .session import FleetSession, FleetStats, StreamSpec
from .world_store import WorldTileStats, WorldTileStore

__all__ = [
    "FleetSession",
    "FleetStats",
    "StreamSpec",
    "WorldTileStats",
    "WorldTileStore",
]
