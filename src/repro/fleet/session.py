"""Fleet serving: N tenant frame streams interleaved over one cluster.

:class:`FleetSession` is the multi-stream successor to the single-stream
:class:`~repro.stream.StreamSession`: several vehicles
(:class:`StreamSpec` — a :class:`~repro.stream.FrameSequence` plus a
network, a tenant name, and QoS terms) are served *concurrently* through
one shared executor.  The session advances in rounds: each round submits
the next pending frame of every live stream as one window, so

* delivery is **in order per stream** — frame ``i`` of a stream is always
  dispatched (and its result delivered) before frame ``i + 1``;
* ordering **across streams inside a round** belongs to the executor: an
  :class:`~repro.cluster.EngineCluster` window runs through the existing
  QoS layer (earliest-deadline-first, tenant fair share, priority — see
  :mod:`repro.cluster.qos`), with every stream's tenant name as its
  fair-share bucket.  A bare :class:`~repro.engine.SimulationEngine`
  executor runs rounds in submission order under its own policy.

The shared executor is what makes a fleet more than N sessions: its tile
front is one :class:`~repro.fleet.WorldTileStore`-wrapped
:class:`~repro.stream.TileMapCache`, so world-region sub-results
(kNN / ball-query / kernel-map / voxel tiles) computed for one vehicle
serve every vehicle driving the same map region — with hits attributed
self vs cross-stream in :class:`FleetStats`.  None of it may change a
result: each stream's output is bit-identical to running that stream cold
and alone (``tests/properties/test_prop_fleet.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.engine import SimRequest, SimulationEngine
from ..nn.models.registry import get_benchmark
from ..obs.ledger import current_ledger
from ..obs.trace import current_tracer, span
from ..stream.incremental import TileMapCache
from ..stream.pipeline import FrameResult, streaming_map_cache
from ..stream.sequence import FrameSequence
from .world_store import WorldTileStore

__all__ = ["FleetSession", "FleetStats", "StreamSpec"]


@dataclass(frozen=True)
class StreamSpec:
    """One tenant stream of the fleet.

    ``name`` doubles as the QoS tenant (fair-share bucket) and the
    attribution identity in :class:`~repro.fleet.WorldTileStore`; it must
    be unique and non-empty within a session.  ``n_frames`` defaults to
    the sequence's nominal length; streams of different lengths are fine
    (exhausted streams simply drop out of later rounds).
    """

    name: str
    sequence: FrameSequence
    benchmark: str = "MinkNet(o)"
    scale: float = 0.25
    n_frames: int | None = None
    deadline_ms: float | None = None
    priority: int = 0

    @property
    def frames(self) -> int:
        n = self.n_frames if self.n_frames is not None else self.sequence.config.n_frames
        return int(n)


@dataclass
class FleetStats:
    """Aggregate fleet behaviour: rounds, per-stream tallies, tile sharing."""

    rounds: int = 0
    frames: int = 0
    completed: int = 0
    rejected: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0
    wall_seconds: float = 0.0
    per_stream: dict = field(default_factory=dict)  # name -> tally dict

    @property
    def throughput_fps(self) -> float:
        """Completed frames (all streams) per wall-clock second."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def _tally(self, name: str) -> dict:
        return self.per_stream.setdefault(
            name,
            {"frames": 0, "completed": 0, "rejected": 0,
             "deadline_met": 0, "deadline_missed": 0},
        )

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "frames": self.frames,
            "completed": self.completed,
            "rejected": self.rejected,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "wall_seconds": self.wall_seconds,
            "throughput_fps": self.throughput_fps,
            "per_stream": {name: dict(t) for name, t in self.per_stream.items()},
        }


class FleetSession:
    """Serve several tenant streams through one shared executor.

    Parameters
    ----------
    streams:
        The fleet: a sequence of :class:`StreamSpec` with unique
        non-empty names.
    engine / cluster:
        Optional pre-built executor (at most one); when neither is given
        the session builds its own from ``n_shards`` — an
        :class:`~repro.cluster.EngineCluster` for ``n_shards >= 1`` (the
        QoS path), or a single large-L1 engine for ``n_shards == 0``.
        Injected executors bring their own cache fronts; the ``tile_*`` /
        sharing parameters then do not apply.
    share_world_tiles:
        Wrap the tile front in a :class:`~repro.fleet.WorldTileStore`
        (default).  ``False`` keeps the bare
        :class:`~repro.stream.TileMapCache` — sub-results still flow
        through the shared chain (content keys carry no stream identity),
        but hits are not attributed self/cross.
    tile_size / halo / voxel_tile / min_points / min_points_per_tile /
    use_tiles / incremental_voxelize:
        Tile-front configuration for the session-built executor, as in
        :class:`~repro.stream.StreamSession` (``min_points_per_tile`` is
        the small-cloud density bypass).  The per-tile serving mode is
        retired; inject an executor built around
        :class:`~repro.stream.incremental.PerTileOracle` to benchmark
        against the reference front.
    geometry_only:
        ``"auto"`` (default) enables geometry-only execution per stream
        exactly for SparseConv-family networks; booleans force it
        fleet-wide.
    cache_dir:
        Disk-spill directory for the session-built cluster's shared L2
        (ignored with an injected or ``n_shards == 0`` executor).
    l2:
        Shared-L2 policy for the session-built cluster (``"auto"`` /
        ``None`` / a pre-built store, as in
        :class:`~repro.cluster.EngineCluster`).  A single-shard fleet
        already shares everything through that shard's L1, so ``None``
        trades the write-through L2 for less per-tile bookkeeping.
    workers:
        Worker processes for the session-built cluster
        (:class:`~repro.cluster.EngineCluster` ``workers=``): ``0``
        (default) keeps in-process execution; ``N >= 1`` runs shards in
        real OS processes so streams simulate concurrently.  Each worker
        gets its own copy of the tile front — cross-stream tile hits then
        happen inside each worker (and via the disk L2 with a
        ``cache_dir``), and the merged attribution surfaces through
        ``summary()`` instead of the parent-side front.  Requires a
        session-built cluster (``n_shards >= 1``, no injected executor).
        Per-stream results stay bit-identical to ``workers=0``.
    """

    def __init__(
        self,
        streams,
        *,
        engine=None,
        cluster=None,
        backends=("pointacc",),
        n_shards: int = 2,
        routing: str = "affinity",
        policy: str = "fifo",
        tile_size: float = 4.0,
        halo: int = 1,
        voxel_tile: int = 48,
        min_points: int = 256,
        min_points_per_tile: int = 0,
        use_tiles: bool = True,
        incremental_voxelize: bool = True,
        share_world_tiles: bool = True,
        geometry_only: bool | str = "auto",
        cache_dir=None,
        l2="auto",
        workers: int = 0,
    ) -> None:
        self.streams = list(streams)
        if not self.streams:
            raise ValueError("a fleet needs at least one stream")
        names = [spec.name for spec in self.streams]
        if len(set(names)) != len(names) or any(not n for n in names):
            raise ValueError(
                f"stream names must be unique and non-empty, got {names}"
            )
        if engine is not None and cluster is not None:
            raise ValueError("pass at most one of engine= and cluster=")
        if n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {n_shards}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers > 0 and (engine is not None or cluster is not None
                            or n_shards == 0):
            raise ValueError(
                "workers requires a session-built cluster (n_shards >= 1, "
                "no injected executor) — pass EngineCluster(workers=N) "
                "yourself otherwise"
            )
        self._geometry_only = {
            spec.name: (
                get_benchmark(spec.benchmark).family == "sparseconv"
                if geometry_only == "auto"
                else bool(geometry_only)
            )
            for spec in self.streams
        }
        self._notations = {
            spec.name: spec.sequence.notation(spec.benchmark)
            for spec in self.streams
        }
        if engine is not None or cluster is not None:
            self.executor = engine if engine is not None else cluster
            self.tile_cache = getattr(self.executor, "tile_cache", None)
        else:
            front = None
            if use_tiles:
                front = TileMapCache(
                    tile_size=tile_size, halo=halo, voxel_tile=voxel_tile,
                    min_points=min_points,
                    min_points_per_tile=min_points_per_tile,
                    incremental_voxelize=incremental_voxelize,
                    # Rounds interleave every stream through one shared
                    # composer: it must remember at least one composition
                    # per stream per family or the delta splice starves.
                    compose_records=max(4, len(self.streams) + 2),
                )
                if share_world_tiles:
                    front = WorldTileStore(front)
            self.tile_cache = front
            if n_shards >= 1:
                from ..cluster.cluster import EngineCluster

                self.executor = EngineCluster(
                    n_shards=n_shards,
                    backends=backends,
                    policy=policy,
                    routing=routing,
                    cache_dir=cache_dir,
                    l2=l2,
                    tile_cache=front,
                    map_cache=streaming_map_cache,
                    workers=workers,
                )
            else:
                self.executor = SimulationEngine(
                    backends=backends,
                    policy=policy,
                    map_cache=streaming_map_cache(),
                    tile_cache=front,
                )
        self._stats = FleetStats()
        self._next_frame = {spec.name: 0 for spec in self.streams}
        self._results: dict[str, list[FrameResult]] = {
            spec.name: [] for spec in self.streams
        }

    @property
    def world_store(self) -> WorldTileStore | None:
        """The attribution front, when the executor carries one."""
        front = self.tile_cache
        return front if isinstance(front, WorldTileStore) else None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def request(self, spec: StreamSpec, index: int) -> SimRequest:
        """The engine request for frame ``index`` of one stream."""
        return SimRequest(
            benchmark=self._notations[spec.name],
            scale=spec.scale,
            seed=index,
            priority=spec.priority,
            tag=f"{spec.name}/f{index}",
            tenant=spec.name,
            deadline_ms=spec.deadline_ms,
            geometry_only=self._geometry_only[spec.name],
        )

    def play(self):
        """Yield rounds until every stream is exhausted.

        Each round is a list of ``(stream_name, FrameResult)`` pairs in
        stream-declaration order (the executor may have *run* them in QoS
        order; result slots are submission-ordered, like everywhere else
        in this repo).
        """
        while True:
            window = [
                spec
                for spec in self.streams
                if self._next_frame[spec.name] < spec.frames
            ]
            if not window:
                return
            requests = [
                self.request(spec, self._next_frame[spec.name])
                for spec in window
            ]
            tracer = current_tracer()
            t0 = time.perf_counter()
            with span("round", round=self._stats.rounds,
                      streams=len(window)) as round_span:
                results = self.executor.run_batch(requests)
            round_wall = time.perf_counter() - t0
            self._stats.wall_seconds += round_wall
            self._stats.rounds += 1
            if tracer is not None and tracer.recorder is not None:
                missed = any(r.deadline_met is False for r in results)
                tracer.recorder.record(
                    round_span, round_wall, deadline_missed=missed,
                    frame=f"round{self._stats.rounds - 1}",
                )
            round_out = []
            for spec, result in zip(window, results):
                index = self._next_frame[spec.name]
                self._next_frame[spec.name] = index + 1
                frame = FrameResult(
                    index=index, result=result,
                    latency_ms=result.wall_seconds * 1e3,
                )
                tally = self._stats._tally(spec.name)
                self._stats.frames += 1
                tally["frames"] += 1
                if frame.rejected:
                    self._stats.rejected += 1
                    tally["rejected"] += 1
                else:
                    self._stats.completed += 1
                    tally["completed"] += 1
                if result.deadline_met is True:
                    self._stats.deadline_met += 1
                    tally["deadline_met"] += 1
                elif result.deadline_met is False:
                    self._stats.deadline_missed += 1
                    tally["deadline_missed"] += 1
                self._results[spec.name].append(frame)
                round_out.append((spec.name, frame))
            yield round_out

    def run(self) -> dict[str, list[FrameResult]]:
        """Serve every stream to completion; per-stream results in frame
        order."""
        for _ in self.play():
            pass
        return self.results()

    def results(self) -> dict[str, list[FrameResult]]:
        return {name: list(frames) for name, frames in self._results.items()}

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> FleetStats:
        return self._stats

    def summary(self) -> dict:
        """Session + world-tile + executor stats in one serializable dict."""
        out = self._stats.summary()
        out["streams"] = {
            spec.name: {
                "benchmark": spec.benchmark,
                "sequence": spec.sequence.token,
                "frames": spec.frames,
                "scale": spec.scale,
                "deadline_ms": spec.deadline_ms,
                "geometry_only": self._geometry_only[spec.name],
            }
            for spec in self.streams
        }
        executor = self.executor.stats().summary()
        if executor.get("workers"):
            # Worker mode: each process holds its own copy of the front,
            # so the parent-side objects never see a hit — the merged
            # per-worker snapshots (collected over the pipes) are the
            # fleet-level attribution.
            if self.world_store is not None:
                out["world_tiles"] = executor.get("front", {})
                out["tiles"] = executor.get("front_inner", {})
            elif self.tile_cache is not None:
                out["tiles"] = executor.get("front", {})
        else:
            store = self.world_store
            if store is not None:
                out["world_tiles"] = store.stats().snapshot()
                out["tiles"] = store.inner.stats().snapshot()
            elif self.tile_cache is not None:
                out["tiles"] = self.tile_cache.stats().snapshot()
        out["executor"] = executor
        ledger = current_ledger()
        if ledger is not None:
            out["ledger"] = ledger.summary()
        return out

    def close(self) -> None:
        """Release executor resources (worker processes, when any)."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FleetSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
