"""Analytical baseline platform models (paper Section 5.1 baselines).

Each platform executes the *same trace* as PointAcc under a roofline-style
model with three cost families, matching the paper's operation taxonomy
(Fig. 4 / Fig. 6):

* **MatMul** — ``max(flops / (peak * efficiency), bytes / bandwidth)`` with
  separate efficiencies for batched dense matmul and the fragmented
  per-weight-group matmuls of sparse convolution;
* **Mapping** — op counts (distance computations, hash probes, comparisons)
  over an effective mapping throughput, since mapping kernels are
  comparison-bound and branchy (the reason Fig. 6 shows them dominating on
  PointNet++-family networks);
* **Data movement** — explicit gather/scatter traffic at a derated
  random-access bandwidth.

Host-offload platforms (CPU+TPU) run mapping and gather/scatter on the host
model and ship features across PCIe each way — the round trip the paper
measures at 60-90% of TPU runtime.

Peak numbers come from vendor datasheets; efficiency/throughput deratings
are the model's calibration surface and are documented per platform in
``registry.py``.  Energy uses measured-average power draws (constant while
busy), the same methodology as the paper's GPU/CPU numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.energy import EnergyLedger
from ..core.report import LayerRecord, PerfReport
from ..nn.trace import LayerKind, LayerSpec, Trace

__all__ = ["PlatformSpec", "PlatformModel"]


@dataclass(frozen=True)
class PlatformSpec:
    """Datasheet peaks plus calibrated deratings for one platform."""

    name: str
    peak_gflops: float  # matmul peak in the precision the platform uses
    mem_bw_gbps: float
    dense_efficiency: float
    sparse_efficiency: float
    mapping_gops: float  # effective mapping-op throughput (Gops/s)
    gather_gbps: float  # achieved random gather/scatter bandwidth
    elem_bytes: int = 4
    avg_power_w: float = 50.0  # measured-average busy power
    op_overhead_us: float = 5.0  # kernel launch / framework dispatch
    pcie_gbps: float = 0.0  # >0 enables host-offload mode
    host_mapping_gops: float = 0.0  # host throughput for offloaded mapping
    host_power_w: float = 0.0
    fps_sync_us: float = 0.0  # per-iteration sync of the serial FPS loop
    kernels_per_matmul: float = 1.0  # framework kernels per fused matmul spec


def _mapping_ops(spec: LayerSpec) -> float:
    """Abstract op count of a mapping operation (distances, probes, sorts)."""
    kind = spec.kind
    if kind is LayerKind.MAP_FPS:
        # m iterations over n points: distance + min-update + argmax.
        return 3.0 * spec.n_in * spec.n_out
    if kind in (LayerKind.MAP_KNN, LayerKind.MAP_BALL):
        dim = float(spec.params.get("feature_dim", 3))
        distance = spec.n_out * spec.n_in * max(dim / 3.0, 1.0)
        # Top-k selection over the distance matrix: comparison-bound and
        # divergent; costs ~3 abstract ops per candidate on general
        # hardware (heap update / partial bitonic pass).
        selection = 3.0 * spec.n_out * spec.n_in
        return distance + selection
    if kind is LayerKind.MAP_KERNEL:
        # Hash build over inputs + K probes per output (hash + compare).
        return 5.0 * (spec.n_in + spec.n_out * spec.kernel_volume)
    if kind in (LayerKind.MAP_QUANT, LayerKind.MAP_RANDOM):
        return 2.0 * spec.n_in
    raise ValueError(f"not a mapping op: {spec.kind}")


class PlatformModel:
    """Executes traces under a :class:`PlatformSpec`."""

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec

    # -- per-kind costs ------------------------------------------------------

    def _overhead_s(self) -> float:
        return self.spec.op_overhead_us * 1e-6

    def _record(
        self,
        spec: LayerSpec,
        seconds: float,
        category: str,
        power_w: float | None = None,
        dram_bytes: float = 0.0,
        macs: int = 0,
        extra_categories: dict[str, float] | None = None,
    ) -> LayerRecord:
        power = power_w if power_w is not None else self.spec.avg_power_w
        cats = {category: seconds}
        if extra_categories:
            for k, v in extra_categories.items():
                cats[k] = cats.get(k, 0.0) + v
            seconds = sum(cats.values())
        return LayerRecord(
            name=spec.name,
            kind=spec.kind.value,
            seconds=seconds,
            category_seconds=cats,
            macs=macs,
            dram_read_bytes=dram_bytes / 2,
            dram_write_bytes=dram_bytes / 2,
            energy=EnergyLedger(compute_pj=power * seconds * 1e12),
        )

    def _mapping_record(self, spec: LayerSpec) -> LayerRecord:
        s = self.spec
        if spec.params.get("cached"):
            # Framework-side kernel map reuse: a lookup, not a recompute.
            seconds = self._overhead_s()
            return self._record(spec, seconds, "mapping")
        offloaded = s.pcie_gbps > 0
        rate = s.host_mapping_gops if offloaded else s.mapping_gops
        ops = _mapping_ops(spec)
        seconds = ops / (rate * 1e9) + self._overhead_s()
        if spec.kind is LayerKind.MAP_FPS and not offloaded:
            # FPS is inherently serial: each of the n_out iterations ends
            # in a global arg-max reduction and device-wide sync, which
            # dominates on throughput devices (why Fig. 6 shows mapping
            # taking >50% of PointNet++ runtime on GPUs).
            seconds = max(
                seconds, spec.n_out * s.fps_sync_us * 1e-6 + self._overhead_s()
            )
        power = s.host_power_w if offloaded else s.avg_power_w
        return self._record(spec, seconds, "mapping", power_w=power)

    def _movement_record(self, spec: LayerSpec) -> LayerRecord:
        s = self.spec
        moved = spec.moved_elements() * s.elem_bytes
        bytes_rw = 2.0 * moved  # read source + write destination
        seconds = bytes_rw / (s.gather_gbps * 1e9) + self._overhead_s()
        extra = None
        if s.pcie_gbps > 0:
            # Offload round trip: gathered features to device, results back.
            pcie_s = 2.0 * moved / (s.pcie_gbps * 1e9)
            extra = {"movement": pcie_s}
        rec = self._record(
            spec,
            seconds,
            "movement",
            power_w=s.host_power_w if s.pcie_gbps > 0 else None,
            dram_bytes=bytes_rw,
            extra_categories=extra,
        )
        return rec

    def _matmul_record(self, spec: LayerSpec) -> LayerRecord:
        s = self.spec
        eff = (
            s.dense_efficiency
            if spec.kind is LayerKind.DENSE_MM
            else s.sparse_efficiency
        )
        compute_s = spec.flops / (s.peak_gflops * 1e9 * eff)
        if spec.kind is LayerKind.DENSE_MM:
            stream = spec.rows * (spec.c_in + spec.c_out) + spec.c_in * spec.c_out
        else:
            # G-S flow: the matmul reads the gathered matrix and writes
            # psums (gather/scatter themselves are separate specs).
            stream = (
                spec.n_maps * (spec.c_in + spec.c_out)
                + spec.kernel_volume * spec.c_in * spec.c_out
            )
        mem_s = stream * s.elem_bytes / (s.mem_bw_gbps * 1e9)
        # A framework "Linear+BN+ReLU" spec dispatches several kernels on
        # real stacks (matmul, bias, norm, activation).
        launch_s = s.kernels_per_matmul * self._overhead_s()
        seconds = max(compute_s, mem_s) + launch_s
        return self._record(
            spec,
            seconds,
            "matmul",
            dram_bytes=stream * s.elem_bytes,
            macs=spec.macs,
        )

    def _vector_record(self, spec: LayerSpec) -> LayerRecord:
        s = self.spec
        elems = spec.rows * max(spec.c_in, spec.c_out, 1)
        bytes_rw = 2.0 * elems * s.elem_bytes
        seconds = bytes_rw / (s.mem_bw_gbps * 1e9) + self._overhead_s()
        return self._record(spec, seconds, "other", dram_bytes=bytes_rw)

    # -- trace walk ----------------------------------------------------------

    def run(self, trace: Trace) -> PerfReport:
        report = PerfReport(platform=self.spec.name, network=trace.name)
        for spec in trace:
            kind = spec.kind
            if kind.is_mapping:
                report.add(self._mapping_record(spec))
            elif kind.is_movement:
                report.add(self._movement_record(spec))
            elif kind.is_matmul:
                report.add(self._matmul_record(spec))
            else:
                report.add(self._vector_record(spec))
        return report
