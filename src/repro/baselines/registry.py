"""Baseline platform catalog (paper Table: server, edge, ASIC baselines).

Peak FLOPs and bandwidths are datasheet values.  The derating factors
(dense/sparse efficiency, mapping throughput, gather bandwidth, average busy
power, per-op dispatch overhead) are this model's calibration surface: they
were set once so that the end-to-end speedup/energy geomeans over the
8-network suite land in the bands Fig. 13/14 report, then frozen.  They are
*not* per-benchmark fudge factors — every network sees the same platform
constants, and the per-network spread (e.g. MinkNet(i) benefiting far more
than MinkNet(o) on GPU) emerges from trace composition alone.

Derating rationale in brief:

* ``sparse_efficiency`` — per-weight-offset gathered matmuls are small and
  launch-bound on GPUs (paper Fig. 17 right), SIMD-hostile on CPUs.
* ``mapping_gops`` — mapping kernels are comparison/branch bound; the
  paper's Fig. 6 shows them taking >50% of PointNet++ runtime on all
  general-purpose platforms.
* ``avg_power_w`` — measured-average draw during point-cloud inference
  (well under TDP because utilization is low), the same measurement basis
  the paper's energy comparisons use.
"""

from __future__ import annotations

from .platform import PlatformModel, PlatformSpec

__all__ = [
    "RTX_2080TI",
    "XEON_6130",
    "XEON_TPU_V3",
    "JETSON_XAVIER_NX",
    "JETSON_NANO",
    "RASPBERRY_PI_4B",
    "SERVER_PLATFORMS",
    "EDGE_PLATFORMS",
    "get_platform",
]

RTX_2080TI = PlatformSpec(
    name="RTX 2080Ti",
    peak_gflops=13450.0,  # fp32 CUDA-core peak
    mem_bw_gbps=616.0,
    dense_efficiency=0.55,
    sparse_efficiency=0.12,
    mapping_gops=20.0,
    gather_gbps=80.0,
    elem_bytes=4,
    avg_power_w=68.0,
    op_overhead_us=5.0,
    fps_sync_us=2.5,
    kernels_per_matmul=4.0,
)

XEON_6130 = PlatformSpec(
    name="Xeon Gold 6130",
    peak_gflops=1075.0,  # 16 cores x 2.1 GHz x 32 fp32 FLOP (AVX-512 FMA)
    mem_bw_gbps=119.0,
    dense_efficiency=0.28,
    sparse_efficiency=0.025,
    mapping_gops=0.3,
    gather_gbps=4.5,
    elem_bytes=4,
    avg_power_w=60.0,
    op_overhead_us=2.0,
)

XEON_TPU_V3 = PlatformSpec(
    name="Xeon Skylake + TPU V3",
    peak_gflops=123000.0,  # bf16 systolic peak, one chip
    mem_bw_gbps=900.0,
    dense_efficiency=0.10,  # point-cloud channel widths vs a 128x128 array
    sparse_efficiency=0.015,  # tiny per-offset matrices
    mapping_gops=30.0,  # unused: mapping runs on the host
    gather_gbps=6.0,  # host-side gather
    elem_bytes=4,
    avg_power_w=75.0,
    op_overhead_us=25.0,  # XLA dispatch
    pcie_gbps=6.0,
    host_mapping_gops=0.3,
    host_power_w=55.0,
)

JETSON_XAVIER_NX = PlatformSpec(
    name="Jetson Xavier NX",
    peak_gflops=1690.0,  # fp16 GPU peak (384 cores, 15 W mode)
    mem_bw_gbps=51.2,
    dense_efficiency=0.50,
    sparse_efficiency=0.10,
    mapping_gops=2.5,
    gather_gbps=10.0,
    elem_bytes=2,
    avg_power_w=12.0,
    op_overhead_us=12.0,
    fps_sync_us=4.0,
    kernels_per_matmul=3.0,
)

JETSON_NANO = PlatformSpec(
    name="Jetson Nano",
    peak_gflops=472.0,  # fp16 peak
    mem_bw_gbps=25.6,
    dense_efficiency=0.40,
    sparse_efficiency=0.06,
    mapping_gops=0.55,
    gather_gbps=4.0,
    elem_bytes=2,
    avg_power_w=8.0,
    op_overhead_us=15.0,
    fps_sync_us=6.0,
    kernels_per_matmul=3.0,
)

RASPBERRY_PI_4B = PlatformSpec(
    name="Raspberry Pi 4B",
    peak_gflops=18.0,  # 4x Cortex-A72 NEON fp32, thermally sustained
    mem_bw_gbps=3.2,
    dense_efficiency=0.50,
    sparse_efficiency=0.12,
    mapping_gops=0.04,
    gather_gbps=1.0,
    elem_bytes=4,
    avg_power_w=6.0,
    op_overhead_us=3.0,
)

SERVER_PLATFORMS = (RTX_2080TI, XEON_TPU_V3, XEON_6130)
EDGE_PLATFORMS = (JETSON_XAVIER_NX, JETSON_NANO, RASPBERRY_PI_4B)

_ALL = {
    spec.name: spec
    for spec in (*SERVER_PLATFORMS, *EDGE_PLATFORMS)
}


def get_platform(name: str) -> PlatformModel:
    if name not in _ALL:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(_ALL)}")
    return PlatformModel(_ALL[name])
