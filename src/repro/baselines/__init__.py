"""Baseline platform models: CPU, GPU, TPU, edge devices, Mesorasi."""

from .mesorasi import (
    MESORASI_HW,
    MesorasiHW,
    UnsupportedModelError,
    delayed_aggregation_transform,
    mesorasi_sw,
)
from .platform import PlatformModel, PlatformSpec
from .registry import (
    EDGE_PLATFORMS,
    JETSON_NANO,
    JETSON_XAVIER_NX,
    RASPBERRY_PI_4B,
    RTX_2080TI,
    SERVER_PLATFORMS,
    XEON_6130,
    XEON_TPU_V3,
    get_platform,
)

__all__ = [
    "MESORASI_HW",
    "MesorasiHW",
    "UnsupportedModelError",
    "delayed_aggregation_transform",
    "mesorasi_sw",
    "PlatformModel",
    "PlatformSpec",
    "EDGE_PLATFORMS",
    "JETSON_NANO",
    "JETSON_XAVIER_NX",
    "RASPBERRY_PI_4B",
    "RTX_2080TI",
    "SERVER_PLATFORMS",
    "XEON_6130",
    "XEON_TPU_V3",
    "get_platform",
]
