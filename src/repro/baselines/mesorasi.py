"""Mesorasi (Feng et al., MICRO 2020) — the prior point-cloud accelerator.

Mesorasi's *delayed aggregation* rewrites a PointNet++ set-abstraction
block: the shared MLP runs on the raw input points (n rows) instead of on
the gathered neighbor matrix (n_maps rows), and the gather + max-aggregation
move to *after* the MLP on its outputs.  This is only valid when all
neighbors share the same weights — exactly the limitation the paper's
Section 5.2.2 and Fig. 16 exercise: SparseConv-based models (per-offset
weights) cannot run on Mesorasi at all.

Models here:

* :func:`delayed_aggregation_transform` — the trace rewrite;
* :class:`MesorasiHW` — NPU (16x16 systolic @ 1 GHz, Table 3) + aggregation
  unit + LPDDR3, with mapping ops on the SoC's mobile GPU (Mesorasi keeps
  neighbor search on the GPU);
* :func:`mesorasi_sw` — delayed aggregation in software on an edge platform
  (the paper's Mesorasi-SW baselines on Jetson Nano / Raspberry Pi).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.energy import EnergyLedger
from ..core.report import LayerRecord, PerfReport
from ..nn.trace import LayerKind, LayerSpec, Trace
from .platform import PlatformModel, PlatformSpec

__all__ = [
    "UnsupportedModelError",
    "delayed_aggregation_transform",
    "MesorasiHW",
    "MESORASI_HW",
    "mesorasi_sw",
]


class UnsupportedModelError(RuntimeError):
    """Raised when a model requires per-neighbor weights Mesorasi lacks."""


def delayed_aggregation_transform(trace: Trace) -> Trace:
    """Rewrite gather->MLP->pool blocks to MLP->gather->pool.

    For every shared-MLP layer whose rows equal the preceding gather's map
    count, the row dimension shrinks to the gather's source cloud size; the
    gather itself then moves the MLP's *output* features and merges into
    the aggregation step.  SparseConv traces are rejected — per-offset
    weights break the delayed-aggregation identity.
    """
    if any(s.kind is LayerKind.SPARSE_CONV for s in trace):
        raise UnsupportedModelError(
            "Mesorasi's delayed aggregation requires shared neighbor "
            "weights; SparseConv models are unsupported (paper Section 5.2.2)"
        )
    new = Trace(name=f"{trace.name}+delayed_agg", input_points=trace.input_points)
    pending_gather: LayerSpec | None = None
    last_mlp_c: int | None = None
    for spec in trace:
        if spec.kind is LayerKind.GATHER:
            pending_gather = spec
            last_mlp_c = None
            continue  # emitted after the MLP it used to precede
        if (
            spec.kind is LayerKind.DENSE_MM
            and pending_gather is not None
            and spec.rows == pending_gather.n_maps
        ):
            n = pending_gather.n_in
            new.record(
                replace(spec, rows=n, n_in=n, n_out=n,
                        name=f"{spec.name}@delayed")
            )
            last_mlp_c = spec.c_out
            continue
        if (
            spec.kind is LayerKind.POOL_MAX
            and pending_gather is not None
            and last_mlp_c is not None
        ):
            # Aggregation now gathers MLP outputs and max-reduces them.
            new.record(
                replace(
                    pending_gather,
                    c_in=last_mlp_c,
                    name=f"{pending_gather.name}@delayed",
                )
            )
            new.record(replace(spec, c_in=last_mlp_c, c_out=last_mlp_c))
            pending_gather = None
            last_mlp_c = None
            continue
        if pending_gather is not None and spec.kind is not LayerKind.DENSE_MM:
            # Gather feeding something other than an MLP chain: emit as-is.
            new.record(pending_gather)
            pending_gather = None
        new.record(spec)
    if pending_gather is not None:
        new.record(pending_gather)
    return new


@dataclass(frozen=True)
class MesorasiConfig:
    """Table 3 column: 16x16 NPU, 1.6 MB SRAM, LPDDR3-1600, 16 nm."""

    name: str = "Mesorasi"
    npu_gops: float = 512.0  # 256 PEs x 2 ops x 1 GHz
    dense_efficiency: float = 0.90
    agg_lanes: int = 16  # aggregation-unit elements per cycle
    frequency_hz: float = 1e9
    dram_gbps: float = 12.8
    dram_pj_per_byte: float = 64.0
    elem_bytes: int = 2
    npu_power_w: float = 2.8
    mgpu_mapping_gops: float = 0.5  # neighbor search stays on the SoC GPU
    mgpu_power_w: float = 8.0
    mgpu_fps_sync_us: float = 6.0  # serial FPS iterations on the mobile GPU
    mapping_overhead_us: float = 15.0


MESORASI_CONFIG = MesorasiConfig()


class MesorasiHW:
    """Cost model of the Mesorasi accelerator (NPU + aggregation unit)."""

    def __init__(self, config: MesorasiConfig = MESORASI_CONFIG) -> None:
        self.config = config

    def run(self, trace: Trace, apply_transform: bool = True) -> PerfReport:
        cfg = self.config
        if apply_transform:
            trace = delayed_aggregation_transform(trace)
        elif any(s.kind is LayerKind.SPARSE_CONV for s in trace):
            raise UnsupportedModelError(
                "Mesorasi cannot execute SparseConv models"
            )
        report = PerfReport(platform=cfg.name, network=trace.name)
        for spec in trace:
            kind = spec.kind
            if kind.is_mapping:
                seconds = 0.0
                if not spec.params.get("cached"):
                    from .platform import _mapping_ops

                    seconds = _mapping_ops(spec) / (cfg.mgpu_mapping_gops * 1e9)
                    if kind is LayerKind.MAP_FPS:
                        # Serial FPS iterations sync the mobile GPU each step.
                        seconds = max(
                            seconds, spec.n_out * cfg.mgpu_fps_sync_us * 1e-6
                        )
                seconds += cfg.mapping_overhead_us * 1e-6
                energy = EnergyLedger(
                    compute_pj=cfg.mgpu_power_w * seconds * 1e12
                )
                report.add(
                    LayerRecord(
                        name=spec.name,
                        kind=kind.value,
                        seconds=seconds,
                        category_seconds={"mapping": seconds},
                        energy=energy,
                    )
                )
            elif kind.is_movement or kind in (
                LayerKind.POOL_MAX,
                LayerKind.GLOBAL_POOL,
                LayerKind.INTERP,
                LayerKind.ELEMWISE,
            ):
                # Aggregation unit: streams map entries; memory-bound on
                # LPDDR3 when features spill.
                elems = max(spec.moved_elements(),
                            spec.rows * max(spec.c_in, spec.c_out, 1))
                cycles = -(-elems // cfg.agg_lanes)
                compute_s = cycles / cfg.frequency_hz
                bytes_rw = 2.0 * elems * cfg.elem_bytes
                mem_s = bytes_rw / (cfg.dram_gbps * 1e9)
                seconds = max(compute_s, mem_s)
                energy = EnergyLedger(
                    compute_pj=cfg.npu_power_w * seconds * 1e12,
                    dram_pj=bytes_rw * cfg.dram_pj_per_byte,
                )
                report.add(
                    LayerRecord(
                        name=spec.name,
                        kind=kind.value,
                        seconds=seconds,
                        category_seconds={"movement": seconds},
                        dram_read_bytes=bytes_rw / 2,
                        dram_write_bytes=bytes_rw / 2,
                        energy=energy,
                    )
                )
            elif kind is LayerKind.DENSE_MM:
                compute_s = spec.flops / (cfg.npu_gops * 1e9 * cfg.dense_efficiency)
                stream = (
                    spec.rows * (spec.c_in + spec.c_out)
                    + spec.c_in * spec.c_out
                ) * cfg.elem_bytes
                mem_s = stream / (cfg.dram_gbps * 1e9)
                seconds = max(compute_s, mem_s)
                energy = EnergyLedger(
                    compute_pj=cfg.npu_power_w * seconds * 1e12,
                    dram_pj=stream * cfg.dram_pj_per_byte,
                )
                report.add(
                    LayerRecord(
                        name=spec.name,
                        kind=kind.value,
                        seconds=seconds,
                        category_seconds={"matmul": seconds},
                        macs=spec.macs,
                        dram_read_bytes=stream / 2,
                        dram_write_bytes=stream / 2,
                        energy=energy,
                    )
                )
            else:
                raise UnsupportedModelError(f"Mesorasi cannot execute {kind}")
        return report


MESORASI_HW = MesorasiHW()


def mesorasi_sw(trace: Trace, platform: PlatformModel) -> PerfReport:
    """Mesorasi networks (delayed aggregation) in software on a platform."""
    transformed = delayed_aggregation_transform(trace)
    report = platform.run(transformed)
    report.platform = f"Mesorasi-SW on {platform.spec.name}"
    return report
