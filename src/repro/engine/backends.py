"""Backend registry: every machine model a trace can be scheduled onto.

One shared resolution path for the CLI and the simulation engine.  A backend
is anything with ``run(trace) -> PerfReport``: the PointAcc configurations,
the Mesorasi accelerator, and the general-purpose platform models
(CPU/GPU/TPU, Jetson-class edge SoCs).
"""

from __future__ import annotations

from ..baselines.mesorasi import MESORASI_HW
from ..baselines.registry import EDGE_PLATFORMS, SERVER_PLATFORMS, get_platform
from ..core import POINTACC_EDGE, POINTACC_FULL, PointAccModel

__all__ = ["ACCELERATORS", "backend_names", "resolve_backend"]

# Accelerator backends are constructed on demand by these factories;
# platform backends are built per call by get_platform from the catalog
# specs.  All are stateless cost models, so fresh instances are equivalent.
ACCELERATORS = {
    "pointacc": lambda: PointAccModel(POINTACC_FULL),
    "pointacc-edge": lambda: PointAccModel(POINTACC_EDGE),
    "mesorasi": lambda: MESORASI_HW,
}


def backend_names() -> list[str]:
    """Every resolvable backend name, accelerators first."""
    return [
        *ACCELERATORS,
        *(s.name for s in (*SERVER_PLATFORMS, *EDGE_PLATFORMS)),
    ]


def resolve_backend(name: str):
    """Resolve a backend by name (case-insensitive for the accelerators)."""
    if name.lower() in ACCELERATORS:
        return ACCELERATORS[name.lower()]()
    return get_platform(name)
