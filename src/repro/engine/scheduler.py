"""Batch scheduling policies for the simulation engine.

A policy maps a list of :class:`~repro.engine.engine.SimRequest`s to an
execution order (a permutation of their indices).  Scheduling changes
*wall-clock* behaviour only — which requests run adjacently, and therefore
how well the map cache and trace memo are exploited — never the simulated
results, which the property suite enforces.

Policies:

* ``fifo``       — submission order, the baseline.
* ``priority``   — higher ``priority`` first; stable within a level, so
                   equal-priority requests keep their arrival order.
* ``bucketed``   — size-bucketed batching: requests are grouped into
                   power-of-two buckets of their estimated point count,
                   small buckets first, and identical workloads are placed
                   adjacently inside each bucket.  This maximizes cache
                   locality for mixed traffic (all the repeats of a cloud
                   run back to back).
"""

from __future__ import annotations

import math

from ..nn.models.registry import get_benchmark
from ..pointcloud.datasets import get_dataset

__all__ = ["POLICIES", "estimate_points", "schedule"]

POLICIES = ("fifo", "priority", "bucketed")


def estimate_points(benchmark: str, scale: float) -> int:
    """Nominal input point count of a request, for size bucketing.

    Mirrors the registry's input pipeline: a benchmark either overrides the
    per-sample size (``bench.n_points``) or inherits the dataset's nominal
    size; both are rescaled by ``scale`` and floored at 16 points.
    """
    bench = get_benchmark(benchmark)
    nominal = bench.n_points
    if nominal is None:
        nominal = get_dataset(bench.dataset).n_points
    return max(16, int(nominal * scale))


def _fifo(requests) -> list[int]:
    return list(range(len(requests)))


def _priority(requests) -> list[int]:
    return sorted(range(len(requests)), key=lambda i: (-requests[i].priority, i))


def _bucketed(requests) -> list[int]:
    # Sort key: (size bucket, normalized workload key, submission index).
    # The workload key (not the raw request fields) keeps equal workloads
    # adjacent even when callers mix representations (scale=1 vs 1.0); the
    # trailing submission index is the explicit tie-break, so requests that
    # compare equal on everything else always keep arrival order — sorted()
    # never has to compare beyond the tuple, and the order is deterministic
    # for any input.
    def key(i):
        req = requests[i]
        bucket = int(math.log2(estimate_points(req.benchmark, req.scale)))
        return (bucket, req.workload_key, i)

    return sorted(range(len(requests)), key=key)


_POLICY_FNS = {"fifo": _fifo, "priority": _priority, "bucketed": _bucketed}


def schedule(requests, policy: str = "fifo") -> list[int]:
    """Execution order (indices into ``requests``) under ``policy``."""
    if policy not in _POLICY_FNS:
        raise ValueError(f"unknown policy {policy!r}; known: {sorted(POLICIES)}")
    order = _POLICY_FNS[policy](list(requests))
    assert sorted(order) == list(range(len(order)))
    return order
