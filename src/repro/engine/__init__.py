"""Batched simulation engine with kernel-map caching.

Serves streams of point-cloud simulation requests through shared hardware
models, memoizing mapping results (content-addressed :class:`MapCache`) and
whole request workloads across the batch.  See ``README.md`` ("Simulation
engine") for the architecture sketch and cache-key semantics.
"""

from .backends import ACCELERATORS, backend_names, resolve_backend
from .engine import EngineStats, SimRequest, SimResult, SimulationEngine, run_cold
from .map_cache import MapCache, MapCacheStats
from .scheduler import POLICIES, estimate_points, schedule

__all__ = [
    "ACCELERATORS",
    "EngineStats",
    "MapCache",
    "MapCacheStats",
    "POLICIES",
    "SimRequest",
    "SimResult",
    "SimulationEngine",
    "backend_names",
    "estimate_points",
    "resolve_backend",
    "run_cold",
    "schedule",
]
