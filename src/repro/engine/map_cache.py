"""Content-addressed memoization of mapping results.

PointAcc's MMU keeps neighbor maps and kernel maps resident so repeated
geometry never pays the mapping pipeline twice (paper Section 4.2); Mesorasi
amortizes the same work by restructuring the network.  :class:`MapCache` is
the host-simulation analogue: a bounded LRU keyed on the *content* of the
coordinate arrays plus the op parameters, shared across layers, models and
requests by the simulation engine.

Keys are BLAKE2b digests over the raw bytes of every input array (dtype and
shape included) plus a canonical rendering of the scalar parameters, so two
requests that present the same geometry — same cloud object or a fresh copy
with equal values — hit the same entry, while any numeric difference misses.

Cached values are never handed out by reference: hits return a deep copy of
the stored arrays (`owned arrays`), so a caller mutating its result can
never corrupt later hits.  This mirrors the contract the reference mapping
ops themselves guarantee (see ``tests/mapping/test_boundaries.py``).
Hit/miss bookkeeping is observable through :meth:`MapCache.stats`; a hit
must never change a simulation *result*, only its wall-clock cost.

The cache exposes two surfaces:

* :meth:`MapCache.memoize` — the one-shot lookup-or-compute path the
  mapping hooks call;
* :meth:`MapCache.get` / :meth:`MapCache.put` keyed by the BLAKE2b digest —
  the tier primitives :class:`repro.mapping.hooks.TieredLookup` and the
  cluster's shared L2 store compose over.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..mapping.hooks import count_by_op
from ..mapping.maps import MapTable
from ..obs.ledger import current_ledger as _current_ledger

__all__ = ["MapCache", "MapCacheStats"]

#: Bound on the remembered-evicted-digest set (see MapCache._evicted).
_EVICTED_MEMORY = 1 << 16


def _copy_value(value):
    """Deep-copy a cacheable value (ndarray, MapTable, or tuple of them)."""
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, MapTable):
        return MapTable(
            value.in_idx.copy(),
            value.out_idx.copy(),
            value.weight_idx.copy(),
            value.kernel_volume,
        )
    if isinstance(value, tuple):
        return tuple(_copy_value(v) for v in value)
    raise TypeError(f"uncacheable mapping result type: {type(value).__name__}")


def _value_bytes(value) -> int:
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, MapTable):
        return value.in_idx.nbytes + value.out_idx.nbytes + value.weight_idx.nbytes
    if isinstance(value, tuple):
        return sum(_value_bytes(v) for v in value)
    return 0


@dataclass
class MapCacheStats:
    """Observable cache behaviour; aggregated and per-op.

    ``eviction_misses`` counts the subset of ``misses`` whose key was
    previously resident but got evicted — a capacity problem, not cold
    traffic.  Before this split an undersized cache and a cold cache were
    indistinguishable in ``EngineStats``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    eviction_misses: int = 0
    stored_bytes: int = 0
    by_op: dict = field(default_factory=dict)  # op -> {"hits": int, "misses": int}
    extra: dict = field(default_factory=dict)  # subclass counters (e.g. disk tier)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def _count(self, op: str, hit: bool) -> None:
        count_by_op(self.by_op, op, hit)
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def snapshot(self) -> dict:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "eviction_misses": self.eviction_misses,
            "stored_mb": self.stored_bytes / 1e6,
            "by_op": {op: dict(c) for op, c in self.by_op.items()},
        }
        out.update(self.extra)
        return out


class MapCache:
    """Bounded content-addressed LRU for mapping results.

    ``max_entries`` bounds the entry count; ``max_bytes`` bounds the resident
    array payload (least-recently-used entries are dropped first on either
    limit).  Install with :func:`repro.mapping.use_map_cache` to make every
    FPS / kNN / ball-query / kernel-map call inside the block consult it.
    """

    def __init__(self, max_entries: int = 4096, max_bytes: int = 256 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._stats = MapCacheStats()
        self._entries: OrderedDict[bytes, object] = OrderedDict()
        # Digests seen leaving the cache, so a later miss on one of them can
        # be attributed to capacity (bounded: oldest forgotten first).
        self._evicted: OrderedDict[bytes, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> MapCacheStats:
        """Live counters (same protocol as ``SimulationEngine.stats()``)."""
        return self._stats

    @staticmethod
    def key(op: str, arrays, params: dict) -> bytes:
        """Content digest of one mapping call."""
        h = hashlib.blake2b(digest_size=16)
        h.update(op.encode())
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        for name in sorted(params):
            h.update(name.encode())
            h.update(repr(params[name]).encode())
        return h.digest()

    # ------------------------------------------------------------------
    # Tier primitives: digest-keyed lookup/insert, used by TieredLookup
    # ------------------------------------------------------------------

    def get(self, key: bytes, op: str = "?", copy: bool = True):
        """Owned copy of the entry under ``key``, or ``None`` (counted).

        ``copy=False`` returns the stored object itself — for callers in
        the immutable-value regime (the tile fronts: sub-entries are
        composed from, never written to), where deep-copying thousands of
        small arrays per frame is pure overhead.  Such a caller must never
        mutate what it gets back.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._stats._count(op, hit=True)
            return _copy_value(entry) if copy else entry
        self._stats._count(op, hit=False)
        if key in self._evicted:
            self._stats.eviction_misses += 1
        return None

    def put(self, key: bytes, value, op: str = "?", copy: bool = True) -> None:
        """Store a private copy of ``value`` under ``key`` (not counted).

        ``copy=False`` stores ``value`` by reference (same immutable-value
        contract as :meth:`get`).
        """
        stored = _copy_value(value) if copy else value
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._stats.stored_bytes -= _value_bytes(previous)
        self._entries[key] = stored
        self._stats.stored_bytes += _value_bytes(stored)
        self._evicted.pop(key, None)
        self._evict()

    def get_many(self, keys, op: str = "?", copy: bool = True) -> list:
        """Batched :meth:`get`: one call, N probes, per-key counting.

        Routed through :meth:`get` so subclasses with side channels (the
        shared store's disk spill) stay correct; the win over N caller
        loops is that the tier boundary — and, through
        :meth:`repro.mapping.hooks.TieredLookup.get_many`, the whole
        chain traversal — is crossed once per batch.
        """
        return [self.get(key, op, copy=copy) for key in keys]

    def put_many(self, keys, values, op: str = "?", copy: bool = True) -> None:
        """Batched :meth:`put` (same per-key semantics)."""
        for key, value in zip(keys, values):
            self.put(key, value, op, copy=copy)

    def memoize(self, op: str, arrays, params: dict, compute):
        """Return the cached result of ``compute()`` for this content key.

        On a hit the stored value is returned as a fresh deep copy; on a miss
        ``compute()`` runs and a private copy of its result is stored, so
        neither the caller's result nor the cache entry can alias the other.
        """
        key = self.key(op, arrays, params)
        entry = self.get(key, op)
        if entry is not None:
            return entry
        value = compute()
        self.put(key, value, op)
        return value

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries or (
            self._stats.stored_bytes > self.max_bytes and len(self._entries) > 1
        ):
            key, dropped = self._entries.popitem(last=False)
            nbytes = _value_bytes(dropped)
            self._stats.stored_bytes -= nbytes
            self._stats.evictions += 1
            ledger = _current_ledger()
            if ledger is not None:
                ledger.eviction("memory", key.hex(), nbytes)
            self._evicted[key] = None
            while len(self._evicted) > _EVICTED_MEMORY:
                self._evicted.popitem(last=False)

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry; optionally zero the counters too."""
        self._entries.clear()
        self._evicted.clear()
        if reset_stats:
            self._stats = MapCacheStats()
        else:
            self._stats.stored_bytes = 0
