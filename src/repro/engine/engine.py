"""The batched simulation engine: many clouds, shared models, cached maps.

The seed reproduction simulated exactly one cloud per call and recomputed
every FPS / kNN / ball-query / kernel-map table from scratch each time.
:class:`SimulationEngine` instead serves a *stream* of point-cloud requests
through shared backend models and two memoization layers:

1. an op-level :class:`~repro.engine.map_cache.MapCache` (content-addressed
   on coordinates + parameters) installed around every trace build, so
   repeated geometry never recomputes a mapping table — across layers,
   across models, and across requests;
2. a request-level trace/report memo: a request whose workload key
   ``(benchmark, scale, seed)`` was already served reuses the recorded
   trace and each backend's report outright (weights and maps resident,
   exactly the steady-state serving regime the ROADMAP targets).

Neither layer may change a simulated result — a cache hit affects wall
clock only.  ``tests/properties/test_prop_engine.py`` proves engine output
is bit-identical to cold sequential :class:`~repro.core.PointAccModel`
runs, with every cache configuration.

Reports returned for duplicate requests may be shared objects; treat
:class:`~repro.core.report.PerfReport` as immutable (every consumer in this
library does).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..baselines.mesorasi import UnsupportedModelError
from ..core.report import PerfReport
from ..mapping.hooks import TieredLookup, request_context, use_map_cache
from ..nn.models.registry import run_benchmark
from ..obs.ledger import ledger_frame
from ..obs.trace import current_tracer, span
from ..nn.trace import Trace
from .backends import resolve_backend
from .map_cache import MapCache
from .scheduler import POLICIES, schedule

__all__ = ["SimRequest", "SimResult", "EngineStats", "SimulationEngine", "run_cold"]


@dataclass(frozen=True)
class SimRequest:
    """One point-cloud simulation request.

    The cloud and network are named through the benchmark registry: the
    workload key ``(benchmark, scale, seed)`` fully determines the input
    cloud and model weights, so equal keys are the engine's unit of reuse.
    ``priority`` matters only under the ``priority`` scheduling policy;
    ``tag`` is free-form caller context echoed back on the result.

    ``tenant`` and ``deadline_ms`` are consumed by the cluster's QoS layer
    (:mod:`repro.cluster.qos`): ``deadline_ms`` is a wall-clock budget from
    admission to completion, ``tenant`` the fair-share accounting bucket.
    A bare engine ignores both — they never reach the workload key, so
    they cannot change a simulated result.

    ``geometry_only`` requests the feature-skipping execution mode for
    model families whose trace is a pure function of coordinates (see
    :func:`repro.nn.models.registry.run_benchmark`).  Like the QoS fields
    it stays out of the workload key: a geometry-only build and a full
    functional build of the same workload produce bit-identical traces and
    reports (property-enforced), so they are the same workload — only
    cheaper.  The streaming pipeline sets it for sparseconv frame streams.
    """

    benchmark: str
    scale: float = 0.25
    seed: int = 0
    priority: int = 0
    tag: str = ""
    tenant: str = ""
    deadline_ms: float | None = None
    geometry_only: bool = False

    @property
    def workload_key(self) -> tuple:
        return (self.benchmark, float(self.scale), int(self.seed))


@dataclass
class SimResult:
    """Per-request outcome: one report per backend plus provenance."""

    request: SimRequest
    index: int  # submission position within its batch/stream
    reports: dict[str, PerfReport] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)  # backend -> reason
    trace: Trace | None = None
    trace_reused: bool = False
    map_cache_hits: int = 0  # op-level hits during this request's build
    map_cache_misses: int = 0
    wall_seconds: float = 0.0
    shard: int | None = None  # set by EngineCluster: which shard executed
    deadline_met: bool | None = None  # set by the QoS layer when a deadline was given
    # Root telemetry spans for this request (repro.obs).  Populated only
    # when a tracer is active AND the request span has no enclosing span —
    # i.e. in worker processes, where the spans must ride the pickle back
    # so the dispatching side can re-parent them under its dispatch span.
    spans: list = field(default_factory=list)

    def report(self, backend: str | None = None) -> PerfReport:
        """The report of ``backend``.

        With no argument, returns the first backend that *produced* a
        report — which may not be the engine's first-configured backend if
        that one recorded an error for this workload (check ``errors``).
        """
        if not self.reports:
            raise KeyError(f"request {self.index}: no backend produced a report")
        if backend is None:
            backend = next(iter(self.reports))
        return self.reports[backend]


@dataclass
class EngineStats:
    """Aggregate engine behaviour since construction."""

    requests: int = 0
    wall_seconds: float = 0.0
    trace_builds: int = 0
    trace_reuses: int = 0
    report_reuses: int = 0
    backend_seconds: dict = field(default_factory=dict)  # modeled time totals
    map_cache: dict = field(default_factory=dict)  # MapCacheStats.snapshot()

    @property
    def throughput_rps(self) -> float:
        """Requests simulated per wall-clock second."""
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "trace_builds": self.trace_builds,
            "trace_reuses": self.trace_reuses,
            "report_reuses": self.report_reuses,
            "backend_seconds": dict(self.backend_seconds),
            "map_cache": dict(self.map_cache),
        }


class SimulationEngine:
    """Serve batches/streams of simulation requests through shared backends.

    Parameters
    ----------
    backends:
        Backend names (see :func:`repro.engine.backends.backend_names`);
        each request is simulated on every backend.  A backend that cannot
        run a workload (e.g. Mesorasi on SparseConv models) records an
        entry in ``SimResult.errors`` instead of failing the batch.
    policy:
        Scheduling policy (``fifo`` / ``priority`` / ``bucketed``).
    map_cache:
        Op-level cache instance, or ``None`` to disable op memoization.
        Defaults to a fresh :class:`MapCache`.
    l2:
        Optional shared second cache tier (e.g. the cluster's
        :class:`~repro.cluster.store.SharedMapStore`).  When given, trace
        builds run against a :class:`~repro.mapping.hooks.TieredLookup`
        chain ``[map_cache, l2]`` — the engine's private L1 backed by the
        injected shared store — instead of the L1 alone.
    tile_cache:
        Optional content-aware front (e.g. the streaming subsystem's
        :class:`~repro.stream.incremental.TileMapCache`) consulted before
        the digest tiers; it decomposes supported mapping ops into
        spatial-tile sub-lookups addressed into the same tier chain, so
        *overlapping* — not just identical — clouds hit.  Requires at
        least one digest tier to store sub-entries in.
    reuse_traces:
        Enable the request-level trace/report memo.
    overlap:
        Pipeline trace building with backend cost-model evaluation: while
        request ``k``'s backends run on the main thread, request ``k+1``'s
        trace builds in a single side thread — the host analogue of
        PointAcc running its mapping units concurrently with the matmul
        array.  Builds stay strictly sequential relative to each other
        (one builder thread), so every cache/memo sees the exact access
        order of the non-overlapped engine and results stay bit-identical
        (``tests/properties/test_prop_workers.py``); only the backend
        evaluation of the *previous* request runs concurrently, and
        backends never touch the mapping caches.
    """

    def __init__(
        self,
        backends=("pointacc",),
        policy: str = "fifo",
        map_cache: MapCache | None | str = "auto",
        l2=None,
        tile_cache=None,
        reuse_traces: bool = True,
        overlap: bool = False,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {sorted(POLICIES)}")
        if not backends:
            raise ValueError("engine needs at least one backend")
        self.policy = policy
        self.backends = {name: resolve_backend(name) for name in backends}
        self.map_cache = MapCache() if map_cache == "auto" else map_cache
        self.l2 = l2
        self.tile_cache = tile_cache
        tiers = [t for t in (self.map_cache, l2) if t is not None]
        if tile_cache is not None:
            if not tiers:
                raise ValueError(
                    "tile_cache needs at least one cache tier to store "
                    "sub-results in (map_cache and l2 are both disabled)"
                )
            self._lookup = TieredLookup(tiers, front=tile_cache)
        elif len(tiers) > 1:
            self._lookup = TieredLookup(tiers)
        else:
            self._lookup = tiers[0] if tiers else None
        self.reuse_traces = reuse_traces
        self.overlap = bool(overlap)
        self._trace_builder: ThreadPoolExecutor | None = None
        self._traces: dict[tuple, Trace] = {}
        self._reports: dict[tuple, PerfReport] = {}
        self._stats = EngineStats(
            backend_seconds={name: 0.0 for name in self.backends}
        )
        self._served = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _build_trace(self, request: SimRequest) -> tuple[Trace, bool, int, int]:
        key = request.workload_key
        if self.reuse_traces and key in self._traces:
            self._stats.trace_reuses += 1
            return self._traces[key], True, 0, 0
        if self._lookup is not None:
            ctx = use_map_cache(self._lookup)
            hits0 = self._lookup.stats().hits
            misses0 = self._lookup.stats().misses
        else:
            ctx = nullcontext()
            hits0 = misses0 = 0
        # The tenant and ledger-frame contexts are observability only
        # (cache-front hit attribution, recompute lineage); they must
        # never reach the compute path.
        with request_context(request.tenant), ledger_frame(request.tag), ctx:
            trace, _ = run_benchmark(
                request.benchmark, scale=request.scale, seed=request.seed,
                geometry_only=request.geometry_only,
            )
        if self._lookup is not None:
            hits = self._lookup.stats().hits - hits0
            misses = self._lookup.stats().misses - misses0
        else:
            hits = misses = 0
        trace.meta["map_cache"] = {"hits": hits, "misses": misses}
        trace.meta["workload_key"] = key
        self._stats.trace_builds += 1
        if self.reuse_traces:
            self._traces[key] = trace
        return trace, False, hits, misses

    def _build_traced(self, request: SimRequest):
        """``_build_trace`` plus a detached span for the overlap pipeline.

        Runs on the side thread, where a plain ``span()`` would start a
        new root; instead the span is detached and handed back in the
        tuple so ``_execute`` can attach it under the request span it
        belongs to.  Returns ``(trace, reused, hits, misses, span|None)``.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._build_trace(request) + (None,)
        with tracer.detached("trace_build", overlap=True) as bs:
            trace, reused, hits, misses = self._build_trace(request)
            if hits or misses:
                bs.count("cache_hits", hits)
                bs.count("cache_misses", misses)
        return trace, reused, hits, misses, bs

    def _execute(self, request: SimRequest, index: int, built=None) -> SimResult:
        t0 = time.perf_counter()
        tracer = current_tracer()
        with span("request", benchmark=request.benchmark, index=index) as req_span:
            build_span = None
            if built is not None and len(built) == 5:
                trace, reused, hits, misses, build_span = built
            elif built is not None:
                trace, reused, hits, misses = built
            else:
                with span("trace_build") as bs:
                    trace, reused, hits, misses = self._build_trace(request)
                    if hits or misses:
                        bs.count("cache_hits", hits)
                        bs.count("cache_misses", misses)
            if build_span is not None:
                # Overlap mode: the build ran detached on the side thread;
                # attribute it to this request explicitly.
                req_span.children.insert(0, build_span)
            result = SimResult(
                request=request,
                index=index,
                trace=trace,
                trace_reused=reused,
                map_cache_hits=hits,
                map_cache_misses=misses,
            )
            key = request.workload_key
            for name, backend in self.backends.items():
                rkey = (key, name)
                report = self._reports.get(rkey) if self.reuse_traces else None
                if report is not None:
                    self._stats.report_reuses += 1
                else:
                    with span("backend", backend=name):
                        try:
                            report = backend.run(trace)
                        except UnsupportedModelError as exc:
                            result.errors[name] = str(exc)
                            continue
                    if self.reuse_traces:
                        self._reports[rkey] = report
                result.reports[name] = report
                self._stats.backend_seconds[name] += report.total_seconds
            result.wall_seconds = time.perf_counter() - t0
        if tracer is not None and tracer.current() is None:
            # Parentless request span: this is a worker process (or a bare
            # engine run) — hand the tree to the result so callers across
            # the pipe can re-parent it.  When an enclosing span exists
            # (cluster dispatch, stream frame) the tree is already nested.
            result.spans = [req_span]
        self._stats.requests += 1
        self._stats.wall_seconds += result.wall_seconds
        return result

    def _run_ordered(self, requests, order, base: int):
        """Execute ``requests[i] for i in order``, yielding ``(i, result)``.

        With ``overlap`` enabled (and more than one request), request
        ``k+1``'s trace builds in the side thread while request ``k``'s
        backend cost models evaluate on this one.  The builder is a
        single thread and the next build is only submitted once the
        previous build has completed, so trace builds — the only phase
        that touches the mapping caches and the trace memo — run in
        exactly the sequential order and the pipeline can never change a
        result, only wall clock.
        """
        order = list(order)
        if not self.overlap or len(order) < 2:
            for i in order:
                yield i, self._execute(requests[i], base + i)
            return
        if self._trace_builder is None:
            self._trace_builder = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="trace-build"
            )
        pending = self._trace_builder.submit(self._build_traced, requests[order[0]])
        for pos, i in enumerate(order):
            built = pending.result()
            if pos + 1 < len(order):
                pending = self._trace_builder.submit(
                    self._build_traced, requests[order[pos + 1]]
                )
            yield i, self._execute(requests[i], base + i, built=built)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_batch(self, requests) -> list[SimResult]:
        """Simulate a batch; results come back in *submission* order.

        The scheduling policy controls execution order only — an observer
        of the returned list cannot tell which policy ran.
        """
        requests = list(requests)
        results: list[SimResult | None] = [None] * len(requests)
        order = schedule(requests, self.policy)
        for i, result in self._run_ordered(requests, order, self._served):
            results[i] = result
        self._served += len(requests)
        return results  # type: ignore[return-value]

    def stream(self, requests, window: int = 8):
        """Streaming iterator: schedule within a sliding window, yield results.

        Pulls up to ``window`` requests from the (possibly unbounded)
        iterable, orders that window under the engine's policy, executes it,
        and yields each :class:`SimResult` — so results arrive in execution
        order with bounded buffering.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        requests = iter(requests)
        while True:
            chunk = []
            for req in requests:
                chunk.append(req)
                if len(chunk) == window:
                    break
            if not chunk:
                return
            base = self._served
            order = schedule(chunk, self.policy)
            for _, result in self._run_ordered(chunk, order, base):
                yield result
            self._served += len(chunk)

    def stats(self) -> EngineStats:
        """Aggregate stats; the map-cache snapshot is taken at call time.

        With an injected L2 the snapshot is the tiered chain's: top-level
        hits/misses plus one nested snapshot per tier.
        """
        if self._lookup is not None:
            self._stats.map_cache = self._lookup.stats().snapshot()
        return self._stats


def run_cold(request: SimRequest, backends=("pointacc",)) -> SimResult:
    """The no-engine baseline: fresh trace, fresh models, no caches.

    This is exactly what a sequential per-cloud simulation did before the
    engine existed — the comparison anchor for the throughput benchmark and
    the bit-identity oracle for the property tests.
    """
    t0 = time.perf_counter()
    trace, _ = run_benchmark(
        request.benchmark, scale=request.scale, seed=request.seed,
        geometry_only=request.geometry_only,
    )
    result = SimResult(request=request, index=0, trace=trace)
    for name in backends:
        try:
            result.reports[name] = resolve_backend(name).run(trace)
        except UnsupportedModelError as exc:
            result.errors[name] = str(exc)
    result.wall_seconds = time.perf_counter() - t0
    return result
