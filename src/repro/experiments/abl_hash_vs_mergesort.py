"""Section 4.1.1 ablation — merge-sort vs hash-table kernel mapping on-chip.

Paper: "our mergesort-based solution could provide 1.4x speedup while
saving up to 14x area compared to the hash-table-based design with the same
parallelism."  Cycles come from the two MPU cost models on a real
downsampling layer; area from the 40 nm component model.
"""

from __future__ import annotations

from ..core.area import AreaModel
from ..core.config import POINTACC_EDGE, POINTACC_FULL
from ..core.mpu.unit import MappingUnit
from ..nn.models.registry import build_trace
from ..nn.trace import LayerKind
from .common import ExperimentResult

__all__ = ["run", "PAPER_SPEEDUP", "PAPER_AREA_RATIO"]

PAPER_SPEEDUP = 1.4
PAPER_AREA_RATIO = 14.0


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trace = build_trace("MinkNet(o)", scale=scale, seed=seed)
    kmaps = [
        s for s in trace.by_kind(LayerKind.MAP_KERNEL)
        if not s.params.get("cached")
    ]
    rows = []
    data: dict = {"layers": [], "area": {}}
    for config in (POINTACC_FULL, POINTACC_EDGE):
        mpu = MappingUnit(config)
        from ..core.accelerator import PointAccModel

        model = PointAccModel(config)
        merge_total = hash_total = 0.0
        for spec in kmaps:
            merge_total += model._mapping_stats(spec).cycles
            hash_total += mpu.hash_kernel_map_cycles(
                spec.n_in, spec.n_out, spec.kernel_volume
            )
        speedup = hash_total / merge_total
        area = AreaModel(config)
        area_ratio = area.hash_vs_mergesort_ratio()
        data["layers"].append(
            {"config": config.name, "merge_cycles": merge_total,
             "hash_cycles": hash_total, "speedup": speedup,
             "area_ratio": area_ratio}
        )
        rows.append([
            config.name,
            f"{merge_total:.0f}",
            f"{hash_total:.0f}",
            f"{speedup:.2f}x (paper {PAPER_SPEEDUP}x)",
            f"{area_ratio:.1f}x (paper up to {PAPER_AREA_RATIO:.0f}x)",
        ])
    return ExperimentResult(
        experiment_id="abl-hash",
        title="Merge-sort vs hash-table kernel mapping "
              f"({len(kmaps)} uncached layers of MinkNet(o))",
        headers=["config", "mergesort cycles", "hash cycles",
                 "mergesort speedup", "hash area penalty"],
        rows=rows,
        data=data,
    )
