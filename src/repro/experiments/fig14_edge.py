"""Fig. 14 — PointAcc.Edge vs edge devices (Jetson NX / Nano, Raspberry Pi).

Paper headline: 2.5x / 9.8x / 141x speedup and 7.8x / 16x / 127x energy
savings (geomean over the 8-network suite).
"""

from __future__ import annotations

from .common import (
    ALL_BENCHMARKS,
    ExperimentResult,
    edge_report,
    geomean,
    platform_report,
)

__all__ = ["PAPER_SPEEDUP", "PAPER_ENERGY", "run"]

PLATFORMS = ("Jetson Xavier NX", "Jetson Nano", "Raspberry Pi 4B")

PAPER_SPEEDUP = {
    "Jetson Xavier NX": {
        "PointNet": 2.2, "PointNet++(c)": 2.3, "PointNet++(ps)": 2.7,
        "DGCNN": 3.4, "F-PointNet++": 2.8, "PointNet++(s)": 4.6,
        "MinkNet(i)": 2.1, "MinkNet(o)": 1.3, "GeoMean": 2.5,
    },
    "Jetson Nano": {
        "PointNet": 6.7, "PointNet++(c)": 7.8, "PointNet++(ps)": 10,
        "DGCNN": 14, "F-PointNet++": 11, "PointNet++(s)": 23,
        "MinkNet(i)": 8.3, "MinkNet(o)": 5.4, "GeoMean": 9.8,
    },
    "Raspberry Pi 4B": {
        "PointNet": 148, "PointNet++(c)": 159, "PointNet++(ps)": 156,
        "DGCNN": 131, "F-PointNet++": 262, "PointNet++(s)": 181,
        "MinkNet(i)": 107, "MinkNet(o)": 63, "GeoMean": 141,
    },
}

PAPER_ENERGY = {
    "Jetson Xavier NX": {
        "PointNet": 9.0, "PointNet++(c)": 7.3, "PointNet++(ps)": 11,
        "DGCNN": 12, "F-PointNet++": 7.8, "PointNet++(s)": 15,
        "MinkNet(i)": 4.4, "MinkNet(o)": 3.2, "GeoMean": 7.8,
    },
    "Jetson Nano": {
        "PointNet": 19, "PointNet++(c)": 12, "PointNet++(ps)": 17,
        "DGCNN": 23, "F-PointNet++": 21, "PointNet++(s)": 40,
        "MinkNet(i)": 8.5, "MinkNet(o)": 7.2, "GeoMean": 16,
    },
    "Raspberry Pi 4B": {
        "PointNet": 273, "PointNet++(c)": 159, "PointNet++(ps)": 129,
        "DGCNN": 110, "F-PointNet++": 250, "PointNet++(s)": 156,
        "MinkNet(i)": 66, "MinkNet(o)": 44, "GeoMean": 127,
    },
}


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Measure speedup/energy of PointAcc.Edge over each edge device."""
    headers = ["network"]
    for plat in PLATFORMS:
        headers += [f"{plat} speedup", "(paper)", f"{plat} energy", "(paper)"]
    rows = []
    data: dict = {"speedup": {p: {} for p in PLATFORMS},
                  "energy": {p: {} for p in PLATFORMS}}
    for net in ALL_BENCHMARKS:
        edge = edge_report(net, scale, seed)
        row = [net]
        for plat in PLATFORMS:
            rep = platform_report(plat, net, scale, seed)
            speedup = rep.total_seconds / edge.total_seconds
            energy = rep.energy_joules / edge.energy_joules
            data["speedup"][plat][net] = speedup
            data["energy"][plat][net] = energy
            row += [
                f"{speedup:.1f}x", f"{PAPER_SPEEDUP[plat][net]:.1f}x",
                f"{energy:.0f}x", f"{PAPER_ENERGY[plat][net]:.0f}x",
            ]
        rows.append(row)
    geo_row = ["GeoMean"]
    for plat in PLATFORMS:
        gs = geomean(data["speedup"][plat].values())
        ge = geomean(data["energy"][plat].values())
        data["speedup"][plat]["GeoMean"] = gs
        data["energy"][plat]["GeoMean"] = ge
        geo_row += [
            f"{gs:.1f}x", f"{PAPER_SPEEDUP[plat]['GeoMean']:.1f}x",
            f"{ge:.0f}x", f"{PAPER_ENERGY[plat]['GeoMean']:.0f}x",
        ]
    rows.append(geo_row)
    return ExperimentResult(
        experiment_id="fig14",
        title="PointAcc.Edge speedup / energy savings over edge devices",
        headers=headers,
        rows=rows,
        data=data,
    )
