"""Section 4.1.4 ablation — MPU TopK vs a quick-select engine (SpAtten).

Paper: "on average our design is 1.18x faster than the quick-selection-
based top-k engine proposed in SpAtten with the same parallelism", for the
small k (16/32/64) and large n (e.g. 8192) typical of point-cloud models.
"""

from __future__ import annotations

from statistics import mean

from ..core.config import POINTACC_FULL
from ..core.mpu.topk import quickselect_topk_cycles, topk_cycles
from .common import ExperimentResult, geomean

__all__ = ["run", "PAPER_SPEEDUP", "CASES"]

PAPER_SPEEDUP = 1.18
CASES = ((8192, 16), (8192, 32), (8192, 64), (4096, 32), (16384, 32))
N_TRIALS = 64  # quick-select is data-dependent; average over pivot draws


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    width = POINTACC_FULL.merger_width
    lanes = width // 2  # matched parallelism: comparators consumed per cycle
    rows = []
    ratios = []
    data: dict = {"cases": []}
    for n, k in CASES:
        mpu = topk_cycles(n, k, width)
        qs = mean(
            quickselect_topk_cycles(n, k, lanes, seed=seed + t)
            for t in range(N_TRIALS)
        )
        ratio = qs / mpu
        ratios.append(ratio)
        data["cases"].append(
            {"n": n, "k": k, "mpu_cycles": mpu, "quickselect_cycles": qs,
             "speedup": ratio}
        )
        rows.append([
            f"n={n}, k={k}", f"{mpu}", f"{qs:.0f}", f"{ratio:.2f}x",
        ])
    geo = geomean(ratios)
    data["geomean"] = geo
    rows.append(["GeoMean", "", "", f"{geo:.2f}x (paper {PAPER_SPEEDUP}x)"])
    return ExperimentResult(
        experiment_id="abl-topk",
        title="MPU merge-tree TopK vs quick-select engine (cycles)",
        headers=["case", "MPU cycles", "quick-select cycles", "MPU speedup"],
        rows=rows,
        data=data,
    )
