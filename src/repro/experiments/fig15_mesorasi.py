"""Fig. 15 — PointAcc.Edge vs Mesorasi (SW on Nano / RPi, and HW).

Paper bars (speedup of PointAcc.Edge): over Mesorasi-SW on Jetson Nano
10/9.3/19/21 (geo 14); over Mesorasi-SW on Raspberry Pi 109/87/209/134
(geo 128); over Mesorasi-HW 2.5/3.1/6.2/7.1 (geo 4.3).  Note the running
text quotes "1.3x speedup and 11x energy savings over Mesorasi hardware",
which disagrees with the figure's own geomean — EXPERIMENTS.md records
both; we compare against the figure bars.
"""

from __future__ import annotations

from ..baselines.mesorasi import mesorasi_sw
from ..baselines.registry import get_platform
from ..nn.models.registry import build_trace
from .common import (
    MESORASI_BENCHMARKS,
    ExperimentResult,
    edge_report,
    geomean,
    mesorasi_report,
)

__all__ = ["PAPER_SPEEDUP", "PAPER_ENERGY", "run"]

PAPER_SPEEDUP = {
    "Mesorasi-SW on Jetson Nano": {
        "PointNet++(c)": 10, "PointNet++(ps)": 9.3,
        "F-PointNet++": 19, "PointNet++(s)": 21, "GeoMean": 14,
    },
    "Mesorasi-SW on Raspberry Pi 4B": {
        "PointNet++(c)": 109, "PointNet++(ps)": 87,
        "F-PointNet++": 209, "PointNet++(s)": 134, "GeoMean": 128,
    },
    "Mesorasi-HW": {
        "PointNet++(c)": 2.5, "PointNet++(ps)": 3.1,
        "F-PointNet++": 6.2, "PointNet++(s)": 7.1, "GeoMean": 4.3,
    },
}

PAPER_ENERGY = {
    "Mesorasi-SW on Jetson Nano": {
        "PointNet++(c)": 9.6, "PointNet++(ps)": 11,
        "F-PointNet++": 18, "PointNet++(s)": 28, "GeoMean": 15,
    },
    "Mesorasi-SW on Raspberry Pi 4B": {
        "PointNet++(c)": 103, "PointNet++(ps)": 68,
        "F-PointNet++": 186, "PointNet++(s)": 113, "GeoMean": 110,
    },
    "Mesorasi-HW": {
        "PointNet++(c)": 5.8, "PointNet++(ps)": 8.7,
        "F-PointNet++": 14, "PointNet++(s)": 22, "GeoMean": 11,
    },
}


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """PointAcc.Edge vs the three Mesorasi configurations."""
    baselines = list(PAPER_SPEEDUP)
    headers = ["network"]
    for b in baselines:
        headers += [f"{b} speedup", "(paper)", "energy", "(paper)"]
    rows = []
    data: dict = {"speedup": {b: {} for b in baselines},
                  "energy": {b: {} for b in baselines}}
    nano = get_platform("Jetson Nano")
    rpi = get_platform("Raspberry Pi 4B")
    for net in MESORASI_BENCHMARKS:
        edge = edge_report(net, scale, seed)
        trace = build_trace(net, scale=scale, seed=seed)
        reports = {
            "Mesorasi-SW on Jetson Nano": mesorasi_sw(trace, nano),
            "Mesorasi-SW on Raspberry Pi 4B": mesorasi_sw(trace, rpi),
            "Mesorasi-HW": mesorasi_report(net, scale, seed),
        }
        row = [net]
        for b in baselines:
            rep = reports[b]
            speedup = rep.total_seconds / edge.total_seconds
            energy = rep.energy_joules / edge.energy_joules
            data["speedup"][b][net] = speedup
            data["energy"][b][net] = energy
            row += [
                f"{speedup:.1f}x", f"{PAPER_SPEEDUP[b][net]:.1f}x",
                f"{energy:.1f}x", f"{PAPER_ENERGY[b][net]:.1f}x",
            ]
        rows.append(row)
    geo_row = ["GeoMean"]
    for b in baselines:
        gs = geomean(data["speedup"][b].values())
        ge = geomean(data["energy"][b].values())
        data["speedup"][b]["GeoMean"] = gs
        data["energy"][b]["GeoMean"] = ge
        geo_row += [
            f"{gs:.1f}x", f"{PAPER_SPEEDUP[b]['GeoMean']:.1f}x",
            f"{ge:.1f}x", f"{PAPER_ENERGY[b]['GeoMean']:.1f}x",
        ]
    rows.append(geo_row)
    return ExperimentResult(
        experiment_id="fig15",
        title="PointAcc.Edge vs Mesorasi (software and hardware)",
        headers=headers,
        rows=rows,
        data=data,
    )
