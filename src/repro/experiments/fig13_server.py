"""Fig. 13 — PointAcc vs server platforms (RTX 2080Ti, TPU V3, Xeon 6130).

Paper headline: 3.7x / 53x / 90x speedup and 22x / 210x / 176x energy
savings (geomean over the 8-network suite).
"""

from __future__ import annotations

from .common import (
    ALL_BENCHMARKS,
    ExperimentResult,
    geomean,
    platform_report,
    pointacc_report,
)

__all__ = ["PAPER_SPEEDUP", "PAPER_ENERGY", "run"]

PLATFORMS = ("RTX 2080Ti", "Xeon Skylake + TPU V3", "Xeon Gold 6130")

# Paper Fig. 13 per-benchmark bars (speedup of PointAcc over each platform).
PAPER_SPEEDUP = {
    "RTX 2080Ti": {
        "PointNet": 3.7, "PointNet++(c)": 2.8, "PointNet++(ps)": 2.8,
        "DGCNN": 3.7, "F-PointNet++": 3.7, "PointNet++(s)": 4.7,
        "MinkNet(i)": 8.3, "MinkNet(o)": 2.4, "GeoMean": 3.7,
    },
    "Xeon Skylake + TPU V3": {
        "PointNet": 27, "PointNet++(c)": 113, "PointNet++(ps)": 37,
        "DGCNN": 3.4, "F-PointNet++": 269, "PointNet++(s)": 88,
        "MinkNet(i)": 102, "MinkNet(o)": 71, "GeoMean": 53,
    },
    "Xeon Gold 6130": {
        "PointNet": 127, "PointNet++(c)": 97, "PointNet++(ps)": 82,
        "DGCNN": 65, "F-PointNet++": 131, "PointNet++(s)": 106,
        "MinkNet(i)": 94, "MinkNet(o)": 51, "GeoMean": 90,
    },
}

PAPER_ENERGY = {
    "RTX 2080Ti": {
        "PointNet": 18, "PointNet++(c)": 14, "PointNet++(ps)": 25,
        "DGCNN": 27, "F-PointNet++": 16, "PointNet++(s)": 45,
        "MinkNet(i)": 36, "MinkNet(o)": 13, "GeoMean": 22,
    },
    "Xeon Skylake + TPU V3": {
        "PointNet": 1319, "PointNet++(c)": 169, "PointNet++(ps)": 99,
        "DGCNN": 38, "F-PointNet++": 682, "PointNet++(s)": 161,
        "MinkNet(i)": 324, "MinkNet(o)": 127, "GeoMean": 210,
    },
    "Xeon Gold 6130": {
        "PointNet": 172, "PointNet++(c)": 119, "PointNet++(ps)": 152,
        "DGCNN": 91, "F-PointNet++": 394, "PointNet++(s)": 221,
        "MinkNet(i)": 268, "MinkNet(o)": 139, "GeoMean": 176,
    },
}


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Measure speedup/energy of PointAcc over each server platform."""
    headers = ["network"]
    for plat in PLATFORMS:
        headers += [f"{plat} speedup", "(paper)", f"{plat} energy", "(paper)"]
    rows = []
    data: dict = {"speedup": {p: {} for p in PLATFORMS},
                  "energy": {p: {} for p in PLATFORMS}}
    for net in ALL_BENCHMARKS:
        pa = pointacc_report(net, scale, seed)
        row = [net]
        for plat in PLATFORMS:
            rep = platform_report(plat, net, scale, seed)
            speedup = rep.total_seconds / pa.total_seconds
            energy = rep.energy_joules / pa.energy_joules
            data["speedup"][plat][net] = speedup
            data["energy"][plat][net] = energy
            row += [
                f"{speedup:.1f}x", f"{PAPER_SPEEDUP[plat][net]:.1f}x",
                f"{energy:.0f}x", f"{PAPER_ENERGY[plat][net]:.0f}x",
            ]
        rows.append(row)
    geo_row = ["GeoMean"]
    for plat in PLATFORMS:
        gs = geomean(data["speedup"][plat].values())
        ge = geomean(data["energy"][plat].values())
        data["speedup"][plat]["GeoMean"] = gs
        data["energy"][plat]["GeoMean"] = ge
        geo_row += [
            f"{gs:.1f}x", f"{PAPER_SPEEDUP[plat]['GeoMean']:.1f}x",
            f"{ge:.0f}x", f"{PAPER_ENERGY[plat]['GeoMean']:.0f}x",
        ]
    rows.append(geo_row)
    return ExperimentResult(
        experiment_id="fig13",
        title="PointAcc speedup / energy savings over server platforms",
        headers=headers,
        rows=rows,
        data=data,
    )
