"""Table 2 — the evaluation benchmark suite.

Eight networks over five datasets covering all mapping-operation categories
of Table 1; this runner also *executes* each benchmark at a small scale to
certify the whole suite is runnable end to end.
"""

from __future__ import annotations

from ..nn.models.registry import BENCHMARKS, run_benchmark
from .common import ExperimentResult

__all__ = ["run"]


def run(scale: float = 0.1, seed: int = 0) -> ExperimentResult:
    rows = []
    data = {}
    for notation, bench in BENCHMARKS.items():
        trace, _ = run_benchmark(notation, scale=scale, seed=seed)
        summary = trace.summary()
        kinds = sorted({s.kind.value for s in trace.mapping_specs})
        data[notation] = summary
        rows.append([
            bench.application,
            bench.dataset,
            notation,
            bench.family,
            summary["layers"],
            ",".join(k.removeprefix("map_") for k in kinds) or "-",
        ])
    return ExperimentResult(
        experiment_id="tab02",
        title="Evaluation benchmarks (executed end-to-end)",
        headers=["application", "dataset", "model", "family", "trace ops",
                 "mapping ops used"],
        rows=rows,
        data=data,
    )
