"""Design-space ablations of the choices DESIGN.md calls out.

The paper fixes one design point per configuration (Table 3); these sweeps
show *why* those points are reasonable by varying one axis at a time on the
headline MinkNet(o) workload:

* systolic-array size (PE count at fixed everything else) — latency floors
  out once the array outruns DRAM;
* merger width N — mapping time scales ~1/N until it vanishes under the
  matmul time (the paper's N=64 sits past the knee);
* DRAM technology — HBM2 vs DDR4 vs LPDDR3 at the full configuration
  (why the edge part is DDR4 while the full part needs HBM2);
* input-buffer capacity — cache miss traffic vs SRAM spend.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.accelerator import PointAccModel
from ..core.config import (
    DDR4_2133,
    HBM2,
    LPDDR3_1600,
    POINTACC_FULL,
    SRAMBudget,
)
from ..nn.models.registry import build_trace
from .common import ExperimentResult

__all__ = ["run", "sweep_pe_array", "sweep_merger_width", "sweep_dram",
           "sweep_input_buffer"]

NETWORK = "MinkNet(o)"


def sweep_pe_array(trace) -> list[dict]:
    rows = []
    for dim in (16, 32, 64, 128):
        config = replace(POINTACC_FULL, pe_rows=dim, pe_cols=dim,
                         name=f"{dim}x{dim}")
        rep = PointAccModel(config).run(trace)
        rows.append({
            "dim": dim,
            "latency_ms": rep.total_seconds * 1e3,
            "energy_mj": rep.energy_joules * 1e3,
            "matmul_frac": rep.latency_fractions()["matmul"],
        })
    return rows


def sweep_merger_width(trace) -> list[dict]:
    rows = []
    for width in (8, 16, 32, 64, 128):
        config = replace(POINTACC_FULL, merger_width=width,
                         name=f"N={width}")
        rep = PointAccModel(config).run(trace)
        breakdown = rep.latency_breakdown()
        rows.append({
            "width": width,
            "latency_ms": rep.total_seconds * 1e3,
            "mapping_ms": breakdown["mapping"] * 1e3,
        })
    return rows


def sweep_dram(trace) -> list[dict]:
    rows = []
    for dram in (HBM2, DDR4_2133, LPDDR3_1600):
        config = replace(POINTACC_FULL, dram=dram, name=dram.name)
        rep = PointAccModel(config).run(trace)
        frac = rep.latency_fractions()
        rows.append({
            "dram": dram.name,
            "latency_ms": rep.total_seconds * 1e3,
            "movement_frac": frac["movement"],
            "energy_mj": rep.energy_joules * 1e3,
        })
    return rows


def sweep_input_buffer(trace) -> list[dict]:
    rows = []
    base = POINTACC_FULL.sram
    for input_kb in (32, 64, 128, 256, 512):
        sram = SRAMBudget(
            input_kb=float(input_kb), weight_kb=base.weight_kb,
            output_kb=base.output_kb, sorter_kb=base.sorter_kb,
            merger_kb=base.merger_kb, map_fifo_kb=base.map_fifo_kb,
            misc_kb=base.misc_kb,
        )
        config = replace(POINTACC_FULL, sram=sram, name=f"in={input_kb}KB")
        rep = PointAccModel(config).run(trace)
        rows.append({
            "input_kb": input_kb,
            "dram_mb": rep.dram_bytes / 1e6,
            "latency_ms": rep.total_seconds * 1e3,
        })
    return rows


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trace = build_trace(NETWORK, scale=scale, seed=seed)
    pe = sweep_pe_array(trace)
    width = sweep_merger_width(trace)
    dram = sweep_dram(trace)
    buffers = sweep_input_buffer(trace)
    rows = []
    for r in pe:
        rows.append(["PE array", f"{r['dim']}x{r['dim']}",
                     f"{r['latency_ms']:.2f} ms",
                     f"{r['energy_mj']:.1f} mJ",
                     f"matmul {r['matmul_frac'] * 100:.0f}%"])
    for r in width:
        rows.append(["merger width", f"N={r['width']}",
                     f"{r['latency_ms']:.2f} ms",
                     f"mapping {r['mapping_ms']:.3f} ms", ""])
    for r in dram:
        rows.append(["DRAM", r["dram"], f"{r['latency_ms']:.2f} ms",
                     f"{r['energy_mj']:.1f} mJ",
                     f"movement {r['movement_frac'] * 100:.0f}%"])
    for r in buffers:
        rows.append(["input buffer", f"{r['input_kb']} KB",
                     f"{r['latency_ms']:.2f} ms",
                     f"DRAM {r['dram_mb']:.1f} MB", ""])
    return ExperimentResult(
        experiment_id="abl-dse",
        title=f"Design-space sweeps on {NETWORK}",
        headers=["axis", "point", "latency", "metric", "note"],
        rows=rows,
        data={"pe": pe, "merger_width": width, "dram": dram,
              "input_buffer": buffers},
    )
