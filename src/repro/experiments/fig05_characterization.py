"""Fig. 5 — dataset density, #MACs per point, feature bytes per point.

Paper claims: point-cloud datasets are up to four orders of magnitude
sparser than ImageNet; point-cloud networks spend up to 100x more MACs per
point and 100x more feature bytes per point than 2D CNNs.
"""

from __future__ import annotations

from ..analysis.density import IMAGENET_DENSITY, dataset_density
from ..analysis.macs import CNN_REFERENCES, benchmark_workload
from ..pointcloud.datasets import DATASETS
from .common import ALL_BENCHMARKS, ExperimentResult

__all__ = ["run", "PAPER_DENSITY_BANDS"]

# Order-of-magnitude densities from Fig. 5 (left).
PAPER_DENSITY_BANDS = {
    "modelnet40": (1e-3, 1e-1),
    "shapenet": (1e-3, 1e-1),
    "kitti": (1e-5, 1e-3),
    "s3dis": (1e-3, 1e-1),
    "semantickitti": (1e-5, 1e-3),
}


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = [["ImageNet", "-", f"{IMAGENET_DENSITY:.0e}", "-", "-"]]
    density = {}
    for name in DATASETS:
        res = dataset_density(name, seed=seed, scale=scale)
        density[name] = res.density
        band = PAPER_DENSITY_BANDS[name]
        rows.append([
            name, f"{res.n_voxels}", f"{res.density:.1e}",
            f"{band[0]:.0e}..{band[1]:.0e}",
            "yes" if band[0] <= res.density <= band[1] else "NO",
        ])
    workload_rows = []
    workloads = {}
    for ref in CNN_REFERENCES:
        workload_rows.append([
            ref.name, "-", f"{ref.macs_per_point:.1e}",
            f"{ref.feature_bytes_per_point:.0f}",
        ])
    for net in ALL_BENCHMARKS:
        stats = benchmark_workload(net, scale=scale, seed=seed)
        workloads[net] = stats
        workload_rows.append([
            net, f"{stats.n_points}", f"{stats.macs_per_point:.1e}",
            f"{stats.feature_bytes_per_point:.0f}",
        ])
    return ExperimentResult(
        experiment_id="fig05",
        title="Dataset density (top) and per-point workload (bottom)",
        headers=["dataset/network", "points", "density | MACs/pt",
                 "paper band | feat B/pt", "in band"],
        rows=rows + [["--", "--", "--", "--", "--"]] + [
            r + [""] for r in workload_rows
        ],
        data={"density": density, "workloads": workloads},
    )
