"""Fig. 16 — network/accelerator co-design vs Mesorasi on S3DIS segmentation.

Mesorasi cannot run SparseConv models (no per-neighbor weights), so it is
stuck with PointNet++SSG; PointAcc.Edge co-designed with
Mini-MinkowskiUNet runs the same task with ~100x lower latency and +9.1
mIoU (62.6 vs 53.5 — published accuracies; see DESIGN.md on the accuracy
substitution).

Whole-scene latency: PointNet++SSG processes S3DIS in 4096-point blocks
(the standard pipeline), so scene latency is per-block latency times the
block count; Mini-MinkowskiUNet voxelizes and processes the scene in one
shot.
"""

from __future__ import annotations

from ..baselines.mesorasi import UnsupportedModelError
from ..nn.models.registry import MINI_MINKUNET, get_benchmark, build_trace
from ..pointcloud.datasets import get_dataset
from .common import ExperimentResult, edge_report, mesorasi_report

__all__ = ["PAPER_SPEEDUP", "PAPER_MIOU_GAIN", "run"]

PAPER_SPEEDUP = 100.0
PAPER_MIOU_GAIN = 9.1
BLOCK_POINTS = 4096


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    scene_points = int(get_dataset("s3dis").n_points * scale)
    n_blocks = max(1, scene_points // max(16, int(BLOCK_POINTS * scale)))

    # Mesorasi: PointNet++SSG block by block.
    meso_block = mesorasi_report("PointNet++(s)", scale, seed)
    meso_scene_s = meso_block.total_seconds * n_blocks
    meso_scene_j = meso_block.energy_joules * n_blocks
    pnpp_miou = get_benchmark("PointNet++(s)").published["miou"]

    # PointAcc.Edge: Mini-MinkowskiUNet on the whole scene.
    mini = edge_report("Mini-MinkowskiUNet", scale, seed)
    mini_miou = MINI_MINKUNET.published["miou"]

    # Mesorasi cannot run the sparse model at all.
    try:
        mesorasi_report("Mini-MinkowskiUNet", scale, seed)
        sparse_rejected = False
    except UnsupportedModelError:
        sparse_rejected = True

    speedup = meso_scene_s / mini.total_seconds
    rows = [
        ["Mesorasi-HW + PointNet++SSG", f"{meso_scene_s * 1e3:.1f}",
         f"{meso_scene_j * 1e3:.1f}", f"{pnpp_miou:.1f}"],
        ["PointAcc.Edge + Mini-MinkowskiUNet", f"{mini.total_seconds * 1e3:.2f}",
         f"{mini.energy_joules * 1e3:.2f}", f"{mini_miou:.1f}"],
        ["ratio / delta", f"{speedup:.0f}x (paper ~{PAPER_SPEEDUP:.0f}x)",
         f"{meso_scene_j / mini.energy_joules:.0f}x",
         f"+{mini_miou - pnpp_miou:.1f} (paper +{PAPER_MIOU_GAIN:.1f})"],
    ]
    return ExperimentResult(
        experiment_id="fig16",
        title="Co-design: Mini-MinkowskiUNet on PointAcc.Edge vs Mesorasi "
              f"(S3DIS scene, {n_blocks} blocks)",
        headers=["system", "latency (ms)", "energy (mJ)", "mIoU"],
        rows=rows,
        data={
            "speedup": speedup,
            "miou_gain": mini_miou - pnpp_miou,
            "sparse_rejected_by_mesorasi": sparse_rejected,
            "n_blocks": n_blocks,
        },
    )
