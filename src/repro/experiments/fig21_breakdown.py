"""Fig. 21 — latency and energy breakdown of PointAcc on MinkNet(o).

Paper: with mapping supported on-chip and data movement overlapped behind
the systolic array, MatMul dominates PointAcc's latency; energy splits
roughly 74% compute / 6% SRAM / 20% DRAM — unlike prior accelerators where
DRAM dominates.
"""

from __future__ import annotations

from .common import ExperimentResult, platform_report, pointacc_report

__all__ = ["run", "PAPER_ENERGY_PIE"]

PAPER_ENERGY_PIE = {"compute": 0.74, "sram": 0.06, "dram": 0.20}
NETWORK = "MinkNet(o)"
COMPARED = (("Xeon Skylake + TPU V3", "CPU+TPU"), ("RTX 2080Ti", "GPU"))


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    pa = pointacc_report(NETWORK, scale, seed)
    rows = []
    data: dict = {"latency": {}, "energy_pie": {}}
    for platform, label in COMPARED:
        rep = platform_report(platform, NETWORK, scale, seed)
        frac = rep.latency_fractions()
        data["latency"][label] = {
            "total_ms": rep.total_seconds * 1e3, **frac,
        }
        rows.append([
            label, f"{rep.total_seconds * 1e3:.1f}",
            f"{frac['mapping'] * 100:.0f}%", f"{frac['matmul'] * 100:.0f}%",
            f"{frac['movement'] * 100:.0f}%",
        ])
    frac = pa.latency_fractions()
    data["latency"]["PointAcc"] = {"total_ms": pa.total_seconds * 1e3, **frac}
    rows.append([
        "PointAcc", f"{pa.total_seconds * 1e3:.1f}",
        f"{frac['mapping'] * 100:.0f}%", f"{frac['matmul'] * 100:.0f}%",
        f"{frac['movement'] * 100:.0f}%",
    ])
    pie = pa.energy.breakdown()
    data["energy_pie"] = pie
    rows.append([
        "PointAcc energy pie",
        f"compute {pie['compute'] * 100:.0f}% (paper 74%)",
        f"sram {pie['sram'] * 100:.0f}% (paper 6%)",
        f"dram {pie['dram'] * 100:.0f}% (paper 20%)",
        "",
    ])
    return ExperimentResult(
        experiment_id="fig21",
        title=f"PointAcc performance breakdown on {NETWORK}",
        headers=["platform", "latency (ms)", "mapping", "matmul", "movement"],
        rows=rows,
        data=data,
    )
