"""Fig. 6 — latency breakdown of point-cloud networks on commodity hardware.

The paper profiles PointNet++SSG (S3DIS) and MinkowskiUNet (SemanticKITTI)
on CPU / GPU / mobile GPU / CPU+TPU and shows that mapping operations plus
data movement dominate: >50% of runtime everywhere, with the CPU+TPU combo
spending 60-90% on data movement.
"""

from __future__ import annotations

from .common import ExperimentResult, platform_report

__all__ = ["run", "PLATFORMS", "NETWORKS"]

PLATFORMS = (
    ("Xeon Gold 6130", "CPU"),
    ("RTX 2080Ti", "GPU"),
    ("Jetson Xavier NX", "mGPU"),
    ("Xeon Skylake + TPU V3", "CPU+TPU"),
)

NETWORKS = ("PointNet++(s)", "MinkNet(o)")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = []
    data: dict = {}
    for net in NETWORKS:
        for platform, label in PLATFORMS:
            rep = platform_report(platform, net, scale, seed)
            frac = rep.latency_fractions()
            data[(net, label)] = frac
            rows.append([
                net,
                label,
                f"{frac['mapping'] * 100:.0f}%",
                f"{frac['movement'] * 100:.0f}%",
                f"{frac['matmul'] * 100:.0f}%",
                f"{frac['other'] * 100:.0f}%",
                f"{(frac['mapping'] + frac['movement']) * 100:.0f}%",
            ])
    return ExperimentResult(
        experiment_id="fig06",
        title="Latency breakdown on commodity platforms "
              "(paper: mapping+movement dominate)",
        headers=["network", "platform", "mapping", "movement", "matmul",
                 "other", "non-matmul total"],
        rows=rows,
        data=data,
    )
