"""Experiment runners: one module per table/figure of the evaluation.

Every runner exposes ``run(scale=1.0, seed=0) -> ExperimentResult`` whose
``table()`` renders the regenerated artifact next to the paper's reference
values.  ``benchmarks/`` wraps each runner in a pytest-benchmark target.
"""

from . import (
    abl_design_space,
    abl_dram_timing,
    abl_scaling,
    abl_hash_vs_mergesort,
    abl_topk,
    fig02_motivation,
    fig05_characterization,
    fig06_bottleneck,
    fig13_server,
    fig14_edge,
    fig15_mesorasi,
    fig16_codesign,
    fig17_source_of_gain,
    fig18_cache,
    fig19_dram,
    fig20_fusion,
    fig21_breakdown,
    tab02_benchmarks,
    tab03_asic,
)
from .common import ExperimentResult, format_table, geomean

ALL_EXPERIMENTS = {
    "fig02": fig02_motivation,
    "fig05": fig05_characterization,
    "fig06": fig06_bottleneck,
    "tab02": tab02_benchmarks,
    "tab03": tab03_asic,
    "fig13": fig13_server,
    "fig14": fig14_edge,
    "fig15": fig15_mesorasi,
    "fig16": fig16_codesign,
    "fig17": fig17_source_of_gain,
    "fig18": fig18_cache,
    "fig19": fig19_dram,
    "fig20": fig20_fusion,
    "fig21": fig21_breakdown,
    "abl-hash": abl_hash_vs_mergesort,
    "abl-topk": abl_topk,
    "abl-dse": abl_design_space,
    "abl-dram": abl_dram_timing,
    "abl-scale": abl_scaling,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "geomean",
]
