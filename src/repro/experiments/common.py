"""Shared infrastructure for the experiment runners.

Every experiment regenerates one table or figure of the paper's evaluation.
Runners share cached traces (``repro.nn.models.build_trace``) and cached
platform reports so a full evaluation sweep builds each network exactly
once.  ``scale`` rescales input point counts (1.0 = the paper-like sizes,
small values for quick tests); the *shape* of every result — who wins, by
roughly what factor — is stable across scales, which tests exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from ..baselines.mesorasi import MesorasiHW
from ..baselines.registry import get_platform
from ..core.accelerator import PointAccModel
from ..core.config import POINTACC_EDGE, POINTACC_FULL
from ..core.report import PerfReport
from ..nn.models.registry import BENCHMARKS, build_trace

__all__ = [
    "geomean",
    "format_table",
    "pointacc_report",
    "edge_report",
    "platform_report",
    "mesorasi_report",
    "ExperimentResult",
    "ALL_BENCHMARKS",
    "MESORASI_BENCHMARKS",
]

ALL_BENCHMARKS = tuple(BENCHMARKS)
MESORASI_BENCHMARKS = (
    "PointNet++(c)",
    "PointNet++(ps)",
    "F-PointNet++",
    "PointNet++(s)",
)


def geomean(values) -> float:
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain-text table for benchmark output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Standard return type: id, headers/rows for printing, raw data dict."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    data: dict = field(default_factory=dict)

    def table(self) -> str:
        return format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )


_POINTACC = PointAccModel(POINTACC_FULL)
_EDGE = PointAccModel(POINTACC_EDGE)
_MESORASI = MesorasiHW()


@lru_cache(maxsize=128)
def pointacc_report(notation: str, scale: float = 1.0, seed: int = 0) -> PerfReport:
    return _POINTACC.run(build_trace(notation, scale=scale, seed=seed))


@lru_cache(maxsize=128)
def edge_report(notation: str, scale: float = 1.0, seed: int = 0) -> PerfReport:
    return _EDGE.run(build_trace(notation, scale=scale, seed=seed))


@lru_cache(maxsize=256)
def platform_report(
    platform: str, notation: str, scale: float = 1.0, seed: int = 0
) -> PerfReport:
    model = get_platform(platform)
    return model.run(build_trace(notation, scale=scale, seed=seed))


@lru_cache(maxsize=64)
def mesorasi_report(notation: str, scale: float = 1.0, seed: int = 0) -> PerfReport:
    return _MESORASI.run(build_trace(notation, scale=scale, seed=seed))
