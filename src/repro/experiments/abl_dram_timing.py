"""DRAM-timing ablation: validating the bandwidth-model shortcut.

The accelerator's fast path charges DRAM at the technology's peak
bandwidth because PointAcc's streams (fetch-on-demand blocks, weight
passes, coordinate streams) are overwhelmingly sequential.  This
experiment replays sequential and random request traces through the
open-page :class:`~repro.core.mmu.dram.DRAMTimingModel` to measure the
row-buffer locality gap per technology — the gap the MMU's block-based
streaming is designed to stay on the right side of.
"""

from __future__ import annotations

from ..core.mmu.dram import TIMINGS, sequential_vs_random_gap
from .common import ExperimentResult

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = []
    data = {}
    n_requests = max(500, int(2000 * scale))
    for name, timing in TIMINGS.items():
        result = sequential_vs_random_gap(
            timing, n_requests=n_requests, seed=seed
        )
        data[name] = result
        rows.append([
            name,
            f"{result['sequential_gbps']:.1f}",
            f"{result['sequential_hit_rate'] * 100:.0f}%",
            f"{result['random_gbps']:.1f}",
            f"{result['random_hit_rate'] * 100:.0f}%",
            f"{result['gap']:.1f}x",
        ])
    return ExperimentResult(
        experiment_id="abl-dram",
        title="Row-buffer locality gap per DRAM technology "
              "(sequential vs random 64 B requests)",
        headers=["technology", "seq GB/s", "seq hit", "rand GB/s",
                 "rand hit", "gap"],
        rows=rows,
        data=data,
    )
