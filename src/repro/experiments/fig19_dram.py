"""Fig. 19 — per-layer DRAM access of MinkowskiUNet with/without caching.

Paper: the fetch-on-demand flow with the configurable cache cuts per-layer
DRAM access by 6.3x on S3DIS and 3.5x on SemanticKITTI versus the
gather-scatter flow, with each point's features fetched roughly once on
average; the distribution keeps its shape (caching helps uniformly).
"""

from __future__ import annotations

import math

from ..core.config import POINTACC_FULL
from ..core.mmu.unit import MemoryManagementUnit
from ..nn.models.registry import build_trace
from ..nn.trace import LayerKind
from .common import ExperimentResult

__all__ = ["run", "PAPER_REDUCTION"]

PAPER_REDUCTION = {"MinkNet(i)": 6.3, "MinkNet(o)": 3.5}
DATASET_LABEL = {"MinkNet(i)": "s3dis", "MinkNet(o)": "semantickitti"}


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    mmu = MemoryManagementUnit(POINTACC_FULL)
    rows = []
    data: dict = {}
    for net, dataset in DATASET_LABEL.items():
        trace = build_trace(net, scale=scale, seed=seed)
        fod_bytes: list[float] = []
        gs_bytes: list[float] = []
        for spec in trace.by_kind(LayerKind.SPARSE_CONV):
            fod_bytes.append(mmu.sparse_conv_cost(spec).total_bytes)
            gs_bytes.append(mmu.gather_scatter_cost(spec).total_bytes)
        fod_sorted = sorted(fod_bytes)
        gs_sorted = sorted(gs_bytes)
        mean_fod = sum(fod_bytes) / len(fod_bytes)
        mean_gs = sum(gs_bytes) / len(gs_bytes)
        reduction = mean_gs / mean_fod
        data[net] = {
            "dataset": dataset,
            "layers": len(fod_bytes),
            "mean_fod_mb": mean_fod / 1e6,
            "mean_gs_mb": mean_gs / 1e6,
            "reduction": reduction,
            "fod_p10_mb": _percentile(fod_sorted, 0.1) / 1e6,
            "fod_p90_mb": _percentile(fod_sorted, 0.9) / 1e6,
            "gs_p10_mb": _percentile(gs_sorted, 0.1) / 1e6,
            "gs_p90_mb": _percentile(gs_sorted, 0.9) / 1e6,
        }
        rows.append([
            f"{net} ({dataset})",
            f"{len(fod_bytes)}",
            f"{mean_gs / 1e6:.2f}",
            f"{mean_fod / 1e6:.2f}",
            f"{reduction:.1f}x",
            f"{PAPER_REDUCTION[net]:.1f}x",
        ])
    return ExperimentResult(
        experiment_id="fig19",
        title="Per-layer DRAM access: gather-scatter vs fetch-on-demand",
        headers=["network", "conv layers", "G-S mean MB", "F-D mean MB",
                 "reduction", "paper"],
        rows=rows,
        data=data,
    )
