"""Table 3 — ASIC configurations: PEs, SRAM, area, bandwidth, peak OPS.

Areas come from the component model (``repro.core.area``); the paper's
synthesized totals are 15.7 mm2 (full) and 3.9 mm2 (edge) at TSMC 40 nm.
"""

from __future__ import annotations

from ..core.area import AreaModel
from ..core.config import POINTACC_EDGE, POINTACC_FULL
from .common import ExperimentResult

__all__ = ["run", "PAPER_AREA"]

PAPER_AREA = {"PointAcc": 15.7, "PointAcc.Edge": 3.9}
PAPER_MESORASI = {
    "cores": "16x16=256", "sram_kb": 1624, "dram": "LPDDR3-1600",
    "bandwidth": 12.8, "peak_gops": 512, "tech_nm": 16,
}


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = []
    data = {}
    for config in (POINTACC_FULL, POINTACC_EDGE):
        area = AreaModel(config)
        breakdown = area.breakdown()
        data[config.name] = {
            "area_mm2": area.total_mm2,
            "paper_mm2": PAPER_AREA[config.name],
            "breakdown": breakdown,
            "sram_kb": config.sram.total_kb,
            "peak_tops": config.peak_ops / 1e12,
        }
        rows.append([
            config.name,
            f"{config.pe_rows}x{config.pe_cols}={config.n_pes}",
            f"{config.sram.total_kb:.0f}",
            f"{area.total_mm2:.1f}",
            f"{PAPER_AREA[config.name]:.1f}",
            f"{config.frequency_hz / 1e9:.0f} GHz",
            config.dram.name,
            f"{config.dram.bandwidth_gbps:.1f}",
            f"{config.peak_ops / 1e12:.2f} TOPS",
        ])
    rows.append([
        "Mesorasi (paper)",
        PAPER_MESORASI["cores"],
        f"{PAPER_MESORASI['sram_kb']}",
        "-",
        "-",
        "1 GHz",
        PAPER_MESORASI["dram"],
        f"{PAPER_MESORASI['bandwidth']}",
        f"{PAPER_MESORASI['peak_gops'] / 1e3:.2f} TOPS",
    ])
    return ExperimentResult(
        experiment_id="tab03",
        title="ASIC platforms (area from the 40 nm component model)",
        headers=["chip", "cores", "SRAM (KB)", "area mm2", "paper mm2",
                 "freq", "DRAM", "GB/s", "peak"],
        rows=rows,
        data=data,
    )
