"""Fig. 20 — DRAM reduction from temporal layer fusion on PointNet(++).

Paper: fusion mode cuts whole-network DRAM access by 64% (PointNet — no
downsampling, so almost everything fuses), 41% (PointNet++(c)), 33%
(PointNet++(ps)) and 39% (PointNet++(s)).
"""

from __future__ import annotations

from ..core.accelerator import PointAccModel
from ..core.config import POINTACC_FULL
from ..nn.models.registry import build_trace
from .common import ExperimentResult

__all__ = ["run", "PAPER_REDUCTION", "NETWORKS"]

PAPER_REDUCTION = {
    "PointNet": 0.64,
    "PointNet++(c)": 0.41,
    "PointNet++(ps)": 0.33,
    "PointNet++(s)": 0.39,
}
NETWORKS = tuple(PAPER_REDUCTION)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    model = PointAccModel(POINTACC_FULL)
    rows = []
    data = {}
    for net in NETWORKS:
        trace = build_trace(net, scale=scale, seed=seed)
        fused = model.run(trace, fusion=True)
        unfused = model.run(trace, fusion=False)
        reduction = 1.0 - fused.dram_bytes / unfused.dram_bytes
        data[net] = {
            "fused_mb": fused.dram_bytes / 1e6,
            "unfused_mb": unfused.dram_bytes / 1e6,
            "reduction": reduction,
        }
        rows.append([
            net,
            f"{unfused.dram_bytes / 1e6:.2f}",
            f"{fused.dram_bytes / 1e6:.2f}",
            f"{reduction * 100:.0f}%",
            f"{PAPER_REDUCTION[net] * 100:.0f}%",
        ])
    return ExperimentResult(
        experiment_id="fig20",
        title="Fusion-mode DRAM reduction vs layer-by-layer execution",
        headers=["network", "layer-by-layer MB", "fused MB", "reduction",
                 "paper"],
        rows=rows,
        data=data,
    )
