"""Fig. 17 — source of performance gain, operation-level breakdowns.

Left: kernel mapping of the first downsampling SparseConv block on
SemanticKITTI — merge-sort vs hash-table algorithm on CPU, GPU and
PointAcc.  Paper: the merge-sort algorithm *loses* on CPU/GPU (intersection
detection scans twice the elements) but wins 1.4x on PointAcc after circuit
specialization.

Right: the convolution of the first MinkowskiUNet layer — Gather-MatMul-
Scatter vs Fetch-on-Demand flow on GPU and PointAcc.  Paper: F-D hurts the
GPU (fragmented matrix-vector work) but lets PointAcc spend about as long
on the whole conv as G-S spends on its matmul alone.
"""

from __future__ import annotations

from ..baselines.registry import RTX_2080TI, XEON_6130
from ..core.accelerator import PointAccModel
from ..core.config import POINTACC_FULL
from ..nn.models.registry import build_trace
from ..nn.trace import LayerKind
from .common import ExperimentResult

__all__ = ["run", "PAPER_POINTACC_HASH_SPEEDUP"]

PAPER_POINTACC_HASH_SPEEDUP = 1.4  # merge-sort vs hash on PointAcc
# Merge-sort on CPU/GPU: the DI pass scans the merged (doubled) stream and
# the sort passes are memory-bound; ~9 abstract ops per element per offset
# versus 5 per hash probe (Section 5.2.3's observed ~2x DI penalty).
MERGESORT_OPS_PER_ELEM = 9.0
HASH_OPS_PER_PROBE = 5.0


def _first_downsample_kmap(trace):
    for spec in trace:
        if spec.kind is LayerKind.MAP_KERNEL and spec.n_out < spec.n_in:
            return spec
    raise RuntimeError("no downsampling kernel map in trace")


def _first_sparse_conv(trace):
    for spec in trace:
        if spec.kind is LayerKind.SPARSE_CONV:
            return spec
    raise RuntimeError("no sparse conv in trace")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trace = build_trace("MinkNet(o)", scale=scale, seed=seed)
    kmap = _first_downsample_kmap(trace)
    conv = _first_sparse_conv(trace)
    model = PointAccModel(POINTACC_FULL)
    cfg = POINTACC_FULL

    # ---- left panel: kernel mapping, hash vs merge-sort -------------------
    n_in, n_out, k_vol = kmap.n_in, kmap.n_out, kmap.kernel_volume
    hash_ops = HASH_OPS_PER_PROBE * (n_in + n_out * k_vol)
    sort_ops = MERGESORT_OPS_PER_ELEM * k_vol * (n_in + n_out)
    left = {}
    for plat in (XEON_6130, RTX_2080TI):
        left[plat.name] = {
            "hash_ms": hash_ops / (plat.mapping_gops * 1e9) * 1e3,
            "mergesort_ms": sort_ops / (plat.mapping_gops * 1e9) * 1e3,
        }
    # On-chip comparison at matched parallelism: engine cycles (both
    # designs stream coordinates from DRAM identically, so the engine
    # throughput is the differentiator the paper's 1.4x refers to).
    mpu_stats = model._mapping_stats(kmap)
    merge_s = cfg.cycles_to_seconds(mpu_stats.cycles)
    hash_cycles = model.mpu.hash_kernel_map_cycles(n_in, n_out, k_vol)
    hash_s = cfg.cycles_to_seconds(hash_cycles)
    left["PointAcc"] = {"hash_ms": hash_s * 1e3, "mergesort_ms": merge_s * 1e3}

    # ---- right panel: conv flow, G-S vs F-D --------------------------------
    right = {}
    # GPU G-S: gather + matmul + scatter times under the platform model.
    gpu = RTX_2080TI
    flops = 2.0 * conv.macs
    gs_matmul = flops / (gpu.peak_gflops * 1e9 * gpu.sparse_efficiency)
    moved = conv.n_maps * (conv.c_in + conv.c_out) * gpu.elem_bytes
    gs_move = 2.0 * moved / (gpu.gather_gbps * 1e9)
    # GPU F-D: decomposing the matmul into per-map matrix-vector products
    # collapses GPU utilization (~32x below the batched gathered GEMM) —
    # the overhead the paper observes dwarfing the data-movement saving.
    fd_matmul = flops / (gpu.peak_gflops * 1e9 * gpu.sparse_efficiency / 32.0)
    fd_move = moved / (gpu.mem_bw_gbps * 1e9)
    right["RTX 2080Ti"] = {
        "gather_scatter_ms": (gs_matmul + gs_move) * 1e3,
        "gs_matmul_only_ms": gs_matmul * 1e3,
        "fetch_on_demand_ms": (fd_matmul + fd_move) * 1e3,
    }
    # PointAcc both flows.
    fd_record = model._sparse_conv_record(conv, flow="fetch_on_demand")
    gs_record = model._sparse_conv_record(conv, flow="gather_scatter")
    mxu_only_s = cfg.cycles_to_seconds(model.mxu.sparse_conv(conv).cycles)
    right["PointAcc"] = {
        "gather_scatter_ms": gs_record.seconds * 1e3,
        "gs_matmul_only_ms": mxu_only_s * 1e3,
        "fetch_on_demand_ms": fd_record.seconds * 1e3,
    }

    rows = []
    for plat, vals in left.items():
        ratio = vals["hash_ms"] / vals["mergesort_ms"]
        rows.append([
            "kernel mapping", plat, f"hash {vals['hash_ms']:.3f}",
            f"mergesort {vals['mergesort_ms']:.3f}",
            f"merge is {ratio:.2f}x vs hash",
        ])
    for plat, vals in right.items():
        rows.append([
            "convolution", plat, f"G-S {vals['gather_scatter_ms']:.3f}",
            f"F-D {vals['fetch_on_demand_ms']:.3f}",
            f"G-S matmul only {vals['gs_matmul_only_ms']:.3f}",
        ])
    return ExperimentResult(
        experiment_id="fig17",
        title="Kernel-mapping algorithm and conv-flow breakdowns (ms)",
        headers=["panel", "platform", "variant A", "variant B", "note"],
        rows=rows,
        data={"kernel_mapping": left, "conv_flow": right,
              "kmap_spec": {"n_in": n_in, "n_out": n_out, "k": k_vol}},
    )
