"""Input-scale robustness: the "arbitrary scales of point clouds" claim.

Section 4.1 claims the MPU's design "manages to handle the arbitrary
scales of point clouds" (the streaming merger decouples engine width from
cloud size).  This sweep runs two representative networks across input
scales and checks that PointAcc's advantage over the GPU baseline is not
an artifact of one operating point: speedups hold (and mapping's share of
PointAcc latency stays bounded) from small clouds to paper-size ones.
"""

from __future__ import annotations

from ..baselines.registry import get_platform
from ..core.accelerator import PointAccModel
from ..core.config import POINTACC_FULL
from ..nn.models.registry import build_trace
from .common import ExperimentResult

__all__ = ["run", "SCALES", "NETWORKS"]

SCALES = (0.25, 0.5, 1.0)
NETWORKS = ("PointNet++(c)", "MinkNet(o)")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """``scale`` caps the sweep's largest point (tests use small caps)."""
    model = PointAccModel(POINTACC_FULL)
    gpu = get_platform("RTX 2080Ti")
    rows = []
    data: dict = {net: [] for net in NETWORKS}
    for net in NETWORKS:
        for s in SCALES:
            eff = s * scale
            trace = build_trace(net, scale=eff, seed=seed)
            pa = model.run(trace)
            gp = gpu.run(trace)
            speedup = gp.total_seconds / pa.total_seconds
            mapping_frac = pa.latency_fractions()["mapping"]
            data[net].append({
                "scale": eff,
                "points": trace.input_points,
                "speedup": speedup,
                "mapping_frac": mapping_frac,
                "pa_ms": pa.total_seconds * 1e3,
            })
            rows.append([
                net, f"{eff:.2f}", f"{trace.input_points}",
                f"{pa.total_seconds * 1e3:.3f}",
                f"{speedup:.1f}x",
                f"{mapping_frac * 100:.0f}%",
            ])
    return ExperimentResult(
        experiment_id="abl-scale",
        title="Speedup vs input scale (PointAcc over RTX 2080Ti)",
        headers=["network", "scale", "points", "PointAcc ms", "speedup",
                 "mapping share"],
        rows=rows,
        data=data,
    )
