"""Fig. 2 — point-cloud networks vs 2D CNNs: accuracy, #MACs, GPU latency.

Paper claims: on SemanticKITTI segmentation, 3D point-cloud networks reach
higher mIoU with ~7x fewer MACs than 2D-projection CNNs, yet run ~1.3x
*slower* on a 2080Ti because of sparsity and irregularity.

Accuracies are published values (we cannot re-train; see DESIGN.md); MACs
for point-cloud networks are measured from our traces; GPU latencies come
from the calibrated 2080Ti model, with the dense 2D CNNs costed at the
same platform's dense-matmul roofline.
"""

from __future__ import annotations

from ..analysis.macs import CNN_2D_SEG
from ..baselines.registry import RTX_2080TI
from ..nn.models.registry import get_benchmark, build_trace
from .common import ExperimentResult, platform_report

__all__ = ["run", "POINT_CLOUD_NETS"]

POINT_CLOUD_NETS = ("MinkNet(o)",)  # SemanticKITTI segmentation in our suite
# Published numbers used for context alongside our measured MinkNet(o).
PUBLISHED_3D = {"MinkowskiNet": (61.1, 114.0), "SPVNAS": (63.7, 34.7)}


def _dense_cnn_gpu_latency_s(total_gmacs: float) -> float:
    """Dense 2D CNN on the 2080Ti model: dense roofline, high utilization."""
    flops = 2.0 * total_gmacs * 1e9
    return flops / (RTX_2080TI.peak_gflops * 1e9 * RTX_2080TI.dense_efficiency)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = []
    data: dict = {"2d": {}, "3d": {}}
    for ref in CNN_2D_SEG:
        lat = _dense_cnn_gpu_latency_s(ref.total_gmacs)
        data["2d"][ref.name] = {
            "miou": ref.accuracy, "gmacs": ref.total_gmacs, "gpu_ms": lat * 1e3,
        }
        rows.append([
            f"{ref.name} (2D)", f"{ref.accuracy:.1f}",
            f"{ref.total_gmacs:.1f}", f"{lat * 1e3:.1f}",
        ])
    for net in POINT_CLOUD_NETS:
        trace = build_trace(net, scale=scale, seed=seed)
        rep = platform_report("RTX 2080Ti", net, scale, seed)
        miou = get_benchmark(net).published["miou"]
        data["3d"][net] = {
            "miou": miou,
            "gmacs": trace.total_macs / 1e9,
            "gpu_ms": rep.total_seconds * 1e3,
        }
        rows.append([
            f"{net} (3D)", f"{miou:.1f}",
            f"{trace.total_macs / 1e9:.1f}", f"{rep.total_seconds * 1e3:.1f}",
        ])
    for name, (miou, gmacs) in PUBLISHED_3D.items():
        rows.append([f"{name} (3D, published)", f"{miou:.1f}", f"{gmacs:.1f}", "-"])
    return ExperimentResult(
        experiment_id="fig02",
        title="2D-projection CNNs vs 3D point-cloud networks "
              "(SemanticKITTI segmentation)",
        headers=["network", "mIoU", "GMACs", "2080Ti latency (ms)"],
        rows=rows,
        data=data,
    )
