"""Fig. 18 — input-cache miss rate vs block size, kernel size, channels.

Paper observations: miss rate decreases as the software-controlled block
size grows (saturating), as the kernel size grows (more reuse per point)
and as channel width grows (more words per necessarily-missing first
touch).  Replayed on a real SparseConv request stream from an S3DIS-like
cloud.
"""

from __future__ import annotations

from ..core.mmu.cache import CacheConfig, simulate_conv_cache
from ..mapping.kernel_map import kernel_map_mergesort
from ..pointcloud.datasets import generate_sample
from .common import ExperimentResult

__all__ = ["run", "BLOCK_SIZES", "SWEEP"]

BLOCK_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)
# (kernel size, channels) pairs from the paper's legend.
SWEEP = ((2, 64), (2, 128), (3, 64), (3, 128))
CACHE_BYTES = 64 * 1024  # a slice of the 256 KB input buffers


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    cloud = generate_sample("s3dis", seed=seed, scale=scale)
    tensor = cloud.voxelize(0.05)
    maps_by_k = {}
    for ksize in (2, 3):
        if ksize == 2:
            out = tensor.downsample(2)  # strided conv
        else:
            out = tensor  # submanifold conv
        maps_by_k[ksize] = kernel_map_mergesort(
            tensor.coords, out.coords, ksize, tensor.tensor_stride
        )
    rows = []
    curves: dict = {}
    for ksize, channels in SWEEP:
        miss_rates = []
        for block in BLOCK_SIZES:
            cfg = CacheConfig(
                capacity_bytes=CACHE_BYTES, block_points=block, c_in=channels
            )
            stats = simulate_conv_cache(maps_by_k[ksize], cfg)
            miss_rates.append(stats.miss_rate)
        curves[(ksize, channels)] = miss_rates
        rows.append(
            [f"k={ksize}, c={channels}"]
            + [f"{m * 100:.1f}%" for m in miss_rates]
        )
    return ExperimentResult(
        experiment_id="fig18",
        title=f"Cache miss rate vs block size (n={tensor.n} voxels)",
        headers=["config"] + [f"B={b}" for b in BLOCK_SIZES],
        rows=rows,
        data={"curves": curves, "block_sizes": BLOCK_SIZES,
              "n_voxels": tensor.n},
    )
