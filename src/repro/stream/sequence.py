"""Deterministic synthetic LiDAR frame sequences in world coordinates.

A :class:`FrameSequence` models the continuous point-cloud analytics regime
(Mesorasi Section 2; PointAcc's AR/VR and autonomous-driving workloads): a
sensor traveling through a street-like static world, with moving objects
and per-frame sensor clutter.  Frames are expressed in *world* coordinates
— scan registration is assumed done upstream, as in any mapping/SLAM
pipeline — which is what makes temporal overlap exploitable: a static
world point has bit-identical coordinates in every frame that sees it, so
spatial tiles away from the churn are byte-equal between frames and the
incremental tier (:mod:`repro.stream.incremental`) can reuse their maps.

Churn comes from three honest sources:

* **ego-motion** — the field of view is an axis-aligned box gliding along
  the trajectory, so static points enter at the leading edge and leave at
  the trailing edge each frame;
* **dynamic objects** — rigid clusters (oncoming traffic) whose points
  move every frame and carry fresh per-frame jitter (sensor noise on
  moving returns);
* **clutter** — a small count of fresh random points per frame.

Everything is a pure function of ``(config, scale, frame_index)``; frames
keep stable point order for unchanged world points (static world order,
filtered), which tile digests rely on.

Sequences register as a ``stream`` cloud-source scheme
(:func:`repro.nn.models.registry.register_cloud_scheme`): the notation
``"MinkNet(o)@stream:<token>"`` runs that network on this sequence with
the request ``seed`` selecting the frame — so frame streams flow through
the engine, cluster, QoS and cache machinery like any other workload, and
:func:`repro.engine.run_cold` on the same notation is the oracle the
property suite compares against.  The token is a content digest of the
config, so equal configs collide only with themselves.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..nn.models.registry import register_cloud_scheme
from ..pointcloud.cloud import PointCloud
from ..pointcloud.synthetic import sample_box_surface

__all__ = ["SequenceConfig", "FrameSequence", "get_sequence"]


@dataclass(frozen=True)
class SequenceConfig:
    """Everything that determines a sequence, bit for bit.

    ``start_x`` offsets the ego trajectory along the strip without
    touching the world construction: two configs that differ only in
    ``start_x`` share the *same* static world and dynamic shapes, bit for
    bit — they are two vehicles driving the same road.  That is the fleet
    regime (:mod:`repro.fleet`): their frames overlap wherever their FOVs
    do, so world tiles computed by one stream serve the other.  Keep
    ``start_x`` within a couple of frame-steps of zero — the built strip
    is sized for the zero-offset trajectory, and a far-offset vehicle
    drives off the end of the world (deterministically, but emptily).

    ``sensor_seed`` distinguishes *sensors* rather than trajectories: it
    salts only the per-frame sensor-noise draws (dynamic-return jitter
    and clutter), so two configs differing only in ``sensor_seed`` are
    the same vehicle pose with different sensor noise — the lockstep
    convoy / multi-sensor-rig limiting case of fleet overlap, where
    everything except the noise returns is byte-shared.  Zero (the
    default) leaves every existing sequence bit-identical.
    """

    seed: int = 0
    n_frames: int = 8          #: nominal length (sizes the static world strip)
    base_points: int = 20000   #: ~static points visible per frame at scale 1.0
    fov: float = 24.0          #: half-side of the FOV box, meters
    speed: float = 2.0         #: ego translation per frame along +x, meters
    n_buildings: int = 14      #: static boxes lining the strip
    n_dynamic: int = 4         #: moving objects (oncoming traffic)
    dynamic_points: int = 160  #: points per dynamic object at scale 1.0
    jitter: float = 0.02       #: per-frame noise on dynamic returns, meters
    clutter_points: int = 48   #: fresh random points per frame at scale 1.0
    start_x: float = 0.0       #: ego x at frame 0 (fleet trajectory offset)
    sensor_seed: int = 0       #: salts sensor noise only (jitter + clutter)


class FrameSequence:
    """Frames of one configured sequence, generated on demand."""

    def __init__(self, config: SequenceConfig = SequenceConfig()) -> None:
        self.config = config
        self._worlds: dict[float, tuple[np.ndarray, list]] = {}

    # ------------------------------------------------------------------
    # Identity / registration
    # ------------------------------------------------------------------

    @property
    def token(self) -> str:
        """Content digest of the config — the sequence's wire identity."""
        h = hashlib.blake2b(repr(self.config).encode(), digest_size=8)
        return h.hexdigest()

    def register(self) -> str:
        """Make the sequence resolvable as ``stream:<token>``."""
        _REGISTRY[self.token] = self
        return self.token

    def notation(self, benchmark: str) -> str:
        """The sourced benchmark notation running ``benchmark`` on this
        sequence (registers the sequence as a side effect)."""
        return f"{benchmark}@stream:{self.register()}"

    # ------------------------------------------------------------------
    # World construction (cached per scale)
    # ------------------------------------------------------------------

    def _rng(self, *salt) -> np.random.Generator:
        return np.random.default_rng([self.config.seed & 0x7FFFFFFF, *salt])

    def _sensor_rng(self, *salt) -> np.random.Generator:
        """Per-sensor noise stream: like :meth:`_rng`, additionally salted
        by ``sensor_seed`` — but only when one is set, so the default
        config's draws (and therefore every pre-``sensor_seed`` frame)
        stay bit-identical."""
        if self.config.sensor_seed:
            salt = (*salt, self.config.sensor_seed & 0x7FFFFFFF)
        return self._rng(*salt)

    def _strip(self) -> tuple[float, float]:
        cfg = self.config
        return -cfg.fov - cfg.speed, cfg.fov + cfg.speed * (cfg.n_frames + 1)

    def _world(self, scale: float) -> tuple[np.ndarray, list]:
        """Static world points (fixed order) + dynamic object base shapes."""
        world = self._worlds.get(scale)
        if world is not None:
            return world
        cfg = self.config
        rng = self._rng(1)
        x0, x1 = self._strip()
        length = x1 - x0
        n_static = max(64, int(cfg.base_points * scale * length / (2 * cfg.fov)))
        n_ground = n_static // 2
        # Ground: uniform in the strip with centimeter roughness (fixed —
        # it is part of the static world, not per-frame noise).
        ground = np.column_stack([
            rng.uniform(x0, x1, n_ground),
            rng.uniform(-cfg.fov, cfg.fov, n_ground),
            rng.normal(scale=0.02, size=n_ground),
        ])
        parts = [ground]
        n_building_pts = n_static - n_ground
        counts = np.full(cfg.n_buildings, n_building_pts // cfg.n_buildings)
        counts[: n_building_pts % cfg.n_buildings] += 1
        for b, count in enumerate(counts):
            if count == 0:
                continue
            side = 1.0 if b % 2 == 0 else -1.0
            size = np.array([
                rng.uniform(6.0, 14.0),
                rng.uniform(4.0, 8.0),
                rng.uniform(4.0, 10.0),
            ])
            center = np.array([
                rng.uniform(x0, x1),
                side * rng.uniform(cfg.fov * 0.45, cfg.fov * 0.85),
                size[2] / 2,
            ])
            parts.append(sample_box_surface(int(count), size, center, rng))
        static = np.concatenate(parts, axis=0)
        # Dynamic base shapes: car-sized boxes centered at origin; their
        # per-frame pose is applied in frame().
        shapes = []
        for d in range(cfg.n_dynamic):
            srng = self._rng(2, d)
            size = np.array([
                srng.uniform(3.6, 4.8),
                srng.uniform(1.6, 2.0),
                srng.uniform(1.4, 1.8),
            ])
            n_pts = max(8, int(cfg.dynamic_points * scale))
            shapes.append(
                sample_box_surface(n_pts, size, np.array([0.0, 0.0, size[2] / 2]),
                                   srng)
            )
        world = (static, shapes)
        self._worlds[scale] = world
        return world

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    def ego_position(self, index: int) -> float:
        """Ego x at frame ``index`` (motion is along +x)."""
        return self.config.start_x + self.config.speed * index

    def frame(self, index: int, scale: float = 1.0) -> PointCloud:
        """Frame ``index``: static points in FOV, posed dynamics, clutter.

        Point order is canonical — static world order first (so unchanged
        regions keep identical bytes between frames), then dynamic objects
        in object order, then clutter — which is what gives spatial tiles
        their frame-to-frame stability.
        """
        if index < 0:
            raise ValueError(f"frame index must be >= 0, got {index}")
        cfg = self.config
        static, shapes = self._world(scale)
        ego_x = self.ego_position(index)
        in_fov = np.abs(static[:, 0] - ego_x) <= cfg.fov
        parts = [static[in_fov]]
        x0, x1 = self._strip()
        for d, shape in enumerate(shapes):
            drng = self._rng(3, d)
            # Oncoming lane: start ahead, drive toward -x, loop the strip.
            lane_y = (-1.0 if d % 2 else 1.0) * drng.uniform(2.0, 5.0)
            start_x = drng.uniform(x0, x1)
            span = x1 - x0
            obj_x = x0 + (start_x - x0 - 2.5 * cfg.speed * index) % span
            if abs(obj_x - ego_x) > cfg.fov or abs(lane_y) > cfg.fov:
                continue
            frng = self._sensor_rng(4, d, index)
            posed = shape + np.array([obj_x, lane_y, 0.0])
            posed = posed + frng.normal(scale=cfg.jitter, size=posed.shape)
            parts.append(posed)
        # Clutter is sensor-proximal (dust/exhaust/ground splash around the
        # ego vehicle), not uniform over the FOV: real clutter returns
        # cluster near the sensor, and spatially-bounded churn is what
        # keeps the rest of the world's tiles byte-stable.
        n_clutter = max(1, int(cfg.clutter_points * scale))
        crng = self._sensor_rng(5, index)
        clutter = np.column_stack([
            crng.uniform(ego_x - 2.0, ego_x + 6.0, n_clutter),
            crng.uniform(-3.0, 3.0, n_clutter),
            crng.uniform(0.0, 2.0, n_clutter),
        ])
        parts.append(clutter)
        return PointCloud(np.concatenate(parts, axis=0))


#: token -> sequence; process-local, keyed by content digest.
_REGISTRY: dict[str, FrameSequence] = {}


def get_sequence(token: str) -> FrameSequence:
    """Look up a registered sequence by token."""
    if token not in _REGISTRY:
        raise KeyError(
            f"unknown sequence token {token!r}; register the sequence first "
            f"(FrameSequence.register / .notation)"
        )
    return _REGISTRY[token]


def _resolve_stream(token: str, scale: float, seed: int):
    """Cloud-scheme resolver: request seed = frame index; the network's
    weights come from the sequence seed, fixed across the stream."""
    seq = get_sequence(token)
    return seq.frame(seed, scale=scale), seq.config.seed


register_cloud_scheme("stream", _resolve_stream)
