"""Batched tile-front planner: plan / probe / execute / splice.

The PR-4 tile front (:mod:`repro.stream.incremental`) decomposes a mapping
call correctly but walks it one tile at a time: per tile it digests with
fresh array temporaries, builds a sub-key by re-hashing raw bytes, and
chains a ``get``/``put`` through every cache layer.  Below ~200 points per
tile that Python toll dominates the actual mapping work.  This module is
the vectorized rewrite — the same decomposition, the same sub-keys, the
same bit-identity contracts, restructured into four phases:

``plan``
    One pass builds every tile's probe: digests come from
    :meth:`~repro.stream.tiles.TilePartition.digest_all` (packed-buffer
    batch hashing), shells and neighborhoods from the whole-partition
    sweeps (:meth:`~repro.stream.tiles.TilePartition.fill_shells` /
    ``fill_neighborhoods`` — stacked fixed-width digest matrices, slab
    indices gathered via precomputed run tables), and sub-keys by raw
    concatenation of a *versioned* prefix with the per-tile component
    digests — fixed width per op, no per-tile key hashing at all.  The
    version tag (:data:`_KEY_VERSION`) keeps this cache universe provably
    disjoint from the legacy per-tile oracle's variable-width 16-byte
    ``content_digest`` keys: every serving key is longer than 16 bytes.

``probe``
    One ``get_many`` round trip through the chain
    (:meth:`repro.mapping.hooks.TieredLookup.get_many`) instead of one
    chain walk per tile.  A *whole-call* probe runs first: the composed
    result of a byte-identical previous call (a submanifold layer sharing
    its cloud, a geometry-only replay, another shard presenting the same
    frame) is served outright, skipping decomposition entirely.

``execute``
    Only the missed tiles compute, grouped per operator, and flow back in
    one ``put_many``.

``splice``
    Kernel maps compose by *delta* against the previous frame: the
    composer keeps the last composed row order per (algorithm, offsets,
    tile side) family and, when a frame's plan shows K changed tiles,
    merges just those tiles' freshly sorted rows into the surviving rows'
    previous order — O(rows) instead of re-sorting everything.  A strict
    row-order certificate (the composed (weight, minor-key) sequence must
    strictly increase) guards the splice; any violation falls back to the
    full sort, so a splice can never change a result — the same
    exactness-contract shape as the kNN certificates and the voxelizer's
    structural checks.

    Voxelize composes by delta too (:class:`VoxelComposer`): per-tile
    sorted-unique voxel runs are disjoint, so the merged order of a frame
    sharing most tiles with a remembered one splices the changed tiles'
    runs into the survivors' previous order — a K-way run merge guarded
    by a strict key-increase certificate — instead of re-argsorting every
    unique key per call.

Every entry point here is called by :class:`~repro.stream.incremental.
TileMapCache`, the only serving front.  The retired per-tile loops
survive as :class:`~repro.stream.incremental.PerTileOracle` — the cold
reference the property suite compares against, not a serving mode.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque

import numpy as np

from ..mapping.ball_query import _ball_query_details
from ..mapping.hooks import batch_get, batch_put, current_tenant
from ..obs.ledger import current_ledger
from ..obs.trace import span as _span
from ..mapping.knn import _knn_compute
from ..mapping.maps import MapTable
from ..pointcloud.coords import _KEY_OFFSET, keys_to_coords
from .tiles import (
    _DIGEST_SIZE,
    hash_part as _hash_part,
    offset_key_deltas,
)

__all__ = [
    "KernelComposer",
    "VoxelComposer",
    "run_ball_query",
    "run_kernel_map",
    "run_knn",
    "run_voxelize",
    "whole_key",
]

_KERNEL_PREFIX = "kernel_map/"

#: Tile cache-universe version tag.  Every serving sub-key starts with it,
#: so a format change only has to bump the tag to retire the old universe;
#: and because it makes every key longer than the 16-byte digests the
#: legacy per-tile oracle (and every whole-call probe) uses, new-format
#: and legacy keys can never collide.
_KEY_VERSION = b"T2"


# ----------------------------------------------------------------------
# Keys: versioned fixed-width tile keys + legacy-format whole-call probes
# ----------------------------------------------------------------------


def _key_prefix(*parts) -> bytes:
    """The call-constant prefix of one op's fixed-width tile sub-keys.

    ``_KEY_VERSION`` + one digest over the version tag, the op tag and
    the parameters.  A tile's sub-key is this prefix concatenated with
    its 16-byte component digests — assembling a key is pure byte
    concatenation, hashed parts are hashed exactly once per call.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    _hash_part(h, _KEY_VERSION)
    for part in parts:
        _hash_part(h, part)
    return _KEY_VERSION + h.digest()


def whole_key(op: str, arrays, params: dict) -> bytes:
    """Content key of one whole mapping call (the plan path's L0 probe)."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    _hash_part(h, b"tile/whole")
    _hash_part(h, op)
    for arr in arrays:
        _hash_part(h, np.asarray(arr))
    for name in sorted(params):
        _hash_part(h, name)
        _hash_part(h, params[name])
    return h.digest()


# ----------------------------------------------------------------------
# Chain access: the shared batch-or-per-key adapter, tile-entry regime
# (immutable sub-entries are composed from, never mutated: copy=False)
# ----------------------------------------------------------------------


def _get_many(chain, keys, op: str) -> list:
    return batch_get(chain, keys, op, copy=False)


def _put_many(chain, keys, values, op: str) -> None:
    batch_put(chain, keys, values, op, copy=False)


# ----------------------------------------------------------------------
# Recompute lineage: per-tile miss diagnosis for the ledger
# ----------------------------------------------------------------------

#: Spatial keys remembered per (op, params, tenant) family before the
#: diagnosis memory resets to cold (bounds a long drive's footprint).
_LEDGER_MEMORY_LIMIT = 65536


def _ledger_classify(ledger, front, op, family, tile_ids, miss) -> None:
    """Diagnose *why* each missed tile of one planned call recomputed.

    ``tile_ids`` carries ``(spatial_key, tile_digest, halo_digest)`` per
    planned tile, aligned with the probe's sub-keys; ``miss`` indexes the
    tiles whose chain probe came back empty.  Against the front's
    previous sighting of each spatial key (held per call family, so
    different params or tenants never cross-diagnose): an unseen key is
    ``cold``, a changed tile digest is ``digest_changed``, a changed halo
    digest on an unchanged tile is ``halo_moved``, and identical digests
    that still missed mean the entry was ``evicted`` from every tier.
    The memory refreshes from hits too — this function only *reads* cache
    state, so ledger-on runs stay bit-identical to ledger-off.
    """
    memory = front._ledger_memory.setdefault(family, {})
    causes: dict = {}
    for j in miss:
        skey, tile_digest, halo_digest = tile_ids[j]
        prev = memory.get(skey)
        if prev is None:
            cause = "recompute(cold)"
        elif prev[0] != tile_digest:
            cause = "recompute(digest_changed)"
        elif prev[1] != halo_digest:
            cause = "recompute(halo_moved)"
        else:
            cause = "recompute(evicted)"
        causes[cause] = causes.get(cause, 0) + 1
    if len(memory) + len(tile_ids) > _LEDGER_MEMORY_LIMIT:
        memory.clear()
    for skey, tile_digest, halo_digest in tile_ids:
        memory[skey] = (tile_digest, halo_digest)
    for cause, n in causes.items():
        ledger.tile(op, cause, n)


# ----------------------------------------------------------------------
# kNN / ball query
# ----------------------------------------------------------------------


def run_knn(front, chain, queries, references, k: int):
    """Plan/probe/execute kNN; bit-identical to the per-tile front."""
    stats = front.stats()
    ledger = current_ledger()
    wkey = whole_key("knn", (queries, references), {"k": int(k)})
    with _span("probe", op="knn", whole=True):
        whole = chain.get(wkey, "knn/whole", copy=True)
    stats._count("knn/whole", whole is not None)
    if whole is not None:
        if ledger is not None:
            ledger.call("knn", 0, cause="probe_hit")
        return whole
    with _span("plan", op="knn") as plan_sp:
        qpart, rpart, r_cov = front._float_tiles(queries, references)
        r_cov2 = r_cov * r_cov
        q_digests = qpart.digest_all()
        pre = _key_prefix(b"tile/knn", int(k), front.tile_size, front.halo)
        n_digests, n_flat, n_bounds = rpart.fill_neighborhoods(
            front.halo, qpart.unique_keys
        )
        tiles, sub_keys, fallback, tile_ids = [], [], [], []
        for i, key in enumerate(qpart.unique_keys.tolist()):
            q_idx = qpart.indices(key)
            canonical = n_flat[n_bounds[i]:n_bounds[i + 1]]
            if len(canonical) == 0:
                fallback.append(q_idx)
                continue
            perm_digest, hal = rpart.sorted_halo(key, front.halo, canonical)
            sub_keys.append(pre + q_digests[i] + n_digests[i] + perm_digest)
            tiles.append((q_idx, hal))
            if ledger is not None:
                tile_ids.append((key, q_digests[i], n_digests[i]))
        plan_sp.count("tiles", float(len(sub_keys)))
    if ledger is not None:
        ledger.call("knn", len(sub_keys) + len(fallback))
        ledger.tile("knn", "fallback(empty_halo)", len(fallback))
    with _span("probe", op="knn") as probe_sp:
        entries = _get_many(chain, sub_keys, "knn/tile")
        miss = [j for j, e in enumerate(entries) if e is None]
        probe_sp.count("probes", float(len(entries)))
        probe_sp.count("misses", float(len(miss)))
    if ledger is not None:
        _ledger_classify(
            ledger, front, "knn",
            ("knn", int(k), front.tile_size, front.halo, current_tenant()),
            tile_ids, miss,
        )
    with _span("execute", op="knn") as exec_sp:
        for j in miss:
            q_idx, hal = tiles[j]
            loc, dist = _knn_compute(queries[q_idx], references[hal], k)
            if len(hal) >= k:
                cert = dist[:, k - 1] <= r_cov2
            else:
                cert = np.zeros(len(q_idx), dtype=bool)
            entries[j] = (loc, dist, cert)
        _put_many(chain, [sub_keys[j] for j in miss],
                  [entries[j] for j in miss], "knn/tile")
        exec_sp.count("computed", float(len(miss)))
    stats._count_many("knn", hits=len(entries) - len(miss), misses=len(miss))
    idx_out = np.empty((len(queries), k), dtype=np.int64)
    dist_out = np.empty((len(queries), k), dtype=np.float64)
    rows_parts, idx_parts, dist_parts = [], [], []
    for (q_idx, hal), (loc, dist, cert) in zip(tiles, entries):
        hit_rows = q_idx[cert]
        if len(hit_rows):
            rows_parts.append(hit_rows)
            idx_parts.append(hal[loc[cert]])
            dist_parts.append(dist[cert])
        if not cert.all():
            fallback.append(q_idx[~cert])
    if rows_parts:
        rows = np.concatenate(rows_parts)
        idx_out[rows] = np.concatenate(idx_parts)
        dist_out[rows] = np.concatenate(dist_parts)
        stats.certified_rows += len(rows)
    if fallback:
        rows = np.concatenate(fallback)
        stats.fallback_rows += len(rows)
        f_idx, f_dist = _knn_compute(queries[rows], references, k)
        idx_out[rows] = f_idx
        dist_out[rows] = f_dist
    chain.put(wkey, (idx_out, dist_out), "knn/whole", copy=True)
    return idx_out, dist_out


def run_ball_query(front, chain, queries, references, radius: float, k: int):
    """Plan/probe/execute ball query; bit-identical to the per-tile front."""
    stats = front.stats()
    ledger = current_ledger()
    wkey = whole_key(
        "ball_query", (queries, references),
        {"radius": float(radius), "k": int(k)},
    )
    with _span("probe", op="ball_query", whole=True):
        whole = chain.get(wkey, "ball_query/whole", copy=True)
    stats._count("ball_query/whole", whole is not None)
    if whole is not None:
        if ledger is not None:
            ledger.call("ball_query", 0, cause="probe_hit")
        return whole
    with _span("plan", op="ball_query") as plan_sp:
        qpart, rpart, r_cov = front._float_tiles(queries, references)
        r_cov2 = r_cov * r_cov
        full_cover = r_cov >= radius
        q_digests = qpart.digest_all()
        pre = _key_prefix(b"tile/ball", float(radius), int(k),
                          front.tile_size, front.halo)
        n_digests, n_flat, n_bounds = rpart.fill_neighborhoods(
            front.halo, qpart.unique_keys
        )
        tiles, sub_keys, fallback, tile_ids = [], [], [], []
        for i, key in enumerate(qpart.unique_keys.tolist()):
            q_idx = qpart.indices(key)
            canonical = n_flat[n_bounds[i]:n_bounds[i + 1]]
            if len(canonical) == 0:
                fallback.append(q_idx)
                continue
            perm_digest, hal = rpart.sorted_halo(key, front.halo, canonical)
            sub_keys.append(pre + q_digests[i] + n_digests[i] + perm_digest)
            tiles.append((q_idx, hal))
            if ledger is not None:
                tile_ids.append((key, q_digests[i], n_digests[i]))
        plan_sp.count("tiles", float(len(sub_keys)))
    if ledger is not None:
        ledger.call("ball_query", len(sub_keys) + len(fallback))
        ledger.tile("ball_query", "fallback(empty_halo)", len(fallback))
    with _span("probe", op="ball_query") as probe_sp:
        entries = _get_many(chain, sub_keys, "ball_query/tile")
        miss = [j for j, e in enumerate(entries) if e is None]
        probe_sp.count("probes", float(len(entries)))
        probe_sp.count("misses", float(len(miss)))
    if ledger is not None:
        _ledger_classify(
            ledger, front, "ball_query",
            ("ball_query", float(radius), int(k), front.tile_size,
             front.halo, current_tenant()),
            tile_ids, miss,
        )
    with _span("execute", op="ball_query") as exec_sp:
        for j in miss:
            q_idx, hal = tiles[j]
            loc, in_radius, kth_sq = _ball_query_details(
                queries[q_idx], references[hal], radius, k
            )
            if full_cover:
                cert = in_radius >= 1
            elif len(hal) >= k:
                cert = kth_sq <= r_cov2
            else:
                cert = np.zeros(len(q_idx), dtype=bool)
            entries[j] = (loc, cert)
        _put_many(chain, [sub_keys[j] for j in miss],
                  [entries[j] for j in miss], "ball_query/tile")
        exec_sp.count("computed", float(len(miss)))
    stats._count_many("ball_query",
                      hits=len(entries) - len(miss), misses=len(miss))
    idx_out = np.empty((len(queries), k), dtype=np.int64)
    rows_parts, idx_parts = [], []
    for (q_idx, hal), (loc, cert) in zip(tiles, entries):
        hit_rows = q_idx[cert]
        if len(hit_rows):
            rows_parts.append(hit_rows)
            idx_parts.append(hal[loc[cert]])
        if not cert.all():
            fallback.append(q_idx[~cert])
    if rows_parts:
        rows = np.concatenate(rows_parts)
        idx_out[rows] = np.concatenate(idx_parts)
        stats.certified_rows += len(rows)
    if fallback:
        rows = np.concatenate(fallback)
        stats.fallback_rows += len(rows)
        f_idx, _, _ = _ball_query_details(queries[rows], references, radius, k)
        idx_out[rows] = f_idx
    chain.put(wkey, idx_out, "ball_query/whole", copy=True)
    return idx_out


# ----------------------------------------------------------------------
# Kernel maps: plan/probe/execute + delta-composed row order
# ----------------------------------------------------------------------


class KernelComposer:
    """Delta-composition of kernel-map row orders across frames.

    The compose step is the one cost the per-tile cache cannot hide: even
    a fully warm frame re-sorts every map row into the requested
    algorithm's global order.  The composer remembers, per
    ``(algorithm, offsets, tile side)`` family, the most recent
    compositions — each as the per-tile sub-key sequence, per-tile row
    counts, and the final row-order permutation.  A new frame whose plan
    shares most sub-keys with a remembered one splices instead of
    sorting:

    * *survivor* rows (tiles whose sub-key recurs) keep their previous
      relative order, translated to the new concatenation layout;
    * *fresh* rows (changed/new tiles) are sorted among themselves — a
      K-tile-sized sort, not a frame-sized one;
    * the two sorted runs merge by (weight, minor-key) in linear time.

    Exactness: the requested algorithms' row orders are total on the
    (weight, minor) pair — mergesort is offset-major / input-key-minor,
    hash and bruteforce offset-major / output-index-minor — and the pairs
    are unique (a ``(q, delta)`` matches at most one ``p``), so the full
    sort's output is *the* strictly-increasing key sequence.  After every
    splice the composed sequence is checked for exactly that strict
    increase (O(rows)); survivors whose global renumbering was not
    order-preserving, duplicate keys, or any other violation drop the
    call to the full sort.  The certificate therefore makes splice output
    bit-identical to the full sort whenever it is accepted.
    """

    def __init__(self, max_records_per_family: int = 4,
                 min_match_fraction: float = 0.25) -> None:
        self.max_records_per_family = int(max_records_per_family)
        self.min_match_fraction = float(min_match_fraction)
        self._families: dict = {}  # family -> deque of records
        self.splices = 0
        self.full_sorts = 0
        self.fallbacks = 0  # certificate failures (subset of full_sorts)

    # -- record bookkeeping --------------------------------------------

    def _remember(self, family, sub_keys, counts, order) -> None:
        records = self._families.setdefault(
            family, deque(maxlen=self.max_records_per_family)
        )
        bounds = np.concatenate([[0], np.cumsum(counts)])
        slot_of_row = np.searchsorted(bounds, order, side="right") - 1
        # (slot, local) per composed row is all a later splice reads — the
        # permutation itself is re-derivable from them, and int32 halves
        # the footprint of a remembered frame.
        records.appendleft({
            "slot_of": {sk: i for i, sk in enumerate(sub_keys)},
            "counts": counts,
            "row_slot": slot_of_row.astype(np.int32),
            "row_local": (order - bounds[slot_of_row]).astype(np.int32),
        })

    def _best_candidate(self, family, sub_keys, counts):
        """The remembered record sharing the most rows with this plan.

        Records are scanned most-recent-first (the same layer's previous
        frame, in steady state) and the scan stops early on a
        near-complete match — comparing a frame against every remembered
        composition would itself become a per-tile toll.
        """
        best, best_rows, best_map = None, 0, None
        total = int(counts.sum())
        for record in self._families.get(family, ()):
            slot_of = record["slot_of"]
            prev_counts = record["counts"]
            matched_rows = 0
            mapping = []
            for s_new, sk in enumerate(sub_keys):
                s_prev = slot_of.get(sk)
                if s_prev is not None and prev_counts[s_prev] == counts[s_new]:
                    mapping.append((s_prev, s_new))
                    matched_rows += counts[s_new]
            if matched_rows > best_rows:
                best, best_rows, best_map = record, matched_rows, mapping
            if best_rows >= 0.9 * total:
                break
        return best, best_rows, best_map

    # -- sorting primitives --------------------------------------------

    @staticmethod
    def _full_sort(w, minor, kernel_volume: int) -> np.ndarray:
        """The reference compose order: minor-stable then weight-radix."""
        by_minor = np.argsort(minor, kind="stable")
        w_dtype = (np.int16 if kernel_volume <= np.iinfo(np.int16).max
                   else np.int64)
        return by_minor[np.argsort(w[by_minor].astype(w_dtype),
                                   kind="stable")]

    @staticmethod
    def _strictly_increasing(w, minor) -> bool:
        if len(w) < 2:
            return True
        dw = w[1:] - w[:-1]
        return bool(np.all((dw > 0) | ((dw == 0) & (minor[1:] > minor[:-1]))))

    # -- the compose entry point ---------------------------------------

    def compose(self, family, sub_keys, counts, w, minor,
                kernel_volume: int) -> np.ndarray:
        """Row-order permutation for one planned kernel-map call.

        ``w``/``minor`` are the concatenated per-tile rows in ascending
        tile-key order (``counts`` rows per tile); the result indexes
        into them.  Splices when a remembered composition matches,
        otherwise full-sorts; either way the produced order is remembered
        for the next frame.
        """
        counts = np.asarray(counts, dtype=np.int64)
        n = len(w)
        record, matched_rows, mapping = self._best_candidate(
            family, sub_keys, counts
        )
        order = None
        if record is not None and matched_rows >= self.min_match_fraction * n:
            order = self._splice(record, mapping, counts, w, minor,
                                 kernel_volume)
            if order is None:
                self.fallbacks += 1
            else:
                self.splices += 1
        if order is None:
            self.full_sorts += 1
            order = self._full_sort(w, minor, kernel_volume)
        self._remember(family, sub_keys, counts, order)
        return order

    def _splice(self, record, mapping, counts, w, minor, kernel_volume):
        new_bounds = np.concatenate([[0], np.cumsum(counts)])
        n = int(new_bounds[-1])
        # Translate surviving rows from the previous composed order into
        # the new concatenation layout: same tile slot content, same local
        # row ids, new segment offsets.
        new_slot_of_prev = np.full(len(record["counts"]), -1, dtype=np.int64)
        for s_prev, s_new in mapping:
            new_slot_of_prev[s_prev] = s_new
        mapped_slots = new_slot_of_prev[record["row_slot"]]
        keep = mapped_slots >= 0
        surv = new_bounds[mapped_slots[keep]] + record["row_local"][keep]
        covered = np.zeros(n, dtype=bool)
        covered[surv] = True
        fresh = np.flatnonzero(~covered)
        if len(surv) + len(fresh) != n:  # overlapping translation: bail
            return None
        if len(fresh):
            fresh = fresh[self._full_sort(w[fresh], minor[fresh],
                                          kernel_volume)]
        if not len(surv):
            return None  # nothing survived; the full sort is the fast path
        sw, sm = w[surv], minor[surv]
        if not self._strictly_increasing(sw, sm):
            return None  # renumbering broke the survivors' order
        if not len(fresh):
            return surv
        # Linear merge of the two strictly-sorted runs, per weight chunk
        # (weights are small integers, so the chunk loop is bounded by
        # the kernel volume, not the row count).
        fw, fm = w[fresh], minor[fresh]
        ins = np.empty(len(fresh), dtype=np.int64)
        uw, starts = np.unique(fw, return_index=True)
        ends = np.append(starts[1:], len(fw))
        seg_lo = np.searchsorted(sw, uw, side="left")
        seg_hi = np.searchsorted(sw, uw, side="right")
        for j in range(len(uw)):
            a, b = starts[j], ends[j]
            ins[a:b] = seg_lo[j] + np.searchsorted(
                sm[seg_lo[j]:seg_hi[j]], fm[a:b], side="left"
            )
        shift = np.cumsum(np.bincount(ins, minlength=len(surv) + 1))
        order = np.empty(n, dtype=np.int64)
        order[np.arange(len(surv)) + shift[:len(surv)]] = surv
        order[ins + np.arange(len(fresh))] = fresh
        mw, mm = w[order], minor[order]
        if not self._strictly_increasing(mw, mm):
            return None  # duplicate keys across runs (or a latent bug)
        return order

    def snapshot(self) -> dict:
        return {
            "splices": self.splices,
            "full_sorts": self.full_sorts,
            "fallbacks": self.fallbacks,
        }


class VoxelComposer(KernelComposer):
    """Delta-composition of the voxelize key merge across frames.

    ``run_voxelize``'s compose step sorts the concatenation of every
    tile's sorted-unique voxel keys — an O(n log n) argsort per call even
    when the frame is fully warm.  Per-tile runs interleave across tiles
    (tile order is not voxel-key order), but they are each strictly
    sorted and mutually *disjoint* (grid cells partition voxel space), so
    the :class:`KernelComposer` delta idea simplifies to a K-way run
    merge with no weight ordering at all:

    * *survivor* runs (tiles whose sub-key recurs with the same size)
      keep their previous merged relative order, translated to the new
      concatenation layout;
    * *fresh* runs (changed/new tiles) sort among themselves — K tiles'
      worth of keys, not a frame's — and merge into the survivors with
      one ``searchsorted`` (keys are globally unique: no tie-break);
    * the composed key sequence must strictly increase (the same
      structural certificate the voxelizer already carries); any
      violation falls back to the full argsort, so a splice can never
      change a result.

    Record bookkeeping (per ``(tile side, ndim)`` family) is inherited
    from :class:`KernelComposer`; only the merge differs.
    """

    def compose(self, family, sub_keys, sizes, all_keys) -> np.ndarray:
        """Merged-order permutation over the concatenated voxel keys."""
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(all_keys)
        record, matched_rows, mapping = self._best_candidate(
            family, sub_keys, sizes
        )
        order = None
        if record is not None and matched_rows >= self.min_match_fraction * n:
            order = self._splice_runs(record, mapping, sizes, all_keys)
            if order is None:
                self.fallbacks += 1
            else:
                self.splices += 1
        if order is None:
            self.full_sorts += 1
            order = np.argsort(all_keys, kind="stable")  # disjoint: no ties
        self._remember(family, sub_keys, sizes, order)
        return order

    def _splice_runs(self, record, mapping, sizes, all_keys):
        new_bounds = np.concatenate([[0], np.cumsum(sizes)])
        n = int(new_bounds[-1])
        new_slot_of_prev = np.full(len(record["counts"]), -1, dtype=np.int64)
        for s_prev, s_new in mapping:
            new_slot_of_prev[s_prev] = s_new
        mapped_slots = new_slot_of_prev[record["row_slot"]]
        keep = mapped_slots >= 0
        surv = new_bounds[mapped_slots[keep]] + record["row_local"][keep]
        covered = np.zeros(n, dtype=bool)
        covered[surv] = True
        fresh = np.flatnonzero(~covered)
        if len(surv) + len(fresh) != n:  # overlapping translation: bail
            return None
        if not len(surv):
            return None  # nothing survived; the full sort is the fast path
        sk = all_keys[surv]
        if len(sk) > 1 and not bool(np.all(sk[1:] > sk[:-1])):
            return None  # renumbering broke the survivors' order
        if not len(fresh):
            return surv
        fresh = fresh[np.argsort(all_keys[fresh], kind="stable")]
        fk = all_keys[fresh]
        ins = np.searchsorted(sk, fk)
        shift = np.cumsum(np.bincount(ins, minlength=len(surv) + 1))
        order = np.empty(n, dtype=np.int64)
        order[np.arange(len(surv)) + shift[:len(surv)]] = surv
        order[ins + np.arange(len(fresh))] = fresh
        mk = all_keys[order]
        if not bool(np.all(mk[1:] > mk[:-1])):
            return None  # duplicate keys across runs (or a latent bug)
        return order

    def snapshot(self) -> dict:
        return {
            "splices": self.splices,
            "full_merges": self.full_sorts,
            "fallbacks": self.fallbacks,
        }


def _tile_kernel_rows_keys(in_keys_sub, out_keys_sub, okey_deltas):
    """Kernel-map rows of one tile from pre-packed keys.

    Same probe as :func:`repro.stream.incremental._tile_kernel_rows` —
    identical local ``(in, out, w)`` triples — but both candidate and
    probe keys arrive packed: candidates from one
    :meth:`TilePartition.point_keys` pass per partition, probes by the
    additive :func:`~repro.stream.tiles.offset_key_deltas` identity
    (range-guarded by the caller), so no per-tile coordinate packing at
    all.
    """
    if not (len(in_keys_sub) and len(out_keys_sub) and len(okey_deltas)):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    order = np.argsort(in_keys_sub, kind="stable")
    sorted_keys = in_keys_sub[order]
    n_out = len(out_keys_sub)
    probe = (out_keys_sub[None, :] + okey_deltas[:, None]).ravel()
    pos = np.searchsorted(sorted_keys, probe)
    pos_c = np.minimum(pos, len(sorted_keys) - 1)
    hit = (sorted_keys[pos_c] == probe) & (pos < len(sorted_keys))
    flat = np.flatnonzero(hit)
    return (
        order[pos[flat]].astype(np.int64),
        (flat % n_out).astype(np.int64),
        (flat // n_out).astype(np.int64),
    )


def run_kernel_map(front, chain, op, in_coords, out_coords, offsets):
    """Plan/probe/execute/splice one kernel-map call."""
    stats = front.stats()
    algorithm = op[len(_KERNEL_PREFIX):]
    offsets_raw = np.asarray(offsets)  # hashed as passed (per-tile parity)
    offsets_arr = np.asarray(offsets, dtype=np.int64)
    wkey = whole_key(op, (in_coords, out_coords, offsets_raw), {})
    with _span("probe", op=op, whole=True):
        whole = chain.get(wkey, op + "/whole", copy=False)
    stats._count(op + "/whole", whole is not None)
    ledger = current_ledger()
    if whole is not None:
        # Composed MapTables are immutable by library convention, so the
        # stored object is returned outright — which also lets the MMU's
        # per-instance cache-replay memo carry across frames.
        if ledger is not None:
            ledger.call(op, 0, cause="probe_hit")
        return whole
    with _span("plan", op=op) as plan_sp:
        reach = int(np.abs(offsets_arr).max()) if len(offsets_arr) else 0
        side = max(front.voxel_tile, 2 * reach)
        ipart = front._partition(in_coords, side)
        opart = ipart if out_coords is in_coords else front._partition(
            out_coords, side
        )
        o_digests = opart.digest_all()
        s_digests, s_flat, s_bounds = ipart.fill_shells(
            reach, None if opart is ipart else opart.unique_keys
        )
        pre = _key_prefix(b"tile/kmap", algorithm, offsets_raw, int(side),
                          int(reach))
        keys_list = opart.unique_keys.tolist()
        # Sub-keys assemble by concatenation: out-tile content digest plus
        # fixed-width shell digest, both from whole-partition passes.
        sub_keys = [pre + o_digests[i] + s_digests[i]
                    for i in range(len(keys_list))]
        halos = [s_flat[s_bounds[i]:s_bounds[i + 1]]
                 for i in range(len(keys_list))]
        tile_ids = (
            [(key, o_digests[i], s_digests[i])
             for i, key in enumerate(keys_list)]
            if ledger is not None else []
        )
        plan_sp.count("tiles", float(len(sub_keys)))
    if ledger is not None:
        ledger.call(op, len(sub_keys))
    with _span("probe", op=op) as probe_sp:
        entries = _get_many(chain, sub_keys, op + "/tile")
        miss = [j for j, e in enumerate(entries) if e is None]
        probe_sp.count("probes", float(len(entries)))
        probe_sp.count("misses", float(len(miss)))
    if ledger is not None:
        _ledger_classify(
            ledger, front, op,
            (op, offsets_arr.tobytes(), int(side), int(reach),
             in_coords.shape[1], current_tenant()),
            tile_ids, miss,
        )
    with _span("execute", op=op) as exec_sp:
        if miss:
            in_keys = ipart.point_keys()
            out_keys = opart.point_keys()
            ndim = out_coords.shape[1]
            okey_deltas = offset_key_deltas(offsets_arr, ndim)
            if reach and len(out_coords):
                # The additive probe identity needs every probed coordinate
                # inside the packable range; out-of-range geometry raises,
                # and memoize()'s fallback computes the call plainly —
                # exactly where the per-tile front's coords_to_keys would
                # have landed it.
                lo = out_coords.min(axis=0) - reach
                hi = out_coords.max(axis=0) + reach
                if (lo < -_KEY_OFFSET).any() or (hi > _KEY_OFFSET - 1).any():
                    raise ValueError("kernel-map probe beyond packable range")
            for j in miss:
                entries[j] = _tile_kernel_rows_keys(
                    in_keys[halos[j]],
                    out_keys[opart.indices(keys_list[j])],
                    okey_deltas,
                )
            _put_many(chain, [sub_keys[j] for j in miss],
                      [entries[j] for j in miss], op + "/tile")
        exec_sp.count("computed", float(len(miss)))
    stats._count_many(op, hits=len(entries) - len(miss), misses=len(miss))
    rows_in, rows_out, rows_w, counts = [], [], [], []
    live_sub_keys = []
    for j, (loc_in, loc_out, loc_w) in enumerate(entries):
        if not len(loc_in):
            continue
        key = keys_list[j]
        rows_in.append(halos[j][loc_in])
        rows_out.append(opart.indices(key)[loc_out])
        rows_w.append(loc_w)
        counts.append(len(loc_in))
        live_sub_keys.append(sub_keys[j])
    if not rows_in:
        empty = np.empty(0, dtype=np.int64)
        table = MapTable(empty, empty, empty, kernel_volume=len(offsets_arr))
        chain.put(wkey, table, op + "/whole", copy=False)
        return table
    p_idx = np.concatenate(rows_in).astype(np.int64)
    q_idx = np.concatenate(rows_out).astype(np.int64)
    w_idx = np.concatenate(rows_w).astype(np.int64)
    minor = ipart.point_keys()[p_idx] if algorithm == "mergesort" else q_idx
    family = (algorithm, offsets_arr.tobytes(), int(side),
              in_coords.shape[1])
    composer = front._composer
    with _span("splice", op=op) as splice_sp:
        splices0, sorts0, fb0 = (composer.splices, composer.full_sorts,
                                 composer.fallbacks)
        order = composer.compose(
            family, live_sub_keys, counts, w_idx, minor, len(offsets_arr)
        )
        splice_sp.count("splices", float(composer.splices - splices0))
        splice_sp.count("full_sorts", float(composer.full_sorts - sorts0))
        splice_sp.count("fallbacks", float(composer.fallbacks - fb0))
        if ledger is not None:
            # One compose -> one outcome; a certificate failure shows as
            # both a fallback and a full sort, so check it first.
            if composer.fallbacks > fb0:
                ledger.splice(op, "fallback(certificate)")
            elif composer.full_sorts > sorts0:
                ledger.splice(op, "full_sort")
            else:
                ledger.splice(op, "spliced")
    table = MapTable(
        p_idx[order], q_idx[order], w_idx[order],
        kernel_volume=len(offsets_arr),
    )
    chain.put(wkey, table, op + "/whole", copy=False)
    return table


# ----------------------------------------------------------------------
# Voxelize
# ----------------------------------------------------------------------


def run_voxelize(front, chain, points, voxel_size: float):
    """Plan/probe/execute one voxelize call (halo-free disjoint tiles)."""
    stats = front.stats()
    wkey = whole_key("voxelize", (points,), {"voxel_size": float(voxel_size)})
    with _span("probe", op="voxelize", whole=True):
        whole = chain.get(wkey, "voxelize/whole", copy=True)
    stats._count("voxelize/whole", whole is not None)
    ledger = current_ledger()
    if whole is not None:
        if ledger is not None:
            ledger.call("voxelize", 0, cause="probe_hit")
        return whole
    with _span("plan", op="voxelize") as plan_sp:
        grid = np.floor(points / voxel_size).astype(np.int64)
        side = 4 * front.voxel_tile
        # The partition memo is content-keyed, so the density-bypass check
        # (and a geometry-only replay of the same grid) shares this build.
        part = front._partition(grid, side)
        digests = part.digest_all()
        pre = _key_prefix(b"tile/voxelize", int(side))
        sub_keys = [pre + d for d in digests]
        tile_ids = (
            [(key, digests[i], b"")
             for i, key in enumerate(part.unique_keys.tolist())]
            if ledger is not None else []
        )
        plan_sp.count("tiles", float(len(sub_keys)))
    if ledger is not None:
        ledger.call("voxelize", len(sub_keys))
    with _span("probe", op="voxelize") as probe_sp:
        entries = _get_many(chain, sub_keys, "voxelize/tile")
        miss = [j for j, e in enumerate(entries) if e is None]
        probe_sp.count("probes", float(len(entries)))
        probe_sp.count("misses", float(len(miss)))
    if ledger is not None:
        _ledger_classify(
            ledger, front, "voxelize",
            ("voxelize", float(voxel_size), int(side), current_tenant()),
            tile_ids, miss,
        )
    with _span("execute", op="voxelize") as exec_sp:
        if miss:
            pkeys = part.point_keys()
            keys_list = part.unique_keys.tolist()
            for j in miss:
                idx = part.indices(keys_list[j])
                uniq, inv = np.unique(pkeys[idx], return_inverse=True)
                entries[j] = (uniq, inv.astype(np.intp))
            _put_many(chain, [sub_keys[j] for j in miss],
                      [entries[j] for j in miss], "voxelize/tile")
        exec_sp.count("computed", float(len(miss)))
    stats._count_many("voxelize",
                      hits=len(entries) - len(miss), misses=len(miss))
    # Batched structural certificate over every entry (hits included):
    # per tile, keys strictly increasing and the inverse in range —
    # checked in a handful of whole-call numpy passes instead of four
    # array ops per tile.
    counts = part.counts()
    tile_sizes = []
    for j, (uniq, inv) in enumerate(entries):
        if uniq.ndim != 1 or inv.shape != (int(counts[j]),):
            stats.fallback_rows += len(points)
            raise ValueError("voxelize tile certificate failed")
        tile_sizes.append(len(uniq))
    all_keys = np.concatenate([u for u, _ in entries])
    all_inv = np.concatenate([i for _, i in entries])
    sizes = np.asarray(tile_sizes, dtype=np.int64)
    key_bounds = np.concatenate([[0], np.cumsum(sizes)])
    ok = bool(np.all(sizes >= 1))  # every occupied tile has >= 1 voxel
    if ok and len(all_keys) > 1:
        increasing = np.diff(all_keys) > 0
        increasing[key_bounds[1:-1] - 1] = True  # tile boundaries may reset
        ok = bool(np.all(increasing))
    if ok and len(all_inv):
        starts = np.concatenate([[0], np.cumsum(counts)])[:-1]
        lo = np.minimum.reduceat(all_inv, starts)
        hi = np.maximum.reduceat(all_inv, starts)
        ok = bool(np.all(lo >= 0) and np.all(hi < sizes))
    if not ok:
        stats.fallback_rows += len(points)
        raise ValueError("voxelize tile certificate failed")
    composer = front._vox_composer
    with _span("splice", op="voxelize") as splice_sp:
        splices0, merges0, fb0 = (composer.splices, composer.full_sorts,
                                  composer.fallbacks)
        order = composer.compose(
            (int(side), grid.shape[1]), sub_keys, sizes, all_keys
        )
        splice_sp.count("splices", float(composer.splices - splices0))
        splice_sp.count("full_merges", float(composer.full_sorts - merges0))
        splice_sp.count("fallbacks", float(composer.fallbacks - fb0))
        if ledger is not None:
            # One compose -> one outcome; a certificate failure shows as
            # both a fallback and a full merge, so check it first.
            if composer.fallbacks > fb0:
                ledger.splice("voxelize", "fallback(certificate)")
            elif composer.full_sorts > merges0:
                ledger.splice("voxelize", "full_merge")
            else:
                ledger.splice("voxelize", "spliced")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order))
    inverse = np.empty(len(points), dtype=np.intp)
    # The tile-sorted point order is exactly the per-tile concatenation
    # order of the entries, so the whole inverse scatters in one shot.
    inverse[part._order] = rank[all_inv + np.repeat(key_bounds[:-1], counts)]
    stats.certified_rows += len(points)
    result = (keys_to_coords(all_keys[order], grid.shape[1]), inverse)
    chain.put(wkey, result, "voxelize/whole", copy=True)
    return result
