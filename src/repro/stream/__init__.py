"""Temporal point-cloud streaming with tile-granular incremental map reuse.

PointAcc's headline workloads — segmentation and detection for AR/VR and
autonomous driving — are frame *streams* where consecutive LiDAR sweeps
overlap heavily (the regime Mesorasi's continuous point-cloud analytics
targets, and that FractalCloud exploits by spatial partitioning).  The
engine and cluster layers (PRs 1-2) only reuse mapping work for
bit-identical whole clouds; this subsystem adds the sub-cloud tier:

* :mod:`repro.stream.sequence` — deterministic synthetic LiDAR frame
  sequences in world coordinates (rigid ego-motion, dynamic objects with
  per-frame jitter, points entering/leaving the field of view), registered
  as cloud sources so frames flow through the ordinary workload-key
  machinery;
* :mod:`repro.stream.tiles` — spatial tile partitioning with BLAKE2b
  content digests per tile (the same digest discipline as
  :class:`~repro.engine.MapCache`);
* :mod:`repro.stream.incremental` — :class:`TileMapCache`, a content-aware
  front for :class:`~repro.mapping.hooks.TieredLookup` that serves
  unchanged tiles from cache and recomputes only dirty tiles plus a
  boundary halo, bit-identically;
* :mod:`repro.stream.plan` — the batched tile-front planner: vectorized
  plan/probe/execute over whole partitions (one ``get_many`` chain round
  trip per mapping call) and :class:`~repro.stream.plan.KernelComposer`,
  which delta-composes kernel maps against the previous frame's row
  order instead of re-sorting every row;
* :mod:`repro.stream.pipeline` — :class:`StreamSession`, driving frame
  sequences through a :class:`~repro.engine.SimulationEngine` or
  :class:`~repro.cluster.EngineCluster` in order with per-frame latency
  percentiles, deadline-driven frame drops and tile hit rates in
  :class:`StreamStats`.

See ``README.md`` ("Streaming") for the architecture sketch.
"""

from .incremental import TileFrontStats, TileMapCache
from .pipeline import FrameResult, StreamSession, StreamStats, streaming_map_cache
from .plan import KernelComposer
from .sequence import FrameSequence, SequenceConfig, get_sequence
from .tiles import TilePartition, halo_box, partition, tile_coords

__all__ = [
    "FrameResult",
    "FrameSequence",
    "KernelComposer",
    "SequenceConfig",
    "StreamSession",
    "StreamStats",
    "TileFrontStats",
    "TileMapCache",
    "TilePartition",
    "get_sequence",
    "halo_box",
    "partition",
    "streaming_map_cache",
    "tile_coords",
]
