"""Spatial tile partitioning and per-tile content addressing.

A *tile* is an axis-aligned grid cell of side ``tile_size`` (meters for
continuous clouds, voxel units for integer coordinates).  Tiling is the
unit of incremental reuse in the streaming subsystem: a mapping op over a
frame decomposes into per-tile sub-problems whose inputs are the tile's
own points plus a *halo* of neighboring tiles, and each sub-problem is
content-addressed with the same BLAKE2b digest discipline
:class:`~repro.engine.MapCache` uses — digest over the raw bytes (dtype
and shape included) of exactly the arrays the sub-result depends on, plus
a canonical rendering of the op params.  Unchanged regions of consecutive
frames therefore produce *equal* sub-keys even though the whole-frame
arrays differ.

Order matters as much as content: sub-results store positions into their
input slices, so a digest must cover point *order*, not just the point
set.  Partitions preserve each tile's points in original-array order, and
halos are materialized in ascending global-index order — both are stable
between frames when points only enter/leave elsewhere, which is exactly
what the world-frame sequence generator (and sorted voxel arrays)
guarantee.
"""

from __future__ import annotations

import functools
import hashlib

import numpy as np

__all__ = ["TilePartition", "halo_box", "partition", "tile_coords", "content_digest"]

_DIGEST_SIZE = 16


def tile_coords(points: np.ndarray, tile_size) -> np.ndarray:
    """Integer tile coordinates ``floor(p / tile_size)`` per point."""
    points = np.asarray(points)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, D), got {points.shape}")
    if np.issubdtype(points.dtype, np.integer):
        return np.floor_divide(points, int(tile_size))
    return np.floor(points / float(tile_size)).astype(np.int64)


def _pack(tiles: np.ndarray) -> np.ndarray:
    """Pack tile coordinates into orderable int64 keys (21 bits per axis,
    the library-wide ranking-key convention)."""
    from ..pointcloud.coords import coords_to_keys

    return coords_to_keys(tiles)


def content_digest(*parts) -> bytes:
    """BLAKE2b digest over arrays (bytes + dtype + shape) and str/bytes parts."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        elif isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode())
    return h.digest()


class TilePartition:
    """One cloud split into tiles, with per-tile indices and digests.

    ``indices(key)`` returns the positions of a tile's points in the
    original array, in original order (stable ``argsort`` grouping), so a
    tile's content — and therefore its digest — is independent of every
    other tile.
    """

    def __init__(self, points: np.ndarray, tile_size) -> None:
        self.points = np.asarray(points)
        self.tile_size = tile_size
        tiles = tile_coords(self.points, tile_size)
        self._ndim = tiles.shape[1]
        self._keys = _pack(tiles)
        order = np.argsort(self._keys, kind="stable")
        sorted_keys = self._keys[order]
        unique_keys, starts = np.unique(sorted_keys, return_index=True)
        self._groups: dict[int, np.ndarray] = {}
        bounds = np.append(starts, len(sorted_keys))
        for i, key in enumerate(unique_keys.tolist()):
            self._groups[key] = order[bounds[i]:bounds[i + 1]]
        self._tile_by_key = {
            int(k): tiles[idx[0]] for k, idx in self._groups.items()
        }
        self._digests: dict[int, bytes] = {}
        self._neighborhoods: dict[tuple[int, int], tuple[bytes, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def n_points(self) -> int:
        return len(self.points)

    def keys(self):
        """Occupied tile keys (ascending)."""
        return self._groups.keys()

    def tile_of_key(self, key: int) -> np.ndarray:
        """The (D,) integer tile coordinate behind a packed key."""
        return self._tile_by_key[key]

    def indices(self, key: int) -> np.ndarray:
        """Original-array positions of the tile's points (original order),
        or an empty index array for an unoccupied tile."""
        idx = self._groups.get(key)
        if idx is None:
            return np.empty(0, dtype=np.intp)
        return idx

    def digest(self, key: int) -> bytes:
        """Content digest of one tile (cached; empty tiles digest too)."""
        d = self._digests.get(key)
        if d is None:
            d = content_digest(self.points[self.indices(key)])
            self._digests[key] = d
        return d

    def neighborhood(self, key: int, halo: int) -> tuple[bytes, np.ndarray]:
        """``(digest, canonical_indices)`` of the halo box around a tile.

        The digest covers each constituent tile's content in fixed
        relative-offset order (``b"\\x00"`` for unoccupied cells); the
        canonical index array concatenates the constituent tiles in that
        same order, each tile's points in original order.  The pair is the
        foundation of relocatable sub-results: a stored value indexed into
        the canonical concatenation means the same points wherever (and
        whenever) an equal digest recurs.  Cached per ``(key, halo)``.
        """
        cached = self._neighborhoods.get((key, halo))
        if cached is not None:
            return cached
        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        parts = []
        for box_key in (key + _delta_keys(halo, self._ndim)).tolist():
            idx = self._groups.get(box_key)
            if idx is None:
                h.update(b"\x00")
            else:
                h.update(self.digest(box_key))
                parts.append(idx)
        canonical = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
        )
        result = (h.digest(), canonical)
        self._neighborhoods[(key, halo)] = result
        return result

    def halo_indices(self, key: int, halo: int) -> np.ndarray:
        """Ascending original-array positions of all points within ``halo``
        tiles (Chebyshev) of the tile behind ``key`` — itself included."""
        return np.sort(self.neighborhood(key, halo)[1])


@functools.lru_cache(maxsize=32)
def _delta_keys(halo: int, ndim: int) -> np.ndarray:
    """Packed-key deltas of the halo box: the per-axis bit fields of
    :func:`~repro.pointcloud.coords.coords_to_keys` are additive for
    in-range offsets, so ``key(tile + delta) == key(tile) + delta_key``."""
    from ..pointcloud.coords import _KEY_BITS_PER_AXIS

    shifts = np.array(
        [1 << (_KEY_BITS_PER_AXIS * (ndim - 1 - d)) for d in range(ndim)],
        dtype=np.int64,
    )
    return halo_box(halo, ndim) @ shifts


@functools.lru_cache(maxsize=32)
def halo_box(halo: int, ndim: int) -> np.ndarray:
    """All integer offsets in ``{-halo..halo}^ndim``, lexicographic order.

    Cached (it runs once per tile per op call) — treat the result as
    read-only.
    """
    if halo < 0:
        raise ValueError(f"halo must be >= 0, got {halo}")
    rng = np.arange(-halo, halo + 1, dtype=np.int64)
    grids = np.meshgrid(*([rng] * ndim), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def partition(points: np.ndarray, tile_size) -> TilePartition:
    """Convenience constructor for :class:`TilePartition`."""
    return TilePartition(points, tile_size)
