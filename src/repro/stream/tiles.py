"""Spatial tile partitioning and per-tile content addressing.

A *tile* is an axis-aligned grid cell of side ``tile_size`` (meters for
continuous clouds, voxel units for integer coordinates).  Tiling is the
unit of incremental reuse in the streaming subsystem: a mapping op over a
frame decomposes into per-tile sub-problems whose inputs are the tile's
own points plus a *halo* of neighboring tiles, and each sub-problem is
content-addressed with the same BLAKE2b digest discipline
:class:`~repro.engine.MapCache` uses — digest over the raw bytes (dtype
and shape included) of exactly the arrays the sub-result depends on, plus
a canonical rendering of the op params.  Unchanged regions of consecutive
frames therefore produce *equal* sub-keys even though the whole-frame
arrays differ.

Order matters as much as content: sub-results store positions into their
input slices, so a digest must cover point *order*, not just the point
set.  Partitions preserve each tile's points in original-array order, and
halos are materialized in ascending global-index order — both are stable
between frames when points only enter/leave elsewhere, which is exactly
what the world-frame sequence generator (and sorted voxel arrays)
guarantee.
"""

from __future__ import annotations

import functools
import hashlib

import numpy as np

__all__ = [
    "TilePartition",
    "content_digest",
    "halo_box",
    "hash_part",
    "partition",
    "tile_coords",
]

_DIGEST_SIZE = 16


def tile_coords(points: np.ndarray, tile_size) -> np.ndarray:
    """Integer tile coordinates ``floor(p / tile_size)`` per point."""
    points = np.asarray(points)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, D), got {points.shape}")
    if np.issubdtype(points.dtype, np.integer):
        return np.floor_divide(points, int(tile_size))
    return np.floor(points / float(tile_size)).astype(np.int64)


def _pack(tiles: np.ndarray) -> np.ndarray:
    """Pack tile coordinates into orderable int64 keys (21 bits per axis,
    the library-wide ranking-key convention)."""
    from ..pointcloud.coords import coords_to_keys

    return coords_to_keys(tiles)


#: dtype -> encoded tag; ``str(dtype)`` recomputes the name each call and
#: is a measurable cost at tile granularity (thousands of digests/frame).
_DTYPE_TAGS: dict = {}


def _dtype_tag(dtype) -> bytes:
    tag = _DTYPE_TAGS.get(dtype)
    if tag is None:
        tag = str(dtype).encode()
        _DTYPE_TAGS[dtype] = tag
    return tag


def hash_part(h, part) -> None:
    """Feed one part into a hash state, canonically encoded.

    The one definition of the per-part encoding (array = dtype tag +
    ``repr(shape)`` + raw bytes; bytes raw; everything else ``repr``).
    :func:`content_digest` builds on it; so do the whole-call probes and
    the legacy per-tile oracle's sub-keys.  The serving planner's
    fixed-width tile keys (:mod:`repro.stream.plan`) hash parameters
    through it too, but assemble per-tile keys by concatenating component
    digests instead of re-hashing parts per tile.
    """
    if isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        h.update(_dtype_tag(arr.dtype))
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(part, bytes):
        h.update(part)
    else:
        h.update(repr(part).encode())


def content_digest(*parts) -> bytes:
    """BLAKE2b digest over arrays (bytes + dtype + shape) and str/bytes parts."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        hash_part(h, part)
    return h.digest()


def _ranges(starts, lens, total: int):
    """Concatenation of ``arange(s, s + l)`` runs, fully vectorized.

    Every run length must be >= 1 and ``total == lens.sum()``.  Three
    O(total) passes replace a Python loop over runs — the gather/scatter
    primitive behind the batched shell and neighborhood assembly.
    """
    out = np.ones(total, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    out[0] = starts[0]
    bnd = np.cumsum(lens)[:-1]
    out[bnd] = starts[1:] - (starts[:-1] + lens[:-1]) + 1
    return np.cumsum(out)


class TilePartition:
    """One cloud split into tiles, with per-tile indices and digests.

    ``indices(key)`` returns the positions of a tile's points in the
    original array, in original order (stable ``argsort`` grouping), so a
    tile's content — and therefore its digest — is independent of every
    other tile.
    """

    def __init__(self, points: np.ndarray, tile_size) -> None:
        self.points = np.asarray(points)
        self.tile_size = tile_size
        tiles = tile_coords(self.points, tile_size)
        self._tiles = tiles
        self._ndim = tiles.shape[1]
        self._keys = _pack(tiles)
        order = np.argsort(self._keys, kind="stable")
        sorted_keys = self._keys[order]
        unique_keys, starts = np.unique(sorted_keys, return_index=True)
        self._groups: dict[int, np.ndarray] = {}
        bounds = np.append(starts, len(sorted_keys))
        # The batched plan path consumes these directly: the sort
        # permutation, the per-tile segment bounds within it, and the
        # occupied keys as an array (ascending — the iteration order of
        # _groups below, which is built in that order).
        self._order = order
        self._bounds = bounds
        self._ukeys = unique_keys
        for i, key in enumerate(unique_keys.tolist()):
            self._groups[key] = order[bounds[i]:bounds[i + 1]]
        self._tile_by_key = {
            int(k): tiles[idx[0]] for k, idx in self._groups.items()
        }
        self._digests: dict[int, bytes] = {}
        self._all_digests: list[bytes] | None = None
        self._digest_mat: np.ndarray | None = None
        self._packed: np.ndarray | None = None
        self._point_keys: np.ndarray | None = None
        self._neighborhoods: dict[tuple[int, int], tuple[bytes, np.ndarray]] = {}
        self._sorted_neighborhoods: dict[tuple[int, int], tuple] = {}
        # reach -> key -> {(axis, lo/hi): (digest, indices)}; see _slabs().
        self._slabs_by_reach: dict[int, dict[int, dict]] = {}
        self._slab_masks_by_reach: dict[int, tuple] = {}
        self._shells: dict[tuple[int, int], tuple[bytes, np.ndarray]] = {}
        # Batched (fixed-width) assembly caches: face-major slab tables per
        # reach, shell/neighborhood tables per (reach-or-halo, query-keys),
        # and the per-(key, halo) sorted-halo memo of the plan path.
        self._slab_mats: dict[int, dict] = {}
        self._shell_mats: dict = {}
        self._nbhd_mats: dict = {}
        self._sorted_halos: dict[tuple[int, int], tuple] = {}

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def n_points(self) -> int:
        return len(self.points)

    def keys(self):
        """Occupied tile keys (ascending)."""
        return self._groups.keys()

    @property
    def unique_keys(self) -> np.ndarray:
        """Occupied tile keys as an int64 array (ascending).  Read-only by
        convention — the batched planner searches it with searchsorted."""
        return self._ukeys

    def counts(self) -> np.ndarray:
        """Points per occupied tile, aligned with :attr:`unique_keys`."""
        return np.diff(self._bounds)

    def tile_of_key(self, key: int) -> np.ndarray:
        """The (D,) integer tile coordinate behind a packed key."""
        return self._tile_by_key[key]

    def indices(self, key: int) -> np.ndarray:
        """Original-array positions of the tile's points (original order),
        or an empty index array for an unoccupied tile."""
        idx = self._groups.get(key)
        if idx is None:
            return np.empty(0, dtype=np.intp)
        return idx

    def digest(self, key: int) -> bytes:
        """Content digest of one tile (cached; empty tiles digest too)."""
        d = self._digests.get(key)
        if d is None:
            d = content_digest(self.points[self.indices(key)])
            self._digests[key] = d
        return d

    # ------------------------------------------------------------------
    # Batched passes: packed buffers, bulk digests, bulk slabs
    # ------------------------------------------------------------------

    def packed(self) -> np.ndarray:
        """The points gathered into tile-sorted order, C-contiguous.

        One gather shared by every batched pass: tile ``i``'s points are
        rows ``_bounds[i]:_bounds[i+1]``, each tile's rows in original
        order (the stable-argsort grouping), so a byte slice of this
        buffer *is* ``points[indices(key)].tobytes()``.  Cached.
        """
        if self._packed is None:
            self._packed = np.ascontiguousarray(self.points[self._order])
        return self._packed

    def digest_all(self) -> list[bytes]:
        """Per-tile content digests for every occupied tile at once.

        Bit-identical to calling :meth:`digest` per key, but computed
        over one packed buffer: no per-tile array temporaries, only the
        unavoidable per-tile hash finalization.  Returns the digests in
        ascending-key order (aligned with :attr:`unique_keys`) and fills
        the per-key cache as a side effect.
        """
        if self._all_digests is not None:
            return self._all_digests
        packed = self.packed()
        ncols = packed.shape[1]
        row_bytes = packed.dtype.itemsize * ncols
        mv = memoryview(packed).cast("B")
        tag = _dtype_tag(packed.dtype)
        bounds = self._bounds.tolist()
        digests = []
        for i, key in enumerate(self._ukeys.tolist()):
            lo, hi = bounds[i], bounds[i + 1]
            h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
            h.update(tag)
            h.update(repr((hi - lo, ncols)).encode())
            h.update(mv[lo * row_bytes:hi * row_bytes])
            d = h.digest()
            digests.append(d)
            self._digests[key] = d
        self._all_digests = digests
        return digests

    def digest_matrix(self) -> np.ndarray:
        """Per-tile digests stacked as an ``(n_tiles, 16)`` uint8 matrix.

        The gatherable form of :meth:`digest_all` — the batched shell and
        neighborhood assembly pulls rows of it with fancy indexing instead
        of probing a dict per tile.  Cached.
        """
        if self._digest_mat is None:
            digests = self.digest_all()
            self._digest_mat = np.frombuffer(
                b"".join(digests), dtype=np.uint8
            ).reshape(len(digests), _DIGEST_SIZE)
        return self._digest_mat

    def point_keys(self) -> np.ndarray:
        """Packed ranking keys of every point (integer clouds), cached.

        The kernel-map planner probes membership against these; computing
        them once per partition replaces the per-tile ``coords_to_keys``
        calls of the per-tile path.
        """
        if self._point_keys is None:
            from ..pointcloud.coords import coords_to_keys

            self._point_keys = coords_to_keys(self.points)
        return self._point_keys

    def fill_slabs(self, reach: int) -> dict:
        """Face-major boundary-slab tables for ``reach``, computed in bulk.

        Returns ``{(axis, lo/hi): face}`` where each face holds, aligned
        with :attr:`unique_keys` by tile slot: ``dig`` (an ``(n_tiles,
        16)`` uint8 digest matrix, zero rows for absent slabs), ``occ``
        (slab-present mask), and a run table — ``flat`` (every face
        point's original index, tile runs back to back in original point
        order) with per-slot ``bounds``.  Six vectorized sweeps (one per
        face) over the packed buffer; faces with no points are omitted.
        Per-slab digests are byte-identical to the per-tile oracle's
        (:meth:`_slabs`).  Idempotent per reach.
        """
        mats = self._slab_mats.get(reach)
        if mats is not None:
            return mats
        mats = {}
        n_tiles = len(self._ukeys)
        if reach > 0 and n_tiles:
            lo, hi = self._slab_masks(reach)
            order = self._order
            packed = self.packed()
            ncols = packed.shape[1]
            row_bytes = packed.dtype.itemsize * ncols
            tag = _dtype_tag(packed.dtype)
            for axis in range(self._ndim):
                for code, mask in ((0, lo), (2, hi)):
                    sel = np.flatnonzero(mask[order, axis])
                    if not len(sel):
                        continue
                    pidx = order[sel]
                    # sel ascends, so tile slots form contiguous runs.
                    slots = np.searchsorted(self._bounds, sel, side="right") - 1
                    runs = np.flatnonzero(np.diff(slots)) + 1
                    starts = np.concatenate([[0], runs])
                    ends = np.concatenate([runs, [len(sel)]])
                    slab_pts = np.ascontiguousarray(self.points[pidx])
                    mv = memoryview(slab_pts).cast("B")
                    digs = []
                    for s, e in zip(starts.tolist(), ends.tolist()):
                        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
                        h.update(tag)
                        h.update(repr((e - s, ncols)).encode())
                        h.update(mv[s * row_bytes:e * row_bytes])
                        digs.append(h.digest())
                    run_slots = slots[starts]
                    dig = np.zeros((n_tiles, _DIGEST_SIZE), dtype=np.uint8)
                    dig[run_slots] = np.frombuffer(
                        b"".join(digs), dtype=np.uint8
                    ).reshape(len(digs), _DIGEST_SIZE)
                    occ = np.zeros(n_tiles, dtype=bool)
                    occ[run_slots] = True
                    lens = np.zeros(n_tiles, dtype=np.int64)
                    lens[run_slots] = ends - starts
                    mats[(axis, code)] = {
                        "dig": dig,
                        "occ": occ,
                        "flat": pidx,
                        "bounds": np.concatenate([[0], np.cumsum(lens)]),
                    }
        self._slab_mats[reach] = mats
        return mats

    def _gather_box(self, qkeys, deltas, sources):
        """Whole-partition assembly of per-tile digest rows + index runs.

        For each query key and each box slot ``j`` (offset ``deltas[j]``),
        ``sources[j]`` supplies the contribution of the tile found there:
        ``None`` contributes nothing, else a ``(dig, occ, flat, bounds)``
        table indexed by tile slot (``occ=None`` means every present tile
        contributes).  Returns ``(digests, flat, bounds)``: one 16-byte
        digest per query key — BLAKE2b over its row of the stacked
        fixed-width slot-digest matrix, absent slots all-zero — plus the
        canonical index concatenation as one flat array with per-query
        run bounds.  No per-tile dict probes, no per-tile concatenates;
        the only per-tile work left is the hash finalization.
        """
        ukeys = self._ukeys
        n_tiles = len(ukeys)
        nq = len(qkeys)
        n_slots = len(deltas)
        if nq == 0:
            return [], np.empty(0, dtype=np.intp), np.zeros(1, dtype=np.int64)
        box = qkeys[:, None] + deltas[None, :]
        if n_tiles:
            pos = np.searchsorted(ukeys, box)
            pos_c = np.minimum(pos, n_tiles - 1)
            present = (pos < n_tiles) & (ukeys[pos_c] == box)
        else:
            pos_c = np.zeros((nq, n_slots), dtype=np.int64)
            present = np.zeros((nq, n_slots), dtype=bool)
        dmat = np.zeros((nq, n_slots * _DIGEST_SIZE), dtype=np.uint8)
        lens = np.zeros((nq, n_slots), dtype=np.int64)
        picks = []
        for j, src in enumerate(sources):
            if src is None:
                picks.append(None)
                continue
            dig, occ, src_flat, src_bounds = src
            if occ is None:
                rows = np.flatnonzero(present[:, j])
            else:
                rows = np.flatnonzero(present[:, j] & occ[pos_c[:, j]])
            if not len(rows):
                picks.append(None)
                continue
            p = pos_c[rows, j]
            dmat[rows, j * _DIGEST_SIZE:(j + 1) * _DIGEST_SIZE] = dig[p]
            lens[rows, j] = src_bounds[p + 1] - src_bounds[p]
            picks.append((rows, src_bounds[p], src_flat))
        bounds = np.concatenate([[0], np.cumsum(lens.sum(axis=1))])
        offs = bounds[:-1][:, None] + np.cumsum(lens, axis=1) - lens
        flat = np.empty(int(bounds[-1]), dtype=np.intp)
        for j, pick in enumerate(picks):
            if pick is None:
                continue
            rows, src_starts, src_flat = pick
            run = lens[rows, j]
            total = int(run.sum())
            if not total:
                continue
            flat[_ranges(offs[rows, j], run, total)] = \
                src_flat[_ranges(src_starts, run, total)]
        row_bytes = n_slots * _DIGEST_SIZE
        buf = dmat.tobytes()
        digests = [
            hashlib.blake2b(buf[t * row_bytes:(t + 1) * row_bytes],
                            digest_size=_DIGEST_SIZE).digest()
            for t in range(nq)
        ]
        return digests, flat, bounds

    def fill_shells(self, reach: int, qkeys: np.ndarray | None = None):
        """Every query tile's reach-shell in one whole-partition sweep.

        Returns ``(digests, flat, bounds)``: per query key (default: every
        occupied tile, ascending), the fixed-width shell digest — BLAKE2b
        over the tile's row of the stacked slot-digest matrix (own tile
        digest at the center slot, each neighbor's facing-slab digest at
        its slot, all-zero for absent contributions) — and its canonical
        index array as a slice ``flat[bounds[i]:bounds[i + 1]]``.  The
        canonical arrays are element-identical to the per-tile oracle's
        :meth:`shell`; the digests are the *fixed-width* encoding the
        versioned serving keys are built from, deliberately distinct from
        the oracle's variable-width digests.  Cached per (reach, qkeys).
        """
        side = int(self.tile_size)
        if not 0 <= 2 * reach <= side:
            raise ValueError(
                f"shell needs 0 <= 2 * reach <= tile_size, got reach "
                f"{reach} at tile_size {side}"
            )
        cache_key = (reach, None if qkeys is None else qkeys.tobytes())
        cached = self._shell_mats.get(cache_key)
        if cached is not None:
            return cached
        if qkeys is None:
            qkeys = self._ukeys
        slab_mats = self.fill_slabs(reach)
        tile_src = (self.digest_matrix(), None, self._order, self._bounds)
        sources = []
        for slot in _shell_plan(self._ndim):
            if slot is None:  # the tile itself: wholly inside the region
                sources.append(tile_src)
            elif reach == 0:
                sources.append(None)
            else:
                face = slab_mats.get(slot)
                sources.append(None if face is None else (
                    face["dig"], face["occ"], face["flat"], face["bounds"]
                ))
        result = self._gather_box(
            qkeys, _delta_keys(1, self._ndim), sources
        )
        self._shell_mats[cache_key] = result
        return result

    def fill_neighborhoods(self, halo: int, qkeys: np.ndarray | None = None):
        """Every query tile's halo-box neighborhood in one sweep.

        The :meth:`fill_shells` analogue for the continuous ops: each of
        the ``(2 * halo + 1)^D`` box slots contributes the whole tile
        found there (digest row + full index run), absent cells all-zero.
        Returns ``(digests, flat, bounds)`` aligned with ``qkeys``
        (default: every occupied tile); canonical index arrays are
        element-identical to the oracle's :meth:`neighborhood`.  Cached
        per (halo, qkeys).
        """
        cache_key = (halo, None if qkeys is None else qkeys.tobytes())
        cached = self._nbhd_mats.get(cache_key)
        if cached is not None:
            return cached
        if qkeys is None:
            qkeys = self._ukeys
        deltas = _delta_keys(halo, self._ndim)
        tile_src = (self.digest_matrix(), None, self._order, self._bounds)
        result = self._gather_box(qkeys, deltas, [tile_src] * len(deltas))
        self._nbhd_mats[cache_key] = result
        return result

    def sorted_halo(self, key: int, halo: int, canonical: np.ndarray):
        """``(perm_digest, sorted_halo)`` for one tile of the plan path.

        ``canonical`` is the tile's slice of a :meth:`fill_neighborhoods`
        flat array; the interleave permutation that sorts it to ascending
        global index is digested (16 bytes) rather than hashed into every
        sub-key raw — the neighborhood digest already fixes the per-tile
        lengths, so the permutation bytes alone identify the interleaving.
        Cached per ``(key, halo)``: the argsort is the one per-tile cost
        the batched assembly cannot remove, so it must not repeat across
        the ops of one frame.
        """
        cached = self._sorted_halos.get((key, halo))
        if cached is not None:
            return cached
        if len(canonical) == 0:
            result = (bytes(_DIGEST_SIZE), canonical)
        else:
            perm = np.argsort(canonical, kind="stable").astype(np.int32)
            result = (
                hashlib.blake2b(perm.tobytes(),
                                digest_size=_DIGEST_SIZE).digest(),
                canonical[perm],
            )
        self._sorted_halos[(key, halo)] = result
        return result

    def sorted_neighborhood(self, key: int, halo: int):
        """``(halo_digest, interleave_perm, sorted_halo)`` for one tile.

        ``sorted_halo`` is the canonical halo concatenation re-ordered to
        ascending global index (the tie-break order sub-results are
        computed under) and ``interleave_perm`` the permutation that got
        it there (``None`` for an empty halo).  Cached per ``(key, halo)``
        — the per-tile path recomputes the argsort on every call, which
        is part of the overhead the plan path exists to remove.
        """
        cached = self._sorted_neighborhoods.get((key, halo))
        if cached is not None:
            return cached
        digest, canonical = self.neighborhood(key, halo)
        if len(canonical) == 0:
            result = (digest, None, canonical)
        else:
            perm = np.argsort(canonical, kind="stable").astype(np.int32)
            result = (digest, perm, canonical[perm])
        self._sorted_neighborhoods[(key, halo)] = result
        return result

    def neighborhood(self, key: int, halo: int) -> tuple[bytes, np.ndarray]:
        """``(digest, canonical_indices)`` of the halo box around a tile.

        The digest covers each constituent tile's content in fixed
        relative-offset order (``b"\\x00"`` for unoccupied cells); the
        canonical index array concatenates the constituent tiles in that
        same order, each tile's points in original order.  The pair is the
        foundation of relocatable sub-results: a stored value indexed into
        the canonical concatenation means the same points wherever (and
        whenever) an equal digest recurs.  Cached per ``(key, halo)``.
        """
        cached = self._neighborhoods.get((key, halo))
        if cached is not None:
            return cached
        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        parts = []
        for box_key in (key + _delta_keys(halo, self._ndim)).tolist():
            idx = self._groups.get(box_key)
            if idx is None:
                h.update(b"\x00")
            else:
                h.update(self.digest(box_key))
                parts.append(idx)
        canonical = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
        )
        result = (h.digest(), canonical)
        self._neighborhoods[(key, halo)] = result
        return result

    def halo_indices(self, key: int, halo: int) -> np.ndarray:
        """Ascending original-array positions of all points within ``halo``
        tiles (Chebyshev) of the tile behind ``key`` — itself included."""
        return np.sort(self.neighborhood(key, halo)[1])

    # ------------------------------------------------------------------
    # Reach-shells: tile + thin neighbor boundary, for stencil ops
    # ------------------------------------------------------------------

    def _slabs(self, key: int, reach: int) -> dict:
        """Boundary slabs of one tile (integer coordinates only).

        ``(axis, 0)`` is the slab of points within ``reach`` of the
        tile's low face on ``axis``, ``(axis, 2)`` of the high face;
        only occupied slabs are present.  Computed once per
        ``(key, reach)`` — the boundary masks for *every* point of the
        partition are computed in one vectorized sweep per reach (see
        :meth:`_slab_masks`), so the per-tile step is only the slicing
        and digesting — with points in original order, so slab digests
        are as frame-stable as the tile's own.
        """
        per_key = self._slabs_by_reach.setdefault(reach, {})
        slabs = per_key.get(key)
        if slabs is not None:
            return slabs
        idx = self._groups[key]
        lo, hi = self._slab_masks(reach)
        slabs = {}
        for axis in range(self._ndim):
            for code, mask in ((0, lo[idx, axis]), (2, hi[idx, axis])):
                if mask.any():
                    pidx = idx[mask]
                    slabs[(axis, code)] = (content_digest(self.points[pidx]),
                                           pidx)
        per_key[key] = slabs
        return slabs

    def _slab_masks(self, reach: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-point low/high boundary masks for the whole partition,
        one vectorized pass per reach (cached)."""
        cached = self._slab_masks_by_reach.get(reach)
        if cached is not None:
            return cached
        side = int(self.tile_size)
        rel = self.points - self._tiles * side
        cached = (rel < reach, rel >= side - reach)
        self._slab_masks_by_reach[reach] = cached
        return cached

    def shell(self, key: int, reach: int) -> tuple[bytes, np.ndarray]:
        """``(digest, canonical_indices)`` of the tile plus a ``reach``-
        shell of its 3^D - 1 neighbors (integer coordinates only).

        The dependence region of a ``reach``-stencil op on an output tile
        is the tile's own box expanded by ``reach`` per axis; each
        neighbor covers its part of that region with one boundary slab (a
        slight superset for edge/corner neighbors — harmless for
        membership probing, which is geometrically confined to the exact
        region).  Unlike :meth:`neighborhood` — whose digest moves when
        *anything* in any neighbor moves — a shell digest only moves when
        a contributed boundary slab does, and its canonical index array
        is ~one tile rather than 3^D tiles, so both reuse granularity and
        candidate-set size improve by an order of magnitude.  Canonical
        order: neighbors in :func:`halo_box` order (the tile itself in
        full at its slot), each contributing the slab facing the tile —
        low slab of the first inbound axis for ``+1`` deltas, high for
        ``-1`` — every slab in original point order.  Cached per
        ``(key, reach)``.  Requires ``0 <= 2 * reach <= tile_size``.
        """
        cached = self._shells.get((key, reach))
        if cached is not None:
            return cached
        side = int(self.tile_size)
        if not 0 <= 2 * reach <= side:
            raise ValueError(
                f"shell needs 0 <= 2 * reach <= tile_size, got reach "
                f"{reach} at tile_size {side}"
            )
        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        parts = []
        groups = self._groups
        slab_cache = self._slabs_by_reach.setdefault(reach, {})
        for slot, box_key in zip(
            _shell_plan(self._ndim), (key + _delta_keys(1, self._ndim)).tolist()
        ):
            if slot is None:  # the tile itself: wholly inside the region
                idx = groups.get(key)
                if idx is None:
                    h.update(b"\x00")
                else:
                    h.update(self.digest(key))
                    parts.append(idx)
                continue
            if reach == 0 or box_key not in groups:
                # Content-equivalent to "facing slab empty": absent tiles
                # and zero-reach shells contribute no candidates.
                h.update(b"\x00")
                continue
            slabs = slab_cache.get(box_key)
            if slabs is None:
                slabs = self._slabs(box_key, reach)
            slab = slabs.get(slot)
            if slab is None:
                h.update(b"\x00")
            else:
                h.update(slab[0])
                parts.append(slab[1])
        canonical = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
        )
        result = (h.digest(), canonical)
        self._shells[(key, reach)] = result
        return result


def offset_key_deltas(offsets: np.ndarray, ndim: int) -> np.ndarray:
    """Packed-key deltas of arbitrary integer offsets.

    ``key(coord + offset) == key(coord) + delta`` whenever the shifted
    coordinate stays inside the per-axis packable range — the same
    additivity :func:`_delta_keys` exploits for halo boxes, exposed for
    the batched kernel-map prober (callers must range-guard).
    """
    from ..pointcloud.coords import _KEY_BITS_PER_AXIS

    shifts = np.array(
        [1 << (_KEY_BITS_PER_AXIS * (ndim - 1 - d)) for d in range(ndim)],
        dtype=np.int64,
    )
    return np.asarray(offsets, dtype=np.int64) @ shifts


@functools.lru_cache(maxsize=32)
def _delta_keys(halo: int, ndim: int) -> np.ndarray:
    """Packed-key deltas of the halo box: the per-axis bit fields of
    :func:`~repro.pointcloud.coords.coords_to_keys` are additive for
    in-range offsets, so ``key(tile + delta) == key(tile) + delta_key``."""
    from ..pointcloud.coords import _KEY_BITS_PER_AXIS

    shifts = np.array(
        [1 << (_KEY_BITS_PER_AXIS * (ndim - 1 - d)) for d in range(ndim)],
        dtype=np.int64,
    )
    return halo_box(halo, ndim) @ shifts


@functools.lru_cache(maxsize=8)
def _shell_plan(ndim: int) -> tuple:
    """Per :func:`halo_box` row: ``None`` for the center tile, else the
    ``(axis, lo/hi)`` slab a neighbor at that delta faces the tile with —
    a ``+1`` neighbor with its *low* slab, a ``-1`` with its high one, on
    the first inbound axis."""
    plan = []
    for delta in halo_box(1, ndim).tolist():
        if not any(delta):
            plan.append(None)
        else:
            axis = next(a for a, d in enumerate(delta) if d)
            plan.append((axis, 0 if delta[axis] > 0 else 2))
    return tuple(plan)


@functools.lru_cache(maxsize=32)
def halo_box(halo: int, ndim: int) -> np.ndarray:
    """All integer offsets in ``{-halo..halo}^ndim``, lexicographic order.

    Cached (it runs once per tile per op call) — treat the result as
    read-only.
    """
    if halo < 0:
        raise ValueError(f"halo must be >= 0, got {halo}")
    rng = np.arange(-halo, halo + 1, dtype=np.int64)
    grids = np.meshgrid(*([rng] * ndim), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def partition(points: np.ndarray, tile_size) -> TilePartition:
    """Convenience constructor for :class:`TilePartition`."""
    return TilePartition(points, tile_size)
