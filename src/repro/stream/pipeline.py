"""Streaming sessions: ordered frame sequences through engine or cluster.

:class:`StreamSession` is the serving loop for temporal workloads: it
turns a :class:`~repro.stream.sequence.FrameSequence` plus a network into
an ordered stream of :class:`~repro.engine.SimRequest`\\ s (one per frame,
the request seed being the frame index), drives them through a
:class:`~repro.engine.SimulationEngine` or
:class:`~repro.cluster.EngineCluster` *in order* — frames are a timeline,
not a batch to reorder — and tracks what a serving operator cares about:
per-frame latency percentiles, deadline behaviour (including dropping
frames whose deadline already expired before dispatch), and how much
mapping work the tile tier reused.

By default a session builds its own single engine with a
:class:`~repro.stream.incremental.TileMapCache` front and requests
geometry-only execution for SparseConv networks (where the trace is a
pure function of coordinates — see :mod:`repro.nn.ghost`).  Pass a
pre-built ``engine=`` or ``cluster=`` to reuse existing fleets; the
session then respects their cache configuration.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..engine.engine import SimRequest, SimResult, SimulationEngine
from ..engine.map_cache import MapCache
from ..nn.models.registry import get_benchmark
from ..obs.ledger import current_ledger
from ..obs.trace import current_tracer, span
from .incremental import TileMapCache
from .sequence import FrameSequence

__all__ = ["FrameResult", "StreamSession", "StreamStats", "streaming_map_cache"]


def streaming_map_cache() -> MapCache:
    """The L1 sizing every streaming/fleet executor uses.

    Tile-decomposed streaming produces thousands of tile sub-entries per
    frame; an engine's default 4096-entry L1 would evict a frame's tiles
    before the next frame (or the next vehicle) could reuse them.  One
    factory so the session-built engine, the fleet's cluster shards, and
    the CLI's cluster path cannot drift apart.
    """
    return MapCache(max_entries=1 << 16, max_bytes=512 * 1024 * 1024)


@dataclass
class FrameResult:
    """Outcome of one frame in a session."""

    index: int                       #: frame index within the sequence
    dropped: bool = False            #: deadline expired before dispatch
    result: SimResult | None = None  #: None iff dropped
    latency_ms: float = 0.0          #: dispatch-to-completion wall time

    @property
    def rejected(self) -> bool:
        """Admission-rejected by the cluster's QoS layer."""
        return self.result is not None and "cluster" in self.result.errors

    @property
    def completed(self) -> bool:
        return self.result is not None and not self.rejected


@dataclass
class StreamStats:
    """Aggregate session behaviour."""

    frames: int = 0
    completed: int = 0
    dropped: int = 0       #: dropped before dispatch (expired deadline)
    rejected: int = 0      #: rejected at cluster admission
    deadline_met: int = 0
    deadline_missed: int = 0
    wall_seconds: float = 0.0
    latencies_ms: list = field(default_factory=list)

    @property
    def throughput_fps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        """Nearest-rank percentile of completed-frame latency.

        Total on its edge cases: an empty sample is 0.0, a single sample
        is that sample for *every* percentile, and out-of-range
        percentiles clamp to [0, 100] instead of under/overflowing the
        rank (p0 = min, p100 = max).
        """
        if not self.latencies_ms:
            return 0.0
        ranked = sorted(self.latencies_ms)
        percentile = min(100.0, max(0.0, float(percentile)))
        rank = max(1, math.ceil(percentile / 100.0 * len(ranked)))
        return ranked[min(rank, len(ranked)) - 1]

    def summary(self) -> dict:
        return {
            "frames": self.frames,
            "completed": self.completed,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "wall_seconds": self.wall_seconds,
            "throughput_fps": self.throughput_fps,
            "latency_p50_ms": self.latency_ms(50),
            "latency_p99_ms": self.latency_ms(99),
        }


class StreamSession:
    """Serve one frame sequence through an engine or cluster, in order.

    Parameters
    ----------
    sequence / benchmark / scale:
        The workload: ``benchmark`` (a registry notation, e.g.
        ``"MinkNet(o)"``) over ``sequence``'s frames at ``scale``.
    engine / cluster:
        Optional pre-built executor (at most one); when neither is given
        the session builds a single engine with a tile front from the
        ``tile_*`` parameters.
    tile_size / halo / voxel_tile / use_tiles / incremental_voxelize:
        Tile-front configuration for the session-built engine (ignored
        when an executor is injected — configure that executor instead).
        ``incremental_voxelize`` toggles the tile-decomposed voxelizer
        (on by default; off = whole-content digest voxelization).
    min_points_per_tile:
        The small-cloud density bypass, passed straight to
        :class:`~repro.stream.incremental.TileMapCache`.  (The per-tile
        serving mode is retired; to benchmark against the reference
        front, inject an ``engine=`` built around
        :class:`~repro.stream.incremental.PerTileOracle`.)
    tenant:
        The QoS/attribution identity stamped on every frame request
        (default ``"stream"``).  Fleet serving (:mod:`repro.fleet`) gives
        each stream its own tenant so fair-share accounting and
        cross-stream tile attribution can tell vehicles apart.
    geometry_only:
        ``"auto"`` (default) enables geometry-only execution exactly for
        SparseConv-family networks; booleans force it.
    deadline_ms / period_ms / drop_late:
        QoS: frame *i* arrives at ``i * period_ms`` on the session clock
        and carries ``deadline_ms`` of budget.  With ``drop_late`` a frame
        whose budget is already spent before dispatch is dropped without
        simulating — the standard load-shedding move for real-time
        perception.  Deadline *verdicts* on simulated frames additionally
        need a cluster executor (its QoS layer scores them).
    """

    def __init__(
        self,
        sequence: FrameSequence,
        benchmark: str = "MinkNet(o)",
        *,
        engine=None,
        cluster=None,
        backends=("pointacc",),
        scale: float = 0.25,
        tile_size: float = 4.0,
        halo: int = 1,
        voxel_tile: int = 48,
        min_points: int = 256,
        min_points_per_tile: int = 0,
        use_tiles: bool = True,
        incremental_voxelize: bool = True,
        tenant: str = "stream",
        geometry_only: bool | str = "auto",
        deadline_ms: float | None = None,
        period_ms: float = 100.0,
        drop_late: bool = False,
    ) -> None:
        if engine is not None and cluster is not None:
            raise ValueError("pass at most one of engine= and cluster=")
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {period_ms}")
        self.sequence = sequence
        self.benchmark = benchmark
        self.notation = sequence.notation(benchmark)
        self.scale = float(scale)
        if geometry_only == "auto":
            geometry_only = get_benchmark(benchmark).family == "sparseconv"
        self.geometry_only = bool(geometry_only)
        self.tenant = tenant
        self.deadline_ms = deadline_ms
        self.period_ms = float(period_ms)
        self.drop_late = bool(drop_late)
        if engine is not None or cluster is not None:
            self.executor = engine if engine is not None else cluster
            self.tile_cache = getattr(self.executor, "tile_cache", None)
        else:
            self.tile_cache = (
                TileMapCache(
                    tile_size=tile_size, halo=halo,
                    voxel_tile=voxel_tile, min_points=min_points,
                    min_points_per_tile=min_points_per_tile,
                    incremental_voxelize=incremental_voxelize,
                )
                if use_tiles
                else None
            )
            self.executor = SimulationEngine(
                backends=backends,
                policy="fifo",
                map_cache=streaming_map_cache(),
                tile_cache=self.tile_cache,
            )
        self._stats = StreamStats()
        self._next_frame = 0
        self._clock = 0.0  # session-relative seconds consumed so far

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def request(self, index: int) -> SimRequest:
        """The engine request for frame ``index``."""
        return SimRequest(
            benchmark=self.notation,
            scale=self.scale,
            seed=index,
            tag=f"f{index}",
            tenant=self.tenant,
            deadline_ms=self.deadline_ms,
            geometry_only=self.geometry_only,
        )

    def play(self, n_frames: int | None = None):
        """Yield :class:`FrameResult`\\ s for the next ``n_frames`` frames
        (default: the sequence's nominal length), strictly in order."""
        if n_frames is None:
            n_frames = self.sequence.config.n_frames
        for _ in range(n_frames):
            index = self._next_frame
            self._next_frame += 1
            arrival_s = (index * self.period_ms) / 1e3
            if (
                self.drop_late
                and self.deadline_ms is not None
                and self._clock > arrival_s + self.deadline_ms / 1e3
            ):
                # The frame's budget was gone before we could even start:
                # shed it rather than burn simulation time on a stale frame.
                # A shed frame *is* a missed deadline — count it like one,
                # so drop_late on/off agree on the deadline_missed total.
                self._stats.frames += 1
                self._stats.dropped += 1
                self._stats.deadline_missed += 1
                yield FrameResult(index=index, dropped=True)
                continue
            tracer = current_tracer()
            t0 = time.perf_counter()
            with span("frame", index=index, stream=self.tenant) as frame_span:
                result = self.executor.run_batch([self.request(index)])[0]
            latency = time.perf_counter() - t0
            self._clock = max(self._clock, arrival_s) + latency
            self._stats.frames += 1
            self._stats.wall_seconds += latency
            frame = FrameResult(
                index=index, result=result, latency_ms=latency * 1e3
            )
            if frame.rejected:
                self._stats.rejected += 1
            else:
                self._stats.completed += 1
                self._stats.latencies_ms.append(frame.latency_ms)
                if result.deadline_met is None and self.deadline_ms is not None:
                    # Engine executors have no QoS layer to produce a
                    # verdict; score at the session against the same
                    # dispatch-to-completion wall the cluster's
                    # reply-receipt scoring uses, so both modes count
                    # missed frames the same way.
                    result.deadline_met = frame.latency_ms <= self.deadline_ms
            if result.deadline_met is True:
                self._stats.deadline_met += 1
            elif result.deadline_met is False:
                self._stats.deadline_missed += 1
            if tracer is not None and tracer.recorder is not None:
                tracer.recorder.record(
                    frame_span, latency,
                    deadline_missed=result.deadline_met is False,
                    frame=index,
                )
            yield frame

    def run(self, n_frames: int | None = None) -> list[FrameResult]:
        """Serve the next ``n_frames`` frames; results in frame order."""
        return list(self.play(n_frames))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> StreamStats:
        return self._stats

    def summary(self) -> dict:
        """Session + tile + executor stats in one serializable dict."""
        out = self._stats.summary()
        out["benchmark"] = self.benchmark
        out["sequence"] = self.sequence.token
        out["geometry_only"] = self.geometry_only
        executor_stats = self.executor.stats().summary()
        if executor_stats.get("workers"):
            # Worker-mode cluster: each process holds its own copy of the
            # tile front, so the parent-side object never sees a hit; the
            # merged per-worker snapshot is the session-level truth.
            if executor_stats.get("front"):
                out["tiles"] = executor_stats["front"]
        elif self.tile_cache is not None:
            out["tiles"] = self.tile_cache.stats().snapshot()
        out["executor"] = executor_stats
        ledger = current_ledger()
        if ledger is not None:
            out["ledger"] = ledger.summary()
        return out

    def close(self) -> None:
        """Release executor resources (cluster worker processes, when any)."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
