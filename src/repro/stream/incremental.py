"""Tile-granular incremental map reuse: the content-aware cache front.

:class:`TileMapCache` plugs into :class:`repro.mapping.hooks.TieredLookup`
as its ``front``.  For supported mapping ops it decomposes the whole-cloud
call into per-tile sub-problems, addresses each sub-problem into the
chain's ordinary digest tiers (L1 / shared L2 / disk — so tile results
shard and persist exactly like whole-op results), and recomputes only the
tiles whose content changed, plus whatever the op's locality demands.

The bit-identity contract is non-negotiable: composition must reproduce
the reference op's output *exactly*, including neighbor ordering,
padding and tie-breaking.  Three op families qualify:

``knn``
    Rows are independent per query.  A query tile is answered against a
    *halo* of reference tiles within ``halo`` Chebyshev tiles; any point
    outside the halo is provably farther than ``halo * tile_size`` from
    every query in the tile, so a row whose k-th local neighbor is within
    that bound is certified global-exact.  Uncertified rows (sparse halos,
    boundary ties) are recomputed against the full reference cloud — rows
    are independent, so partial fallback stays exact.  Tie-breaks survive
    because the halo is materialized in ascending global order: local
    index order *is* global index order restricted to the halo.

``ball_query``
    Same row independence and halo geometry.  A row is certified when the
    halo covers the full query radius and at least one candidate is in
    radius (the reference pads with the nearest in-radius point), or —
    for under-covering halos — when all ``k`` local candidates are within
    the covered bound.  Everything else falls back per-row.

``kernel_map/{mergesort,hash,bruteforce}``
    A finite integer stencil: map entries for an output tile depend only
    on input points within ``reach = max|offset|`` of the tile's box — so
    the sub-problem's dependence region is the tile plus a *reach-shell*,
    not whole neighbor tiles.  Keys and candidate sets use
    :meth:`~repro.stream.tiles.TilePartition.shell`: the digest moves
    only when points within ``reach`` of the boundary move (interior
    churn in a neighbor no longer dirties this tile), and the candidate
    array is ~one tile instead of ``3^D`` tiles, which removes the
    ``3^D``-fold redundant key-sorting the full-halo decomposition paid
    per layer.  Composed rows are re-ordered to the exact global row
    order of the algorithm that was asked for; input-candidate order
    only needs to be deterministic (coordinates are unique, so the
    algorithms' row orders are total and candidate-order-free).  The
    tile side is floored at ``2 * reach`` so a shell always fits, which
    decouples tile granularity from tensor stride.

``voxelize``
    The incremental voxelizer.  Quantization ``floor(p / voxel_size)`` is
    a per-point map, so after the (cheap, recomputed-per-call) grid pass
    the problem tiles with *no halo at all*: every grid coordinate
    belongs to exactly one integer tile cell, per-tile voxel sets are
    disjoint by construction, and the global sorted-unique voxel array is
    the ordered merge of the per-tile sorted-unique arrays.  Each cached
    tile entry — ``(sorted unique packed voxel keys, local inverse)`` —
    carries a structural exactness certificate (keys strictly increasing,
    inverse in range) that is re-validated on every use; a tile that
    fails it (a corrupted disk spill, say) drops the whole call to the
    global reference computation.  Unchanged world regions therefore
    reuse their voxel coordinates frame over frame — the remaining
    per-frame cost of a warm geometry-only SparseConv stream.

Everything else — FPS is inherently global and sequential, DGCNN's
feature-space graphs have no spatial tiles — falls through to the chain's
whole-content digest path untouched.

Serving routes every decomposed call through the plan/probe/execute/
splice pipeline in :mod:`repro.stream.plan` (vectorized digesting, one
``get_many`` chain round trip, delta-composed kernel maps and voxel
merges) under *versioned fixed-width* sub-keys.  The original per-tile
loops survive as :class:`PerTileOracle` — no longer a serving mode but
the independent reference implementation the property suite
(``tests/properties/test_prop_plan.py``) proves the planner bit-identical
against.  The oracle keeps its legacy variable-width ``content_digest``
keys, which are 16 bytes and therefore provably disjoint from the
planner's longer versioned keys: the two implementations can share a
cache chain without ever serving each other's entries.

A note on floating point: tile-local distance matrices are computed by the
same :func:`~repro.pointcloud.coords.pairwise_squared_distance` formula on
the same operands as the monolithic call, but BLAS may tile a sub-matrix
GEMM differently, so a distance can differ from the monolithic value in
its last ulp.  Selections and orderings are unaffected for points in
general position (an inversion needs two candidates within one ulp of
each other — i.e. an exact geometric tie, which the index tie-break
resolves identically either way, computed within a single matrix);
returned kNN *distances* are therefore exact in value but only
reproducible to rounding.  Every map, index, trace and report — the
simulation results — stays bit-identical, which
``tests/properties/test_prop_stream.py`` enforces end to end.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..mapping.ball_query import _ball_query_details
from ..mapping.hooks import count_by_op
from ..mapping.knn import _knn_compute
from ..mapping.maps import MapTable
from ..obs.trace import span as _span
from ..pointcloud.coords import coords_to_keys, keys_to_coords
from . import plan as _plan
from .tiles import TilePartition, content_digest

__all__ = ["PerTileOracle", "TileFrontStats", "TileMapCache"]

_KERNEL_PREFIX = "kernel_map/"


class TileFrontStats:
    """Observable tile-front behaviour, per op and aggregate.

    ``tile_hits``/``tile_misses`` count sub-problem lookups against the
    chain — per-tile probes plus, on the plan path, the one whole-call
    probe per decomposed op (booked under ``<op>/whole`` in ``by_op``);
    ``fallback_rows`` counts query rows that needed a global recompute
    (certificate failures), ``certified_rows`` the rows served from
    tile-local answers.  ``decomposed_calls`` is how many whole-op calls
    the front handled at all; ``bypassed_calls`` how many it declined
    because the cloud fell under the ``min_points_per_tile`` density
    floor.  The serving front's snapshot also carries the kernel-map
    composer's splice/full-sort/fallback counters under ``compose`` and
    the voxel merge composer's under ``vox_compose``.
    """

    def __init__(self) -> None:
        self.decomposed_calls = 0
        self.bypassed_calls = 0
        self.tile_hits = 0
        self.tile_misses = 0
        self.certified_rows = 0
        self.fallback_rows = 0
        self.by_op: dict = {}  # op -> {"hits": int, "misses": int}

    @property
    def tile_lookups(self) -> int:
        return self.tile_hits + self.tile_misses

    @property
    def tile_hit_rate(self) -> float:
        return self.tile_hits / self.tile_lookups if self.tile_lookups else 0.0

    def _count(self, op: str, hit: bool) -> None:
        count_by_op(self.by_op, op, hit)
        if hit:
            self.tile_hits += 1
        else:
            self.tile_misses += 1

    def _count_many(self, op: str, hits: int, misses: int) -> None:
        """Bulk counting for the plan path: one probe batch, one update."""
        count_by_op(self.by_op, op, hit=True, n=hits)
        count_by_op(self.by_op, op, hit=False, n=misses)
        self.tile_hits += hits
        self.tile_misses += misses

    def snapshot(self) -> dict:
        out = {
            "decomposed_calls": self.decomposed_calls,
            "bypassed_calls": self.bypassed_calls,
            "tile_hits": self.tile_hits,
            "tile_misses": self.tile_misses,
            "tile_lookups": self.tile_lookups,
            "tile_hit_rate": self.tile_hit_rate,
            "certified_rows": self.certified_rows,
            "fallback_rows": self.fallback_rows,
            "by_op": {op: dict(c) for op, c in self.by_op.items()},
        }
        composer = getattr(self, "_composer", None)
        if composer is not None:
            out["compose"] = composer.snapshot()
        vox = getattr(self, "_vox_composer", None)
        if vox is not None:
            out["vox_compose"] = vox.snapshot()
        return out


class TileMapCache:
    """Content-aware front decomposing mapping ops into tile sub-lookups.

    Parameters
    ----------
    tile_size:
        Tile side for continuous (float) coordinates, in cloud units
        (meters for scene datasets).
    halo:
        Halo width in tiles for the continuous ops (kNN / ball query).
        Larger halos certify more rows per tile but dirty more sub-keys
        per changed tile; ``halo * tile_size`` is the certified coverage
        radius.  Any value is *correct* (uncertifiable rows fall back) —
        this knob trades recompute against reuse granularity.
    voxel_tile:
        Tile side for integer (voxel) coordinates, in voxels.  The
        effective side is ``max(voxel_tile, 2 * max|offset|)`` — floored
        so the kernel stencil's reach-shell always fits inside one
        neighbor tile — which keeps tiles the same *physical* size at
        every tensor stride.
    min_points:
        Ops on clouds smaller than this (either input) pass through to
        the digest tiers — tiny layers are cheaper to rehash whole than
        to decompose.
    min_points_per_tile:
        Density floor for the small-cloud bypass: a call whose driving
        cloud has fewer than ``min_points_per_tile * n_occupied_tiles``
        points skips tile decomposition entirely and takes the whole-op
        digest path — sparse tiny frames are overhead-bound however the
        tiles are walked.  ``0`` (default) disables the bypass; the
        serving CLIs expose it as ``--min-tile-points``.
    incremental_voxelize:
        Decompose ``voxelize`` calls over grid tiles (default).  ``False``
        sends voxelization down the whole-content digest path — the
        pre-incremental behaviour, kept as an ablation/bisection knob.
    compose_records:
        Remembered compositions per family in the delta composers (the
        kernel-map row-order composer and the voxel merge composer).  A
        shared front must hold at least one record per interleaved stream
        or splicing degrades to full sorts/merges — the fleet session
        sizes this to its stream count automatically.

    The retired ``batched=False`` serving mode lives on as
    :class:`PerTileOracle`: same decomposition walked one tile at a time
    under the legacy 16-byte keys, importable for property tests and
    ablation benchmarks only.
    """

    def __init__(
        self,
        tile_size: float = 4.0,
        halo: int = 1,
        voxel_tile: int = 48,
        min_points: int = 256,
        min_points_per_tile: int = 0,
        incremental_voxelize: bool = True,
        compose_records: int = 4,
    ) -> None:
        if tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {tile_size}")
        if halo < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        if voxel_tile < 1:
            raise ValueError(f"voxel_tile must be >= 1, got {voxel_tile}")
        if min_points_per_tile < 0:
            raise ValueError(
                f"min_points_per_tile must be >= 0, got {min_points_per_tile}"
            )
        if compose_records < 1:
            raise ValueError(
                f"compose_records must be >= 1, got {compose_records}"
            )
        self.tile_size = float(tile_size)
        self.halo = int(halo)
        self.voxel_tile = int(voxel_tile)
        self.min_points = int(min_points)
        self.min_points_per_tile = int(min_points_per_tile)
        self.incremental_voxelize = bool(incremental_voxelize)
        self._composer = _plan.KernelComposer(
            max_records_per_family=compose_records
        )
        self._vox_composer = _plan.VoxelComposer(
            max_records_per_family=compose_records
        )
        self._stats = TileFrontStats()
        self._stats._composer = self._composer
        self._stats._vox_composer = self._vox_composer
        # (id(points), size) -> (points, TilePartition): mapping inputs are
        # immutable by library convention (see repro.pointcloud.cloud), and
        # one frame presents the same coordinate array to many layers —
        # submanifold convs at a stride share their cloud — so partitions,
        # per-tile digests, and shells are reused across those calls.  The
        # held reference keeps the id stable; bounded, oldest out first.
        self._partitions: OrderedDict = OrderedDict()
        # Recompute-lineage diagnosis memory: per (op, params, tenant)
        # family, the last-seen (tile digest, halo digest) per spatial
        # tile key.  Written only by the ledger path (repro.obs.ledger
        # active) and never read by the compute path — purely
        # observability state.
        self._ledger_memory: dict = {}

    def stats(self) -> TileFrontStats:
        return self._stats

    # ------------------------------------------------------------------
    # Front protocol
    # ------------------------------------------------------------------

    def handles(self, op: str, arrays, params: dict) -> bool:
        """True when this op decomposes into spatial tiles exactly."""
        if op == "voxelize":
            points = arrays[0]
            ok = (
                self.incremental_voxelize
                and points.ndim == 2
                and 1 <= points.shape[1] <= 3
                and len(points) >= self.min_points
            )
        elif op in ("knn", "ball_query") or op.startswith(_KERNEL_PREFIX):
            if op.startswith(_KERNEL_PREFIX):
                queries, references = arrays[1], arrays[0]  # out drives tiling
            else:
                queries, references = arrays[0], arrays[1]
            ok = (
                queries.ndim == 2
                and references.ndim == 2
                and 1 <= queries.shape[1] <= 3
                and len(queries) >= self.min_points
                and len(references) >= self.min_points
            )
        else:
            return False
        if ok and self.min_points_per_tile > 0 and self._too_sparse(
            op, arrays, params
        ):
            self._stats.bypassed_calls += 1
            return False
        return ok

    def _too_sparse(self, op: str, arrays, params: dict) -> bool:
        """The small-cloud bypass: fewer points than the density floor.

        The decision partitions the op's driving cloud at the op's own
        tile side (memoized, so a call that does decompose pays nothing
        twice) and compares the cloud size against
        ``min_points_per_tile * n_occupied_tiles``.  Untileable geometry
        reports ``False`` here so :meth:`memoize`'s plain-compute
        fallback keeps handling it.
        """
        try:
            if op == "voxelize":
                grid = np.floor(
                    np.asarray(arrays[0]) / params["voxel_size"]
                ).astype(np.int64)
                # Through the content-keyed memo: a call that passes the
                # density check re-uses this partition in the planner.
                part = self._partition(grid, 4 * self.voxel_tile)
                n = len(grid)
            elif op.startswith(_KERNEL_PREFIX):
                offsets = arrays[2]
                reach = int(np.abs(offsets).max()) if len(offsets) else 0
                side = max(self.voxel_tile, 2 * reach)
                part = self._partition(arrays[1], side)
                n = len(arrays[1])
            else:
                part = self._partition(arrays[0], self.tile_size)
                n = len(arrays[0])
        except ValueError:
            return False
        return n < self.min_points_per_tile * len(part)

    def memoize(self, op: str, arrays, params: dict, compute, chain):
        try:
            self._stats.decomposed_calls += 1
            with _span("front", op=op):
                if op == "knn":
                    return _plan.run_knn(
                        self, chain, arrays[0], arrays[1], params["k"]
                    )
                if op == "ball_query":
                    return _plan.run_ball_query(
                        self, chain, arrays[0], arrays[1],
                        params["radius"], params["k"],
                    )
                if op == "voxelize":
                    return _plan.run_voxelize(
                        self, chain, arrays[0], params["voxel_size"]
                    )
                return _plan.run_kernel_map(
                    self, chain, op, arrays[0], arrays[1], arrays[2]
                )
        except ValueError:
            # Untileable geometry (e.g. coordinates beyond the packable
            # tile-key range).  Caching may never change a result — so
            # compute plainly rather than fail.
            return compute()

    # ------------------------------------------------------------------
    # Shared partition plumbing (planner and oracle)
    # ------------------------------------------------------------------

    def _partition(self, points, size) -> TilePartition:
        """Partition memo: by array identity first, content digest second.

        The id probe is free and catches the common case (submanifold
        layers share their coordinate array object); the content probe
        catches equal-content arrays rebuilt per layer (e.g. a downsampled
        cloud reconstructed by encoder and decoder), which would otherwise
        re-partition — and re-digest, re-slab, re-shell — identical
        geometry several times per frame.
        """
        id_key = (id(points), size)
        entry = self._partitions.get(id_key)
        if entry is not None and entry[0] is points:
            self._partitions.move_to_end(id_key)
            return entry[1]
        content_key = (content_digest(points), size)
        entry = self._partitions.get(content_key)
        if entry is None:
            entry = (points, TilePartition(points, size))
            self._partitions[content_key] = entry
        else:
            self._partitions.move_to_end(content_key)
        # The id slot pins *this* array object (the content slot may pin an
        # older equal-content one), so the identity probe stays valid.
        self._partitions[id_key] = (points, entry[1])
        while len(self._partitions) > 64:
            self._partitions.popitem(last=False)
        return entry[1]

    def _float_tiles(self, queries, references):
        qpart = self._partition(queries, self.tile_size)
        rpart = self._partition(references, self.tile_size)
        r_cov = self.halo * self.tile_size
        return qpart, rpart, r_cov


class PerTileOracle(TileMapCache):
    """The retired per-tile front, kept as the property-test oracle.

    One chain walk per tile under the legacy variable-width
    ``content_digest`` keys — the PR-4 serving path, byte-for-byte.  It
    no longer serves traffic: the batched planner (:mod:`repro.stream.
    plan`) produces identical arrays from the same decomposition, and
    the property suite proves it against *this* class.  Because the
    batched universe carries a versioned fixed-width prefix, oracle keys
    and planner keys can never collide even in a shared store.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # The oracle never splices; composer-backed snapshot sections
        # would claim machinery these loops do not touch.
        self._stats._composer = None
        self._stats._vox_composer = None

    def memoize(self, op: str, arrays, params: dict, compute, chain):
        try:
            if op == "knn":
                return self._memo_knn(arrays[0], arrays[1], params["k"], chain)
            if op == "ball_query":
                return self._memo_ball(
                    arrays[0], arrays[1], params["radius"], params["k"], chain
                )
            if op == "voxelize":
                return self._memo_voxelize(arrays[0], params["voxel_size"], chain)
            return self._memo_kernel_map(op, arrays[0], arrays[1], arrays[2], chain)
        except ValueError:
            # Untileable geometry: compute plainly, as the planner does.
            return compute()

    def _halo_sorted(self, rpart, key):
        """``(halo_digest, interleave_perm, hal)`` for one query tile.

        ``hal`` is the halo in ascending global order (the tie-break order
        sub-results are computed under).  Rather than hashing the halo's
        point bytes per query tile (which would re-hash every reference
        ~(2*halo+1)^D times per call), the identity of ``hal`` is split
        into what the neighborhood digest already covers — per-tile
        contents, from digests computed once per call — plus the compact
        permutation that merges the canonical per-tile concatenation into
        global order.  That permutation depends only on the *relative*
        interleaving of the constituent tiles, so it is stable across
        frames exactly when the halo itself is.
        """
        digest, canonical = rpart.neighborhood(key, self.halo)
        if len(canonical) == 0:
            return digest, None, canonical
        perm = np.argsort(canonical, kind="stable").astype(np.int32)
        return digest, perm, canonical[perm]

    def _memo_knn(self, queries, references, k: int, chain):
        self._stats.decomposed_calls += 1
        qpart, rpart, r_cov = self._float_tiles(queries, references)
        r_cov2 = r_cov * r_cov
        idx_out = np.empty((len(queries), k), dtype=np.int64)
        dist_out = np.empty((len(queries), k), dtype=np.float64)
        fallback = []
        for key in qpart.keys():
            q_idx = qpart.indices(key)
            halo_digest, perm, hal = self._halo_sorted(rpart, key)
            if len(hal) == 0:
                fallback.append(q_idx)
                continue
            sub_key = content_digest(
                b"tile/knn", int(k), self.tile_size, self.halo,
                qpart.digest(key), halo_digest, perm,
            )
            entry = chain.get(sub_key, "knn/tile", copy=False)
            if entry is None:
                self._stats._count("knn", hit=False)
                loc, dist = _knn_compute(queries[q_idx], references[hal], k)
                if len(hal) >= k:
                    # Every true neighbor within halo coverage: exact.
                    cert = dist[:, k - 1] <= r_cov2
                else:
                    cert = np.zeros(len(q_idx), dtype=bool)
                chain.put(sub_key, (loc, dist, cert), "knn/tile", copy=False)
            else:
                self._stats._count("knn", hit=True)
                loc, dist, cert = entry
            hit_rows = q_idx[cert]
            idx_out[hit_rows] = hal[loc[cert]]
            dist_out[hit_rows] = dist[cert]
            self._stats.certified_rows += len(hit_rows)
            if not cert.all():
                fallback.append(q_idx[~cert])
        if fallback:
            rows = np.concatenate(fallback)
            self._stats.fallback_rows += len(rows)
            f_idx, f_dist = _knn_compute(queries[rows], references, k)
            idx_out[rows] = f_idx
            dist_out[rows] = f_dist
        return idx_out, dist_out

    def _memo_ball(self, queries, references, radius: float, k: int, chain):
        self._stats.decomposed_calls += 1
        qpart, rpart, r_cov = self._float_tiles(queries, references)
        r_cov2 = r_cov * r_cov
        full_cover = r_cov >= radius
        idx_out = np.empty((len(queries), k), dtype=np.int64)
        fallback = []
        for key in qpart.keys():
            q_idx = qpart.indices(key)
            halo_digest, perm, hal = self._halo_sorted(rpart, key)
            if len(hal) == 0:
                fallback.append(q_idx)
                continue
            sub_key = content_digest(
                b"tile/ball", float(radius), int(k), self.tile_size, self.halo,
                qpart.digest(key), halo_digest, perm,
            )
            entry = chain.get(sub_key, "ball_query/tile", copy=False)
            if entry is None:
                self._stats._count("ball_query", hit=False)
                loc, in_radius, kth_sq = _ball_query_details(
                    queries[q_idx], references[hal], radius, k
                )
                if full_cover:
                    # Halo covers the query sphere: the in-radius candidate
                    # set (and its order, and the nearest-point pad) is the
                    # global one whenever it is non-empty.
                    cert = in_radius >= 1
                elif len(hal) >= k:
                    # Under-covering halo: exact when all k candidates sit
                    # within the covered bound (then they are the global
                    # top-k and all in radius).
                    cert = kth_sq <= r_cov2
                else:
                    cert = np.zeros(len(q_idx), dtype=bool)
                chain.put(sub_key, (loc, cert), "ball_query/tile", copy=False)
            else:
                self._stats._count("ball_query", hit=True)
                loc, cert = entry
            hit_rows = q_idx[cert]
            idx_out[hit_rows] = hal[loc[cert]]
            self._stats.certified_rows += len(hit_rows)
            if not cert.all():
                fallback.append(q_idx[~cert])
        if fallback:
            rows = np.concatenate(fallback)
            self._stats.fallback_rows += len(rows)
            f_idx, _, _ = _ball_query_details(queries[rows], references, radius, k)
            idx_out[rows] = f_idx
        return idx_out

    # ------------------------------------------------------------------
    # Kernel maps: integer stencil, canonical per-tile composition
    # ------------------------------------------------------------------

    def _memo_kernel_map(self, op: str, in_coords, out_coords, offsets, chain):
        self._stats.decomposed_calls += 1
        algorithm = op[len(_KERNEL_PREFIX):]
        reach = int(np.abs(offsets).max()) if len(offsets) else 0
        # Reach-shells only need 2 * reach <= side, so the tile side stays
        # ~voxel_tile at every tensor stride.  (The old full-halo scheme
        # needed side >= reach and so scaled tiles with the stride; deep
        # layers degenerated into a handful of world-sized tiles that any
        # churn dirtied whole.)
        side = max(self.voxel_tile, 2 * reach)
        ipart = self._partition(in_coords, side)
        # Submanifold convs map a cloud onto itself: share the partition.
        opart = ipart if out_coords is in_coords else self._partition(out_coords, side)
        rows_in, rows_out, rows_w = [], [], []
        for key in opart.keys():
            o_idx = opart.indices(key)
            halo_digest, hal = ipart.shell(key, reach)
            sub_key = content_digest(
                b"tile/kmap", algorithm, np.asarray(offsets), int(side),
                int(reach),  # halo scheme marker
                out_coords[o_idx], halo_digest,
            )
            entry = chain.get(sub_key, op + "/tile", copy=False)
            if entry is None:
                self._stats._count(op, hit=False)
                entry = _tile_kernel_rows(
                    in_coords[hal], out_coords[o_idx], offsets
                )
                chain.put(sub_key, entry, op + "/tile", copy=False)
            else:
                self._stats._count(op, hit=True)
            loc_in, loc_out, loc_w = entry
            if len(loc_in):
                rows_in.append(hal[loc_in])
                rows_out.append(o_idx[loc_out])
                rows_w.append(loc_w)
        if not rows_in:
            empty = np.empty(0, dtype=np.int64)
            return MapTable(empty, empty, empty, kernel_volume=len(offsets))
        p_idx = np.concatenate(rows_in).astype(np.int64)
        q_idx = np.concatenate(rows_out).astype(np.int64)
        w_idx = np.concatenate(rows_w).astype(np.int64)
        # Map entries are a set — (q, delta) pairs match at most one p — so
        # composition only has to reproduce the requested algorithm's row
        # order: mergesort emits offset-major / input-key-minor, the hash
        # and bruteforce probes offset-major / output-index-minor.  The
        # major key is a weight index (< kernel volume), so sorting it in
        # a narrow dtype after the minor key costs one radix pass instead
        # of a second full 64-bit sort — this lexsort runs on every call,
        # hit or miss, so it is the compose path's hot spot.
        minor = coords_to_keys(in_coords)[p_idx] if algorithm == "mergesort" else q_idx
        by_minor = np.argsort(minor, kind="stable")
        w_dtype = np.int16 if len(offsets) <= np.iinfo(np.int16).max else np.int64
        order = by_minor[np.argsort(w_idx[by_minor].astype(w_dtype),
                                    kind="stable")]
        return MapTable(
            p_idx[order], q_idx[order], w_idx[order],
            kernel_volume=len(offsets),
        )

    # ------------------------------------------------------------------
    # Voxelize: integer grid cells, halo-free disjoint composition
    # ------------------------------------------------------------------

    def _memo_voxelize(self, points, voxel_size: float, chain):
        """Incremental voxelization: per-tile sorted-unique voxel merge.

        The grid pass (``floor(p / voxel_size)``) is recomputed every call
        — it is O(N) and is what makes unchanged world points produce
        byte-identical integer tiles.  Each occupied tile cell caches its
        ``(sorted unique packed voxel keys, local inverse)``; because grid
        cells partition voxel space, the sets are disjoint and the global
        answer is a rank-merge, never a re-sort of raw points.  Exactness
        certificate per tile: keys strictly increasing and the inverse in
        range — a violated certificate (only reachable through a
        corrupted cache entry) abandons the decomposition for the global
        reference computation.
        """
        self._stats.decomposed_calls += 1
        grid = np.floor(points / voxel_size).astype(np.int64)
        # Halo-free decomposition has no reach to cover, and its per-tile
        # work is a pure sort — coarser tiles amortize the per-tile digest
        # and lookup overhead without hurting exactness, so voxel tiles
        # run 4x the stencil tile side.
        side = 4 * self.voxel_tile
        part = TilePartition(grid, side)
        tile_entries = []  # (original indices, unique keys, local inverse)
        for key in part.keys():
            idx = part.indices(key)
            sub_key = content_digest(b"tile/voxelize", int(side), part.digest(key))
            entry = chain.get(sub_key, "voxelize/tile", copy=False)
            if entry is None:
                self._stats._count("voxelize", hit=False)
                uniq, inv = np.unique(coords_to_keys(grid[idx]),
                                      return_inverse=True)
                entry = (uniq, inv.astype(np.intp))
                chain.put(sub_key, entry, "voxelize/tile", copy=False)
            else:
                self._stats._count("voxelize", hit=True)
                uniq, inv = entry
            if (
                uniq.ndim != 1
                or inv.shape != (len(idx),)
                or (len(uniq) > 1 and not (np.diff(uniq) > 0).all())
                or (len(inv) and not (0 <= inv.min() <= inv.max() < len(uniq)))
            ):
                self._stats.fallback_rows += len(points)
                raise ValueError("voxelize tile certificate failed")
            tile_entries.append((idx, uniq, inv))
        all_keys = np.concatenate([u for _, u, _ in tile_entries])
        order = np.argsort(all_keys, kind="stable")  # disjoint: no ties
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order))
        inverse = np.empty(len(points), dtype=np.intp)
        offset = 0
        for idx, uniq, inv in tile_entries:
            inverse[idx] = rank[offset + inv]
            offset += len(uniq)
        self._stats.certified_rows += len(points)
        return keys_to_coords(all_keys[order], grid.shape[1]), inverse


def _tile_kernel_rows(in_sub, out_sub, offsets):
    """Kernel-map rows of one output tile against its canonical input halo.

    Pure membership probing (``p == q + delta``) vectorized across *all*
    offsets at once with one sorted-key binary search; row order is
    irrelevant here — the composer re-orders globally per algorithm.
    Returns local ``(in, out, w)`` index triples.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if not (len(in_sub) and len(out_sub) and len(offsets)):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    in_keys = coords_to_keys(in_sub)
    order = np.argsort(in_keys, kind="stable")
    sorted_keys = in_keys[order]
    n_out = len(out_sub)
    probe_coords = (out_sub[None, :, :] + offsets[:, None, :]).reshape(-1, out_sub.shape[1])
    probe = coords_to_keys(probe_coords)
    pos = np.searchsorted(sorted_keys, probe)
    pos_c = np.minimum(pos, len(sorted_keys) - 1)
    hit = (sorted_keys[pos_c] == probe) & (pos < len(sorted_keys))
    flat = np.flatnonzero(hit)
    return (
        order[pos[flat]].astype(np.int64),
        (flat % n_out).astype(np.int64),
        (flat // n_out).astype(np.int64),
    )
