"""PointNet++ building blocks: set abstraction and feature propagation.

These blocks emit the full operation sequence of Table 1's PointNet++-based
row: FPS (output cloud construction), ball query (neighbor search), explicit
gather, shared-MLP matmuls, and max-pool aggregation — so the recorded trace
carries exactly the mapping/movement/matmul mix the paper profiles in Fig. 6.
"""

from __future__ import annotations

import numpy as np

from ..mapping.ball_query import ball_query_indices
from ..mapping.fps import farthest_point_sampling
from . import functional as F
from .layers import SharedMLP
from .trace import LayerKind, LayerSpec, Trace

__all__ = [
    "SetAbstraction",
    "SetAbstractionMSG",
    "GlobalSetAbstraction",
    "FeaturePropagation",
]


def _record(trace: Trace | None, spec: LayerSpec) -> None:
    if trace is not None:
        trace.record(spec)


def _group_features(
    points: np.ndarray,
    features: np.ndarray | None,
    centers: np.ndarray,
    group_idx: np.ndarray,
) -> np.ndarray:
    """Gather per-group inputs: relative coordinates concat point features."""
    n_centers, k = group_idx.shape
    grouped_xyz = points[group_idx] - centers[:, None, :]  # (M, k, 3)
    if features is None:
        grouped = grouped_xyz
    else:
        grouped = np.concatenate([grouped_xyz, features[group_idx]], axis=2)
    return grouped.reshape(n_centers * k, -1)


class SetAbstraction:
    """Single-scale-grouping SA module: FPS + ball query + MLP + max pool."""

    def __init__(
        self,
        npoint: int,
        radius: float,
        k: int,
        c_in: int,
        mlp_channels: list[int],
        rng: np.random.Generator,
        name: str = "sa",
    ) -> None:
        self.npoint = npoint
        self.radius = radius
        self.k = k
        self.c_in = c_in  # point feature channels (xyz is added internally)
        self.name = name
        self.mlp = SharedMLP(c_in + 3, mlp_channels, rng, name=f"{name}.mlp")

    @property
    def c_out(self) -> int:
        return self.mlp.c_out

    def __call__(
        self,
        points: np.ndarray,
        features: np.ndarray | None,
        trace: Trace | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(points)
        npoint = min(self.npoint, n)
        center_idx = farthest_point_sampling(points, npoint)
        centers = points[center_idx]
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.fps",
                kind=LayerKind.MAP_FPS,
                n_in=n,
                n_out=npoint,
                rows=n,
            ),
        )
        group_idx = ball_query_indices(centers, points, self.radius, self.k)
        n_maps = group_idx.size
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.ball",
                kind=LayerKind.MAP_BALL,
                n_in=n,
                n_out=npoint,
                rows=n,
                n_maps=n_maps,
                kernel_volume=self.k,
                params={"radius": self.radius},
            ),
        )
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.gather",
                kind=LayerKind.GATHER,
                n_in=n,
                n_out=npoint,
                c_in=self.c_in + 3,
                n_maps=n_maps,
                kernel_volume=self.k,
            ),
        )
        grouped = _group_features(points, features, centers, group_idx)
        out = self.mlp(grouped, trace)
        pooled = F.max_pool_groups(out, self.k)
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.pool",
                kind=LayerKind.POOL_MAX,
                n_in=npoint * self.k,
                n_out=npoint,
                c_in=self.mlp.c_out,
                c_out=self.mlp.c_out,
                rows=npoint * self.k,
                kernel_volume=self.k,
            ),
        )
        return centers, pooled


class SetAbstractionMSG:
    """Multi-scale-grouping SA: several (radius, k, mlp) branches, concat."""

    def __init__(
        self,
        npoint: int,
        scales: list[tuple[float, int, list[int]]],
        c_in: int,
        rng: np.random.Generator,
        name: str = "sa_msg",
    ) -> None:
        if not scales:
            raise ValueError("MSG module needs at least one scale")
        self.npoint = npoint
        self.c_in = c_in
        self.name = name
        self.scales = scales
        self.mlps = [
            SharedMLP(c_in + 3, mlp_channels, rng, name=f"{name}.s{i}.mlp")
            for i, (_, _, mlp_channels) in enumerate(scales)
        ]

    @property
    def c_out(self) -> int:
        return sum(mlp.c_out for mlp in self.mlps)

    def __call__(
        self,
        points: np.ndarray,
        features: np.ndarray | None,
        trace: Trace | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(points)
        npoint = min(self.npoint, n)
        center_idx = farthest_point_sampling(points, npoint)
        centers = points[center_idx]
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.fps",
                kind=LayerKind.MAP_FPS,
                n_in=n,
                n_out=npoint,
                rows=n,
            ),
        )
        outputs = []
        for i, ((radius, k, _), mlp) in enumerate(zip(self.scales, self.mlps)):
            group_idx = ball_query_indices(centers, points, radius, k)
            _record(
                trace,
                LayerSpec(
                    name=f"{self.name}.s{i}.ball",
                    kind=LayerKind.MAP_BALL,
                    n_in=n,
                    n_out=npoint,
                    rows=n,
                    n_maps=group_idx.size,
                    kernel_volume=k,
                    params={"radius": radius},
                ),
            )
            _record(
                trace,
                LayerSpec(
                    name=f"{self.name}.s{i}.gather",
                    kind=LayerKind.GATHER,
                    n_in=n,
                    n_out=npoint,
                    c_in=self.c_in + 3,
                    n_maps=group_idx.size,
                    kernel_volume=k,
                ),
            )
            grouped = _group_features(points, features, centers, group_idx)
            out = mlp(grouped, trace)
            pooled = F.max_pool_groups(out, k)
            _record(
                trace,
                LayerSpec(
                    name=f"{self.name}.s{i}.pool",
                    kind=LayerKind.POOL_MAX,
                    n_in=npoint * k,
                    n_out=npoint,
                    c_in=mlp.c_out,
                    c_out=mlp.c_out,
                    rows=npoint * k,
                    kernel_volume=k,
                ),
            )
            outputs.append(pooled)
        return centers, np.concatenate(outputs, axis=1)


class GlobalSetAbstraction:
    """group_all SA: one group containing every point, MLP + global max."""

    def __init__(
        self,
        c_in: int,
        mlp_channels: list[int],
        rng: np.random.Generator,
        name: str = "sa_global",
    ) -> None:
        self.c_in = c_in
        self.name = name
        self.mlp = SharedMLP(c_in + 3, mlp_channels, rng, name=f"{name}.mlp")

    @property
    def c_out(self) -> int:
        return self.mlp.c_out

    def __call__(
        self,
        points: np.ndarray,
        features: np.ndarray | None,
        trace: Trace | None = None,
    ) -> np.ndarray:
        n = len(points)
        centroid = points.mean(axis=0, keepdims=True)
        grouped_xyz = points - centroid
        if features is None:
            grouped = grouped_xyz
        else:
            grouped = np.concatenate([grouped_xyz, features], axis=1)
        out = self.mlp(grouped, trace)
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.pool",
                kind=LayerKind.GLOBAL_POOL,
                n_in=n,
                n_out=1,
                c_in=self.mlp.c_out,
                c_out=self.mlp.c_out,
                rows=n,
            ),
        )
        return F.global_max_pool(out)


class FeaturePropagation:
    """FP module: 3-NN inverse-distance interpolation + unit MLP."""

    def __init__(
        self,
        c_source: int,
        c_skip: int,
        mlp_channels: list[int],
        rng: np.random.Generator,
        name: str = "fp",
    ) -> None:
        self.c_source = c_source
        self.c_skip = c_skip
        self.name = name
        self.mlp = SharedMLP(c_source + c_skip, mlp_channels, rng, name=f"{name}.mlp")

    @property
    def c_out(self) -> int:
        return self.mlp.c_out

    def __call__(
        self,
        target_points: np.ndarray,
        target_features: np.ndarray | None,
        source_points: np.ndarray,
        source_features: np.ndarray,
        trace: Trace | None = None,
    ) -> np.ndarray:
        n_target = len(target_points)
        n_source = len(source_points)
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.knn",
                kind=LayerKind.MAP_KNN,
                n_in=n_source,
                n_out=n_target,
                rows=n_source,
                n_maps=n_target * 3,
                kernel_volume=3,
            ),
        )
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.gather",
                kind=LayerKind.GATHER,
                n_in=n_source,
                n_out=n_target,
                c_in=self.c_source,
                n_maps=n_target * 3,
                kernel_volume=3,
            ),
        )
        interpolated = F.three_nn_interpolate(
            target_points, source_points, source_features
        )
        _record(
            trace,
            LayerSpec(
                name=f"{self.name}.interp",
                kind=LayerKind.INTERP,
                n_in=n_source,
                n_out=n_target,
                c_in=self.c_source,
                c_out=self.c_source,
                rows=n_target,
                kernel_volume=3,
            ),
        )
        if target_features is not None:
            if target_features.shape[1] != self.c_skip:
                raise ValueError(
                    f"{self.name}: expected skip width {self.c_skip}, "
                    f"got {target_features.shape[1]}"
                )
            combined = np.concatenate([interpolated, target_features], axis=1)
        else:
            if self.c_skip != 0:
                raise ValueError(f"{self.name}: missing skip features")
            combined = interpolated
        return self.mlp(combined, trace)
