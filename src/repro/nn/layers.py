"""Layer classes: stateful modules that compute and record trace specs.

Weights are seeded-random (inference only; see DESIGN.md on the accuracy
substitution) and initialized once at construction.  Every ``forward`` both
computes real features with numpy and, when a :class:`~repro.nn.trace.Trace`
is supplied, records :class:`~repro.nn.trace.LayerSpec`s describing the work.

BatchNorm + ReLU are folded into :class:`Linear` (one DENSE_MM spec per
layer), matching how every platform in the paper executes them fused with
the matmul.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .ghost import GhostFeatures, is_ghost
from .trace import LayerKind, LayerSpec, Trace

__all__ = ["Linear", "SharedMLP", "new_param_rng"]


def new_param_rng(seed: int = 0) -> np.random.Generator:
    """The RNG convention for weight init across the model zoo."""
    return np.random.default_rng(seed)


class Linear:
    """Pointwise fully-connected layer with optional folded BN + ReLU.

    Operates on ``(rows, c_in)`` matrices; in point-cloud networks the row
    dimension is points (FC / 1x1-conv) or gathered map entries (the
    shared-MLP inside a PointNet++ set-abstraction module).
    """

    def __init__(
        self,
        c_in: int,
        c_out: int,
        rng: np.random.Generator,
        relu: bool = True,
        bn: bool = True,
        name: str = "linear",
    ) -> None:
        if c_in < 1 or c_out < 1:
            raise ValueError(f"invalid channel sizes ({c_in}, {c_out})")
        self.c_in = c_in
        self.c_out = c_out
        self.relu = relu
        self.bn = bn
        self.name = name
        scale = float(np.sqrt(2.0 / c_in))
        self.weight = rng.normal(scale=scale, size=(c_in, c_out))
        self.bias = rng.normal(scale=0.01, size=c_out)
        if bn:
            # Inference-mode BN statistics (seeded, fixed).
            self.bn_gamma = rng.normal(loc=1.0, scale=0.05, size=c_out)
            self.bn_beta = rng.normal(scale=0.05, size=c_out)
            self.bn_mean = rng.normal(scale=0.05, size=c_out)
            self.bn_var = np.abs(rng.normal(loc=1.0, scale=0.05, size=c_out))

    def __call__(self, x: np.ndarray, trace: Trace | None = None) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.c_in:
            raise ValueError(
                f"{self.name}: expected (rows, {self.c_in}), got {x.shape}"
            )
        if is_ghost(x):
            # Geometry-only execution: same checks, same trace record (below),
            # no arithmetic — the record is all a backend ever consumes.
            y = GhostFeatures(len(x), self.c_out)
        else:
            y = F.linear(x, self.weight, self.bias)
            if self.bn:
                y = F.batch_norm(
                    y, self.bn_mean, self.bn_var, self.bn_gamma, self.bn_beta
                )
            if self.relu:
                y = F.relu(y)
        if trace is not None:
            rows = len(x)
            trace.record(
                LayerSpec(
                    name=self.name,
                    kind=LayerKind.DENSE_MM,
                    n_in=rows,
                    n_out=rows,
                    c_in=self.c_in,
                    c_out=self.c_out,
                    rows=rows,
                    fusible=True,
                )
            )
        return y


class SharedMLP:
    """A stack of :class:`Linear` layers applied pointwise (shared weights).

    The workhorse of PointNet-family models: ``channels`` lists the output
    width of each layer.  ``final_relu=False`` drops BN+ReLU on the last
    layer (classifier heads).
    """

    def __init__(
        self,
        c_in: int,
        channels: list[int],
        rng: np.random.Generator,
        final_relu: bool = True,
        name: str = "mlp",
    ) -> None:
        if not channels:
            raise ValueError("SharedMLP needs at least one output channel size")
        self.name = name
        self.layers: list[Linear] = []
        prev = c_in
        for i, c_out in enumerate(channels):
            last = i == len(channels) - 1
            use_act = final_relu or not last
            self.layers.append(
                Linear(
                    prev,
                    c_out,
                    rng,
                    relu=use_act,
                    bn=use_act,
                    name=f"{name}.{i}",
                )
            )
            prev = c_out

    @property
    def c_in(self) -> int:
        return self.layers[0].c_in

    @property
    def c_out(self) -> int:
        return self.layers[-1].c_out

    def __call__(self, x: np.ndarray, trace: Trace | None = None) -> np.ndarray:
        for layer in self.layers:
            x = layer(x, trace)
        return x
