"""Stateless numpy kernels for network inference.

These are the arithmetic primitives the layer classes in
``repro.nn.layers`` wrap.  All operate on ``(rows, channels)`` feature
matrices and are deliberately boring: correctness here anchors every
functional test of the hardware models above.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "linear",
    "batch_norm",
    "softmax",
    "log_softmax",
    "max_pool_groups",
    "avg_pool_groups",
    "scatter_add",
    "scatter_max",
    "global_max_pool",
    "three_nn_interpolate",
]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``y = x @ W + b`` with ``W`` of shape (c_in, c_out)."""
    y = x @ weight
    if bias is not None:
        y = y + bias
    return y


def batch_norm(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch norm with fixed statistics."""
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def max_pool_groups(features: np.ndarray, group_size: int) -> np.ndarray:
    """Max over contiguous groups: (G*k, C) -> (G, C)."""
    rows, channels = features.shape
    if rows % group_size != 0:
        raise ValueError(f"{rows} rows not divisible by group size {group_size}")
    return features.reshape(rows // group_size, group_size, channels).max(axis=1)


def avg_pool_groups(features: np.ndarray, group_size: int) -> np.ndarray:
    """Mean over contiguous groups: (G*k, C) -> (G, C)."""
    rows, channels = features.shape
    if rows % group_size != 0:
        raise ValueError(f"{rows} rows not divisible by group size {group_size}")
    return features.reshape(rows // group_size, group_size, channels).mean(axis=1)


def scatter_add(
    values: np.ndarray, index: np.ndarray, n_out: int
) -> np.ndarray:
    """Sum rows of ``values`` into ``n_out`` output slots by ``index``."""
    out = np.zeros((n_out, values.shape[1]), dtype=values.dtype)
    np.add.at(out, np.asarray(index, dtype=np.int64), values)
    return out


def scatter_max(
    values: np.ndarray, index: np.ndarray, n_out: int, fill: float = 0.0
) -> np.ndarray:
    """Max-reduce rows of ``values`` into output slots; empty slots get ``fill``."""
    index = np.asarray(index, dtype=np.int64)
    out = np.full((n_out, values.shape[1]), -np.inf, dtype=values.dtype)
    np.maximum.at(out, index, values)
    out[np.isneginf(out)] = fill
    return out


def global_max_pool(features: np.ndarray) -> np.ndarray:
    """Max over all rows: (N, C) -> (C,)."""
    if len(features) == 0:
        raise ValueError("global max pool of empty feature matrix")
    return features.max(axis=0)


def three_nn_interpolate(
    target_points: np.ndarray,
    source_points: np.ndarray,
    source_features: np.ndarray,
    eps: float = 1e-8,
) -> np.ndarray:
    """Inverse-distance weighted 3-NN interpolation (PointNet++ FP layer)."""
    from ..mapping.knn import knn_indices

    idx, sq_dist = knn_indices(target_points, source_points, k=3)
    weights = 1.0 / (sq_dist + eps)
    weights = weights / weights.sum(axis=1, keepdims=True)
    gathered = source_features[idx]  # (N, 3, C)
    return np.einsum("nk,nkc->nc", weights, gathered)
