"""DGCNN EdgeConv block.

Graph-based convolutions are "the special case of PointNet++-based
convolution where the mapping operations work on the point *features*
instead of point coordinates" (paper Section 2).  EdgeConv recomputes a kNN
graph in feature space at every layer (a dynamic graph), builds edge features
``concat(x_i, x_j - x_i)``, applies a shared MLP and max-pools per vertex.
"""

from __future__ import annotations

import numpy as np

from ..mapping.knn import knn_indices
from . import functional as F
from .layers import SharedMLP
from .trace import LayerKind, LayerSpec, Trace

__all__ = ["EdgeConv"]


class EdgeConv:
    """One EdgeConv layer: dynamic kNN graph + edge MLP + vertex max-pool."""

    def __init__(
        self,
        c_in: int,
        mlp_channels: list[int],
        k: int,
        rng: np.random.Generator,
        name: str = "edgeconv",
    ) -> None:
        self.c_in = c_in
        self.k = k
        self.name = name
        self.mlp = SharedMLP(2 * c_in, mlp_channels, rng, name=f"{name}.mlp")

    @property
    def c_out(self) -> int:
        return self.mlp.c_out

    def __call__(self, features: np.ndarray, trace: Trace | None = None) -> np.ndarray:
        n, c = features.shape
        if c != self.c_in:
            raise ValueError(f"{self.name}: expected {self.c_in} channels, got {c}")
        k = min(self.k, n)
        idx, _ = knn_indices(features, features, k)
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{self.name}.knn",
                    kind=LayerKind.MAP_KNN,
                    n_in=n,
                    n_out=n,
                    rows=n,
                    n_maps=n * k,
                    kernel_volume=k,
                    params={"feature_dim": c},  # distances in feature space
                )
            )
            trace.record(
                LayerSpec(
                    name=f"{self.name}.gather",
                    kind=LayerKind.GATHER,
                    n_in=n,
                    n_out=n,
                    c_in=c,
                    n_maps=n * k,
                    kernel_volume=k,
                )
            )
        neighbors = features[idx]  # (N, k, C)
        center = np.repeat(features[:, None, :], k, axis=1)
        edge = np.concatenate([center, neighbors - center], axis=2).reshape(n * k, 2 * c)
        out = self.mlp(edge, trace)
        pooled = F.max_pool_groups(out, k)
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{self.name}.pool",
                    kind=LayerKind.POOL_MAX,
                    n_in=n * k,
                    n_out=n,
                    c_in=self.mlp.c_out,
                    c_out=self.mlp.c_out,
                    rows=n * k,
                    kernel_volume=k,
                )
            )
        return pooled
