"""Neural-network substrate: layers, blocks, models, workload traces."""

from . import functional
from .dgcnn_blocks import EdgeConv
from .layers import Linear, SharedMLP, new_param_rng
from .pointnet_blocks import (
    FeaturePropagation,
    GlobalSetAbstraction,
    SetAbstraction,
    SetAbstractionMSG,
)
from .sparse_conv import SparseConv, SparseConvTranspose, sparse_conv_apply
from .trace import LayerKind, LayerSpec, Trace

__all__ = [
    "functional",
    "EdgeConv",
    "Linear",
    "SharedMLP",
    "new_param_rng",
    "FeaturePropagation",
    "GlobalSetAbstraction",
    "SetAbstraction",
    "SetAbstractionMSG",
    "SparseConv",
    "SparseConvTranspose",
    "sparse_conv_apply",
    "LayerKind",
    "LayerSpec",
    "Trace",
]
