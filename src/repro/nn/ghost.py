"""Shape-only feature stand-in for geometry-only model execution.

For every model family in the paper except DGCNN's dynamic graph, mapping
operations consume *coordinates* only — feature values never influence
which maps exist, so the layer trace (and therefore every backend report)
is a pure function of geometry.  The streaming subsystem exploits this:
when a frame only needs a trace, running the dense matmuls is wasted work
that dominates wall clock (profiling puts SparseConv feature math at ~90%
of a MinkNet trace build).

:class:`GhostFeatures` is a ``(rows, channels)`` shape token that flows
through the network in place of a real feature matrix.  Layers that see it
still perform every shape/channel check and still record exactly the same
:class:`~repro.nn.trace.LayerSpec`s — they just skip the arithmetic and
emit a new ghost of the correct output shape.  The property suite
(``tests/properties/test_prop_stream.py``) proves reports from geometry-only
runs are bit-identical to full functional runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GhostFeatures", "is_ghost", "concat_channels"]


class GhostFeatures:
    """A feature matrix reduced to its shape: ``(rows, channels)``.

    Mimics just enough of the ndarray surface (``shape``, ``ndim``,
    ``len``) for the layer-level checks and trace records to run unchanged.
    """

    __slots__ = ("shape",)

    def __init__(self, rows: int, channels: int) -> None:
        self.shape = (int(rows), int(channels))

    @property
    def ndim(self) -> int:
        return 2

    def __len__(self) -> int:
        return self.shape[0]

    def __add__(self, other):
        """Residual adds: shapes must agree, the sum is again a ghost."""
        if is_ghost(other) or isinstance(other, np.ndarray):
            if tuple(other.shape) != self.shape:
                raise ValueError(
                    f"ghost add shape mismatch: {self.shape} vs {other.shape}"
                )
            return GhostFeatures(*self.shape)
        return NotImplemented

    __radd__ = __add__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GhostFeatures(rows={self.shape[0]}, channels={self.shape[1]})"


def is_ghost(x) -> bool:
    """True when ``x`` is a geometry-only feature stand-in."""
    return isinstance(x, GhostFeatures)


def concat_channels(a, b):
    """Channel-wise concat that tolerates ghosts (both sides must match)."""
    if is_ghost(a) or is_ghost(b):
        if len(a) != len(b):
            raise ValueError(
                f"concat row mismatch: {len(a)} vs {len(b)}"
            )
        return GhostFeatures(len(a), a.shape[1] + b.shape[1])
    return np.concatenate([a, b], axis=1)
