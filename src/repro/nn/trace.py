"""Workload traces: the interface between networks and hardware models.

Running a network functionally (numpy) on a concrete input cloud records a
:class:`Trace` — an ordered list of :class:`LayerSpec`s describing exactly
what work was done: mapping operations with their real map counts, explicit
gathers/scatters, dense matmuls and sparse convolutions with their shapes.

Every hardware model in this library (PointAcc itself and all the baseline
platforms) consumes the same trace, which is how the paper's comparisons are
apples-to-apples: identical workload, different machine models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["LayerKind", "LayerSpec", "Trace"]


class LayerKind(enum.Enum):
    """Operation categories, following paper Table 1 and Fig. 4."""

    # Mapping operations (Section 2.1).
    MAP_FPS = "map_fps"                # farthest point sampling
    MAP_RANDOM = "map_random"          # random sampling
    MAP_KNN = "map_knn"                # k nearest neighbors
    MAP_BALL = "map_ball"              # ball query
    MAP_KERNEL = "map_kernel"          # SparseConv kernel mapping
    MAP_QUANT = "map_quant"            # coordinate quantization (downsample)
    # Explicit data movement (Section 2.2) - costed by CPU/GPU/TPU models,
    # absorbed into the MMU flows on PointAcc.
    GATHER = "gather"
    SCATTER = "scatter"
    # Matrix computation.
    DENSE_MM = "dense_mm"              # FC / 1x1 conv / shared-MLP layer
    SPARSE_CONV = "sparse_conv"        # map-driven matmul of SparseConv
    # Aggregation / pointwise.
    POOL_MAX = "pool_max"              # neighborhood max aggregation
    GLOBAL_POOL = "global_pool"
    INTERP = "interp"                  # 3-NN weighted interpolation (FP layer)
    ELEMWISE = "elemwise"              # BN / ReLU / bias / residual add

    @property
    def is_mapping(self) -> bool:
        return self.value.startswith("map_")

    @property
    def is_movement(self) -> bool:
        return self in (LayerKind.GATHER, LayerKind.SCATTER)

    @property
    def is_matmul(self) -> bool:
        return self in (LayerKind.DENSE_MM, LayerKind.SPARSE_CONV)


@dataclass(frozen=True)
class LayerSpec:
    """One recorded operation.

    ``rows`` is the number of feature rows the op touches: output points for
    a dense FC, map entries for gather/scatter and sparse conv, input points
    for mapping ops.  ``n_in`` / ``n_out`` are the point counts of the
    surrounding clouds; ``kernel_volume`` the number of weight offsets /
    neighbors.  ``fusible`` marks pointwise dense ops eligible for the MMU's
    temporal layer fusion (consecutive fusible specs with matching point
    counts form a fusion chain).
    """

    name: str
    kind: LayerKind
    n_in: int
    n_out: int
    c_in: int = 0
    c_out: int = 0
    rows: int = 0
    n_maps: int = 0
    kernel_volume: int = 1
    fusible: bool = False
    params: dict = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        for attr in ("n_in", "n_out", "c_in", "c_out", "rows", "n_maps"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: {attr} must be >= 0")
        if self.kernel_volume < 1:
            raise ValueError(f"{self.name}: kernel_volume must be >= 1")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the op."""
        if self.kind is LayerKind.DENSE_MM:
            return self.rows * self.c_in * self.c_out
        if self.kind is LayerKind.SPARSE_CONV:
            return self.n_maps * self.c_in * self.c_out
        return 0

    @property
    def flops(self) -> int:
        """Total floating point op estimate (2x MACs, plus pointwise work)."""
        if self.kind.is_matmul:
            return 2 * self.macs
        if self.kind in (LayerKind.ELEMWISE, LayerKind.POOL_MAX, LayerKind.INTERP):
            return self.rows * max(self.c_out, self.c_in, 1)
        return 0

    def moved_elements(self) -> int:
        """Feature elements moved by an explicit gather/scatter."""
        if self.kind is LayerKind.GATHER:
            return self.n_maps * self.c_in
        if self.kind is LayerKind.SCATTER:
            return self.n_maps * self.c_out
        return 0


@dataclass
class Trace:
    """An ordered workload trace plus aggregate statistics.

    ``meta`` carries build provenance that is *not* part of the workload
    itself — e.g. the simulation engine stamps map-cache hit/miss counts and
    trace-reuse flags there.  Hardware models must never read it (two traces
    with different ``meta`` describe identical work), which is why it stays
    out of ``summary()``'s workload counts.
    """

    specs: list[LayerSpec] = field(default_factory=list)
    name: str = ""
    input_points: int = 0  # points in the raw network input (set by runners)
    meta: dict = field(default_factory=dict)

    def record(self, spec: LayerSpec) -> LayerSpec:
        self.specs.append(spec)
        return spec

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def by_kind(self, *kinds: LayerKind) -> list[LayerSpec]:
        return [s for s in self.specs if s.kind in kinds]

    @property
    def total_macs(self) -> int:
        return sum(s.macs for s in self.specs)

    @property
    def matmul_specs(self) -> list[LayerSpec]:
        return [s for s in self.specs if s.kind.is_matmul]

    @property
    def mapping_specs(self) -> list[LayerSpec]:
        return [s for s in self.specs if s.kind.is_mapping]

    @property
    def movement_specs(self) -> list[LayerSpec]:
        return [s for s in self.specs if s.kind.is_movement]

    def macs_per_point(self, n_input_points: int) -> float:
        if n_input_points <= 0:
            raise ValueError("n_input_points must be positive")
        return self.total_macs / n_input_points

    def max_feature_bytes_per_point(self, bytes_per_element: int = 4) -> float:
        """Peak per-point feature footprint across layers (paper Fig. 5 right).

        For each matmul layer: bytes of one point's input plus output
        features, times the neighborhood multiplicity (gathered features are
        replicated per map — the paper's "features can be repeatedly accessed
        up to 27 times").
        """
        peak = 0.0
        for spec in self.specs:
            if not spec.kind.is_matmul:
                continue
            if spec.kind is LayerKind.SPARSE_CONV and spec.n_out > 0:
                multiplicity = spec.n_maps / spec.n_out
            elif spec.rows > 0 and spec.n_out > 0:
                multiplicity = spec.rows / spec.n_out
            else:
                multiplicity = 1.0
            per_point = (spec.c_in * multiplicity + spec.c_out) * bytes_per_element
            peak = max(peak, per_point)
        return peak

    def summary(self) -> dict:
        """Aggregate counts used by reports and tests."""
        return {
            "layers": len(self.specs),
            "total_macs": self.total_macs,
            "mapping_ops": len(self.mapping_specs),
            "matmul_ops": len(self.matmul_specs),
            "movement_ops": len(self.movement_specs),
            "total_maps": sum(s.n_maps for s in self.specs if s.kind.is_mapping),
        }
