"""PointNet (Qi et al., CVPR 2017) — classification, with T-Nets.

Workload profile (paper Fig. 5/6): all-dense pointwise MLPs, no mapping
operations, no downsampling — which is why PointAcc's fusion mode helps it
most (Fig. 20: 64% DRAM reduction, "no downsampling layers in PointNet, we
are able to fuse more layers").
"""

from __future__ import annotations

import numpy as np

from ...pointcloud.cloud import PointCloud
from .. import functional as F
from ..layers import Linear, SharedMLP, new_param_rng
from ..trace import LayerKind, LayerSpec, Trace

__all__ = ["TNet", "PointNetCls"]


class TNet:
    """Spatial/feature transform net: MLP -> global max -> FC -> KxK matrix."""

    def __init__(self, k: int, rng: np.random.Generator, name: str = "tnet") -> None:
        self.k = k
        self.name = name
        self.mlp = SharedMLP(k, [64, 128, 1024], rng, name=f"{name}.mlp")
        self.fc = SharedMLP(1024, [512, 256], rng, name=f"{name}.fc")
        self.out = Linear(256, k * k, rng, relu=False, bn=False, name=f"{name}.out")

    def __call__(self, x: np.ndarray, trace: Trace | None = None) -> np.ndarray:
        n = len(x)
        h = self.mlp(x, trace)
        g = F.global_max_pool(h)[None, :]
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{self.name}.pool",
                    kind=LayerKind.GLOBAL_POOL,
                    n_in=n,
                    n_out=1,
                    c_in=1024,
                    c_out=1024,
                    rows=n,
                )
            )
        g = self.fc(g, trace)
        mat = self.out(g, trace).reshape(self.k, self.k)
        return mat + np.eye(self.k)


class PointNetCls:
    """PointNet classifier: input/feature T-Nets, MLPs, global pool, FC head."""

    notation = "PointNet"

    def __init__(self, n_classes: int = 40, seed: int = 0) -> None:
        rng = new_param_rng(seed)
        self.n_classes = n_classes
        self.tnet3 = TNet(3, rng, name="tnet3")
        self.mlp1 = SharedMLP(3, [64, 64], rng, name="mlp1")
        self.tnet64 = TNet(64, rng, name="tnet64")
        self.mlp2 = SharedMLP(64, [64, 128, 1024], rng, name="mlp2")
        self.head = SharedMLP(
            1024, [512, 256, n_classes], rng, final_relu=False, name="head"
        )

    def __call__(self, cloud: PointCloud, trace: Trace | None = None) -> np.ndarray:
        x = cloud.points
        n = len(x)
        t3 = self.tnet3(x, trace)
        x = x @ t3
        if trace is not None:
            trace.record(
                LayerSpec(
                    name="transform3",
                    kind=LayerKind.DENSE_MM,
                    n_in=n,
                    n_out=n,
                    c_in=3,
                    c_out=3,
                    rows=n,
                    fusible=True,
                )
            )
        x = self.mlp1(x, trace)
        t64 = self.tnet64(x, trace)
        x = x @ t64
        if trace is not None:
            trace.record(
                LayerSpec(
                    name="transform64",
                    kind=LayerKind.DENSE_MM,
                    n_in=n,
                    n_out=n,
                    c_in=64,
                    c_out=64,
                    rows=n,
                    fusible=True,
                )
            )
        x = self.mlp2(x, trace)
        g = F.global_max_pool(x)[None, :]
        if trace is not None:
            trace.record(
                LayerSpec(
                    name="global_pool",
                    kind=LayerKind.GLOBAL_POOL,
                    n_in=n,
                    n_out=1,
                    c_in=1024,
                    c_out=1024,
                    rows=n,
                )
            )
        return self.head(g, trace)[0]
