"""PointNet++ variants (Qi et al., NeurIPS 2017) used in the paper's suite.

Three configurations matching Table 2:

* :class:`PointNet2SSGCls` — "PointNet++(c)", single-scale grouping
  classification on ModelNet40.
* :class:`PointNet2MSGPartSeg` — "PointNet++(ps)", multi-scale grouping part
  segmentation on ShapeNet.
* :class:`PointNet2SSGSemSeg` — "PointNet++(s)", SSG semantic segmentation
  on S3DIS.

Layer hyperparameters follow the reference implementation; point counts
scale with the input so small test clouds still exercise every block.
"""

from __future__ import annotations

import numpy as np

from ...pointcloud.cloud import PointCloud
from ..layers import SharedMLP, new_param_rng
from ..pointnet_blocks import (
    FeaturePropagation,
    GlobalSetAbstraction,
    SetAbstraction,
    SetAbstractionMSG,
)
from ..trace import Trace

__all__ = ["PointNet2SSGCls", "PointNet2MSGPartSeg", "PointNet2SSGSemSeg"]


def _scaled(npoint: int, n_input: int, nominal_input: int) -> int:
    """Scale a stage's center count with the actual input size (min 4)."""
    return max(4, int(round(npoint * n_input / nominal_input)))


class PointNet2SSGCls:
    """PointNet++ SSG classification: 2 SA stages + global SA + FC head."""

    notation = "PointNet++(c)"
    nominal_points = 1024

    def __init__(self, n_classes: int = 40, seed: int = 0) -> None:
        rng = new_param_rng(seed)
        self.sa1 = SetAbstraction(512, 0.2, 32, 0, [64, 64, 128], rng, name="sa1")
        self.sa2 = SetAbstraction(128, 0.4, 64, 128, [128, 128, 256], rng, name="sa2")
        self.sa3 = GlobalSetAbstraction(256, [256, 512, 1024], rng, name="sa3")
        self.head = SharedMLP(
            1024, [512, 256, n_classes], rng, final_relu=False, name="head"
        )

    def __call__(self, cloud: PointCloud, trace: Trace | None = None) -> np.ndarray:
        points = cloud.points
        n = len(points)
        self.sa1.npoint = _scaled(512, n, self.nominal_points)
        self.sa2.npoint = _scaled(128, n, self.nominal_points)
        p1, f1 = self.sa1(points, None, trace)
        p2, f2 = self.sa2(p1, f1, trace)
        g = self.sa3(p2, f2, trace)[None, :]
        return self.head(g, trace)[0]


class PointNet2MSGPartSeg:
    """PointNet++ MSG part segmentation: MSG encoder + FP decoder."""

    notation = "PointNet++(ps)"
    nominal_points = 2048

    def __init__(self, n_parts: int = 50, seed: int = 0) -> None:
        rng = new_param_rng(seed)
        self.sa1 = SetAbstractionMSG(
            512,
            [(0.1, 32, [32, 32, 64]), (0.2, 64, [64, 64, 128]),
             (0.4, 128, [64, 96, 128])],
            0,
            rng,
            name="sa1",
        )
        c1 = self.sa1.c_out  # 320
        self.sa2 = SetAbstractionMSG(
            128,
            [(0.4, 64, [128, 128, 256]), (0.8, 128, [128, 196, 256])],
            c1,
            rng,
            name="sa2",
        )
        c2 = self.sa2.c_out  # 512
        self.sa3 = GlobalSetAbstraction(c2, [256, 512, 1024], rng, name="sa3")
        self.fp3 = FeaturePropagation(1024, c2, [256, 256], rng, name="fp3")
        self.fp2 = FeaturePropagation(256, c1, [256, 128], rng, name="fp2")
        self.fp1 = FeaturePropagation(128, 0, [128, 128], rng, name="fp1")
        self.head = SharedMLP(128, [128, n_parts], rng, final_relu=False, name="head")

    def __call__(self, cloud: PointCloud, trace: Trace | None = None) -> np.ndarray:
        points = cloud.points
        n = len(points)
        self.sa1.npoint = _scaled(512, n, self.nominal_points)
        self.sa2.npoint = _scaled(128, n, self.nominal_points)
        p1, f1 = self.sa1(points, None, trace)
        p2, f2 = self.sa2(p1, f1, trace)
        g = self.sa3(p2, f2, trace)
        # Propagate the global feature back down the hierarchy.
        d2 = self.fp3(p2, f2, p2.mean(axis=0, keepdims=True), g[None, :], trace)
        d1 = self.fp2(p1, f1, p2, d2, trace)
        d0 = self.fp1(points, None, p1, d1, trace)
        return self.head(d0, trace)


class PointNet2SSGSemSeg:
    """PointNet++ SSG semantic segmentation: 4 SA + 4 FP stages."""

    notation = "PointNet++(s)"
    nominal_points = 4096

    def __init__(self, n_classes: int = 13, c_in: int = 6, seed: int = 0) -> None:
        rng = new_param_rng(seed)
        self.c_in = c_in
        self.sa1 = SetAbstraction(1024, 0.1, 32, c_in, [32, 32, 64], rng, name="sa1")
        self.sa2 = SetAbstraction(256, 0.2, 32, 64, [64, 64, 128], rng, name="sa2")
        self.sa3 = SetAbstraction(64, 0.4, 32, 128, [128, 128, 256], rng, name="sa3")
        self.sa4 = SetAbstraction(16, 0.8, 32, 256, [256, 256, 512], rng, name="sa4")
        self.fp4 = FeaturePropagation(512, 256, [256, 256], rng, name="fp4")
        self.fp3 = FeaturePropagation(256, 128, [256, 256], rng, name="fp3")
        self.fp2 = FeaturePropagation(256, 64, [256, 128], rng, name="fp2")
        self.fp1 = FeaturePropagation(128, c_in, [128, 128, 128], rng, name="fp1")
        self.head = SharedMLP(
            128, [128, n_classes], rng, final_relu=False, name="head"
        )

    def __call__(self, cloud: PointCloud, trace: Trace | None = None) -> np.ndarray:
        points = cloud.points
        n = len(points)
        if cloud.features is not None and cloud.features.shape[1] == self.c_in:
            feats = cloud.features
        else:
            # S3DIS inputs carry color; synthesize deterministic pseudo-color.
            feats = np.tile(points, (1, (self.c_in + 2) // 3))[:, : self.c_in]
        for sa, npoint in ((self.sa1, 1024), (self.sa2, 256), (self.sa3, 64),
                           (self.sa4, 16)):
            sa.npoint = _scaled(npoint, n, self.nominal_points)
        p1, f1 = self.sa1(points, feats, trace)
        p2, f2 = self.sa2(p1, f1, trace)
        p3, f3 = self.sa3(p2, f2, trace)
        p4, f4 = self.sa4(p3, f3, trace)
        d3 = self.fp4(p3, f3, p4, f4, trace)
        d2 = self.fp3(p2, f2, p3, d3, trace)
        d1 = self.fp2(p1, f1, p2, d2, trace)
        d0 = self.fp1(points, feats, p1, d1, trace)
        return self.head(d0, trace)
