"""DGCNN (Wang et al., SIGGRAPH 2019) — part segmentation configuration.

Every EdgeConv layer recomputes a kNN graph in *feature* space, so mapping
work grows with feature width — the property that makes DGCNN one of the
most mapping-bound models in the paper's profile (Fig. 6 family).
"""

from __future__ import annotations

import numpy as np

from ...pointcloud.cloud import PointCloud
from .. import functional as F
from ..dgcnn_blocks import EdgeConv
from ..layers import SharedMLP, new_param_rng
from ..trace import LayerKind, LayerSpec, Trace

__all__ = ["DGCNNPartSeg"]


class DGCNNPartSeg:
    """DGCNN for part segmentation: 3 EdgeConvs + global context + head."""

    notation = "DGCNN"
    nominal_points = 2048

    def __init__(self, n_parts: int = 50, k: int = 20, seed: int = 0) -> None:
        rng = new_param_rng(seed)
        self.k = k
        self.ec1 = EdgeConv(3, [64, 64], k, rng, name="ec1")
        self.ec2 = EdgeConv(64, [64, 64], k, rng, name="ec2")
        self.ec3 = EdgeConv(64, [64], k, rng, name="ec3")
        concat_c = 64 + 64 + 64
        self.bottleneck = SharedMLP(concat_c, [1024], rng, name="bottleneck")
        self.head = SharedMLP(
            1024 + concat_c, [256, 256, 128, n_parts], rng,
            final_relu=False, name="head",
        )

    def __call__(self, cloud: PointCloud, trace: Trace | None = None) -> np.ndarray:
        x = cloud.points
        n = len(x)
        h1 = self.ec1(x, trace)
        h2 = self.ec2(h1, trace)
        h3 = self.ec3(h2, trace)
        concat = np.concatenate([h1, h2, h3], axis=1)
        bottleneck = self.bottleneck(concat, trace)
        g = F.global_max_pool(bottleneck)
        if trace is not None:
            trace.record(
                LayerSpec(
                    name="global_pool",
                    kind=LayerKind.GLOBAL_POOL,
                    n_in=n,
                    n_out=1,
                    c_in=1024,
                    c_out=1024,
                    rows=n,
                )
            )
        expanded = np.concatenate([np.repeat(g[None, :], n, axis=0), concat], axis=1)
        return self.head(expanded, trace)
