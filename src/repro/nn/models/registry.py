"""Benchmark registry — paper Table 2 plus trace generation helpers.

Maps each benchmark notation used in the paper's figures to its model,
dataset and input pipeline, and provides :func:`build_trace`, the single
entry point every experiment runner uses to obtain a workload trace.

``published`` records accuracy numbers from the papers cited in Table 2
(reproduction note: we cannot re-train without the real datasets, so figures
that plot accuracy use these constants; latency/energy axes are measured
from our models — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from ...pointcloud.datasets import generate_sample, get_dataset
from ..trace import Trace
from .dgcnn import DGCNNPartSeg
from .frustum import FrustumPointNet2
from .minkunet import MinkowskiUNet, mini_minkunet
from .pointnet import PointNetCls
from .pointnet2 import PointNet2MSGPartSeg, PointNet2SSGCls, PointNet2SSGSemSeg

__all__ = ["Benchmark", "BENCHMARKS", "get_benchmark", "build_trace", "run_benchmark"]


@dataclass(frozen=True)
class Benchmark:
    """One row of Table 2."""

    notation: str
    application: str
    dataset: str
    family: str  # "pointnet++" | "sparseconv"
    model_factory: Callable[[int], object]
    voxel_size: float | None = None  # set for sparseconv models
    mesorasi_compatible: bool = False  # delayed aggregation applies
    n_points: int | None = None  # override the dataset's nominal size
    published: dict = field(default_factory=dict, hash=False, compare=False)


def _minknet_indoor(seed: int) -> MinkowskiUNet:
    model = MinkowskiUNet(n_classes=13, seed=seed)
    model.notation = "MinkNet(i)"
    return model


def _minknet_outdoor(seed: int) -> MinkowskiUNet:
    model = MinkowskiUNet(n_classes=19, seed=seed)
    model.notation = "MinkNet(o)"
    return model


BENCHMARKS: dict[str, Benchmark] = {
    "PointNet": Benchmark(
        notation="PointNet",
        application="classification",
        dataset="modelnet40",
        family="pointnet++",
        model_factory=lambda seed: PointNetCls(seed=seed),
        mesorasi_compatible=True,
        published={"accuracy": 89.2},
    ),
    "PointNet++(c)": Benchmark(
        notation="PointNet++(c)",
        application="classification",
        dataset="modelnet40",
        family="pointnet++",
        model_factory=lambda seed: PointNet2SSGCls(seed=seed),
        mesorasi_compatible=True,
        published={"accuracy": 90.7},
    ),
    "PointNet++(ps)": Benchmark(
        notation="PointNet++(ps)",
        application="part segmentation",
        dataset="shapenet",
        family="pointnet++",
        model_factory=lambda seed: PointNet2MSGPartSeg(seed=seed),
        mesorasi_compatible=True,
        published={"instance_miou": 85.1},
    ),
    "DGCNN": Benchmark(
        notation="DGCNN",
        application="part segmentation",
        dataset="shapenet",
        family="pointnet++",
        model_factory=lambda seed: DGCNNPartSeg(seed=seed),
        mesorasi_compatible=True,
        published={"instance_miou": 85.2},
    ),
    "F-PointNet++": Benchmark(
        notation="F-PointNet++",
        application="detection",
        dataset="kitti",
        family="pointnet++",
        model_factory=lambda seed: FrustumPointNet2(seed=seed),
        mesorasi_compatible=True,
        published={"car_ap_moderate": 70.4},
    ),
    "PointNet++(s)": Benchmark(
        notation="PointNet++(s)",
        application="segmentation",
        dataset="s3dis",
        family="pointnet++",
        model_factory=lambda seed: PointNet2SSGSemSeg(seed=seed),
        mesorasi_compatible=True,
        n_points=4096,  # S3DIS is processed in 4096-point blocks
        published={"miou": 53.5},
    ),
    "MinkNet(i)": Benchmark(
        notation="MinkNet(i)",
        application="segmentation",
        dataset="s3dis",
        family="sparseconv",
        model_factory=_minknet_indoor,
        voxel_size=0.05,
        published={"miou": 65.4},
    ),
    "MinkNet(o)": Benchmark(
        notation="MinkNet(o)",
        application="segmentation",
        dataset="semantickitti",
        family="sparseconv",
        model_factory=_minknet_outdoor,
        voxel_size=0.1,
        published={"miou": 61.1},
    ),
}

# The Fig. 16 co-design model is not part of Table 2 but shares the pipeline.
MINI_MINKUNET = Benchmark(
    notation="Mini-MinkowskiUNet",
    application="segmentation",
    dataset="s3dis",
    family="sparseconv",
    model_factory=lambda seed: mini_minkunet(seed=seed),
    voxel_size=0.08,
    published={"miou": 62.6},  # PointNet++(s) 53.5 + 9.1 (Section 5.2.2)
)


def get_benchmark(notation: str) -> Benchmark:
    if notation == MINI_MINKUNET.notation:
        return MINI_MINKUNET
    if notation not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {notation!r}; known: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[notation]


def run_benchmark(
    notation: str, scale: float = 1.0, seed: int = 0
) -> tuple[Trace, object]:
    """Run one benchmark functionally; return its trace and raw output."""
    bench = get_benchmark(notation)
    spec = get_dataset(bench.dataset)
    n_points = None
    if bench.n_points is not None:
        n_points = max(16, int(bench.n_points * scale))
    cloud = generate_sample(bench.dataset, seed=seed, scale=scale, n_points=n_points)
    model = bench.model_factory(seed)
    trace = Trace(name=notation)
    if bench.family == "sparseconv":
        voxel = bench.voxel_size if bench.voxel_size is not None else spec.voxel_size
        tensor = model.prepare_input(cloud, voxel)
        output = model(tensor, trace)
        trace.input_points = tensor.n
    else:
        output = model(cloud, trace)
        trace.input_points = cloud.n
    return trace, output


@lru_cache(maxsize=64)
def build_trace(notation: str, scale: float = 1.0, seed: int = 0) -> Trace:
    """Cached trace construction — experiments share traces freely."""
    trace, _ = run_benchmark(notation, scale=scale, seed=seed)
    return trace
