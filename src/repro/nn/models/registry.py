"""Benchmark registry — paper Table 2 plus trace generation helpers.

Maps each benchmark notation used in the paper's figures to its model,
dataset and input pipeline, and provides :func:`build_trace`, the single
entry point every experiment runner uses to obtain a workload trace.

``published`` records accuracy numbers from the papers cited in Table 2
(reproduction note: we cannot re-train without the real datasets, so figures
that plot accuracy use these constants; latency/energy axes are measured
from our models — see DESIGN.md).

Cloud sources
-------------
A benchmark notation may carry a cloud source suffix:
``"MinkNet(o)@stream:3f2a..."`` runs the MinkNet(o) network on a cloud
resolved by the registered ``stream`` scheme instead of the dataset
generator — the ``seed`` then selects which cloud (e.g. a frame index
within a registered sequence) and the resolver supplies the model seed, so
a sourced workload key ``(notation, scale, seed)`` still fully determines
both input and weights.  Schemes are registered by the subsystem that owns
them (see :mod:`repro.stream.sequence`); tokens are content digests of the
source configuration, so equal tokens mean equal clouds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from ...pointcloud.datasets import generate_sample, get_dataset
from ..ghost import GhostFeatures
from ..trace import Trace
from .dgcnn import DGCNNPartSeg
from .frustum import FrustumPointNet2
from .minkunet import MinkowskiUNet, mini_minkunet
from .pointnet import PointNetCls
from .pointnet2 import PointNet2MSGPartSeg, PointNet2SSGCls, PointNet2SSGSemSeg

__all__ = [
    "Benchmark",
    "BENCHMARKS",
    "get_benchmark",
    "build_trace",
    "run_benchmark",
    "register_cloud_scheme",
    "split_notation",
]


@dataclass(frozen=True)
class Benchmark:
    """One row of Table 2."""

    notation: str
    application: str
    dataset: str
    family: str  # "pointnet++" | "sparseconv"
    model_factory: Callable[[int], object]
    voxel_size: float | None = None  # set for sparseconv models
    mesorasi_compatible: bool = False  # delayed aggregation applies
    n_points: int | None = None  # override the dataset's nominal size
    published: dict = field(default_factory=dict, hash=False, compare=False)


def _minknet_indoor(seed: int) -> MinkowskiUNet:
    model = MinkowskiUNet(n_classes=13, seed=seed)
    model.notation = "MinkNet(i)"
    return model


def _minknet_outdoor(seed: int) -> MinkowskiUNet:
    model = MinkowskiUNet(n_classes=19, seed=seed)
    model.notation = "MinkNet(o)"
    return model


BENCHMARKS: dict[str, Benchmark] = {
    "PointNet": Benchmark(
        notation="PointNet",
        application="classification",
        dataset="modelnet40",
        family="pointnet++",
        model_factory=lambda seed: PointNetCls(seed=seed),
        mesorasi_compatible=True,
        published={"accuracy": 89.2},
    ),
    "PointNet++(c)": Benchmark(
        notation="PointNet++(c)",
        application="classification",
        dataset="modelnet40",
        family="pointnet++",
        model_factory=lambda seed: PointNet2SSGCls(seed=seed),
        mesorasi_compatible=True,
        published={"accuracy": 90.7},
    ),
    "PointNet++(ps)": Benchmark(
        notation="PointNet++(ps)",
        application="part segmentation",
        dataset="shapenet",
        family="pointnet++",
        model_factory=lambda seed: PointNet2MSGPartSeg(seed=seed),
        mesorasi_compatible=True,
        published={"instance_miou": 85.1},
    ),
    "DGCNN": Benchmark(
        notation="DGCNN",
        application="part segmentation",
        dataset="shapenet",
        family="pointnet++",
        model_factory=lambda seed: DGCNNPartSeg(seed=seed),
        mesorasi_compatible=True,
        published={"instance_miou": 85.2},
    ),
    "F-PointNet++": Benchmark(
        notation="F-PointNet++",
        application="detection",
        dataset="kitti",
        family="pointnet++",
        model_factory=lambda seed: FrustumPointNet2(seed=seed),
        mesorasi_compatible=True,
        published={"car_ap_moderate": 70.4},
    ),
    "PointNet++(s)": Benchmark(
        notation="PointNet++(s)",
        application="segmentation",
        dataset="s3dis",
        family="pointnet++",
        model_factory=lambda seed: PointNet2SSGSemSeg(seed=seed),
        mesorasi_compatible=True,
        n_points=4096,  # S3DIS is processed in 4096-point blocks
        published={"miou": 53.5},
    ),
    "MinkNet(i)": Benchmark(
        notation="MinkNet(i)",
        application="segmentation",
        dataset="s3dis",
        family="sparseconv",
        model_factory=_minknet_indoor,
        voxel_size=0.05,
        published={"miou": 65.4},
    ),
    "MinkNet(o)": Benchmark(
        notation="MinkNet(o)",
        application="segmentation",
        dataset="semantickitti",
        family="sparseconv",
        model_factory=_minknet_outdoor,
        voxel_size=0.1,
        published={"miou": 61.1},
    ),
}

# The Fig. 16 co-design model is not part of Table 2 but shares the pipeline.
MINI_MINKUNET = Benchmark(
    notation="Mini-MinkowskiUNet",
    application="segmentation",
    dataset="s3dis",
    family="sparseconv",
    model_factory=lambda seed: mini_minkunet(seed=seed),
    voxel_size=0.08,
    published={"miou": 62.6},  # PointNet++(s) 53.5 + 9.1 (Section 5.2.2)
)


#: scheme -> resolver(token, scale, seed) -> (PointCloud, model_seed).
#: Registered by the subsystem owning the scheme (e.g. ``repro.stream``).
CLOUD_SCHEMES: dict[str, Callable] = {}


def register_cloud_scheme(scheme: str, resolver: Callable) -> None:
    """Register a cloud source scheme for ``"<benchmark>@<scheme>:<token>"``."""
    if ":" in scheme or "@" in scheme:
        raise ValueError(f"invalid scheme name {scheme!r}")
    CLOUD_SCHEMES[scheme] = resolver


def split_notation(notation: str) -> tuple[str, str | None]:
    """Split ``"bench@scheme:token"`` into ``(bench, "scheme:token")``."""
    base, sep, source = notation.partition("@")
    return base, (source if sep else None)


def _resolve_sourced_cloud(source: str, scale: float, seed: int):
    scheme, sep, token = source.partition(":")
    if not sep or scheme not in CLOUD_SCHEMES:
        raise KeyError(
            f"unknown cloud source {source!r}; "
            f"registered schemes: {sorted(CLOUD_SCHEMES)}"
        )
    return CLOUD_SCHEMES[scheme](token, scale, seed)


def get_benchmark(notation: str) -> Benchmark:
    notation, _ = split_notation(notation)
    if notation == MINI_MINKUNET.notation:
        return MINI_MINKUNET
    if notation not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {notation!r}; known: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[notation]


@lru_cache(maxsize=64)
def _resident_model(base_notation: str, model_seed: int):
    """Model instances for sourced (streaming) workloads.

    A frame stream runs one network over many clouds; rebuilding the seeded
    weights per frame is pure overhead (and in geometry-only mode the
    weight *values* are never even read).  Models are stateless after
    construction — every ``__call__`` takes its inputs and trace explicitly
    — so sharing an instance cannot change a result.

    Sized for fleet serving (:mod:`repro.fleet`): a fleet session keeps
    one ``(base benchmark, model seed)`` pair resident per distinct-world
    stream, and a round-robin over more streams than slots would rebuild
    weights every single round — so the bound comfortably exceeds any
    realistic concurrent stream x benchmark mix.
    """
    return get_benchmark(base_notation).model_factory(model_seed)


def run_benchmark(
    notation: str, scale: float = 1.0, seed: int = 0, geometry_only: bool = False
) -> tuple[Trace, object]:
    """Run one benchmark functionally; return its trace and raw output.

    ``geometry_only`` skips feature arithmetic for model families whose
    trace is a pure function of coordinates (currently SparseConv models,
    via :class:`~repro.nn.ghost.GhostFeatures`); the returned trace is
    bit-identical to a full functional run's and the raw output is a shape
    token instead of real logits.  Families that need feature values for
    mapping (DGCNN's dynamic graph, PointNet++'s MLPs feeding nothing —
    conservatively, everything non-SparseConv) ignore the flag.
    """
    base, source = split_notation(notation)
    bench = get_benchmark(base)
    spec = get_dataset(bench.dataset)
    if source is not None:
        cloud, model_seed = _resolve_sourced_cloud(source, scale, seed)
        model = _resident_model(base, model_seed)
    else:
        n_points = None
        if bench.n_points is not None:
            n_points = max(16, int(bench.n_points * scale))
        cloud = generate_sample(
            bench.dataset, seed=seed, scale=scale, n_points=n_points
        )
        model = bench.model_factory(seed)
    trace = Trace(name=notation)
    if bench.family == "sparseconv":
        voxel = bench.voxel_size if bench.voxel_size is not None else spec.voxel_size
        if geometry_only:
            tensor = cloud.voxelize(voxel)
            tensor = tensor.with_features(GhostFeatures(tensor.n, model.c_in))
        else:
            tensor = model.prepare_input(cloud, voxel)
        output = model(tensor, trace)
        trace.input_points = tensor.n
    else:
        output = model(cloud, trace)
        trace.input_points = cloud.n
    return trace, output


@lru_cache(maxsize=64)
def build_trace(notation: str, scale: float = 1.0, seed: int = 0) -> Trace:
    """Cached trace construction — experiments share traces freely."""
    trace, _ = run_benchmark(notation, scale=scale, seed=seed)
    return trace
