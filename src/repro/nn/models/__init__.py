"""The 8-network benchmark zoo (paper Table 2) plus Mini-MinkowskiUNet."""

from .dgcnn import DGCNNPartSeg
from .frustum import FrustumPointNet2, extract_frustums
from .minkunet import MinkowskiUNet, ResidualBlock, mini_minkunet
from .pointnet import PointNetCls, TNet
from .pointnet2 import PointNet2MSGPartSeg, PointNet2SSGCls, PointNet2SSGSemSeg
from .registry import (
    BENCHMARKS,
    MINI_MINKUNET,
    Benchmark,
    build_trace,
    get_benchmark,
    run_benchmark,
)

__all__ = [
    "DGCNNPartSeg",
    "FrustumPointNet2",
    "extract_frustums",
    "MinkowskiUNet",
    "ResidualBlock",
    "mini_minkunet",
    "PointNetCls",
    "TNet",
    "PointNet2MSGPartSeg",
    "PointNet2SSGCls",
    "PointNet2SSGSemSeg",
    "BENCHMARKS",
    "MINI_MINKUNET",
    "Benchmark",
    "build_trace",
    "get_benchmark",
    "run_benchmark",
]
