"""Frustum PointNet++ (Qi et al., CVPR 2018) — 3D detection on KITTI.

The full pipeline runs a 2D detector to propose view frustums, then per
frustum: instance segmentation (PointNet++), a T-Net centroid regressor and
an amodal box-estimation PointNet.  The 2D detector runs on the image
modality (outside the point-cloud accelerator's scope and outside the
paper's measurement); we substitute it with geometric frustum extraction
from the LiDAR cloud — azimuth wedges around detected-object directions —
which yields the same per-frustum point-cloud workload that PointAcc and the
baselines execute.
"""

from __future__ import annotations

import numpy as np

from ...pointcloud.cloud import PointCloud
from .. import functional as F
from ..layers import Linear, SharedMLP, new_param_rng
from ..pointnet_blocks import FeaturePropagation, GlobalSetAbstraction, SetAbstraction
from ..trace import LayerKind, LayerSpec, Trace

__all__ = ["extract_frustums", "FrustumPointNet2"]


def extract_frustums(
    points: np.ndarray,
    n_frustums: int = 4,
    fov_deg: float = 12.0,
    max_points: int = 1024,
    min_points: int = 32,
    seed: int = 0,
) -> list[np.ndarray]:
    """Cut azimuth wedges out of a LiDAR scan (the 2D-detector substitute).

    Wedge centers are the azimuths with most points (a crude objectness
    prior), deduplicated so wedges do not overlap.
    """
    rng = np.random.default_rng(seed)
    azimuth = np.arctan2(points[:, 1], points[:, 0])
    n_bins = 72
    hist, edges = np.histogram(azimuth, bins=n_bins, range=(-np.pi, np.pi))
    order = np.argsort(hist)[::-1]
    half_fov = np.deg2rad(fov_deg) / 2
    centers: list[float] = []
    for b in order:
        center = (edges[b] + edges[b + 1]) / 2
        if all(abs(np.angle(np.exp(1j * (center - c)))) > 2 * half_fov for c in centers):
            centers.append(center)
        if len(centers) == n_frustums:
            break
    frustums = []
    for center in centers:
        delta = np.angle(np.exp(1j * (azimuth - center)))
        mask = np.abs(delta) <= half_fov
        pts = points[mask]
        if len(pts) < min_points:
            continue
        if len(pts) > max_points:
            idx = rng.choice(len(pts), size=max_points, replace=False)
            pts = pts[idx]
        frustums.append(pts)
    return frustums


class FrustumPointNet2:
    """F-PointNet++: per-frustum segmentation + T-Net + box estimation."""

    notation = "F-PointNet++"
    nominal_points = 16384  # full-scan size; each frustum is <= 1024 points

    def __init__(
        self, n_box_params: int = 59, n_frustums: int = 4, seed: int = 0
    ) -> None:
        rng = new_param_rng(seed)
        self.n_frustums = n_frustums
        # Instance segmentation network (PointNet++ SSG, v2 config).
        self.sa1 = SetAbstraction(128, 0.2, 32, 0, [32, 32, 64], rng, name="seg.sa1")
        self.sa2 = SetAbstraction(32, 0.4, 32, 64, [64, 64, 128], rng, name="seg.sa2")
        self.sa3 = GlobalSetAbstraction(128, [128, 256, 512], rng, name="seg.sa3")
        self.fp2 = FeaturePropagation(512, 128, [128, 128], rng, name="seg.fp2")
        self.fp1 = FeaturePropagation(128, 64, [128, 128], rng, name="seg.fp1")
        self.fp0 = FeaturePropagation(128, 0, [128, 128], rng, name="seg.fp0")
        self.seg_head = SharedMLP(128, [128, 2], rng, final_relu=False,
                                  name="seg.head")
        # T-Net (centroid regression).
        self.tnet_mlp = SharedMLP(3, [128, 128, 256], rng, name="tnet.mlp")
        self.tnet_fc = SharedMLP(256, [256, 128], rng, name="tnet.fc")
        self.tnet_out = Linear(128, 3, rng, relu=False, bn=False, name="tnet.out")
        # Amodal box estimation PointNet.
        self.box_mlp = SharedMLP(3, [128, 128, 256, 512], rng, name="box.mlp")
        self.box_fc = SharedMLP(512, [512, 256], rng, name="box.fc")
        self.box_out = Linear(
            256, n_box_params, rng, relu=False, bn=False, name="box.out"
        )

    def _segment(self, pts: np.ndarray, trace: Trace | None) -> np.ndarray:
        n = len(pts)
        self.sa1.npoint = max(4, min(128, n // 8))
        self.sa2.npoint = max(4, min(32, n // 32))
        p1, f1 = self.sa1(pts, None, trace)
        p2, f2 = self.sa2(p1, f1, trace)
        g = self.sa3(p2, f2, trace)
        d2 = self.fp2(p2, f2, p2.mean(axis=0, keepdims=True), g[None, :], trace)
        d1 = self.fp1(p1, f1, p2, d2, trace)
        d0 = self.fp0(pts, None, p1, d1, trace)
        return self.seg_head(d0, trace)

    def _regress(
        self,
        pts: np.ndarray,
        mlp: SharedMLP,
        fc: SharedMLP,
        out: Linear,
        pool_name: str,
        trace: Trace | None,
    ) -> np.ndarray:
        h = mlp(pts, trace)
        g = F.global_max_pool(h)[None, :]
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=pool_name,
                    kind=LayerKind.GLOBAL_POOL,
                    n_in=len(pts),
                    n_out=1,
                    c_in=h.shape[1],
                    c_out=h.shape[1],
                    rows=len(pts),
                )
            )
        return out(fc(g, trace), trace)[0]

    def __call__(self, cloud: PointCloud, trace: Trace | None = None) -> list[dict]:
        frustums = extract_frustums(cloud.points, n_frustums=self.n_frustums)
        detections = []
        for pts in frustums:
            logits = self._segment(pts, trace)
            fg_mask = logits[:, 1] > logits[:, 0]
            fg = pts[fg_mask] if fg_mask.sum() >= 8 else pts
            centered = fg - fg.mean(axis=0)
            centroid_delta = self._regress(
                centered, self.tnet_mlp, self.tnet_fc, self.tnet_out,
                "tnet.pool", trace,
            )
            box = self._regress(
                centered - centroid_delta, self.box_mlp, self.box_fc,
                self.box_out, "box.pool", trace,
            )
            detections.append({"n_points": len(pts), "box": box})
        return detections
