"""SPVCNN-lite: sparse point-voxel convolution (Tang et al., ECCV 2020).

SPVNAS — the paper's Fig. 2 reference point for efficient 3D networks —
builds on Sparse Point-Voxel convolution: a sparse voxel branch (Minkowski-
style U-Net) fused with a high-resolution per-point MLP branch, so fine
geometric detail survives aggressive voxel downsampling.

This is an *extension* model (not part of the paper's Table 2 suite): it
exercises a mapping pattern none of the eight benchmarks has — repeated
voxelize/devoxelize traffic between a point set and a voxel set — which
stresses the MMU's gather/scatter accounting differently (the devoxelize
gather is random-access over the voxel features).

Structure (lite): voxelize -> [SPV stage x 3] -> fuse -> head, where each
SPV stage = sparse-conv block on voxels + shared MLP on points + nearest-
voxel devoxelize + add.
"""

from __future__ import annotations

import numpy as np

from ...pointcloud.cloud import PointCloud, SparseTensor
from ...pointcloud.coords import quantize_unique
from ..layers import Linear, SharedMLP, new_param_rng
from ..sparse_conv import SparseConv
from ..trace import LayerKind, LayerSpec, Trace

__all__ = ["SPVCNNLite"]


class SPVCNNLite:
    """Three SPV stages over a voxelized cloud plus a per-point branch."""

    notation = "SPVCNN-lite"
    nominal_points = 65536

    def __init__(
        self,
        n_classes: int = 19,
        channels: tuple[int, ...] = (16, 32, 64),
        c_in: int = 4,
        seed: int = 0,
    ) -> None:
        rng = new_param_rng(seed)
        self.c_in = c_in
        self.n_classes = n_classes
        self.channels = channels
        self.stem = SparseConv(c_in, channels[0], 3, 1, rng, name="stem")
        self.voxel_blocks: list[SparseConv] = []
        self.point_mlps: list[SharedMLP] = []
        prev = channels[0]
        for i, c in enumerate(channels):
            self.voxel_blocks.append(
                SparseConv(prev, c, 3, 1, rng, name=f"spv{i}.voxel")
            )
            self.point_mlps.append(
                SharedMLP(prev, [c], rng, name=f"spv{i}.point")
            )
            prev = c
        self.head = Linear(prev, n_classes, rng, relu=False, bn=False,
                           name="head")

    def prepare_input(self, cloud: PointCloud, voxel_size: float) -> tuple[
        SparseTensor, np.ndarray, np.ndarray
    ]:
        """Voxelize; return (tensor, point->voxel map, point features)."""
        grid = np.floor(cloud.points / voxel_size).astype(np.int64)
        voxels, inverse = quantize_unique(grid, 1)
        feats = np.zeros((len(voxels), self.c_in))
        coords = voxels.astype(np.float64)
        span = np.maximum(coords.max(axis=0) - coords.min(axis=0), 1.0)
        feats[:, 0] = 1.0
        feats[:, 1: min(4, self.c_in)] = (
            (coords - coords.min(axis=0)) / span
        )[:, : max(0, min(3, self.c_in - 1))]
        tensor = SparseTensor(voxels, feats, tensor_stride=1, _sorted=True)
        point_feats = feats[inverse]
        return tensor, inverse, point_feats

    def _devoxelize(
        self,
        voxel_feats: np.ndarray,
        point_to_voxel: np.ndarray,
        trace: Trace | None,
        name: str,
    ) -> np.ndarray:
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{name}.devox",
                    kind=LayerKind.GATHER,
                    n_in=len(voxel_feats),
                    n_out=len(point_to_voxel),
                    c_in=voxel_feats.shape[1],
                    n_maps=len(point_to_voxel),
                )
            )
        return voxel_feats[point_to_voxel]

    def _voxelize_feats(
        self,
        point_feats: np.ndarray,
        point_to_voxel: np.ndarray,
        n_voxels: int,
        trace: Trace | None,
        name: str,
    ) -> np.ndarray:
        out = np.zeros((n_voxels, point_feats.shape[1]))
        np.add.at(out, point_to_voxel, point_feats)
        counts = np.bincount(point_to_voxel, minlength=n_voxels)
        out /= np.maximum(counts, 1)[:, None]
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{name}.vox",
                    kind=LayerKind.SCATTER,
                    n_in=len(point_feats),
                    n_out=n_voxels,
                    c_out=point_feats.shape[1],
                    n_maps=len(point_feats),
                )
            )
        return out

    def __call__(
        self,
        tensor: SparseTensor,
        point_to_voxel: np.ndarray,
        point_feats: np.ndarray,
        trace: Trace | None = None,
    ) -> np.ndarray:
        """Per-point logits for the raw (pre-voxelization) points."""
        map_cache: dict = {}
        x = self.stem(tensor, trace, map_cache)
        pts = self._devoxelize(x.features, point_to_voxel, trace, "stem")
        for i, (vblock, pmlp) in enumerate(
            zip(self.voxel_blocks, self.point_mlps)
        ):
            x = vblock(x, trace, map_cache)
            pts = pmlp(pts, trace)
            devox = self._devoxelize(
                x.features, point_to_voxel, trace, f"spv{i}"
            )
            pts = pts + devox  # point-voxel fusion
            if trace is not None:
                trace.record(
                    LayerSpec(
                        name=f"spv{i}.fuse",
                        kind=LayerKind.ELEMWISE,
                        n_in=len(pts),
                        n_out=len(pts),
                        c_in=pts.shape[1],
                        c_out=pts.shape[1],
                        rows=len(pts),
                    )
                )
            # Push fused features back onto the voxel branch.
            x = x.with_features(
                self._voxelize_feats(
                    pts, point_to_voxel, x.n, trace, f"spv{i}"
                )
            )
        return self.head(pts, trace)

    def run(self, cloud: PointCloud, voxel_size: float,
            trace: Trace | None = None) -> np.ndarray:
        tensor, inverse, point_feats = self.prepare_input(cloud, voxel_size)
        if trace is not None:
            trace.record(
                LayerSpec(
                    name="voxelize",
                    kind=LayerKind.MAP_QUANT,
                    n_in=cloud.n,
                    n_out=tensor.n,
                    rows=cloud.n,
                )
            )
            trace.input_points = cloud.n
        return self(tensor, inverse, point_feats, trace)
