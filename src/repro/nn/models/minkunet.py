"""MinkowskiUNet (Choy et al., CVPR 2019) — sparse-conv U-Net segmentation.

The SparseConv-based workhorse of the paper's evaluation: MinkNet(i) on
S3DIS and MinkNet(o) on SemanticKITTI, plus the shallower/narrower
Mini-MinkowskiUNet used in the Mesorasi co-design comparison (Fig. 16).

Structure (MinkUNet18-like): a 2-conv stem, four encoder stages (strided
k=2 conv + residual blocks of submanifold k=3 convs), four decoder stages
(generative transposed k=2 conv + skip concat + residual blocks), and a
pointwise classifier head.  ``width`` and ``blocks_per_stage`` scale the
model; :func:`mini_minkunet` builds the Fig. 16 variant.
"""

from __future__ import annotations

import numpy as np

from ...pointcloud.cloud import PointCloud, SparseTensor
from .. import functional as F
from ..ghost import concat_channels, is_ghost
from ..layers import Linear, new_param_rng
from ..sparse_conv import SparseConv, SparseConvTranspose
from ..trace import LayerKind, LayerSpec, Trace

__all__ = ["ResidualBlock", "MinkowskiUNet", "mini_minkunet"]


class ResidualBlock:
    """Two submanifold convs with an (optionally projected) skip connection."""

    def __init__(
        self,
        c_in: int,
        c_out: int,
        rng: np.random.Generator,
        name: str = "block",
    ) -> None:
        self.name = name
        self.conv1 = SparseConv(c_in, c_out, 3, 1, rng, name=f"{name}.conv1")
        self.conv2 = SparseConv(c_out, c_out, 3, 1, rng, relu=False,
                                name=f"{name}.conv2")
        self.projection = (
            Linear(c_in, c_out, rng, relu=False, bn=True, name=f"{name}.proj")
            if c_in != c_out
            else None
        )

    def __call__(
        self,
        tensor: SparseTensor,
        trace: Trace | None = None,
        map_cache: dict | None = None,
    ) -> SparseTensor:
        residual = tensor.features
        out = self.conv1(tensor, trace, map_cache)
        out = self.conv2(out, trace, map_cache)
        if self.projection is not None:
            residual = self.projection(residual, trace)
        summed = out.features + residual
        features = summed if is_ghost(summed) else F.relu(summed)
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{self.name}.add",
                    kind=LayerKind.ELEMWISE,
                    n_in=tensor.n,
                    n_out=tensor.n,
                    c_in=out.channels,
                    c_out=out.channels,
                    rows=tensor.n,
                )
            )
        return out.with_features(features)


class MinkowskiUNet:
    """Configurable sparse U-Net over a :class:`SparseTensor` input."""

    notation = "MinkNet"

    def __init__(
        self,
        n_classes: int = 19,
        c_in: int = 4,
        enc_channels: tuple[int, ...] = (32, 64, 128, 256),
        dec_channels: tuple[int, ...] = (256, 128, 96, 96),
        blocks_per_stage: int = 1,
        seed: int = 0,
    ) -> None:
        if len(enc_channels) != len(dec_channels):
            raise ValueError("encoder/decoder stage counts must match")
        rng = new_param_rng(seed)
        self.c_in = c_in
        self.n_classes = n_classes
        self.enc_channels = enc_channels
        self.dec_channels = dec_channels
        c0 = enc_channels[0]
        self.stem1 = SparseConv(c_in, c0, 3, 1, rng, name="stem1")
        self.stem2 = SparseConv(c0, c0, 3, 1, rng, name="stem2")
        self.down_convs: list[SparseConv] = []
        self.enc_blocks: list[list[ResidualBlock]] = []
        prev = c0
        for i, c in enumerate(enc_channels):
            self.down_convs.append(
                SparseConv(prev, c, 2, 2, rng, name=f"enc{i}.down")
            )
            self.enc_blocks.append(
                [
                    ResidualBlock(c, c, rng, name=f"enc{i}.block{b}")
                    for b in range(blocks_per_stage)
                ]
            )
            prev = c
        self.up_convs: list[SparseConvTranspose] = []
        self.dec_blocks: list[list[ResidualBlock]] = []
        # Skip widths seen by decoder stage j (deepest first): the encoder
        # outputs one level up, ending at the stem width.
        skip_channels = [*enc_channels[:-1][::-1], c0]
        for j, c in enumerate(dec_channels):
            self.up_convs.append(
                SparseConvTranspose(prev, c, 2, rng, name=f"dec{j}.up")
            )
            stage_in = c + skip_channels[j]
            blocks = [ResidualBlock(stage_in, c, rng, name=f"dec{j}.block0")]
            blocks += [
                ResidualBlock(c, c, rng, name=f"dec{j}.block{b}")
                for b in range(1, blocks_per_stage)
            ]
            self.dec_blocks.append(blocks)
            prev = c
        self.head = Linear(prev, n_classes, rng, relu=False, bn=False, name="head")

    def prepare_input(self, cloud: PointCloud, voxel_size: float) -> SparseTensor:
        """Voxelize a raw cloud and attach the standard input features.

        Features are ``(occupancy, normalized xyz)`` — a stand-in for the
        intensity/color channels real datasets carry (same width, same
        dense-matmul workload).
        """
        tensor = cloud.voxelize(voxel_size)
        coords = tensor.coords.astype(np.float64)
        span = np.maximum(coords.max(axis=0) - coords.min(axis=0), 1.0)
        normalized = (coords - coords.min(axis=0)) / span
        features = np.concatenate(
            [np.ones((tensor.n, 1)), normalized], axis=1
        )[:, : self.c_in]
        if features.shape[1] < self.c_in:
            pad = np.zeros((tensor.n, self.c_in - features.shape[1]))
            features = np.concatenate([features, pad], axis=1)
        return tensor.with_features(features)

    def __call__(self, tensor: SparseTensor, trace: Trace | None = None) -> np.ndarray:
        if tensor.channels != self.c_in:
            raise ValueError(
                f"expected {self.c_in} input channels, got {tensor.channels}"
            )
        # Kernel maps are shared across same-stride layers within a forward
        # pass (MinkowskiEngine's coordinate-manager behaviour): maps are
        # computed once per downsampling and reused by every submanifold
        # conv at that stride, including decoder stages on skip clouds.
        map_cache: dict = {}
        x = self.stem1(tensor, trace, map_cache)
        x = self.stem2(x, trace, map_cache)
        skips = [x]
        for down, blocks in zip(self.down_convs, self.enc_blocks):
            x = down(x, trace, map_cache)
            for block in blocks:
                x = block(x, trace, map_cache)
            skips.append(x)
        skips.pop()  # deepest level is the current x, not a skip
        for up, blocks in zip(self.up_convs, self.dec_blocks):
            skip = skips.pop()
            x = up(x, skip, trace, map_cache)
            x = x.with_features(concat_channels(x.features, skip.features))
            for block in blocks:
                x = block(x, trace, map_cache)
        return self.head(x.features, trace)


class MinkowskiUNetIndoor(MinkowskiUNet):
    notation = "MinkNet(i)"


class MinkowskiUNetOutdoor(MinkowskiUNet):
    notation = "MinkNet(o)"


def mini_minkunet(n_classes: int = 13, seed: int = 0) -> MinkowskiUNet:
    """Mini-MinkowskiUNet (Fig. 16): shallower and narrower for edge co-design."""
    model = MinkowskiUNet(
        n_classes=n_classes,
        c_in=4,
        enc_channels=(8, 16, 32),
        dec_channels=(32, 16, 16),
        blocks_per_stage=1,
        seed=seed,
    )
    model.notation = "Mini-MinkowskiUNet"
    return model
