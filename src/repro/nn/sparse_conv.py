"""SparseConv layers (MinkowskiNet-style) with trace recording.

A sparse convolution (paper Table 1, SparseConv-based row) is:

1. output-cloud construction by coordinate quantization (stride > 1 only),
2. kernel mapping — find maps ``(p, q, w_delta)``,
3. per-weight gather -> matmul -> scatter-accumulate of features.

:class:`SparseConv` implements the encoder ops (submanifold when stride=1,
strided downsampling otherwise); :class:`SparseConvTranspose` the generative
upsampling of U-Net decoders, whose maps are the transpose relation
``quantize(q) == p`` expressed through explicit offsets.
"""

from __future__ import annotations

import numpy as np

from ..mapping.kernel_map import kernel_map_mergesort
from ..mapping.maps import MapTable
from ..pointcloud.cloud import SparseTensor
from ..pointcloud.coords import kernel_offsets
from . import functional as F
from .ghost import GhostFeatures, is_ghost
from .trace import LayerKind, LayerSpec, Trace

__all__ = ["SparseConv", "SparseConvTranspose", "sparse_conv_apply"]


def sparse_conv_apply(
    in_features: np.ndarray,
    weights: np.ndarray,
    maps: MapTable,
    n_out: int,
) -> np.ndarray:
    """Execute the matmul portion of a sparse conv given maps.

    ``weights`` has shape ``(kernel_volume, c_in, c_out)``.  Iterates the
    "gather by weight" groups (paper Fig. 4) and scatter-accumulates partial
    sums — the functional reference both for PointAcc's fetch-on-demand flow
    and the GPU's gather-matmul-scatter flow (identical arithmetic).
    """
    if weights.ndim != 3:
        raise ValueError(f"weights must be (K, c_in, c_out), got {weights.shape}")
    if weights.shape[0] < maps.kernel_volume:
        raise ValueError(
            f"{weights.shape[0]} weight slices < kernel volume {maps.kernel_volume}"
        )
    c_out = weights.shape[2]
    if is_ghost(in_features):
        # Geometry-only: the maps (already built) are the product; the
        # gather-matmul-scatter would only produce values nothing reads.
        return GhostFeatures(n_out, c_out)
    out = np.zeros((n_out, c_out), dtype=np.float64)
    for w_idx, in_idx, out_idx in maps.per_weight():
        psum = in_features[in_idx] @ weights[w_idx]
        np.add.at(out, out_idx, psum)
    return out


class _SparseConvBase:
    def __init__(
        self,
        c_in: int,
        c_out: int,
        kernel_volume: int,
        rng: np.random.Generator,
        relu: bool,
        bn: bool,
        name: str,
    ) -> None:
        self.c_in = c_in
        self.c_out = c_out
        self.relu = relu
        self.bn = bn
        self.name = name
        scale = float(np.sqrt(2.0 / (c_in * kernel_volume)))
        self.weights = rng.normal(scale=scale, size=(kernel_volume, c_in, c_out))
        if bn:
            self.bn_gamma = rng.normal(loc=1.0, scale=0.05, size=c_out)
            self.bn_beta = rng.normal(scale=0.05, size=c_out)
            self.bn_mean = rng.normal(scale=0.05, size=c_out)
            self.bn_var = np.abs(rng.normal(loc=1.0, scale=0.05, size=c_out))

    def _postprocess(self, out: np.ndarray) -> np.ndarray:
        if is_ghost(out):
            return out  # BN/ReLU are elementwise: shape (and trace) unchanged
        if self.bn:
            out = F.batch_norm(
                out, self.bn_mean, self.bn_var, self.bn_gamma, self.bn_beta
            )
        if self.relu:
            out = F.relu(out)
        return out

    def _record_conv(
        self, trace: Trace | None, maps: MapTable, n_in: int, n_out: int
    ) -> None:
        if trace is None:
            return
        trace.record(
            LayerSpec(
                name=f"{self.name}.gather",
                kind=LayerKind.GATHER,
                n_in=n_in,
                n_out=n_out,
                c_in=self.c_in,
                n_maps=maps.n_maps,
                kernel_volume=maps.kernel_volume,
            )
        )
        trace.record(
            LayerSpec(
                name=self.name,
                kind=LayerKind.SPARSE_CONV,
                n_in=n_in,
                n_out=n_out,
                c_in=self.c_in,
                c_out=self.c_out,
                rows=maps.n_maps,
                n_maps=maps.n_maps,
                kernel_volume=maps.kernel_volume,
                # Carried so the MMU cache model can replay the exact
                # fetch-on-demand request stream (params is non-hashed).
                params={"maps": maps},
            )
        )
        trace.record(
            LayerSpec(
                name=f"{self.name}.scatter",
                kind=LayerKind.SCATTER,
                n_in=n_in,
                n_out=n_out,
                c_out=self.c_out,
                n_maps=maps.n_maps,
                kernel_volume=maps.kernel_volume,
            )
        )


class SparseConv(_SparseConvBase):
    """Submanifold (stride=1) or strided sparse convolution.

    With ``stride == 1`` outputs sit exactly on the input cloud (the
    submanifold constraint: "nonzero points never dilate").  With
    ``stride > 1`` the output cloud is the quantized input cloud and the
    kernel covers ``{0..kernel_size-1}`` input-stride steps per axis.
    """

    def __init__(
        self,
        c_in: int,
        c_out: int,
        kernel_size: int = 3,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        relu: bool = True,
        bn: bool = True,
        name: str = "sparseconv",
        ndim: int = 3,
    ) -> None:
        if stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {stride}")
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.kernel_size = kernel_size
        self.stride = stride
        self.ndim = ndim
        kernel_volume = kernel_size**ndim
        super().__init__(c_in, c_out, kernel_volume, rng, relu, bn, name)

    def build_maps(self, tensor: SparseTensor, out_tensor: SparseTensor) -> MapTable:
        offsets = kernel_offsets(self.kernel_size, self.ndim) * tensor.tensor_stride
        return kernel_map_mergesort(tensor.coords, out_tensor.coords, offsets=offsets)

    def _map_cache_key(
        self, tensor: SparseTensor, out_tensor: SparseTensor
    ) -> tuple:
        # Two convs at the same strides over the same clouds share maps
        # (MinkowskiEngine's coordinate-manager behaviour; the paper computes
        # maps "every time downsampling the point cloud", i.e. once per
        # stride level).  A sparse coordinate fingerprint guards collisions.
        probe = tensor.coords[:: max(1, tensor.n // 7)]
        return (
            "conv",
            self.kernel_size,
            tensor.tensor_stride,
            out_tensor.tensor_stride,
            tensor.n,
            out_tensor.n,
            int(probe.sum()),
        )

    def __call__(
        self,
        tensor: SparseTensor,
        trace: Trace | None = None,
        map_cache: dict | None = None,
    ) -> SparseTensor:
        if tensor.channels != self.c_in:
            raise ValueError(
                f"{self.name}: expected {self.c_in} channels, got {tensor.channels}"
            )
        if self.stride == 1:
            out_tensor = SparseTensor(
                tensor.coords, None, tensor.tensor_stride, _sorted=True
            )
        else:
            out_tensor = tensor.downsample(self.stride)
            if trace is not None:
                trace.record(
                    LayerSpec(
                        name=f"{self.name}.quantize",
                        kind=LayerKind.MAP_QUANT,
                        n_in=tensor.n,
                        n_out=out_tensor.n,
                        rows=tensor.n,
                    )
                )
        cached = False
        maps = None
        key = None
        if map_cache is not None:
            key = self._map_cache_key(tensor, out_tensor)
            maps = map_cache.get(key)
            cached = maps is not None
        if maps is None:
            maps = self.build_maps(tensor, out_tensor)
            if map_cache is not None:
                map_cache[key] = maps
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{self.name}.kmap",
                    kind=LayerKind.MAP_KERNEL,
                    n_in=tensor.n,
                    n_out=out_tensor.n,
                    rows=tensor.n,
                    n_maps=maps.n_maps,
                    kernel_volume=maps.kernel_volume,
                    params={"cached": cached},
                )
            )
        self._record_conv(trace, maps, tensor.n, out_tensor.n)
        out = sparse_conv_apply(tensor.features, self.weights, maps, out_tensor.n)
        return out_tensor.with_features(self._postprocess(out))


class SparseConvTranspose(_SparseConvBase):
    """Generative transposed conv: upsample a coarse tensor onto a fine cloud.

    The decoder half of MinkowskiUNet.  The output cloud is supplied by the
    caller (the encoder skip connection at the target stride); maps satisfy
    ``p = q + delta`` with ``delta`` in ``{-(k-1)..0}^D`` fine-stride steps —
    the transpose of the matching strided conv.
    """

    def __init__(
        self,
        c_in: int,
        c_out: int,
        kernel_size: int = 2,
        rng: np.random.Generator | None = None,
        relu: bool = True,
        bn: bool = True,
        name: str = "sparseconv_t",
        ndim: int = 3,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.kernel_size = kernel_size
        self.ndim = ndim
        kernel_volume = kernel_size**ndim
        super().__init__(c_in, c_out, kernel_volume, rng, relu, bn, name)

    def build_maps(self, tensor: SparseTensor, out_tensor: SparseTensor) -> MapTable:
        if out_tensor.tensor_stride >= tensor.tensor_stride:
            raise ValueError(
                "transpose conv upsamples: output stride must be finer "
                f"({out_tensor.tensor_stride} >= {tensor.tensor_stride})"
            )
        offsets = -kernel_offsets(self.kernel_size, self.ndim) * out_tensor.tensor_stride
        return kernel_map_mergesort(tensor.coords, out_tensor.coords, offsets=offsets)

    def __call__(
        self,
        tensor: SparseTensor,
        out_cloud: SparseTensor,
        trace: Trace | None = None,
        map_cache: dict | None = None,
    ) -> SparseTensor:
        if tensor.channels != self.c_in:
            raise ValueError(
                f"{self.name}: expected {self.c_in} channels, got {tensor.channels}"
            )
        out_tensor = SparseTensor(
            out_cloud.coords, None, out_cloud.tensor_stride, _sorted=True
        )
        cached = False
        maps = None
        key = None
        if map_cache is not None:
            probe = tensor.coords[:: max(1, tensor.n // 7)]
            key = (
                "conv_t",
                self.kernel_size,
                tensor.tensor_stride,
                out_tensor.tensor_stride,
                tensor.n,
                out_tensor.n,
                int(probe.sum()),
            )
            maps = map_cache.get(key)
            cached = maps is not None
        if maps is None:
            maps = self.build_maps(tensor, out_tensor)
            if map_cache is not None:
                map_cache[key] = maps
        if trace is not None:
            trace.record(
                LayerSpec(
                    name=f"{self.name}.kmap",
                    kind=LayerKind.MAP_KERNEL,
                    n_in=tensor.n,
                    n_out=out_tensor.n,
                    rows=tensor.n,
                    n_maps=maps.n_maps,
                    kernel_volume=maps.kernel_volume,
                    params={"cached": cached},
                )
            )
        self._record_conv(trace, maps, tensor.n, out_tensor.n)
        out = sparse_conv_apply(tensor.features, self.weights, maps, out_tensor.n)
        return out_tensor.with_features(self._postprocess(out))
