"""Coordinate math for sparse point clouds.

Point cloud networks operate on integer voxel coordinates (SparseConv-based
models) or floating-point coordinates (PointNet++-based models).  This module
provides the coordinate-level primitives the rest of the library builds on:

* lexicographic ordering / ranking keys (the ordering the Mapping Unit's
  sorting networks compare on),
* coordinate quantization (the SparseConv downsampling rule
  ``q = floor(p / ts) * ts`` from paper Section 2.1.1),
* deduplication of voxelized clouds,
* kernel-offset enumeration for D-dimensional convolution neighborhoods.

All functions are pure and operate on ``(N, D)`` numpy arrays.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = [
    "lexicographic_order",
    "lexicographic_sort",
    "coords_to_keys",
    "keys_to_coords",
    "quantize",
    "quantize_unique",
    "voxelize",
    "unique_coords",
    "kernel_offsets",
    "pairwise_squared_distance",
    "squared_distance_to_set",
    "bounding_box",
]

# Coordinates are packed into a single int64 ranking key so that hardware
# comparators (and numpy sorts) can compare a point with one operation.  The
# paper's Mapping Unit compares concatenated coordinate fields the same way
# (Figure 7: "Key: Coords").  21 bits per axis covers +/- 2^20 voxels.
_KEY_BITS_PER_AXIS = 21
_KEY_AXIS_MASK = (1 << _KEY_BITS_PER_AXIS) - 1
_KEY_OFFSET = 1 << (_KEY_BITS_PER_AXIS - 1)


def _as_coord_array(coords: np.ndarray) -> np.ndarray:
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise ValueError(f"coords must be (N, D), got shape {coords.shape}")
    return coords


def lexicographic_order(coords: np.ndarray) -> np.ndarray:
    """Return the permutation that sorts ``coords`` lexicographically.

    The first axis is the most significant, matching the ordering obtained by
    comparing packed keys from :func:`coords_to_keys`.
    """
    coords = _as_coord_array(coords)
    # np.lexsort sorts by the *last* key first, so reverse the column order.
    return np.lexsort(tuple(coords[:, d] for d in reversed(range(coords.shape[1]))))


def lexicographic_sort(coords: np.ndarray) -> np.ndarray:
    """Return ``coords`` sorted lexicographically (row-wise)."""
    return _as_coord_array(coords)[lexicographic_order(coords)]


def coords_to_keys(coords: np.ndarray) -> np.ndarray:
    """Pack integer coordinates into int64 ranking keys.

    Keys preserve lexicographic order: ``key(a) < key(b)`` iff ``a`` precedes
    ``b`` lexicographically.  Raises if a coordinate does not fit in the
    per-axis field.
    """
    coords = _as_coord_array(coords).astype(np.int64)
    ndim = coords.shape[1]
    if ndim * _KEY_BITS_PER_AXIS > 63:
        raise ValueError(f"cannot pack {ndim} axes of {_KEY_BITS_PER_AXIS} bits into int64")
    shifted = coords + _KEY_OFFSET
    if np.any(shifted < 0) or np.any(shifted > _KEY_AXIS_MASK):
        raise ValueError("coordinate out of packable range for ranking key")
    keys = np.zeros(len(coords), dtype=np.int64)
    for d in range(ndim):
        keys = (keys << _KEY_BITS_PER_AXIS) | shifted[:, d]
    return keys


def keys_to_coords(keys: np.ndarray, ndim: int) -> np.ndarray:
    """Invert :func:`coords_to_keys`."""
    keys = np.asarray(keys, dtype=np.int64)
    coords = np.empty((len(keys), ndim), dtype=np.int64)
    for d in reversed(range(ndim)):
        coords[:, d] = (keys & _KEY_AXIS_MASK) - _KEY_OFFSET
        keys = keys >> _KEY_BITS_PER_AXIS
    return coords


def quantize(coords: np.ndarray, tensor_stride: int) -> np.ndarray:
    """Quantize coordinates to a coarser grid: ``floor(p / ts) * ts``.

    This is the SparseConv output-cloud construction rule (paper
    Section 2.1.1): after ``k`` downsamplings the tensor stride is ``2**k``
    and the low ``log2(ts)`` bits of every coordinate are cleared.
    """
    if tensor_stride < 1:
        raise ValueError(f"tensor_stride must be >= 1, got {tensor_stride}")
    coords = _as_coord_array(coords).astype(np.int64)
    return np.floor_divide(coords, tensor_stride) * tensor_stride


def unique_coords(coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate coordinates, keeping lexicographic order.

    Returns ``(unique, inverse)`` where ``unique[inverse[i]] == coords[i]``.
    """
    coords = _as_coord_array(coords).astype(np.int64)
    keys = coords_to_keys(coords)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    return keys_to_coords(unique_keys, coords.shape[1]), inverse


def quantize_unique(coords: np.ndarray, tensor_stride: int) -> tuple[np.ndarray, np.ndarray]:
    """Quantize then deduplicate: the full downsampled output cloud.

    Returns ``(out_coords, inverse)`` with ``out_coords`` sorted
    lexicographically and ``inverse`` mapping each input point to its output
    voxel.
    """
    return unique_coords(quantize(coords, tensor_stride))


def voxelize(
    points: np.ndarray, voxel_size: float
) -> tuple[np.ndarray, np.ndarray]:
    """Map continuous points to integer voxel coordinates.

    Returns ``(voxel_coords, inverse)`` where ``voxel_coords`` are the unique
    occupied voxels (sorted) and ``inverse`` maps each point to its voxel.

    Like the mapping ops, voxelization is a pure function of its inputs and
    consults the active map cache (:mod:`repro.mapping.hooks`) when one is
    installed: it is the first thing every SparseConv frame pays, and on
    overlapping frame streams the tile front decomposes it so unchanged
    regions reuse their voxel coordinates (see
    :class:`repro.stream.incremental.TileMapCache`).  With no cache active
    — every direct caller outside the engine — the behaviour is exactly
    the plain computation.
    """
    if voxel_size <= 0:
        raise ValueError(f"voxel_size must be positive, got {voxel_size}")
    points = np.asarray(points, dtype=np.float64)
    # Deferred import: repro.mapping imports this module at package load.
    from ..mapping import hooks

    cache = hooks.active_cache()
    if cache is not None:
        return cache.memoize(
            "voxelize",
            (points,),
            {"voxel_size": float(voxel_size)},
            lambda: _voxelize_compute(points, voxel_size),
        )
    return _voxelize_compute(points, voxel_size)


def _voxelize_compute(
    points: np.ndarray, voxel_size: float
) -> tuple[np.ndarray, np.ndarray]:
    """The reference voxelization: quantize to the grid, deduplicate."""
    grid = np.floor(points / voxel_size).astype(np.int64)
    return unique_coords(grid)


def kernel_offsets(kernel_size: int, ndim: int = 3) -> np.ndarray:
    """Enumerate the weight offsets of a D-dim convolution kernel.

    For ``kernel_size=3, ndim=3`` this is the 27 offsets in ``{-1,0,1}^3``
    (paper Section 2.1.2), ordered lexicographically so offset index equals
    weight index.
    """
    if kernel_size < 1:
        raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
    half = (kernel_size - 1) // 2
    lo = -half
    hi = kernel_size - half - 1
    axes = [range(lo, hi + 1)] * ndim
    return np.array(list(itertools.product(*axes)), dtype=np.int64)


def pairwise_squared_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between two point sets, shape (|a|, |b|)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped for float error.
    sq = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    return np.maximum(sq, 0.0)


def squared_distance_to_set(points: np.ndarray, point_set: np.ndarray) -> np.ndarray:
    """For each point, the squared distance to its nearest member of a set."""
    return pairwise_squared_distance(points, point_set).min(axis=1)


def bounding_box(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Axis-aligned bounding box ``(min, max)`` of a point set."""
    points = np.asarray(points)
    if len(points) == 0:
        raise ValueError("bounding_box of empty point set")
    return points.min(axis=0), points.max(axis=0)
