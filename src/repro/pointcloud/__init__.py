"""Point-cloud substrate: containers, coordinate math, synthetic datasets."""

from .cloud import PointCloud, SparseTensor
from .coords import (
    bounding_box,
    coords_to_keys,
    kernel_offsets,
    keys_to_coords,
    lexicographic_order,
    lexicographic_sort,
    pairwise_squared_distance,
    quantize,
    quantize_unique,
    squared_distance_to_set,
    unique_coords,
    voxelize,
)
from .datasets import DATASETS, DatasetSpec, generate_sample, get_dataset

__all__ = [
    "PointCloud",
    "SparseTensor",
    "bounding_box",
    "coords_to_keys",
    "kernel_offsets",
    "keys_to_coords",
    "lexicographic_order",
    "lexicographic_sort",
    "pairwise_squared_distance",
    "quantize",
    "quantize_unique",
    "squared_distance_to_set",
    "unique_coords",
    "voxelize",
    "DATASETS",
    "DatasetSpec",
    "generate_sample",
    "get_dataset",
]
