"""Synthetic point-cloud generators standing in for the paper's datasets.

The paper evaluates on ModelNet40, ShapeNet, KITTI, S3DIS and SemanticKITTI.
Those datasets are not redistributable here, so each one is replaced by a
seeded generator producing clouds with the same *structural* properties:

* object datasets — points sampled on the surfaces of composed primitives
  (boxes / spheres / cylinders), normalized to the unit sphere, ~1-2k points;
* indoor scenes — a room shell (floor, ceiling, walls) populated with
  box-shaped furniture, several meters in extent;
* outdoor scenes — a simulated spinning multi-beam LiDAR raycast against a
  ground plane plus building/vehicle boxes, which reproduces the ring
  structure and range-dependent sparsity of real scans.

Everything that matters to PointAcc — density (Fig. 5), mapping-op workload,
cache behaviour — is a function of coordinate geometry, which these
generators reproduce.  All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_box_surface",
    "sample_sphere_surface",
    "sample_cylinder_surface",
    "make_object_cloud",
    "make_indoor_scene",
    "lidar_scan",
    "make_outdoor_scene",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Surface samplers for primitives
# ---------------------------------------------------------------------------

def sample_box_surface(
    n: int, size: np.ndarray, center: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` points uniformly on the surface of an axis-aligned box."""
    size = np.asarray(size, dtype=np.float64)
    center = np.asarray(center, dtype=np.float64)
    # Choose faces proportionally to their area: faces come in pairs normal
    # to each axis; the pair normal to axis d has area size[e]*size[f].
    areas = np.array(
        [size[1] * size[2], size[0] * size[2], size[0] * size[1]], dtype=np.float64
    )
    face_probs = np.repeat(areas, 2)
    face_probs = face_probs / face_probs.sum()
    faces = rng.choice(6, size=n, p=face_probs)
    pts = (rng.random((n, 3)) - 0.5) * size
    axis = faces // 2
    sign = np.where(faces % 2 == 0, 0.5, -0.5)
    pts[np.arange(n), axis] = sign * size[axis]
    return pts + center


def sample_sphere_surface(
    n: int, radius: float, center: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` points uniformly on a sphere surface."""
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return v * radius + np.asarray(center, dtype=np.float64)


def sample_cylinder_surface(
    n: int, radius: float, height: float, center: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` points on a vertical cylinder (side wall plus caps)."""
    side_area = 2 * np.pi * radius * height
    cap_area = np.pi * radius**2
    p_side = side_area / (side_area + 2 * cap_area)
    on_side = rng.random(n) < p_side
    theta = rng.random(n) * 2 * np.pi
    pts = np.empty((n, 3), dtype=np.float64)
    pts[:, 0] = np.cos(theta) * radius
    pts[:, 1] = np.sin(theta) * radius
    pts[:, 2] = (rng.random(n) - 0.5) * height
    n_cap = int((~on_side).sum())
    if n_cap:
        r = radius * np.sqrt(rng.random(n_cap))
        cap_theta = rng.random(n_cap) * 2 * np.pi
        cap_sign = np.where(rng.random(n_cap) < 0.5, 0.5, -0.5)
        cap = np.column_stack(
            [r * np.cos(cap_theta), r * np.sin(cap_theta), cap_sign * height]
        )
        pts[~on_side] = cap
    return pts + np.asarray(center, dtype=np.float64)


# ---------------------------------------------------------------------------
# Dataset-level generators
# ---------------------------------------------------------------------------

def make_object_cloud(
    n_points: int = 1024, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """A ModelNet40/ShapeNet-like object: 2-5 primitives, unit-sphere normalized."""
    rng = _rng(seed)
    n_parts = int(rng.integers(2, 6))
    weights = rng.random(n_parts) + 0.3
    counts = np.maximum(1, (weights / weights.sum() * n_points).astype(int))
    # Adjust the largest part so counts sum exactly to n_points.
    counts[np.argmax(counts)] += n_points - counts.sum()
    parts = []
    for count in counts:
        kind = rng.integers(0, 3)
        center = rng.normal(scale=0.35, size=3)
        if kind == 0:
            parts.append(
                sample_box_surface(count, rng.random(3) * 0.8 + 0.2, center, rng)
            )
        elif kind == 1:
            parts.append(
                sample_sphere_surface(count, rng.random() * 0.4 + 0.1, center, rng)
            )
        else:
            parts.append(
                sample_cylinder_surface(
                    count, rng.random() * 0.3 + 0.05, rng.random() * 0.8 + 0.2,
                    center, rng,
                )
            )
    points = np.concatenate(parts, axis=0)
    points -= points.mean(axis=0)
    scale = np.linalg.norm(points, axis=1).max()
    if scale > 0:
        points /= scale
    return points


def make_indoor_scene(
    n_points: int = 20_000,
    room_size: tuple[float, float, float] = (8.0, 6.0, 3.0),
    n_furniture: int = 10,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """An S3DIS-like indoor room scan in meters.

    Roughly 60% of points fall on the room shell (floor/ceiling/walls) and
    40% on furniture boxes, mimicking indoor RGB-D reconstructions.
    """
    rng = _rng(seed)
    room = np.asarray(room_size, dtype=np.float64)
    n_shell = int(n_points * 0.6)
    n_furn_pts = n_points - n_shell
    shell = sample_box_surface(n_shell, room, room / 2, rng)
    parts = [shell]
    if n_furniture > 0 and n_furn_pts > 0:
        counts = np.full(n_furniture, n_furn_pts // n_furniture)
        counts[: n_furn_pts % n_furniture] += 1
        for count in counts:
            if count == 0:
                continue
            size = rng.random(3) * np.array([1.5, 1.5, 1.2]) + 0.2
            center = np.array(
                [
                    rng.random() * (room[0] - size[0]) + size[0] / 2,
                    rng.random() * (room[1] - size[1]) + size[1] / 2,
                    size[2] / 2,
                ]
            )
            parts.append(sample_box_surface(count, size, center, rng))
    points = np.concatenate(parts, axis=0)
    # Sensor noise typical of indoor reconstruction (~5 mm).
    points += rng.normal(scale=0.005, size=points.shape)
    return points


# ---------------------------------------------------------------------------
# LiDAR simulation for outdoor scenes
# ---------------------------------------------------------------------------

def _ray_ground_range(elevation: float, sensor_height: float, max_range: float) -> float:
    """Range at which a downward ray hits the ground plane, or inf."""
    if elevation >= 0:
        return np.inf
    rng_to_ground = sensor_height / np.sin(-elevation)
    return rng_to_ground if rng_to_ground <= max_range else np.inf


def lidar_scan(
    boxes: list[tuple[np.ndarray, np.ndarray]],
    n_beams: int = 64,
    n_azimuth: int = 1024,
    sensor_height: float = 1.73,
    max_range: float = 80.0,
    vertical_fov: tuple[float, float] = (-24.8, 2.0),
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Simulate one revolution of a spinning multi-beam LiDAR.

    ``boxes`` is a list of axis-aligned obstacles ``(min_corner, max_corner)``
    in sensor-centered coordinates (ground at z = -sensor_height).  Rays are
    cast per (beam, azimuth) pair; the closest hit among ground and boxes
    produces a return.  This reproduces the ring structure and the
    1/range^2 density falloff of KITTI-style scans.
    """
    rng = _rng(seed)
    elevations = np.deg2rad(np.linspace(vertical_fov[0], vertical_fov[1], n_beams))
    azimuths = np.linspace(0, 2 * np.pi, n_azimuth, endpoint=False)
    az_grid, el_grid = np.meshgrid(azimuths, elevations)
    az = az_grid.ravel()
    el = el_grid.ravel()
    dirs = np.column_stack(
        [np.cos(el) * np.cos(az), np.cos(el) * np.sin(az), np.sin(el)]
    )
    n_rays = len(dirs)
    best_t = np.full(n_rays, np.inf)
    # Ground plane at z = -sensor_height.
    descending = dirs[:, 2] < -1e-9
    t_ground = np.full(n_rays, np.inf)
    t_ground[descending] = -sensor_height / dirs[descending, 2]
    best_t = np.minimum(best_t, np.where(t_ground > 0, t_ground, np.inf))
    # Slab-method ray/AABB intersection, vectorized over rays per box.
    for lo, hi in boxes:
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / dirs
            t0 = lo[None, :] * inv
            t1 = hi[None, :] * inv
        t_near = np.nanmax(np.minimum(t0, t1), axis=1)
        t_far = np.nanmin(np.maximum(t0, t1), axis=1)
        hit = (t_far >= t_near) & (t_far > 0)
        t_hit = np.where(t_near > 0, t_near, t_far)
        best_t = np.where(hit & (t_hit < best_t), t_hit, best_t)
    valid = np.isfinite(best_t) & (best_t <= max_range)
    points = dirs[valid] * best_t[valid, None]
    # Range noise (~2 cm) typical of automotive LiDAR.
    points += rng.normal(scale=0.02, size=points.shape)
    return points


def make_outdoor_scene(
    n_beams: int = 64,
    n_azimuth: int = 1024,
    n_buildings: int = 12,
    n_vehicles: int = 16,
    max_range: float = 80.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """A SemanticKITTI-like street scene scanned by a simulated LiDAR."""
    rng = _rng(seed)
    boxes: list[tuple[np.ndarray, np.ndarray]] = []
    for _ in range(n_buildings):
        side = rng.choice([-1.0, 1.0])
        x = rng.uniform(-60, 60)
        y = side * rng.uniform(8, 25)
        w, d, h = rng.uniform(6, 20), rng.uniform(4, 12), rng.uniform(4, 15)
        lo = np.array([x, y - d / 2, -1.73])
        hi = np.array([x + w, y + d / 2, -1.73 + h])
        boxes.append((lo, hi))
    for _ in range(n_vehicles):
        x = rng.uniform(-50, 50)
        y = rng.uniform(-7, 7)
        w, d, h = rng.uniform(3.5, 5.0), rng.uniform(1.6, 2.0), rng.uniform(1.4, 1.8)
        lo = np.array([x, y - d / 2, -1.73])
        hi = np.array([x + w, y + d / 2, -1.73 + h])
        boxes.append((lo, hi))
    return lidar_scan(
        boxes,
        n_beams=n_beams,
        n_azimuth=n_azimuth,
        max_range=max_range,
        seed=rng,
    )
