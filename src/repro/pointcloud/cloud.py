"""Point cloud containers.

Two containers cover the two families of point-cloud networks in the paper
(Table 1):

* :class:`PointCloud` — continuous ``float`` coordinates plus per-point
  features; the input representation for PointNet++-based models.
* :class:`SparseTensor` — integer voxel coordinates at a *tensor stride*
  plus per-point features; the representation SparseConv-based models
  (MinkowskiNet et al.) compute on.

Both are thin, immutable-by-convention wrappers over numpy arrays: the point
count ``n``, feature width ``channels`` and coordinate dimension ``ndim`` are
the quantities every cost model downstream consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from . import coords as coord_ops

__all__ = ["PointCloud", "SparseTensor"]


def _is_ghost(features) -> bool:
    """Geometry-only stand-in (see :mod:`repro.nn.ghost`), duck-typed so the
    container layer needs no import from the model layer."""
    return type(features).__name__ == "GhostFeatures"


def _check_points_features(points: np.ndarray, features: np.ndarray | None) -> None:
    if points.ndim != 2:
        raise ValueError(f"points must be (N, D), got {points.shape}")
    if features is not None:
        if features.ndim != 2:
            raise ValueError(f"features must be (N, C), got {features.shape}")
        if len(features) != len(points):
            raise ValueError(
                f"points/features length mismatch: {len(points)} vs {len(features)}"
            )


@dataclass
class PointCloud:
    """A set of points ``{(p_k, f_k)}`` with continuous coordinates.

    ``features`` may be ``None`` for geometry-only clouds (mapping operations
    take only coordinates as input — paper Section 2.1).
    """

    points: np.ndarray
    features: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.features is not None:
            self.features = np.asarray(self.features, dtype=np.float64)
        _check_points_features(self.points, self.features)

    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def ndim(self) -> int:
        return self.points.shape[1]

    @property
    def channels(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    def with_features(self, features: np.ndarray | None) -> "PointCloud":
        return PointCloud(self.points, features)

    def select(self, indices: np.ndarray) -> "PointCloud":
        """Subset of the cloud at the given point indices."""
        indices = np.asarray(indices)
        feats = None if self.features is None else self.features[indices]
        return PointCloud(self.points[indices], feats)

    def voxelize(self, voxel_size: float) -> "SparseTensor":
        """Quantize into a stride-1 sparse tensor, averaging features per voxel."""
        voxels, inverse = coord_ops.voxelize(self.points, voxel_size)
        if self.features is None:
            feats = None
        else:
            feats = np.zeros((len(voxels), self.channels), dtype=np.float64)
            np.add.at(feats, inverse, self.features)
            counts = np.bincount(inverse, minlength=len(voxels)).astype(np.float64)
            feats /= counts[:, None]
        # unique_coords output is sorted and duplicate-free by construction.
        return SparseTensor(voxels, feats, tensor_stride=1, _sorted=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointCloud(n={self.n}, ndim={self.ndim}, channels={self.channels})"


@dataclass
class SparseTensor:
    """A voxelized point cloud: integer coordinates at a tensor stride.

    Invariants: coordinates are unique, lexicographically sorted and
    divisible by ``tensor_stride`` (the SparseConv quantization rule).  The
    constructor enforces sortedness/uniqueness so that downstream merge-sort
    based kernel mapping can rely on them.
    """

    coords: np.ndarray
    features: np.ndarray | None = None
    tensor_stride: int = 1
    _sorted: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.int64)
        if self.features is not None and not _is_ghost(self.features):
            self.features = np.asarray(self.features, dtype=np.float64)
        _check_points_features(self.coords, self.features)
        if self.tensor_stride < 1:
            raise ValueError(f"tensor_stride must be >= 1, got {self.tensor_stride}")
        if np.any(self.coords % self.tensor_stride != 0):
            raise ValueError("coords must be divisible by tensor_stride")
        if not self._sorted:
            keys = coord_ops.coords_to_keys(self.coords)
            if len(keys) > 1 and np.any(np.diff(keys) <= 0):
                order = np.argsort(keys, kind="stable")
                keys = keys[order]
                if np.any(np.diff(keys) == 0):
                    raise ValueError("duplicate coordinates in SparseTensor")
                self.coords = self.coords[order]
                if self.features is not None:
                    self.features = self.features[order]
            self._sorted = True

    @property
    def n(self) -> int:
        return len(self.coords)

    @property
    def ndim(self) -> int:
        return self.coords.shape[1]

    @property
    def channels(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    @property
    def keys(self) -> np.ndarray:
        """Packed lexicographic ranking keys of the coordinates."""
        return coord_ops.coords_to_keys(self.coords)

    def with_features(self, features: np.ndarray | None) -> "SparseTensor":
        return replace(self, features=features)

    def downsample(self, stride_factor: int = 2) -> "SparseTensor":
        """Output-cloud construction by coordinate quantization (Section 2.1.1).

        Returns a geometry-only tensor at ``tensor_stride * stride_factor``;
        feature aggregation is the convolution's job, not the cloud's.
        """
        new_stride = self.tensor_stride * stride_factor
        out_coords, _ = coord_ops.quantize_unique(self.coords, new_stride)
        return SparseTensor(out_coords, None, tensor_stride=new_stride, _sorted=True)

    def to_point_cloud(self) -> PointCloud:
        """View voxel centers as a continuous cloud (for mixed pipelines)."""
        return PointCloud(self.coords.astype(np.float64), self.features)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(n={self.n}, ndim={self.ndim}, "
            f"channels={self.channels}, stride={self.tensor_stride})"
        )
