"""Dataset registry mirroring the paper's evaluation suite (Table 2, Fig. 5).

Each entry describes one dataset used in the paper's evaluation plus how this
reproduction synthesizes a stand-in sample for it.  ``scale`` rescales the
point counts so tests can run on tiny clouds while benchmarks use realistic
sizes; geometry (extent, structure) does not change with scale.

``reference_density`` records the order-of-magnitude input density the paper
reports in Fig. 5 (occupied voxels / total voxels in the bounding grid) so
experiments can check our synthetic stand-ins land in the right band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import synthetic
from .cloud import PointCloud

__all__ = ["DatasetSpec", "DATASETS", "get_dataset", "generate_sample"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + generator for one evaluation dataset."""

    name: str
    scene: str  # "object" | "indoor" | "outdoor"
    application: str
    n_points: int  # typical per-sample point count at scale=1.0
    voxel_size: float  # meters (or unit-sphere fraction) used when voxelized
    reference_density: float  # Fig. 5 order of magnitude
    generator: Callable[[int, int], np.ndarray]  # (n_points, seed) -> points


def _object_gen(n_points: int, seed: int) -> np.ndarray:
    return synthetic.make_object_cloud(n_points=n_points, seed=seed)


def _indoor_gen(n_points: int, seed: int) -> np.ndarray:
    return synthetic.make_indoor_scene(n_points=n_points, seed=seed)


def _outdoor_gen(n_points: int, seed: int) -> np.ndarray:
    # The LiDAR raycaster's yield is set by the beam/azimuth grid; pick an
    # azimuth resolution that lands near the requested point count for a
    # 64-beam scanner, then subsample exactly.
    n_azimuth = max(64, int(n_points / 64 * 1.6))
    points = synthetic.make_outdoor_scene(
        n_beams=64, n_azimuth=n_azimuth, seed=seed
    )
    if len(points) > n_points:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(points), size=n_points, replace=False)
        points = points[idx]
    return points


DATASETS: dict[str, DatasetSpec] = {
    "modelnet40": DatasetSpec(
        name="modelnet40",
        scene="object",
        application="classification",
        n_points=1024,
        voxel_size=0.05,
        reference_density=1e-2,
        generator=_object_gen,
    ),
    "shapenet": DatasetSpec(
        name="shapenet",
        scene="object",
        application="part segmentation",
        n_points=2048,
        voxel_size=0.05,
        reference_density=1e-2,
        generator=_object_gen,
    ),
    "kitti": DatasetSpec(
        name="kitti",
        scene="outdoor",
        application="detection",
        n_points=16384,
        voxel_size=0.2,  # PointPillars-class detection grid
        reference_density=1e-4,
        generator=_outdoor_gen,
    ),
    "s3dis": DatasetSpec(
        name="s3dis",
        scene="indoor",
        application="segmentation",
        n_points=40960,
        voxel_size=0.05,
        reference_density=1e-2,
        generator=_indoor_gen,
    ),
    "semantickitti": DatasetSpec(
        name="semantickitti",
        scene="outdoor",
        application="segmentation",
        n_points=65536,
        voxel_size=0.1,
        reference_density=1e-4,
        generator=_outdoor_gen,
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key]


def generate_sample(
    name: str, seed: int = 0, scale: float = 1.0, n_points: int | None = None
) -> PointCloud:
    """Generate one synthetic sample of the named dataset.

    ``scale`` multiplies the dataset's nominal point count (use small values
    in unit tests); ``n_points`` overrides the count outright.
    """
    spec = get_dataset(name)
    if n_points is None:
        n_points = max(16, int(spec.n_points * scale))
    points = spec.generator(n_points, seed)
    return PointCloud(points)
