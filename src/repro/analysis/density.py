"""Dataset density analysis (paper Fig. 5 left).

Density = occupied voxels / total voxels in the bounding grid at the
dataset's working voxel resolution.  ImageNet images are 100% dense at the
input; point clouds land between 1e-2 (objects/indoor) and under 1e-4
(outdoor LiDAR) — the four-orders-of-magnitude gap that motivates the
whole architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pointcloud.coords import voxelize
from ..pointcloud.datasets import generate_sample, get_dataset

__all__ = ["DensityResult", "cloud_density", "dataset_density", "IMAGENET_DENSITY"]

IMAGENET_DENSITY = 1.0  # dense images; ~50% after ReLU (paper Section 3)


@dataclass(frozen=True)
class DensityResult:
    dataset: str
    n_points: int
    n_voxels: int
    grid_cells: int
    density: float


def cloud_density(points: np.ndarray, voxel_size: float) -> DensityResult:
    """Occupancy of the bounding voxel grid of one cloud."""
    voxels, _ = voxelize(points, voxel_size)
    lo = voxels.min(axis=0)
    hi = voxels.max(axis=0)
    extent = np.maximum(hi - lo + 1, 1)
    grid_cells = int(np.prod(extent.astype(np.float64)))
    return DensityResult(
        dataset="",
        n_points=len(points),
        n_voxels=len(voxels),
        grid_cells=grid_cells,
        density=len(voxels) / grid_cells,
    )


def dataset_density(
    name: str, seed: int = 0, scale: float = 1.0
) -> DensityResult:
    """Density of one synthetic sample of a registry dataset."""
    spec = get_dataset(name)
    cloud = generate_sample(name, seed=seed, scale=scale)
    result = cloud_density(cloud.points, spec.voxel_size)
    return DensityResult(
        dataset=name,
        n_points=result.n_points,
        n_voxels=result.n_voxels,
        grid_cells=result.grid_cells,
        density=result.density,
    )
