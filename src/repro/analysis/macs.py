"""Workload analysis: #MACs and feature footprint per point (Fig. 2, Fig. 5).

Point-cloud numbers are measured from our traces; the 2D-CNN comparison
points (ResNet50, MobileNetV2, SqueezeSeg, SalsaNext) are published
constants — those models are outside the point-cloud system and serve only
as the reference line in the motivation figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.models.registry import build_trace

__all__ = ["WorkloadStats", "benchmark_workload", "CNN_REFERENCES", "CNN_2D_SEG"]


@dataclass(frozen=True)
class WorkloadStats:
    name: str
    n_points: int
    total_macs: int
    macs_per_point: float
    feature_bytes_per_point: float


@dataclass(frozen=True)
class CNNReference:
    """Published numbers for a 2D CNN comparison point."""

    name: str
    macs_per_point: float  # MACs per input pixel
    feature_bytes_per_point: float
    total_gmacs: float
    accuracy: float  # top-1 (cls) or mIoU (seg)
    params_m: float = 0.0


# ImageNet CNNs (224x224 = 50176 input pixels).
CNN_REFERENCES = (
    CNNReference("MobileNetV2", macs_per_point=6.0e3,
                 feature_bytes_per_point=96.0, total_gmacs=0.30,
                 accuracy=71.8, params_m=3.5),
    CNNReference("ResNet50", macs_per_point=8.2e4,
                 feature_bytes_per_point=392.0, total_gmacs=4.1,
                 accuracy=76.1, params_m=25.6),
)

# 2D projection-based LiDAR segmentation (Fig. 2 left cluster):
# accuracy = SemanticKITTI mIoU, MACs on a 64x2048 range image.
CNN_2D_SEG = (
    CNNReference("SqueezeSeg", macs_per_point=1.0e5,
                 feature_bytes_per_point=256.0, total_gmacs=13.0,
                 accuracy=29.5, params_m=1.0),
    CNNReference("SalsaNext", macs_per_point=4.7e5,
                 feature_bytes_per_point=512.0, total_gmacs=62.0,
                 accuracy=59.5, params_m=6.7),
)


def benchmark_workload(
    notation: str, scale: float = 1.0, seed: int = 0,
    bytes_per_element: int = 4,
) -> WorkloadStats:
    """Measure MACs/point and peak feature bytes/point from a trace."""
    trace = build_trace(notation, scale=scale, seed=seed)
    n = max(trace.input_points, 1)
    return WorkloadStats(
        name=notation,
        n_points=n,
        total_macs=trace.total_macs,
        macs_per_point=trace.total_macs / n,
        feature_bytes_per_point=trace.max_feature_bytes_per_point(
            bytes_per_element
        ),
    )
