"""Workload and dataset analysis (paper Fig. 2 and Fig. 5)."""

from .density import IMAGENET_DENSITY, DensityResult, cloud_density, dataset_density
from .macs import CNN_2D_SEG, CNN_REFERENCES, WorkloadStats, benchmark_workload

__all__ = [
    "IMAGENET_DENSITY",
    "DensityResult",
    "cloud_density",
    "dataset_density",
    "CNN_2D_SEG",
    "CNN_REFERENCES",
    "WorkloadStats",
    "benchmark_workload",
]
