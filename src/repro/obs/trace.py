"""Phase-attributed tracing: nested spans with monotonic timings.

The tracer follows the module-level context pattern of
``repro.mapping.hooks``: ``use_tracer(tracer)`` installs a process-wide
active tracer, and every instrumentation site calls the module function
``span("name", **attrs)``.  When no tracer is installed ``span`` returns
a shared no-op context manager, so the disabled cost is one global read
and one function call per site — no allocation, no clock read.

Spans are plain picklable objects so worker processes can ship their
span trees back with ``SimResult`` and the dispatching side can
re-parent them under its own dispatch span (attributing the residual —
serialize / pipe / deserialize — to an explicit ``ipc`` child).

Span stacks are thread-local: the engine's overlap mode builds traces
in a side thread, and those spans must not interleave with the main
thread's stack.  A side-thread root span is simply a new root; callers
that want it attached under a specific parent use ``adopt``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "use_tracer",
]


class Span:
    """One timed phase.  Plain attributes, picklable, cheap."""

    __slots__ = ("name", "start", "duration", "attrs", "counters", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start = 0.0          # perf_counter seconds (process-local epoch)
        self.duration = 0.0       # seconds
        self.attrs: Dict[str, Any] = attrs or {}
        self.counters: Dict[str, float] = {}
        self.children: List[Span] = []

    def count(self, key: str, value: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + value

    def child_seconds(self) -> float:
        return sum(c.duration for c in self.children)

    def self_seconds(self) -> float:
        return max(0.0, self.duration - self.child_seconds())

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "dur_ms": self.duration * 1e3,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.counters:
            out["counters"] = self.counters
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"children={len(self.children)})")


class _NullSpan:
    """Shared no-op returned by ``span()`` when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def count(self, key: str, value: float = 1.0) -> None:
        return None

    # Mirror the Span surface that instrumentation sites touch so call
    # sites never need an enabled-check of their own.
    attrs: Dict[str, Any] = {}
    counters: Dict[str, float] = {}
    children: List["Span"] = []
    duration = 0.0


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; thread-local stacks, shared root list."""

    def __init__(self, recorder: Optional["object"] = None):
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []
        self.recorder = recorder  # optional FlightRecorder

    # -- stack plumbing -------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        node = Span(name, attrs or None)
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self.roots.append(node)
        stack.append(node)
        node.start = time.perf_counter()
        try:
            yield node
        finally:
            node.duration = time.perf_counter() - node.start
            stack.pop()

    @contextmanager
    def detached(self, name: str, **attrs: Any) -> Iterator[Span]:
        """A span pushed on this thread's stack but attached to *nothing*.

        For work that runs on a side thread (the engine's overlap-mode
        trace builder) whose span must land under a parent on another
        thread: the caller gets the finished span back and attaches it
        where it belongs (``parent.children.append(span)``).
        """
        node = Span(name, attrs or None)
        stack = self._stack()
        stack.append(node)
        node.start = time.perf_counter()
        try:
            yield node
        finally:
            node.duration = time.perf_counter() - node.start
            stack.pop()

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def attach(self, node: Span) -> None:
        """Attach an externally-built span at the current position."""
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self.roots.append(node)

    def adopt(self, parent: Span, spans: List[Span]) -> None:
        """Attach foreign (e.g. unpickled worker) spans under ``parent``."""
        parent.children.extend(spans)

    # -- export ---------------------------------------------------------
    def drain(self) -> List[Span]:
        with self._lock:
            roots, self.roots = self.roots, []
        return roots

    def dump_jsonl(self, path: str, extra_roots: Optional[List[Span]] = None) -> int:
        """Write one JSON object per root span tree; returns span count."""
        roots = list(self.roots)
        if extra_roots:
            roots = roots + list(extra_roots)
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for root in roots:
                fh.write(json.dumps(root.to_dict(), sort_keys=True) + "\n")
                n += sum(1 for _ in root.walk())
        return n


_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE


def _set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or clear) the process-wide tracer without a with-block.

    Worker processes use this: fork-start children inherit the parent's
    ``_ACTIVE`` and must clear it before installing their own.
    """
    global _ACTIVE
    _ACTIVE = tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = prev


def span(name: str, **attrs: Any):
    """Open a span on the active tracer, or a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)
