"""Trace-file analysis behind ``repro trace-report``.

Reads the JSONL written by ``Tracer.dump_jsonl`` (one root span tree per
line) or by ``FlightRecorder.dump_jsonl`` (records wrapping a ``span``),
and renders a per-phase time breakdown plus the top-N slowest frames.

Self time is what attribution needs: a ``frame`` span *contains* plan /
probe / execute, so summing raw durations per name would double-count
every nesting level.  Each span is charged ``duration - sum(children)``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["load_ledger_events", "load_trace", "phase_breakdown",
           "recompute_causes", "render_report", "slow_frames",
           "splice_outcomes"]


def load_trace(path: str,
               errors: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """Load root span dicts from a trace or flight-recorder JSONL file.

    Malformed lines (truncated writes, non-JSON garbage, non-object
    values) are skipped, not raised: a partially-written trace from a
    crashed run should still yield a report.  Pass ``errors=[]`` to
    receive one ``"line N: reason"`` string per skipped line.
    """
    roots: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                if errors is not None:
                    errors.append(f"line {lineno}: {exc}")
                continue
            if not isinstance(obj, dict):
                if errors is not None:
                    errors.append(f"line {lineno}: not a span object")
                continue
            if "span" in obj and isinstance(obj["span"], dict):
                span = obj["span"]  # flight-recorder record
                span.setdefault("attrs", {}).setdefault(
                    "recorded", obj.get("kind", "slow"))
                roots.append(span)
            else:
                roots.append(obj)
    return roots


def walk(node: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield node
    for child in node.get("children", ()):
        yield from walk(child)


def _self_ms(node: Dict[str, Any]) -> float:
    children = node.get("children", ())
    return max(0.0, node.get("dur_ms", 0.0) -
               sum(c.get("dur_ms", 0.0) for c in children))


def phase_breakdown(roots: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Aggregate per span name: calls, total wall, and self (exclusive) time."""
    phases: Dict[str, Dict[str, float]] = {}
    for root in roots:
        for node in walk(root):
            entry = phases.setdefault(
                node.get("name", "?"),
                {"calls": 0, "total_ms": 0.0, "self_ms": 0.0})
            entry["calls"] += 1
            entry["total_ms"] += node.get("dur_ms", 0.0)
            entry["self_ms"] += _self_ms(node)
    return phases


def slow_frames(roots: List[Dict[str, Any]], top: int = 5) -> List[Dict[str, Any]]:
    """The slowest frame-level spans (frame/round roots, else any root)."""
    frames = [n for root in roots for n in walk(root)
              if n.get("name") in ("frame", "round")]
    if not frames:
        frames = list(roots)
    frames.sort(key=lambda n: n.get("dur_ms", 0.0), reverse=True)
    return frames[:top]


def load_ledger_events(path: str,
                       errors: Optional[List[str]] = None
                       ) -> List[Dict[str, Any]]:
    """Load ledger event dicts from a ``--ledger`` JSONL file (lenient)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                if errors is not None:
                    errors.append(f"line {lineno}: {exc}")
                continue
            if isinstance(obj, dict):
                events.append(obj)
    return events


def _frame_tags(node: Dict[str, Any]) -> List[str]:
    """Ledger frame tags that could belong to a frame/round span.

    Stream frames are tagged ``f{index}``; fleet frames ``{stream}/f{index}``.
    """
    attrs = node.get("attrs", {})
    index = attrs.get("index")
    if index is None:
        return []
    tags = [f"f{index}"]
    stream = attrs.get("stream")
    if stream is not None:
        tags.append(f"{stream}/f{index}")
    return tags


def recompute_causes(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Tiles per recompute/fallback cause, across all tile events."""
    causes: Dict[str, int] = {}
    for ev in events:
        if ev.get("kind") != "tile":
            continue
        cause = ev.get("cause", "?")
        if cause.startswith("recompute") or cause.startswith("fallback"):
            causes[cause] = causes.get(cause, 0) + int(ev.get("n", 1))
    return causes


def splice_outcomes(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Compose outcomes per ``op: outcome``, across all splice events.

    Covers both delta-composition families — kernel maps (spliced /
    full_sort / fallback) and voxelize (spliced / full_merge /
    fallback) — keyed ``"{op}: {outcome}"`` so the two taxonomies stay
    side by side in one table.
    """
    outcomes: Dict[str, int] = {}
    for ev in events:
        if ev.get("kind") != "splice":
            continue
        key = f"{ev.get('op', '?')}: {ev.get('outcome', '?')}"
        outcomes[key] = outcomes.get(key, 0) + 1
    return outcomes


def render_report(path: str, top: int = 5,
                  ledger: Optional[str] = None) -> str:
    errors: List[str] = []
    roots = load_trace(path, errors=errors)
    lines: List[str] = []
    if errors:
        lines.append(f"warning: skipped {len(errors)} malformed line(s) "
                     f"in {path}")
    if not roots:
        lines.append(f"trace {path}: empty (no spans)")
        return "\n".join(lines) + "\n"

    phases = phase_breakdown(roots)
    total_self = sum(p["self_ms"] for p in phases.values()) or 1.0
    lines.append(f"trace {path}: {len(roots)} root span(s), "
                 f"{sum(int(p['calls']) for p in phases.values())} spans")
    lines.append("")
    lines.append(f"{'phase':<18} {'calls':>7} {'total ms':>10} "
                 f"{'self ms':>10} {'self %':>7}")
    for name, p in sorted(phases.items(),
                          key=lambda kv: kv[1]["self_ms"], reverse=True):
        lines.append(f"{name:<18} {int(p['calls']):>7} {p['total_ms']:>10.2f} "
                     f"{p['self_ms']:>10.2f} "
                     f"{100.0 * p['self_ms'] / total_self:>6.1f}%")

    events: List[Dict[str, Any]] = []
    if ledger is not None:
        events = load_ledger_events(ledger)
        # frame tag -> recomputed/fallback tile count, for the slow-frame join
        per_frame: Dict[str, int] = {}
        for ev in events:
            if ev.get("kind") != "tile":
                continue
            cause = ev.get("cause", "")
            if cause.startswith("recompute") or cause.startswith("fallback"):
                tag = str(ev.get("frame"))
                per_frame[tag] = per_frame.get(tag, 0) + int(ev.get("n", 1))
    else:
        per_frame = {}

    slow = slow_frames(roots, top)
    if slow:
        lines.append("")
        lines.append(f"top {len(slow)} slow frame(s):")
        for node in slow:
            attrs = node.get("attrs", {})
            label = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"  {node.get('name')}({label}) "
                         f"{node.get('dur_ms', 0.0):.2f} ms")
            recomputes = sum(per_frame.get(t, 0) for t in _frame_tags(node))
            if recomputes:
                lines.append(f"    recomputed tiles: {recomputes}")
            children = sorted(node.get("children", ()),
                              key=lambda c: c.get("dur_ms", 0.0), reverse=True)
            for child in children[:6]:
                lines.append(f"    {child.get('name'):<16} "
                             f"{child.get('dur_ms', 0.0):>9.2f} ms")

    if ledger is not None:
        causes = recompute_causes(events)
        lines.append("")
        lines.append(f"ledger {ledger}: {len(events)} event(s)")
        if causes:
            lines.append("top recompute causes:")
            total = sum(causes.values()) or 1
            for cause, n in sorted(causes.items(),
                                   key=lambda kv: kv[1], reverse=True):
                lines.append(f"  {cause:<28} {n:>8} tiles "
                             f"{100.0 * n / total:>5.1f}%")
        else:
            lines.append("no recompute events (all tiles reused)")
        splices = splice_outcomes(events)
        if splices:
            lines.append("compose outcomes:")
            total = sum(splices.values()) or 1
            for key, n in sorted(splices.items(),
                                 key=lambda kv: kv[1], reverse=True):
                lines.append(f"  {key:<28} {n:>8} calls "
                             f"{100.0 * n / total:>5.1f}%")
    return "\n".join(lines) + "\n"
