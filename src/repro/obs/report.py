"""Trace-file analysis behind ``repro trace-report``.

Reads the JSONL written by ``Tracer.dump_jsonl`` (one root span tree per
line) or by ``FlightRecorder.dump_jsonl`` (records wrapping a ``span``),
and renders a per-phase time breakdown plus the top-N slowest frames.

Self time is what attribution needs: a ``frame`` span *contains* plan /
probe / execute, so summing raw durations per name would double-count
every nesting level.  Each span is charged ``duration - sum(children)``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List

__all__ = ["load_trace", "phase_breakdown", "render_report", "slow_frames"]


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load root span dicts from a trace or flight-recorder JSONL file."""
    roots: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "span" in obj and isinstance(obj["span"], dict):
                span = obj["span"]  # flight-recorder record
                span.setdefault("attrs", {}).setdefault(
                    "recorded", obj.get("kind", "slow"))
                roots.append(span)
            else:
                roots.append(obj)
    return roots


def walk(node: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield node
    for child in node.get("children", ()):
        yield from walk(child)


def _self_ms(node: Dict[str, Any]) -> float:
    children = node.get("children", ())
    return max(0.0, node.get("dur_ms", 0.0) -
               sum(c.get("dur_ms", 0.0) for c in children))


def phase_breakdown(roots: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Aggregate per span name: calls, total wall, and self (exclusive) time."""
    phases: Dict[str, Dict[str, float]] = {}
    for root in roots:
        for node in walk(root):
            entry = phases.setdefault(
                node.get("name", "?"),
                {"calls": 0, "total_ms": 0.0, "self_ms": 0.0})
            entry["calls"] += 1
            entry["total_ms"] += node.get("dur_ms", 0.0)
            entry["self_ms"] += _self_ms(node)
    return phases


def slow_frames(roots: List[Dict[str, Any]], top: int = 5) -> List[Dict[str, Any]]:
    """The slowest frame-level spans (frame/round roots, else any root)."""
    frames = [n for root in roots for n in walk(root)
              if n.get("name") in ("frame", "round")]
    if not frames:
        frames = list(roots)
    frames.sort(key=lambda n: n.get("dur_ms", 0.0), reverse=True)
    return frames[:top]


def render_report(path: str, top: int = 5) -> str:
    roots = load_trace(path)
    lines: List[str] = []
    if not roots:
        return f"trace {path}: empty\n"

    phases = phase_breakdown(roots)
    total_self = sum(p["self_ms"] for p in phases.values()) or 1.0
    lines.append(f"trace {path}: {len(roots)} root span(s), "
                 f"{sum(int(p['calls']) for p in phases.values())} spans")
    lines.append("")
    lines.append(f"{'phase':<18} {'calls':>7} {'total ms':>10} "
                 f"{'self ms':>10} {'self %':>7}")
    for name, p in sorted(phases.items(),
                          key=lambda kv: kv[1]["self_ms"], reverse=True):
        lines.append(f"{name:<18} {int(p['calls']):>7} {p['total_ms']:>10.2f} "
                     f"{p['self_ms']:>10.2f} "
                     f"{100.0 * p['self_ms'] / total_self:>6.1f}%")

    slow = slow_frames(roots, top)
    if slow:
        lines.append("")
        lines.append(f"top {len(slow)} slow frame(s):")
        for node in slow:
            attrs = node.get("attrs", {})
            label = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"  {node.get('name')}({label}) "
                         f"{node.get('dur_ms', 0.0):.2f} ms")
            children = sorted(node.get("children", ()),
                              key=lambda c: c.get("dur_ms", 0.0), reverse=True)
            for child in children[:6]:
                lines.append(f"    {child.get('name'):<16} "
                             f"{child.get('dur_ms', 0.0):>9.2f} ms")
    return "\n".join(lines) + "\n"
