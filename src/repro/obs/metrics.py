"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Every layer's ``*Stats`` class keeps its own domain-specific tallies (they
are part of the bit-identity surface and stay put), but they all *register
into* one :class:`MetricsRegistry` as snapshot sources, so a single
``snapshot()`` call yields one schema for the whole stack::

    {"counters": {...}, "gauges": {...}, "histograms": {...},
     "sources": {"cluster": {...}, "stream": {...}, ...}}

:meth:`MetricsRegistry.merge` subsumes the worker-pool
``merge_snapshots`` (which now delegates here): numeric leaves sum,
dicts recurse, non-numeric leaves keep the first value, ``*rate`` leaves
are recomputed from the merged counters they derive from, and
equal-length numeric lists (histogram bucket counts) sum element-wise.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

__all__ = ["Histogram", "MetricsRegistry", "current_registry",
           "merge_snapshots", "use_registry"]


def merge_snapshots(snapshots) -> dict:
    """Merge per-worker/per-layer stats snapshots into one view.

    Numeric leaves sum, nested dicts merge recursively, and non-numeric
    leaves (``persistent`` flags, mode strings) keep the first value.
    Ratio keys cannot be summed; every ``*rate`` leaf is recomputed from
    the merged counters its stats class derives it from
    (``hits``/``lookups``, ``tile_hits``/``tile_lookups``,
    ``cross_hits``/``lookups``) and dropped when those are absent.
    Equal-length lists of numbers (histogram bucket counts) sum
    element-wise; mismatched lists keep the first value.
    """
    snapshots = [s for s in snapshots if s]
    if not snapshots:
        return {}

    def numeric_list(value) -> bool:
        return (isinstance(value, list) and
                all(isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in value))

    def merge_into(out: dict, src: dict) -> None:
        for key, value in src.items():
            if isinstance(value, dict):
                merge_into(out.setdefault(key, {}), value)
            elif numeric_list(value):
                have = out.get(key)
                if have is None:
                    out[key] = list(value)
                elif numeric_list(have) and len(have) == len(value):
                    out[key] = [a + b for a, b in zip(have, value)]
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                out.setdefault(key, value)
            elif key.endswith("rate"):
                out[key] = None  # recomputed below
            else:
                out[key] = out.get(key, 0) + value

    def fix_rates(node: dict) -> None:
        for key, value in list(node.items()):
            if isinstance(value, dict):
                fix_rates(node[key])
        lookups = node.get("lookups", 0)
        if "hit_rate" in node:
            node["hit_rate"] = node.get("hits", 0) / lookups if lookups else 0.0
        if "cross_hit_rate" in node:
            node["cross_hit_rate"] = (
                node.get("cross_hits", 0) / lookups if lookups else 0.0
            )
        if "tile_hit_rate" in node:
            tile_lookups = node.get("tile_lookups", 0)
            node["tile_hit_rate"] = (
                node.get("tile_hits", 0) / tile_lookups if tile_lookups else 0.0
            )
        for key, value in list(node.items()):
            if value is None and key.endswith("rate"):
                del node[key]  # no counters to recompute it from

    merged: dict = {}
    for snapshot in snapshots:
        merge_into(merged, snapshot)
    fix_rates(merged)
    return merged


# Default latency-ish bucket upper bounds, in milliseconds.
DEFAULT_BUCKETS_MS = (0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000)


class Histogram:
    """Fixed-bucket histogram: O(log buckets) observe, mergeable snapshot."""

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS_MS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class MetricsRegistry:
    """One registry per process; layers register snapshot sources into it."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], dict]] = {}

    # -- primitive instruments ------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS_MS) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(buckets)
        return hist

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- snapshot sources ------------------------------------------------
    def register(self, name: str, supplier: Callable[[], dict]) -> None:
        """Register a layer's snapshot supplier (e.g. ``stats().snapshot``).

        Suppliers are pulled lazily at :meth:`snapshot` time so the
        registry always reflects current tallies without the stats
        classes pushing on every increment.
        """
        self._sources[name] = supplier

    def ingest(self, name: str, payload: dict) -> None:
        """Merge a static nested snapshot under ``sources[name]``."""
        existing = self._sources.get(name)
        if existing is not None and getattr(existing, "_static", None) is not None:
            payload = merge_snapshots([existing._static, payload])
        supplier = lambda: payload  # noqa: E731
        supplier._static = payload  # type: ignore[attr-defined]
        self._sources[name] = supplier

    # -- export ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        sources = {}
        for name, supplier in self._sources.items():
            try:
                sources[name] = supplier()
            except Exception:
                sources[name] = {}
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.snapshot() for name, hist in self._histograms.items()
            },
            "sources": sources,
        }

    @staticmethod
    def merge(snapshots: List[dict]) -> dict:
        """Merge snapshots from several registries/workers (see module doc)."""
        return merge_snapshots(snapshots)


_ACTIVE: Optional[MetricsRegistry] = None


def current_registry() -> Optional[MetricsRegistry]:
    return _ACTIVE


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the process-wide active registry (nests).

    Lets session/cluster handlers :meth:`MetricsRegistry.ingest` their
    ``summary()`` payloads into whatever registry ``--metrics`` opened,
    without threading the registry through every constructor.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
