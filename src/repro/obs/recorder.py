"""Flight recorder: bounded retention of the span trees that matter.

Serving runs produce one span tree per frame; keeping them all would be
an unbounded memory leak on a long drive.  The recorder keeps exactly
two bounded sets — the K slowest frames (a min-heap keyed on latency)
and a ring buffer of the most recent deadline-missed frames — and dumps
full trees as JSONL on demand, one JSON object per record::

    {"kind": "slow"|"missed", "frame": ..., "latency_ms": ..., "span": {...}}
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from typing import Any, Dict, List, Optional

from .trace import Span

__all__ = ["FlightRecorder"]


class FlightRecorder:
    def __init__(self, k_slowest: int = 16, max_missed: int = 64) -> None:
        self.k_slowest = max(0, int(k_slowest))
        self._seq = 0
        # min-heap of (latency_s, seq, record): root is the fastest of the
        # retained set, evicted first when a slower frame arrives.
        self._slow: List[tuple] = []
        self._missed: deque = deque(maxlen=max(0, int(max_missed)))

    def record(self, root: Span, latency_s: float,
               deadline_missed: bool = False,
               frame: Optional[Any] = None) -> None:
        entry = {
            "frame": frame,
            "latency_ms": latency_s * 1e3,
            "span": root,
        }
        self._seq += 1
        if deadline_missed and self._missed.maxlen:
            self._missed.append(dict(entry, kind="missed"))
        if self.k_slowest:
            item = (latency_s, self._seq, dict(entry, kind="slow"))
            if len(self._slow) < self.k_slowest:
                heapq.heappush(self._slow, item)
            elif latency_s > self._slow[0][0]:
                heapq.heapreplace(self._slow, item)

    # -- export ----------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Retained records, slowest first, then missed in arrival order."""
        slow = [rec for _, _, rec in sorted(self._slow, reverse=True)]
        return slow + list(self._missed)

    def dump_jsonl(self, path: str) -> int:
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.records():
                out = dict(rec)
                span = out.pop("span")
                out["span"] = span.to_dict() if isinstance(span, Span) else span
                fh.write(json.dumps(out, sort_keys=True, default=str) + "\n")
                n += 1
        return n
