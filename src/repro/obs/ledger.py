"""Recompute-lineage ledger: *why* every cache decision happened.

The span layer (:mod:`repro.obs.trace`) says where time went; this module
says why the work existed at all.  A :class:`RecomputeLedger` is a bounded
structured event log fed by the serving stack's cache layers:

``tile`` events
    One per classified tile population per decomposed mapping call.  The
    batched tile planner (:mod:`repro.stream.plan`) classifies every
    planned tile into exactly one cause — ``l1_hit`` / ``l2_hit`` /
    ``disk_hit`` (emitted by :meth:`repro.mapping.hooks.TieredLookup.
    get_many`, which knows the tier depth that served each probe),
    ``recompute(cold)`` / ``recompute(digest_changed)`` /
    ``recompute(halo_moved)`` / ``recompute(evicted)`` (the planner's
    miss diagnosis against its previous-frame tile memory), or
    ``fallback(empty_halo)`` (tiles the planner never probes).  Counts
    are per-cause so a frame with 400 tiles is a handful of events, not
    400.

``call`` events
    One per whole mapping call the front handled: either
    ``cause="probe_hit"`` (the whole-call content probe hit, nothing was
    decomposed — ``tiles=0``) or ``cause="planned"`` with the planned
    tile count.  Per ``(frame, op)`` the tile-event counts sum exactly to
    the planned tile counts — the completeness invariant
    ``tests/properties/test_prop_ledger.py`` enforces.

``splice`` events
    One per kernel-map compose: ``spliced``, ``full_sort``, or
    ``fallback(certificate)`` when the row-order certificate rejected a
    splice.

``eviction`` events
    ``(key, tier, bytes)`` whenever a cache layer drops an entry: the
    in-memory LRU (:meth:`repro.engine.map_cache.MapCache._evict`,
    ``tier="memory"``) and the shared store's disk budget
    (:meth:`repro.cluster.store.SharedMapStore._enforce_disk_budget`,
    ``tier="disk"``).

Installation follows the module-level context pattern of
:mod:`repro.obs.trace` / :mod:`repro.mapping.hooks`: ``use_ledger``
installs a process-wide active ledger, every emission site reads one
module global and returns immediately when it is ``None`` — so the
disabled cost per site is a global read plus a ``None`` check, inside
the same <2% bound the span layer holds.  The ledger is observability
only: nothing on the compute path may branch on it, so ledger-on and
ledger-off runs are bit-identical (property-enforced).

Events carry the *frame tag* of the request whose build emitted them
(``f3`` for stream sessions, ``veh0/f3`` for fleet streams) — stamped by
the engine via :func:`ledger_frame` — which is what joins them back to
the ``frame``/``round`` spans in a ``--trace`` file.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "RecomputeLedger",
    "TILE_CAUSES",
    "current_ledger",
    "ledger_frame",
    "use_ledger",
]

#: Every cause a planned tile can be classified as (exactly one per tile).
TILE_CAUSES = (
    "probe_hit",
    "l1_hit",
    "l2_hit",
    "disk_hit",
    "recompute(cold)",
    "recompute(digest_changed)",
    "recompute(halo_moved)",
    "recompute(evicted)",
    "fallback(empty_halo)",
)

_TILE_SUFFIX = "/tile"


class RecomputeLedger:
    """Bounded structured event log of cache decisions.

    ``max_events`` bounds the retained event ring (oldest dropped first,
    counted in ``dropped``); the per-cause aggregates keep totals
    regardless, so a long drive's summary stays exact even after the
    ring wraps.
    """

    def __init__(self, max_events: int = 65536) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = int(max_events)
        self._events: deque = deque()
        self.dropped = 0
        self.causes: Counter = Counter()      # tile cause -> tiles
        self.splice_outcomes: Counter = Counter()
        self.evictions: Dict[str, Dict[str, int]] = {}  # tier -> {count, bytes}
        self.calls = 0
        self.probe_hits = 0
        self.planned_tiles = 0
        self._frame: Any = None  # stamped by ledger_frame()

    # -- emission sites -------------------------------------------------

    def _emit(self, kind: str, **fields: Any) -> None:
        if len(self._events) >= self.max_events:
            self._events.popleft()
            self.dropped += 1
        event = {"kind": kind, "frame": self._frame}
        event.update(fields)
        self._events.append(event)

    def tile(self, op: str, cause: str, n: int = 1) -> None:
        """Classify ``n`` tiles of one mapping call as ``cause``."""
        if n <= 0:
            return
        if op.endswith(_TILE_SUFFIX):
            op = op[: -len(_TILE_SUFFIX)]
        self.causes[cause] += n
        self._emit("tile", op=op, cause=cause, n=int(n))

    def call(self, op: str, tiles: int, cause: str = "planned") -> None:
        """Record one whole mapping call the front handled."""
        self.calls += 1
        if cause == "probe_hit":
            self.probe_hits += 1
            self.causes["probe_hit"] += 1
        else:
            self.planned_tiles += int(tiles)
        self._emit("call", op=op, cause=cause, tiles=int(tiles))

    def splice(self, op: str, outcome: str) -> None:
        """Record one compose outcome (kernel-map or voxelize splice)."""
        self.splice_outcomes[outcome] += 1
        self._emit("splice", op=op, outcome=outcome)

    def eviction(self, tier: str, key: str, nbytes: int) -> None:
        """Record one cache entry leaving ``tier``."""
        slot = self.evictions.setdefault(tier, {"count": 0, "bytes": 0})
        slot["count"] += 1
        slot["bytes"] += int(nbytes)
        self._emit("eviction", tier=tier, key=key, bytes=int(nbytes))

    # -- export ---------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """Retained events, oldest first."""
        return list(self._events)

    def summary(self) -> dict:
        """Aggregate view (exact totals, independent of the ring bound)."""
        recomputed = sum(
            n for cause, n in self.causes.items()
            if cause.startswith("recompute")
        )
        return {
            "events": len(self._events),
            "dropped": self.dropped,
            "calls": self.calls,
            "probe_hits": self.probe_hits,
            "planned_tiles": self.planned_tiles,
            "recomputed_tiles": recomputed,
            "causes": dict(self.causes),
            "splice": dict(self.splice_outcomes),
            "evictions": {tier: dict(c) for tier, c in self.evictions.items()},
        }

    def dump_jsonl(self, path: str) -> int:
        """Write retained events, one JSON object per line; returns count."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
                n += 1
        return n


_ACTIVE: Optional[RecomputeLedger] = None


def current_ledger() -> Optional[RecomputeLedger]:
    return _ACTIVE


@contextmanager
def use_ledger(ledger: RecomputeLedger) -> Iterator[RecomputeLedger]:
    """Install ``ledger`` as the process-wide active ledger (nests)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ledger
    try:
        yield ledger
    finally:
        _ACTIVE = previous


@contextmanager
def ledger_frame(tag: Any) -> Iterator[None]:
    """Stamp events emitted inside the block with ``tag`` (a frame id).

    Installed by the engine around each request's functional build —
    the same place :func:`repro.mapping.hooks.request_context` lives —
    so every cache decision joins back to the request's frame span.
    A no-op (one global read) when no ledger is active.
    """
    ledger = _ACTIVE
    if ledger is None:
        yield
        return
    previous = ledger._frame
    ledger._frame = tag
    try:
        yield
    finally:
        ledger._frame = previous
