"""Unified telemetry: tracer spans, metrics registry, flight recorder,
trace differencing, and the recompute-lineage ledger.

See README's "Observability" section for the span taxonomy, the ledger
event taxonomy, and the capture -> diff -> verdict workflow.
"""

from .diff import DIFF_SCHEMA, diff_phases, render_diff, trace_diff
from .ledger import (RecomputeLedger, TILE_CAUSES, current_ledger,
                     ledger_frame, use_ledger)
from .metrics import (Histogram, MetricsRegistry, current_registry,
                      merge_snapshots, use_registry)
from .recorder import FlightRecorder
from .report import (load_ledger_events, load_trace, phase_breakdown,
                     recompute_causes, render_report, slow_frames)
from .trace import Span, Tracer, current_tracer, span, use_tracer

__all__ = [
    "DIFF_SCHEMA",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "RecomputeLedger",
    "Span",
    "TILE_CAUSES",
    "Tracer",
    "current_ledger",
    "current_registry",
    "current_tracer",
    "diff_phases",
    "ledger_frame",
    "load_ledger_events",
    "load_trace",
    "merge_snapshots",
    "phase_breakdown",
    "recompute_causes",
    "render_diff",
    "render_report",
    "slow_frames",
    "span",
    "trace_diff",
    "use_ledger",
    "use_registry",
    "use_tracer",
]
