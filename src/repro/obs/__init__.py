"""Unified telemetry: tracer spans, metrics registry, flight recorder.

See README's "Observability" section for the span taxonomy and usage.
"""

from .metrics import Histogram, MetricsRegistry, merge_snapshots
from .recorder import FlightRecorder
from .report import load_trace, phase_breakdown, render_report, slow_frames
from .trace import Span, Tracer, current_tracer, span, use_tracer

__all__ = [
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_tracer",
    "load_trace",
    "merge_snapshots",
    "phase_breakdown",
    "render_report",
    "slow_frames",
    "span",
    "use_tracer",
]
