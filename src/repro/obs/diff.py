"""Trace differencing behind ``repro trace-diff``.

Two trace JSONL files (``Tracer.dump_jsonl`` or flight-recorder
sidecars) are aligned by the span taxonomy — request / trace_build /
backend / front / plan / probe / execute / splice / tier_io / dispatch /
ipc / frame / round — and compared phase by phase on *self* time, the
only basis on which deltas add up without double-counting nested spans.

For each phase the diff reports the absolute self-time delta, the call
counts on both sides, and the count-normalized rate (ms/call) change —
the figure that separates "splice got slower" from "there were more
splices".  Phases are ranked by their contribution to the total
absolute delta, and the top contributor becomes a one-line verdict
(``splice self-time +38.2% (+12.4 ms) on ~same call count``) that
``scripts/bench_compare.py --baseline`` attaches to its regression
report.  The machine form is a schema-versioned JSON dict so CI can
archive it next to the bench comparison.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .report import load_trace, phase_breakdown

__all__ = ["DIFF_SCHEMA", "diff_phases", "render_diff", "trace_diff"]

DIFF_SCHEMA = 1

#: Call-count ratio band treated as "about the same number of calls".
_SAME_COUNT_BAND = 0.10


def diff_phases(
    baseline: Dict[str, Dict[str, float]],
    candidate: Dict[str, Dict[str, float]],
) -> List[Dict[str, Any]]:
    """Per-phase deltas between two ``phase_breakdown`` results.

    Returns one row per phase present on either side, ranked by
    contribution to the total absolute self-time delta (largest first).
    """
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(baseline) | set(candidate)):
        b = baseline.get(name, {"calls": 0, "total_ms": 0.0, "self_ms": 0.0})
        c = candidate.get(name, {"calls": 0, "total_ms": 0.0, "self_ms": 0.0})
        b_calls, c_calls = int(b["calls"]), int(c["calls"])
        b_self, c_self = float(b["self_ms"]), float(c["self_ms"])
        delta = c_self - b_self
        b_rate = b_self / b_calls if b_calls else 0.0
        c_rate = c_self / c_calls if c_calls else 0.0
        rows.append({
            "phase": name,
            "baseline_calls": b_calls,
            "candidate_calls": c_calls,
            "baseline_self_ms": b_self,
            "candidate_self_ms": c_self,
            "delta_ms": delta,
            "delta_pct": (100.0 * delta / b_self) if b_self > 0 else None,
            "baseline_ms_per_call": b_rate,
            "candidate_ms_per_call": c_rate,
            "rate_delta_ms_per_call": c_rate - b_rate,
        })
    total_abs = sum(abs(r["delta_ms"]) for r in rows) or 1.0
    for r in rows:
        r["share"] = abs(r["delta_ms"]) / total_abs
    rows.sort(key=lambda r: abs(r["delta_ms"]), reverse=True)
    return rows


def _verdict_line(row: Dict[str, Any]) -> str:
    delta = row["delta_ms"]
    sign = "+" if delta >= 0 else ""
    if row["delta_pct"] is not None:
        magnitude = f"{sign}{row['delta_pct']:.1f}% ({sign}{delta:.2f} ms)"
    else:
        magnitude = f"{sign}{delta:.2f} ms (new phase)"
    b_calls, c_calls = row["baseline_calls"], row["candidate_calls"]
    if b_calls and abs(c_calls - b_calls) <= _SAME_COUNT_BAND * b_calls:
        counts = "on ~same call count"
    else:
        counts = f"on {b_calls} -> {c_calls} calls"
    return f"{row['phase']} self-time {magnitude} {counts}"


def trace_diff(baseline_path: str, candidate_path: str) -> Dict[str, Any]:
    """Machine verdict for two trace files (the ``--json`` payload).

    Never raises on bad *lines* (``load_trace`` skips and counts them);
    missing files still raise ``OSError`` for the caller's exit code.
    """
    b_errors: List[str] = []
    c_errors: List[str] = []
    b_roots = load_trace(baseline_path, errors=b_errors)
    c_roots = load_trace(candidate_path, errors=c_errors)
    phases = diff_phases(phase_breakdown(b_roots), phase_breakdown(c_roots))
    total_delta = sum(r["delta_ms"] for r in phases)
    top = phases[0] if phases and abs(phases[0]["delta_ms"]) > 0 else None
    return {
        "schema": DIFF_SCHEMA,
        "baseline": {"path": baseline_path, "roots": len(b_roots),
                     "skipped_lines": len(b_errors)},
        "candidate": {"path": candidate_path, "roots": len(c_roots),
                      "skipped_lines": len(c_errors)},
        "total_delta_ms": total_delta,
        "top_phase": top["phase"] if top else None,
        "verdict": _verdict_line(top) if top else "no self-time delta",
        "phases": phases,
    }


def render_diff(diff: Dict[str, Any], top: Optional[int] = None) -> str:
    """Human table for a :func:`trace_diff` result."""
    lines: List[str] = []
    b, c = diff["baseline"], diff["candidate"]
    lines.append(f"trace-diff: {b['path']} ({b['roots']} roots) -> "
                 f"{c['path']} ({c['roots']} roots)")
    skipped = b["skipped_lines"] + c["skipped_lines"]
    if skipped:
        lines.append(f"warning: skipped {skipped} malformed line(s)")
    rows = diff["phases"][:top] if top else diff["phases"]
    if not rows:
        lines.append("no spans on either side")
        return "\n".join(lines) + "\n"
    lines.append("")
    lines.append(f"{'phase':<18} {'calls A>B':>13} {'self A ms':>10} "
                 f"{'self B ms':>10} {'delta ms':>9} {'ms/call Δ':>10} "
                 f"{'share':>6}")
    for r in rows:
        pct = (f"{r['delta_pct']:+.1f}%" if r["delta_pct"] is not None
               else "new")
        lines.append(
            f"{r['phase']:<18} "
            f"{r['baseline_calls']:>6}>{r['candidate_calls']:<6} "
            f"{r['baseline_self_ms']:>10.2f} {r['candidate_self_ms']:>10.2f} "
            f"{r['delta_ms']:>+9.2f} {r['rate_delta_ms_per_call']:>+10.3f} "
            f"{100.0 * r['share']:>5.1f}%"
        )
        if abs(r["delta_ms"]) > 0 and r is rows[0]:
            lines[-1] += f"  <- {pct}"
    lines.append("")
    lines.append(f"total self-time delta: {diff['total_delta_ms']:+.2f} ms")
    lines.append(f"verdict: {diff['verdict']}")
    return "\n".join(lines) + "\n"
