"""Farthest point sampling — output-cloud construction for PointNet++.

Paper Section 2.1.1: each output point is sampled from the input cloud one by
one; at iteration ``t`` we choose the input point with the largest distance
to the current output set.  The MPU realizes this as a streaming arg-max over
maintained minimum distances (paper Fig. 8b); this module is the exact
functional reference that hardware model is tested against.
"""

from __future__ import annotations

import numpy as np

from . import hooks

__all__ = ["farthest_point_sampling", "random_sampling"]


def farthest_point_sampling(
    points: np.ndarray, n_samples: int, start_index: int = 0
) -> np.ndarray:
    """Indices of ``n_samples`` farthest-point samples of ``points``.

    Deterministic given ``start_index`` (the customary seed point is index 0,
    matching the reference PointNet++ implementation).  Runs the standard
    O(n_samples * N) incremental algorithm: maintain for every input point
    its distance to the nearest already-selected output and repeatedly pick
    the arg-max.

    Never mutates ``points``; the returned index array is freshly owned by
    the caller (also on a map-cache hit).
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("cannot sample from an empty point cloud")
    if not 0 <= start_index < n:
        raise ValueError(f"start_index {start_index} out of range for {n} points")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    n_samples = min(n_samples, n)

    cache = hooks.active_cache()
    if cache is not None:
        return cache.memoize(
            "fps",
            (points,),
            {"n_samples": n_samples, "start_index": start_index},
            lambda: _fps_compute(points, n_samples, start_index),
        )
    return _fps_compute(points, n_samples, start_index)


def _fps_compute(
    points: np.ndarray, n_samples: int, start_index: int
) -> np.ndarray:
    selected = np.empty(n_samples, dtype=np.int64)
    selected[0] = start_index
    # min_sq_dist[i] = squared distance from point i to the selected set.
    diff = points - points[start_index]
    min_sq_dist = np.einsum("ij,ij->i", diff, diff)
    for t in range(1, n_samples):
        nxt = int(np.argmax(min_sq_dist))
        selected[t] = nxt
        diff = points - points[nxt]
        np.minimum(min_sq_dist, np.einsum("ij,ij->i", diff, diff), out=min_sq_dist)
    return selected


def random_sampling(
    n_points: int, n_samples: int, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Uniform random downsampling (the cheap alternative, e.g. RandLA-Net)."""
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n_samples = min(n_samples, n_points)
    return np.sort(rng.choice(n_points, size=n_samples, replace=False))
