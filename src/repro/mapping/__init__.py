"""Reference mapping operations (Table 1): the ground truth for the MPU."""

from .ball_query import ball_query_indices, ball_query_maps
from .fps import farthest_point_sampling, random_sampling
from .hooks import TieredLookup, TieredStats, active_cache, use_map_cache
from .kernel_map import (
    kernel_map,
    kernel_map_bruteforce,
    kernel_map_hash,
    kernel_map_mergesort,
)
from .knn import knn_indices, knn_maps
from .maps import MapTable

__all__ = [
    "MapTable",
    "TieredLookup",
    "TieredStats",
    "active_cache",
    "use_map_cache",
    "ball_query_indices",
    "ball_query_maps",
    "farthest_point_sampling",
    "random_sampling",
    "kernel_map",
    "kernel_map_bruteforce",
    "kernel_map_hash",
    "kernel_map_mergesort",
    "knn_indices",
    "knn_maps",
]
