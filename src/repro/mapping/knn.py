"""k-nearest-neighbor search producing map tables.

Paper Section 2.1.2: for each output point, the top-k nearest input points
are selected; the n-th neighbor is multiplied with weight w_n, so the weight
index of a map is the neighbor's rank.  The MPU implements this as a TopK
ranking kernel (Fig. 8c); this is the functional reference.
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.coords import pairwise_squared_distance
from . import hooks
from .maps import MapTable

__all__ = ["knn_indices", "knn_maps"]


def knn_indices(
    queries: np.ndarray, references: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """For each query, indices and squared distances of its k nearest refs.

    Returns ``(idx, sq_dist)`` of shape ``(len(queries), k)``; neighbors are
    ordered by increasing distance with index as tie-breaker (so results are
    deterministic and match a stable hardware sort).  If fewer than ``k``
    references exist, the available ones are repeated to pad the last column
    (mirroring the PointNet++ reference implementation's behaviour of reusing
    the nearest point).

    Never mutates either input; both returned arrays are freshly owned by
    the caller (no views of internals, also on a map-cache hit).
    """
    queries = np.asarray(queries, dtype=np.float64)
    references = np.asarray(references, dtype=np.float64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(references) == 0:
        raise ValueError("knn with empty reference cloud")
    cache = hooks.active_cache()
    if cache is not None:
        return cache.memoize(
            "knn",
            (queries, references),
            {"k": k},
            lambda: _knn_compute(queries, references, k),
        )
    return _knn_compute(queries, references, k)


def _knn_compute(
    queries: np.ndarray, references: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    sq = pairwise_squared_distance(queries, references)
    n_ref = sq.shape[1]
    k_eff = min(k, n_ref)
    # Stable top-k: sort (distance, index) pairs.
    order = np.lexsort((np.broadcast_to(np.arange(n_ref), sq.shape), sq), axis=1)
    # Copy: a plain slice would be a view keeping the full (n_q, n_ref)
    # sort matrix alive and would hand the caller non-owned storage.
    idx = np.ascontiguousarray(order[:, :k_eff])
    dist = np.take_along_axis(sq, idx, axis=1)
    if k_eff < k:
        pad = k - k_eff
        idx = np.concatenate([idx, np.repeat(idx[:, :1], pad, axis=1)], axis=1)
        dist = np.concatenate([dist, np.repeat(dist[:, :1], pad, axis=1)], axis=1)
    return idx, dist


def knn_maps(queries: np.ndarray, references: np.ndarray, k: int) -> MapTable:
    """kNN as a :class:`MapTable`: weight index = neighbor rank (0..k-1)."""
    idx, _ = knn_indices(queries, references, k)
    n_q = len(idx)
    out_idx = np.repeat(np.arange(n_q, dtype=np.int64), k)
    weight_idx = np.tile(np.arange(k, dtype=np.int64), n_q)
    return MapTable(idx.ravel(), out_idx, weight_idx, kernel_volume=k)
