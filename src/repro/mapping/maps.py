"""Map structures: the (input, output, weight) tuples driving point-cloud conv.

Paper Section 2: "map is a tuple (p_j, q_k, w_n)"; point cloud convolution
iterates over all maps and performs multiply-accumulate accordingly.  All
mapping operations in this library — reference or hardware-modelled — produce
a :class:`MapTable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MapTable"]


@dataclass
class MapTable:
    """A set of maps ``{(in_idx, out_idx, weight_idx)}``.

    ``in_idx`` indexes the input cloud, ``out_idx`` the output cloud and
    ``weight_idx`` the kernel weight (offset index for SparseConv, neighbor
    rank for PointNet++-style convs).  ``kernel_volume`` is the number of
    distinct weight indices the op can produce (27 for a 3^3 SparseConv,
    ``k`` for kNN), needed by cost models even when some weights get no maps.
    """

    in_idx: np.ndarray
    out_idx: np.ndarray
    weight_idx: np.ndarray
    kernel_volume: int

    def __post_init__(self) -> None:
        self.in_idx = np.asarray(self.in_idx, dtype=np.int64).ravel()
        self.out_idx = np.asarray(self.out_idx, dtype=np.int64).ravel()
        self.weight_idx = np.asarray(self.weight_idx, dtype=np.int64).ravel()
        if not (len(self.in_idx) == len(self.out_idx) == len(self.weight_idx)):
            raise ValueError("in/out/weight index arrays must have equal length")
        if self.kernel_volume < 1:
            raise ValueError(f"kernel_volume must be >= 1, got {self.kernel_volume}")
        self._sorted: dict = {}

    def __getstate__(self):
        # Keep disk spills (SharedMapStore pickles) free of the sort memo,
        # the MMU's cache-replay memo (see mmu/cache.py) and the backend
        # record memo's content digest — per-instance accelerations, not
        # content (the digest is re-derived on demand).
        state = self.__dict__.copy()
        state["_sorted"] = {}
        state.pop("_cache_sims", None)
        state.pop("_content_digest", None)
        return state

    @property
    def n_maps(self) -> int:
        return len(self.in_idx)

    def sorted_by(self, *, by: str = "weight") -> "MapTable":
        """Stable-sort maps by weight index ("gather by weight") or output.

        Memoized per instance: cost models replay the same table under
        several dataflow variants, and tables are immutable by the same
        convention every mapping consumer in this library relies on, so
        the lexsort only ever needs to run once per ordering.
        """
        cached = self._sorted.get(by)
        if cached is not None:
            return cached
        if by == "weight":
            order = np.lexsort((self.out_idx, self.weight_idx))
        elif by == "output":
            order = np.lexsort((self.weight_idx, self.out_idx))
        else:
            raise ValueError(f"by must be 'weight' or 'output', got {by!r}")
        table = MapTable(
            self.in_idx[order],
            self.out_idx[order],
            self.weight_idx[order],
            self.kernel_volume,
        )
        self._sorted[by] = table
        return table

    def per_weight(self) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Group maps by weight: ``[(weight_idx, in_idx, out_idx), ...]``.

        This is the "gather by weight" traversal order of the CPU/GPU
        implementation in paper Fig. 4.
        """
        table = self.sorted_by(by="weight")
        groups = []
        if table.n_maps == 0:
            return groups
        boundaries = np.flatnonzero(np.diff(table.weight_idx)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [table.n_maps]])
        for start, end in zip(starts, ends):
            groups.append(
                (
                    int(table.weight_idx[start]),
                    table.in_idx[start:end],
                    table.out_idx[start:end],
                )
            )
        return groups

    def as_set(self) -> set[tuple[int, int, int]]:
        """Order-insensitive representation for equality testing."""
        return set(
            zip(
                self.in_idx.tolist(),
                self.out_idx.tolist(),
                self.weight_idx.tolist(),
            )
        )

    def maps_per_output(self, n_out: int) -> np.ndarray:
        """Number of maps landing on each output point."""
        return np.bincount(self.out_idx, minlength=n_out)

    def maps_per_input(self, n_in: int) -> np.ndarray:
        """Number of maps reading each input point (feature reuse factor)."""
        return np.bincount(self.in_idx, minlength=n_in)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MapTable(n_maps={self.n_maps}, kernel_volume={self.kernel_volume})"
