"""Kernel mapping for SparseConv: three interchangeable algorithms.

Paper Sections 2.1.2 and 4.1.1.  A map ``(p, q, w_delta)`` exists when input
point ``p`` sits at offset ``delta * ts_in`` from output point ``q``:
``p = q + delta * ts_in``.  The three implementations here are:

* :func:`kernel_map_bruteforce` — O(N_in * N_out) set comparison; only for
  testing on tiny clouds.
* :func:`kernel_map_hash` — the state-of-the-art CPU/GPU algorithm
  (MinkowskiEngine): build a hash table of input coordinates, probe
  ``q + delta`` for every output/offset pair.
* :func:`kernel_map_mergesort` — PointAcc's formulation (Fig. 9): shift the
  input cloud by ``-delta``, merge-sort it with the output cloud, and detect
  key intersections between adjacent elements.

All three return identical :class:`MapTable`s (property-tested); they differ
in the hardware cost models attached to them in ``repro.core``.
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.coords import coords_to_keys, kernel_offsets
from . import hooks
from .maps import MapTable

__all__ = [
    "kernel_map_bruteforce",
    "kernel_map_hash",
    "kernel_map_mergesort",
    "kernel_map",
]


def _validate(in_coords: np.ndarray, out_coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    in_coords = np.asarray(in_coords, dtype=np.int64)
    out_coords = np.asarray(out_coords, dtype=np.int64)
    if in_coords.ndim != 2 or out_coords.ndim != 2:
        raise ValueError("coordinates must be (N, D) arrays")
    if in_coords.shape[1] != out_coords.shape[1]:
        raise ValueError("input/output coordinate dimensions differ")
    return in_coords, out_coords


def _resolve_offsets(
    in_coords: np.ndarray,
    kernel_size: int,
    tensor_stride: int,
    offsets: np.ndarray | None,
) -> np.ndarray:
    """Offsets a map must satisfy (``p = q + offset``), explicit or enumerated."""
    if offsets is not None:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 2 or offsets.shape[1] != in_coords.shape[1]:
            raise ValueError(f"offsets must be (K, {in_coords.shape[1]})")
        return offsets
    return kernel_offsets(kernel_size, in_coords.shape[1]) * tensor_stride


def _memoized(
    algorithm: str,
    in_coords: np.ndarray,
    out_coords: np.ndarray,
    offsets: np.ndarray,
    compute,
) -> MapTable:
    """Consult the active map cache; algorithms key separately because their
    tables are set-equal but row-ordered differently (bit-identity matters)."""
    cache = hooks.active_cache()
    if cache is None:
        return compute()
    return cache.memoize(
        f"kernel_map/{algorithm}", (in_coords, out_coords, offsets), {}, compute
    )


def kernel_map_bruteforce(
    in_coords: np.ndarray,
    out_coords: np.ndarray,
    kernel_size: int = 3,
    tensor_stride: int = 1,
    offsets: np.ndarray | None = None,
) -> MapTable:
    """Reference kernel mapping by exhaustive comparison (testing only)."""
    in_coords, out_coords = _validate(in_coords, out_coords)
    offsets = _resolve_offsets(in_coords, kernel_size, tensor_stride, offsets)
    return _memoized(
        "bruteforce", in_coords, out_coords, offsets,
        lambda: _bruteforce_compute(in_coords, out_coords, offsets),
    )


def _bruteforce_compute(
    in_coords: np.ndarray, out_coords: np.ndarray, offsets: np.ndarray
) -> MapTable:
    in_list = {tuple(c): i for i, c in enumerate(in_coords.tolist())}
    ins, outs, weights = [], [], []
    for w, delta in enumerate(offsets.tolist()):
        for q_idx, q in enumerate(out_coords.tolist()):
            probe = tuple(qc + dc for qc, dc in zip(q, delta))
            p_idx = in_list.get(probe)
            if p_idx is not None:
                ins.append(p_idx)
                outs.append(q_idx)
                weights.append(w)
    return MapTable(
        np.array(ins, dtype=np.int64),
        np.array(outs, dtype=np.int64),
        np.array(weights, dtype=np.int64),
        kernel_volume=len(offsets),
    )


def kernel_map_hash(
    in_coords: np.ndarray,
    out_coords: np.ndarray,
    kernel_size: int = 3,
    tensor_stride: int = 1,
    offsets: np.ndarray | None = None,
) -> MapTable:
    """Hash-table kernel mapping (the MinkowskiEngine-style baseline).

    Builds a dict keyed by packed input coordinates and probes each
    ``q + delta``; a hit yields a map.  This is the algorithm PointAcc's
    merge-sort formulation replaces (Section 4.1.1).
    """
    in_coords, out_coords = _validate(in_coords, out_coords)
    offsets = _resolve_offsets(in_coords, kernel_size, tensor_stride, offsets)
    return _memoized(
        "hash", in_coords, out_coords, offsets,
        lambda: _hash_compute(in_coords, out_coords, offsets),
    )


def _hash_compute(
    in_coords: np.ndarray, out_coords: np.ndarray, offsets: np.ndarray
) -> MapTable:
    table = {int(key): i for i, key in enumerate(coords_to_keys(in_coords))}
    ins, outs, weights = [], [], []
    for w, delta in enumerate(offsets):
        probe_keys = coords_to_keys(out_coords + delta[None, :])
        for q_idx, key in enumerate(probe_keys.tolist()):
            p_idx = table.get(key)
            if p_idx is not None:
                ins.append(p_idx)
                outs.append(q_idx)
                weights.append(w)
    return MapTable(
        np.array(ins, dtype=np.int64),
        np.array(outs, dtype=np.int64),
        np.array(weights, dtype=np.int64),
        kernel_volume=len(offsets),
    )


def kernel_map_mergesort(
    in_coords: np.ndarray,
    out_coords: np.ndarray,
    kernel_size: int = 3,
    tensor_stride: int = 1,
    offsets: np.ndarray | None = None,
) -> MapTable:
    """Merge-sort kernel mapping — PointAcc's algorithm (Fig. 9).

    The input cloud is sorted once (shifting every point by a constant
    ``-delta`` preserves lexicographic order, so the per-offset passes reuse
    the sorted array).  For each offset the shifted input keys are merged
    with the sorted output keys and equal adjacent keys are intersections,
    i.e. maps.  This vectorized implementation computes exactly what the
    MPU's merger + intersection detector compute; the cycle-level model lives
    in ``repro.core.mpu``.
    """
    in_coords, out_coords = _validate(in_coords, out_coords)
    offsets = _resolve_offsets(in_coords, kernel_size, tensor_stride, offsets)
    return _memoized(
        "mergesort", in_coords, out_coords, offsets,
        lambda: _mergesort_compute(in_coords, out_coords, offsets),
    )


def _mergesort_compute(
    in_coords: np.ndarray, out_coords: np.ndarray, offsets: np.ndarray
) -> MapTable:
    if len(in_coords) == 0 or len(out_coords) == 0:
        empty = np.empty(0, dtype=np.int64)
        return MapTable(empty, empty, empty, kernel_volume=len(offsets))

    in_order = np.argsort(coords_to_keys(in_coords), kind="stable")
    sorted_in = in_coords[in_order]
    out_keys = coords_to_keys(out_coords)
    out_order = np.argsort(out_keys, kind="stable")
    sorted_out_keys = out_keys[out_order]

    ins, outs, weights = [], [], []
    for w, delta in enumerate(offsets):
        # Shift input by -delta: intersections satisfy p - delta == q.
        shifted_keys = coords_to_keys(sorted_in - delta[None, :])
        # Merge + detect-intersection == searchsorted equality probe on the
        # two sorted arrays (both sides are duplicate-free).
        pos = np.searchsorted(sorted_out_keys, shifted_keys)
        pos_clipped = np.minimum(pos, len(sorted_out_keys) - 1)
        hit = (
            (len(sorted_out_keys) > 0)
            & (pos < len(sorted_out_keys))
            & (sorted_out_keys[pos_clipped] == shifted_keys)
        )
        if not np.any(hit):
            continue
        p_idx = in_order[np.flatnonzero(hit)]
        q_idx = out_order[pos[hit]]
        ins.append(p_idx)
        outs.append(q_idx)
        weights.append(np.full(len(p_idx), w, dtype=np.int64))
    if not ins:
        empty = np.empty(0, dtype=np.int64)
        return MapTable(empty, empty, empty, kernel_volume=len(offsets))
    return MapTable(
        np.concatenate(ins),
        np.concatenate(outs),
        np.concatenate(weights),
        kernel_volume=len(offsets),
    )


def kernel_map(
    in_coords: np.ndarray,
    out_coords: np.ndarray,
    kernel_size: int = 3,
    tensor_stride: int = 1,
    algorithm: str = "mergesort",
    offsets: np.ndarray | None = None,
) -> MapTable:
    """Dispatch to one of the kernel-mapping algorithms by name."""
    algos = {
        "bruteforce": kernel_map_bruteforce,
        "hash": kernel_map_hash,
        "mergesort": kernel_map_mergesort,
    }
    if algorithm not in algos:
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {sorted(algos)}")
    return algos[algorithm](in_coords, out_coords, kernel_size, tensor_stride, offsets)
