"""Map-result memoization hooks for the reference mapping operations.

The functional mapping ops (FPS, kNN, ball query, kernel mapping) are pure
functions of their coordinate inputs, yet the networks recompute them for
every layer and every request even when the geometry is identical — exactly
the redundancy PointAcc's MMU exploits by keeping map tables resident.  The
simulation engine (:mod:`repro.engine`) exploits the same redundancy on the
host side: while a cache is *active*, every mapping op first consults it
before computing.

The hook is deliberately dumb: a module-level slot plus a context manager.
Anything implementing ``memoize(op, arrays, params, compute)`` can be
installed (see :class:`repro.engine.MapCache`).  When no cache is active —
the default, and the state every test suite starts from — the mapping ops
run exactly as before; results are bit-identical either way, which the
property suite (`tests/properties/test_prop_engine.py`) enforces.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["active_cache", "use_map_cache"]

_ACTIVE = None


def active_cache():
    """The currently installed map cache, or ``None``."""
    return _ACTIVE


@contextmanager
def use_map_cache(cache):
    """Install ``cache`` as the active map cache for the enclosed block.

    Nests correctly (the previous cache is restored on exit) and is
    exception-safe.  Passing ``None`` disables memoization inside the block,
    which the engine uses to build deliberately cold baselines.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
