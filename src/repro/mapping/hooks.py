"""Map-result memoization hooks for the reference mapping operations.

The functional mapping ops (FPS, kNN, ball query, kernel mapping) are pure
functions of their coordinate inputs, yet the networks recompute them for
every layer and every request even when the geometry is identical — exactly
the redundancy PointAcc's MMU exploits by keeping map tables resident.  The
simulation engine (:mod:`repro.engine`) exploits the same redundancy on the
host side: while a cache is *active*, every mapping op first consults it
before computing.

The hook is deliberately dumb: a module-level slot plus a context manager.
Anything implementing ``memoize(op, arrays, params, compute)`` can be
installed (see :class:`repro.engine.MapCache`).  When no cache is active —
the default, and the state every test suite starts from — the mapping ops
run exactly as before; results are bit-identical either way, which the
property suite (`tests/properties/test_prop_engine.py`) enforces.

Tiered lookup
-------------
:class:`TieredLookup` chains several caches behind the same ``memoize``
facade: probe the first tier (a shard's private L1), then each lower tier
(the cluster-shared L2 store, which itself may spill to disk), and on a hit
promote the value into every tier above it.  A full miss computes once and
populates every tier.  Passing a list/tuple to :func:`use_map_cache`
installs the chain — the tiered path the cluster's shards run on.  Tiers
are duck-typed: anything with ``key`` / ``get`` / ``put`` / ``stats()``
(the :class:`~repro.engine.map_cache.MapCache` surface) works, so this
module needs no imports from the engine.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["TieredLookup", "TieredStats", "active_cache", "use_map_cache"]

_ACTIVE = None


class TieredStats:
    """Lookup-level counters for a :class:`TieredLookup`.

    ``hits``/``misses`` describe the chain as a whole (a hit in *any* tier
    is one chain hit); ``snapshot()`` additionally carries each tier's own
    counters so L1 vs L2 vs disk behaviour stays distinguishable.
    """

    def __init__(self, tiers) -> None:
        self._tiers = tiers
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "tiers": [tier.stats().snapshot() for tier in self._tiers],
        }


class TieredLookup:
    """Chain of content-addressed cache tiers behind one ``memoize``.

    The first tier is the fastest/most private (a shard's L1), later tiers
    are progressively more shared (the cluster L2, its disk spill).  Hits
    are promoted upward so hot entries migrate toward the front.  Copy
    ownership is preserved: tier ``get``/``put`` copy on both sides, so a
    caller can never alias a stored entry.
    """

    def __init__(self, tiers) -> None:
        tiers = [t for t in tiers if t is not None]
        if not tiers:
            raise ValueError("TieredLookup needs at least one tier")
        self.tiers = tiers
        self._stats = TieredStats(tiers)

    def stats(self) -> TieredStats:
        return self._stats

    def memoize(self, op: str, arrays, params: dict, compute):
        key = self.tiers[0].key(op, arrays, params)
        for depth, tier in enumerate(self.tiers):
            value = tier.get(key, op)
            if value is not None:
                self._stats.hits += 1
                for upper in self.tiers[:depth]:
                    upper.put(key, value, op)
                return value
        self._stats.misses += 1
        value = compute()
        for tier in self.tiers:
            tier.put(key, value, op)
        return value


def active_cache():
    """The currently installed map cache, or ``None``."""
    return _ACTIVE


@contextmanager
def use_map_cache(cache):
    """Install ``cache`` as the active map cache for the enclosed block.

    ``cache`` may be a single cache, or a list/tuple of tiers which is
    wrapped in a :class:`TieredLookup` (first element = L1).  Nests
    correctly (the previous cache is restored on exit) and is
    exception-safe.  Passing ``None`` disables memoization inside the
    block, which the engine uses to build deliberately cold baselines.
    """
    global _ACTIVE
    if isinstance(cache, (list, tuple)):
        cache = TieredLookup(cache)
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
