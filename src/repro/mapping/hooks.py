"""Map-result memoization hooks for the reference mapping operations.

The functional mapping ops (FPS, kNN, ball query, kernel mapping) are pure
functions of their coordinate inputs, yet the networks recompute them for
every layer and every request even when the geometry is identical — exactly
the redundancy PointAcc's MMU exploits by keeping map tables resident.  The
simulation engine (:mod:`repro.engine`) exploits the same redundancy on the
host side: while a cache is *active*, every mapping op first consults it
before computing.

The hook is deliberately dumb: a module-level slot plus a context manager.
Anything implementing ``memoize(op, arrays, params, compute)`` can be
installed (see :class:`repro.engine.MapCache`).  When no cache is active —
the default, and the state every test suite starts from — the mapping ops
run exactly as before; results are bit-identical either way, which the
property suite (`tests/properties/test_prop_engine.py`) enforces.

Tiered lookup
-------------
:class:`TieredLookup` chains several caches behind the same ``memoize``
facade: probe the first tier (a shard's private L1), then each lower tier
(the cluster-shared L2 store, which itself may spill to disk), and on a hit
promote the value into every tier above it.  A full miss computes once and
populates every tier.  Passing a list/tuple to :func:`use_map_cache`
installs the chain — the tiered path the cluster's shards run on.  Tiers
are duck-typed: anything with ``key`` / ``get`` / ``put`` / ``stats()``
(the :class:`~repro.engine.map_cache.MapCache` surface) works, so this
module needs no imports from the engine.  ``get_many`` / ``put_many``
batch the same semantics — one chain traversal for N keys, which is what
the streaming tile planner issues per decomposed mapping call; tiers may
implement their own batch methods or be driven per-key transparently.

Content-aware front
-------------------
Digest tiers only ever see whole-input content keys, so two clouds that
overlap but are not bit-identical can never share an entry.  A *front* is
an optional content-aware stage consulted before the digest path: anything
with ``handles(op, arrays, params)`` and
``memoize(op, arrays, params, compute, chain)`` (plus ``stats()``) may be
installed as ``TieredLookup(tiers, front=...)``.  A front that handles an
op may decompose it — e.g. the streaming tile cache
(:class:`repro.stream.incremental.TileMapCache`) splits a cloud into
spatial tiles and serves unchanged tiles from the chain's digest tiers via
:meth:`TieredLookup.get` / :meth:`TieredLookup.put` — as long as it
preserves the contract that a cache can only ever change wall-clock, never
a result.  Ops a front does not handle fall through to the digest path
unchanged.  Fronts compose by wrapping: a front may delegate to an inner
front while interposing on the chain handle it passes down (the fleet's
:class:`~repro.fleet.WorldTileStore` wraps the streaming tile front this
way to attribute each tile sub-lookup to the tenant stream that issued it
— see :func:`request_context`).
"""

from __future__ import annotations

from contextlib import contextmanager

from ..obs.ledger import current_ledger as _current_ledger
from ..obs.trace import span as _span

__all__ = [
    "TieredLookup",
    "TieredStats",
    "active_cache",
    "batch_get",
    "batch_put",
    "count_by_op",
    "current_tenant",
    "request_context",
    "use_map_cache",
]

_ACTIVE = None
_TENANT = ""


def count_by_op(by_op: dict, op: str, hit: bool, n: int = 1) -> None:
    """Increment the shared per-op counter shape ``{op: {hits, misses}}``.

    One definition for every stats object that attributes cache behaviour
    to mapping ops (``MapCacheStats``, :class:`TieredStats`, the stream
    front's ``TileFrontStats``), so the by-op schema cannot drift apart.
    ``n`` batches the increment — the tile planner counts one probe batch
    per update.
    """
    slot = by_op.setdefault(op, {"hits": 0, "misses": 0})
    slot["hits" if hit else "misses"] += n


class TieredStats:
    """Lookup-level counters for a :class:`TieredLookup`.

    ``hits``/``misses`` describe the chain as a whole (a hit in *any* tier
    is one chain hit); ``by_op`` splits the same counters per mapping op
    (fps / knn / ball_query / kernel_map/...), so a serving stats dump can
    attribute reuse to the op that earned it.  ``snapshot()`` additionally
    carries each tier's own counters so L1 vs L2 vs disk behaviour stays
    distinguishable, plus the front's counters when one is installed.
    """

    def __init__(self, tiers, front=None) -> None:
        self._tiers = tiers
        self._front = front
        self.hits = 0
        self.misses = 0
        self.by_op: dict = {}  # op -> {"hits": int, "misses": int}

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def _count(self, op: str, hit: bool) -> None:
        count_by_op(self.by_op, op, hit)
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def snapshot(self) -> dict:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "by_op": {op: dict(c) for op, c in self.by_op.items()},
            "tiers": [tier.stats().snapshot() for tier in self._tiers],
        }
        if self._front is not None:
            out["front"] = self._front.stats().snapshot()
        return out


class TieredLookup:
    """Chain of content-addressed cache tiers behind one ``memoize``.

    The first tier is the fastest/most private (a shard's L1), later tiers
    are progressively more shared (the cluster L2, its disk spill).  Hits
    are promoted upward so hot entries migrate toward the front.  Copy
    ownership is preserved: tier ``get``/``put`` copy on both sides, so a
    caller can never alias a stored entry.
    """

    def __init__(self, tiers, front=None) -> None:
        tiers = [t for t in tiers if t is not None]
        if not tiers:
            raise ValueError("TieredLookup needs at least one tier")
        self.tiers = tiers
        self.front = front
        self._stats = TieredStats(tiers, front)

    def stats(self) -> TieredStats:
        return self._stats

    def get(self, key: bytes, op: str = "?", copy: bool = True):
        """Chain-level digest probe: first tier that hits wins, with the
        value promoted into every tier above it.  ``None`` on a full miss.
        Used by content-aware fronts to address sub-results into the same
        L1/L2/disk tiers whole-op entries live in — fronts pass
        ``copy=False`` (they compose from sub-entries, never mutate them;
        see :meth:`repro.engine.MapCache.get`)."""
        for depth, tier in enumerate(self.tiers):
            value = tier.get(key, op, copy=copy)
            if value is not None:
                for upper in self.tiers[:depth]:
                    upper.put(key, value, op, copy=copy)
                return value
        return None

    def put(self, key: bytes, value, op: str = "?", copy: bool = True) -> None:
        """Chain-level insert: write-through to every tier."""
        for tier in self.tiers:
            tier.put(key, value, op, copy=copy)

    def get_many(self, keys, op: str = "?", copy: bool = True) -> list:
        """Batched :meth:`get`: one chain traversal for N keys.

        Semantically identical to N chained ``get`` calls — same per-tier
        probing order, same upward promotion of hits, same per-op stats
        (each tier counts every probe it sees) — but each tier is visited
        once per *batch* instead of once per key, which is what makes
        tile-decomposed lookups cheap (the tile planner,
        :mod:`repro.stream.plan`, issues one ``get_many`` per mapping
        call instead of one chain walk per tile).  Tiers without a
        ``get_many`` of their own are driven per-key transparently.
        """
        values: list = [None] * len(keys)
        missing = list(range(len(keys)))
        # The ledger classifies *tile* probes only (the planner's
        # "<op>/tile" batches): this tier loop is the one place that knows
        # which tier served each hit, so hit causes are emitted here while
        # miss causes stay with the planner's digest diagnosis.
        ledger = _current_ledger()
        track = ledger is not None and op.endswith("/tile")
        for depth, tier in enumerate(self.tiers):
            if not missing:
                break
            # tier_io spans cover the *batched* chain walk only — one span
            # per tier per batch, never one per key, so disabled-tracer
            # overhead stays off the per-tile hot path.
            with _span("tier_io", tier=type(tier).__name__, op=op,
                       way="get") as sp:
                disk0 = (getattr(tier.stats(), "extra", {}).get("disk_hits", 0)
                         if track else 0)
                got = batch_get(tier, [keys[i] for i in missing], op, copy=copy)
                still, hit_keys, hit_values = [], [], []
                for i, value in zip(missing, got):
                    if value is None:
                        still.append(i)
                    else:
                        values[i] = value
                        hit_keys.append(keys[i])
                        hit_values.append(value)
                if depth and hit_keys:
                    for upper in self.tiers[:depth]:
                        batch_put(upper, hit_keys, hit_values, op, copy=copy)
                sp.count("probes", float(len(got)))
                sp.count("hits", float(len(hit_keys)))
                if track and hit_keys:
                    # Disk-served hits are visible as the tier's disk_hits
                    # counter advancing across this batch; the remainder
                    # were served from that tier's memory.
                    disk = (getattr(tier.stats(), "extra", {})
                            .get("disk_hits", 0) - disk0)
                    disk = max(0, min(disk, len(hit_keys)))
                    memory = len(hit_keys) - disk
                    ledger.tile(op, "disk_hit", disk)
                    ledger.tile(op, "l1_hit" if depth == 0 else "l2_hit",
                                memory)
            missing = still
        return values

    def put_many(self, keys, values, op: str = "?", copy: bool = True) -> None:
        """Batched :meth:`put`: write each pair through every tier."""
        for tier in self.tiers:
            with _span("tier_io", tier=type(tier).__name__, op=op,
                       way="put") as sp:
                batch_put(tier, keys, values, op, copy=copy)
                sp.count("puts", float(len(keys)))

    def memoize(self, op: str, arrays, params: dict, compute):
        if self.front is not None and self.front.handles(op, arrays, params):
            return self.front.memoize(op, arrays, params, compute, self)
        key = self.tiers[0].key(op, arrays, params)
        for depth, tier in enumerate(self.tiers):
            value = tier.get(key, op)
            if value is not None:
                self._stats._count(op, hit=True)
                for upper in self.tiers[:depth]:
                    upper.put(key, value, op)
                return value
        self._stats._count(op, hit=False)
        value = compute()
        for tier in self.tiers:
            tier.put(key, value, op)
        return value


def batch_get(source, keys, op: str = "?", copy: bool = True) -> list:
    """Probe N keys against anything with the ``get`` surface.

    The one batch-or-per-key adapter: uses the target's ``get_many`` when
    it has one, else drives ``get`` per key.  Chains, tiers, the tile
    planner and the fleet's attributing wrapper all route through this
    pair so batch semantics cannot drift between them.
    """
    getter = getattr(source, "get_many", None)
    if getter is not None:
        return getter(keys, op, copy=copy)
    return [source.get(key, op, copy=copy) for key in keys]


def batch_put(target, keys, values, op: str = "?", copy: bool = True) -> None:
    """Insert N pairs into anything with the ``put`` surface (see
    :func:`batch_get`)."""
    putter = getattr(target, "put_many", None)
    if putter is not None:
        putter(keys, values, op, copy=copy)
    else:
        for key, value in zip(keys, values):
            target.put(key, value, op, copy=copy)


def active_cache():
    """The currently installed map cache, or ``None``."""
    return _ACTIVE


def current_tenant() -> str:
    """The tenant of the request whose trace is currently being built.

    ``""`` outside any :func:`request_context` (or for untenanted
    requests).  Fronts that attribute cache behaviour to serving streams
    (the fleet's :class:`~repro.fleet.WorldTileStore`) read this; nothing
    on the compute path may branch on it — tenancy is observability, and a
    result must never depend on who asked.
    """
    return _TENANT


@contextmanager
def request_context(tenant: str = ""):
    """Mark the enclosed trace build as belonging to ``tenant``.

    Installed by the engine around each request's functional run so cache
    layers can attribute lookups to the stream/tenant that triggered them.
    Nests and restores like :func:`use_map_cache`.
    """
    global _TENANT
    previous = _TENANT
    _TENANT = tenant or ""
    try:
        yield
    finally:
        _TENANT = previous


@contextmanager
def use_map_cache(cache):
    """Install ``cache`` as the active map cache for the enclosed block.

    ``cache`` may be a single cache, or a list/tuple of tiers which is
    wrapped in a :class:`TieredLookup` (first element = L1).  Nests
    correctly (the previous cache is restored on exit) and is
    exception-safe.  Passing ``None`` disables memoization inside the
    block, which the engine uses to build deliberately cold baselines.
    """
    global _ACTIVE
    if isinstance(cache, (list, tuple)):
        cache = TieredLookup(cache)
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
