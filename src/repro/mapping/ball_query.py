"""Ball query: k nearest neighbors constrained to a radius.

Paper Section 2.1.2: "ball query further requires these points to lie in the
sphere of radius r, i.e. ||p - q||^2 <= r".  PointNet++ pads groups that have
fewer than ``k`` in-radius neighbors by repeating the first found neighbor,
so every output group has exactly ``k`` maps — we reproduce that convention
(it determines gather traffic, which the cost models consume).
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.coords import pairwise_squared_distance
from . import hooks
from .maps import MapTable

__all__ = ["ball_query_indices", "ball_query_maps"]


def ball_query_indices(
    queries: np.ndarray,
    references: np.ndarray,
    radius: float,
    k: int,
) -> np.ndarray:
    """For each query, indices of up to ``k`` in-radius refs, padded to ``k``.

    Neighbors are taken in increasing-distance order (stable).  A query with
    no in-radius neighbor falls back to its nearest reference (the reference
    implementation's behaviour), so groups are never empty.

    Never mutates either input; the returned array is freshly owned by the
    caller (also on a map-cache hit).
    """
    queries = np.asarray(queries, dtype=np.float64)
    references = np.asarray(references, dtype=np.float64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if len(references) == 0:
        raise ValueError("ball query with empty reference cloud")
    cache = hooks.active_cache()
    if cache is not None:
        return cache.memoize(
            "ball_query",
            (queries, references),
            {"radius": float(radius), "k": k},
            lambda: _ball_query_compute(queries, references, radius, k),
        )
    return _ball_query_compute(queries, references, radius, k)


def _ball_query_compute(
    queries: np.ndarray,
    references: np.ndarray,
    radius: float,
    k: int,
) -> np.ndarray:
    result, _, _ = _ball_query_details(queries, references, radius, k)
    return result


def _ball_query_details(
    queries: np.ndarray,
    references: np.ndarray,
    radius: float,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ball-query kernel plus the per-row facts incremental reuse needs.

    Returns ``(result, in_radius, kth_sq)``: the padded index rows, the
    *raw* count of in-radius candidates per row (before the pad-to-1
    floor), and the distance of each row's last candidate — the
    certificates :mod:`repro.stream.incremental` uses to decide whether a
    tile-local answer provably equals the global one.
    """
    sq = pairwise_squared_distance(queries, references)
    r2 = radius * radius
    n_ref = sq.shape[1]
    k_eff = min(k, n_ref)
    order = np.lexsort((np.broadcast_to(np.arange(n_ref), sq.shape), sq), axis=1)
    candidates = order[:, :k_eff]
    sorted_sq = np.take_along_axis(sq, candidates, axis=1)
    # Candidates are distance-ascending, so in-radius flags form a prefix of
    # each row; count the prefix and pad the tail with the nearest point
    # (also the fallback when no candidate is in radius).
    in_radius = (sorted_sq <= r2).sum(axis=1)
    counts = np.maximum(in_radius, 1)
    col = np.arange(k_eff)[None, :]
    result = np.where(col < counts[:, None], candidates, candidates[:, :1])
    if k_eff < k:
        pad = np.repeat(result[:, :1], k - k_eff, axis=1)
        result = np.concatenate([result, pad], axis=1)
    return result.astype(np.int64), in_radius, sorted_sq[:, -1]


def ball_query_maps(
    queries: np.ndarray, references: np.ndarray, radius: float, k: int
) -> MapTable:
    """Ball query as a :class:`MapTable` (weight index = neighbor rank)."""
    idx = ball_query_indices(queries, references, radius, k)
    n_q = len(idx)
    out_idx = np.repeat(np.arange(n_q, dtype=np.int64), k)
    weight_idx = np.tile(np.arange(k, dtype=np.int64), n_q)
    return MapTable(idx.ravel(), out_idx, weight_idx, kernel_volume=k)
