#!/usr/bin/env python
"""Diff ``bench-* --json`` payloads; fail on a throughput regression.

Usage::

    # classic two-file diff (exit 1 on regression)
    python scripts/bench_compare.py BASELINE.json CANDIDATE.json \
        [--threshold 0.10] [--metric speedup]

    # CI gate against a previous run's artifact that may not exist yet
    python scripts/bench_compare.py --baseline prev/BENCH_stream.json \
        BENCH_stream.json

    # append a compact per-PR summary to the checked-in trajectory
    python scripts/bench_compare.py --record BENCH_*.json \
        [--trajectory benchmarks/TRAJECTORY.json] [--label pr7]

All payload files must be written by ``python -m repro bench-* --json``
(schema-version checked; compared payloads' commands must match).  The
default metric is ``speedup`` — the warm-over-cold throughput ratio each
bench command reports — because it is a *ratio* measured within one
process, so it travels across machines far better than raw wall-clock.
The exit code is the contract CI keys on:

* ``0`` — candidate within ``threshold`` of the baseline (or better),
  a ``--record`` append, or a skipped comparison (``--baseline`` file
  absent: the first run after the gate lands has nothing to compare to);
* ``1`` — candidate regressed by more than ``threshold``;
* ``2`` — unreadable/mismatched payloads (wrong schema, different
  commands, missing metric).

Intended wiring: CI archives ``BENCH_*.json`` per run, downloads the
previous run's artifact (tolerating absence) and gates with
``--baseline``; release engineering appends one ``--record`` line per PR
so ``benchmarks/TRAJECTORY.json`` accumulates the perf history in-repo.
``--record`` is idempotent per commit: an entry whose (command, label,
commit) already exists in the trajectory is skipped, so a re-run CI job
cannot double-append.

Phase attribution: pass ``--baseline-trace`` / ``--candidate-trace``
(the runs' ``--trace`` JSONL files) and the comparison attaches a
``repro trace-diff`` verdict — *which phase* moved, not just that
throughput did.  Either trace absent = attribution silently skipped
(first run, or spans not captured); ``--attribution-out PATH`` writes
the machine verdict JSON next to the report.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

#: Payload schema versions this script understands (see
#: ``repro.cli.BENCH_JSON_SCHEMA``).
KNOWN_SCHEMAS = (1,)

#: Trajectory file format version.
TRAJECTORY_SCHEMA = 1

#: Numeric payload keys worth keeping in a trajectory entry, when present.
#: Everything else (configs, nested cache stats) stays in the CI artifact.
TRAJECTORY_KEYS = (
    "speedup",
    "mismatches",
    "cold_seconds",
    "warm_seconds",
    "engine_seconds",
    "solo_seconds",
    "fleet_seconds",
    "worker_scaling",
    "worker_speedup",
    "latency_p50_ms",
    "latency_p99_ms",
)


class CompareError(Exception):
    """Unusable input: bad file, schema drift, mismatched payloads."""


def load_payload(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise CompareError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CompareError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CompareError(f"{path}: payload must be a JSON object")
    schema = payload.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise CompareError(
            f"{path}: unknown schema version {schema!r} "
            f"(known: {list(KNOWN_SCHEMAS)})"
        )
    return payload


def compare(baseline: dict, candidate: dict, metric: str,
            threshold: float) -> tuple[bool, str]:
    """``(regressed, message)`` for one metric across two payloads."""
    if baseline.get("command") != candidate.get("command"):
        raise CompareError(
            f"payload commands differ: {baseline.get('command')!r} vs "
            f"{candidate.get('command')!r} — not comparable"
        )
    try:
        base = float(baseline[metric])
        cand = float(candidate[metric])
    except (KeyError, TypeError, ValueError) as exc:
        raise CompareError(
            f"metric {metric!r} missing or non-numeric in a payload"
        ) from exc
    if base <= 0:
        raise CompareError(f"baseline {metric} must be positive, got {base}")
    change = cand / base - 1.0
    regressed = change < -threshold
    message = (
        f"{baseline['command']}: {metric} {base:.3f} -> {cand:.3f} "
        f"({change:+.1%}, threshold -{threshold:.0%})"
    )
    return regressed, message


def _current_commit() -> str | None:
    """The commit being recorded: CI's GITHUB_SHA, else git, else None."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def trajectory_entry(payload: dict, label: str | None,
                     commit: str | None = None) -> dict:
    """A compact, diff-reviewable summary of one bench payload."""
    entry = {
        "command": payload.get("command"),
        "label": label,
        "date": time.strftime("%Y-%m-%d"),
    }
    if commit is not None:
        entry["commit"] = commit
    for key in TRAJECTORY_KEYS:
        value = payload.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            entry[key] = value
    return entry


def record(paths: list[str], trajectory_path: str,
           label: str | None) -> int:
    """Append one entry per payload to the trajectory file.

    Idempotent per commit: a payload whose (command, label, commit)
    triple is already recorded is skipped with a note (exit 0), so a
    re-run of the same CI job cannot double-append history."""
    if not paths:
        print("error: --record needs at least one payload file",
              file=sys.stderr)
        return 2
    commit = _current_commit()
    try:
        entries = [trajectory_entry(load_payload(p), label, commit)
                   for p in paths]
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trajectory = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if os.path.exists(trajectory_path):
        try:
            with open(trajectory_path, "r", encoding="utf-8") as fh:
                trajectory = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {trajectory_path}: {exc}",
                  file=sys.stderr)
            return 2
        if trajectory.get("schema") != TRAJECTORY_SCHEMA:
            print(f"error: {trajectory_path} has unknown schema "
                  f"{trajectory.get('schema')!r}", file=sys.stderr)
            return 2
    existing = {
        (e.get("command"), e.get("label"), e.get("commit"))
        for e in trajectory.get("entries", ())
        if e.get("commit") is not None
    }
    fresh, skipped = [], []
    for entry in entries:
        key = (entry.get("command"), entry.get("label"), entry.get("commit"))
        if key[2] is not None and key in existing:
            skipped.append(entry)
        else:
            existing.add(key)
            fresh.append(entry)
    for entry in skipped:
        print(f"already recorded {entry['command']} "
              f"(label {entry.get('label')!r}, commit "
              f"{str(entry.get('commit'))[:12]}) — skipping duplicate")
    if not fresh:
        return 0
    trajectory.setdefault("entries", []).extend(fresh)
    try:
        with open(trajectory_path, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        print(f"error: cannot write {trajectory_path}: {exc}",
              file=sys.stderr)
        return 2
    for entry in fresh:
        speedup = entry.get("speedup")
        rendered = f"{speedup:.2f}x" if speedup is not None else "-"
        print(f"recorded {entry['command']} speedup {rendered} "
              f"-> {trajectory_path}")
    return 0


def attribute(baseline_trace: str | None, candidate_trace: str | None,
              out_path: str | None) -> None:
    """Attach a trace-diff phase attribution to the comparison, when both
    runs' trace files exist.  Attribution is best-effort decoration of the
    report — it never changes the exit code."""
    if not baseline_trace or not candidate_trace:
        return
    for path in (baseline_trace, candidate_trace):
        if not os.path.exists(path):
            print(f"no trace at {path} — skipping phase attribution")
            return
    try:
        from repro.obs.diff import trace_diff
    except ImportError as exc:
        print(f"phase attribution unavailable ({exc})")
        return
    try:
        diff = trace_diff(baseline_trace, candidate_trace)
    except OSError as exc:
        print(f"cannot read traces for attribution: {exc}")
        return
    print(f"attribution: {diff['verdict']}")
    for row in diff["phases"][:3]:
        if abs(row["delta_ms"]) <= 0:
            continue
        print(f"  {row['phase']}: self {row['baseline_self_ms']:.2f} -> "
              f"{row['candidate_self_ms']:.2f} ms "
              f"({row['delta_ms']:+.2f} ms, "
              f"{100.0 * row['share']:.0f}% of total delta)")
    if out_path:
        try:
            with open(out_path, "w", encoding="utf-8") as fh:
                json.dump(diff, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {out_path}")
        except OSError as exc:
            print(f"cannot write {out_path}: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="*", metavar="PAYLOAD",
                        help="BENCH_*.json payload(s): [BASELINE] CANDIDATE "
                             "to diff, or the files to --record")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop (default 0.10 = 10%%)")
    parser.add_argument("--metric", default="speedup",
                        help="payload key to compare (default: speedup)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline payload path; when the file does not "
                             "exist the comparison is skipped with exit 0 "
                             "(a previous CI artifact may not exist yet)")
    parser.add_argument("--record", action="store_true",
                        help="append the payload(s) to the trajectory file "
                             "instead of comparing")
    parser.add_argument("--trajectory", default="benchmarks/TRAJECTORY.json",
                        metavar="PATH",
                        help="trajectory file for --record")
    parser.add_argument("--label", default=None,
                        help="entry label for --record (e.g. a PR number)")
    parser.add_argument("--baseline-trace", default=None, metavar="PATH",
                        help="baseline run's --trace JSONL; with "
                             "--candidate-trace, attach a phase "
                             "attribution (skipped when absent)")
    parser.add_argument("--candidate-trace", default=None, metavar="PATH",
                        help="candidate run's --trace JSONL")
    parser.add_argument("--attribution-out", default=None, metavar="PATH",
                        help="write the trace-diff verdict JSON here")
    args = parser.parse_args(argv)

    if args.record:
        return record(args.files, args.trajectory, args.label)

    if not 0 <= args.threshold < 1:
        print("error: --threshold must be in [0, 1)", file=sys.stderr)
        return 2
    if args.baseline is not None:
        if len(args.files) != 1:
            print("error: --baseline takes exactly one candidate payload",
                  file=sys.stderr)
            return 2
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline} — nothing to compare "
                  f"against yet, skipping (ok)")
            return 0
        baseline_path, candidate_path = args.baseline, args.files[0]
    elif len(args.files) == 2:
        baseline_path, candidate_path = args.files
    else:
        print("error: expected BASELINE CANDIDATE (or --baseline PATH "
              "CANDIDATE, or --record PAYLOAD...)", file=sys.stderr)
        return 2
    try:
        baseline = load_payload(baseline_path)
        candidate = load_payload(candidate_path)
        regressed, message = compare(
            baseline, candidate, args.metric, args.threshold
        )
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(message)
    attribute(args.baseline_trace, args.candidate_trace,
              args.attribution_out)
    if regressed:
        print("REGRESSION: candidate fell below the threshold",
              file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
