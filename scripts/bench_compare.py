#!/usr/bin/env python
"""Diff two ``bench-* --json`` payloads; fail on a throughput regression.

Usage::

    python scripts/bench_compare.py BASELINE.json CANDIDATE.json \
        [--threshold 0.10] [--metric speedup]

Both files must be payloads written by ``python -m repro bench-* --json``
(schema-version checked, commands must match).  The default metric is
``speedup`` — the warm-over-cold throughput ratio each bench command
reports — because it is a *ratio* measured within one process, so it
travels across machines far better than raw wall-clock.  The exit code is
the contract CI keys on:

* ``0`` — candidate within ``threshold`` of the baseline (or better);
* ``1`` — candidate regressed by more than ``threshold``;
* ``2`` — unreadable/mismatched payloads (wrong schema, different
  commands, missing metric).

Intended wiring: archive ``BENCH_*.json`` per commit (CI already uploads
them), then compare the current payload against the previous commit's
artifact — or run the same bench twice in one job as a run-to-run
stability gate.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Payload schema versions this script understands (see
#: ``repro.cli.BENCH_JSON_SCHEMA``).
KNOWN_SCHEMAS = (1,)


class CompareError(Exception):
    """Unusable input: bad file, schema drift, mismatched payloads."""


def load_payload(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise CompareError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CompareError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CompareError(f"{path}: payload must be a JSON object")
    schema = payload.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise CompareError(
            f"{path}: unknown schema version {schema!r} "
            f"(known: {list(KNOWN_SCHEMAS)})"
        )
    return payload


def compare(baseline: dict, candidate: dict, metric: str,
            threshold: float) -> tuple[bool, str]:
    """``(regressed, message)`` for one metric across two payloads."""
    if baseline.get("command") != candidate.get("command"):
        raise CompareError(
            f"payload commands differ: {baseline.get('command')!r} vs "
            f"{candidate.get('command')!r} — not comparable"
        )
    try:
        base = float(baseline[metric])
        cand = float(candidate[metric])
    except (KeyError, TypeError, ValueError) as exc:
        raise CompareError(
            f"metric {metric!r} missing or non-numeric in a payload"
        ) from exc
    if base <= 0:
        raise CompareError(f"baseline {metric} must be positive, got {base}")
    change = cand / base - 1.0
    regressed = change < -threshold
    message = (
        f"{baseline['command']}: {metric} {base:.3f} -> {cand:.3f} "
        f"({change:+.1%}, threshold -{threshold:.0%})"
    )
    return regressed, message


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="reference BENCH_*.json payload")
    parser.add_argument("candidate", help="payload under test")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop (default 0.10 = 10%%)")
    parser.add_argument("--metric", default="speedup",
                        help="payload key to compare (default: speedup)")
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        print("error: --threshold must be in [0, 1)", file=sys.stderr)
        return 2
    try:
        baseline = load_payload(args.baseline)
        candidate = load_payload(args.candidate)
        regressed, message = compare(
            baseline, candidate, args.metric, args.threshold
        )
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(message)
    if regressed:
        print("REGRESSION: candidate fell below the threshold",
              file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
