"""Bench: Fig. 21 — PointAcc breakdown on MinkNet(o) (paper: MatMul
dominates latency; energy ~74% compute / 6% SRAM / 20% DRAM)."""

from conftest import run_experiment
from repro.experiments import fig21_breakdown


def test_fig21_breakdown(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig21_breakdown, scale, seed)
    archive(result)
    lat = result.data["latency"]
    assert lat["PointAcc"]["matmul"] > 0.6
    assert lat["PointAcc"]["total_ms"] < lat["GPU"]["total_ms"]
    assert lat["PointAcc"]["total_ms"] < lat["CPU+TPU"]["total_ms"]
    pie = result.data["energy_pie"]
    assert 0.55 < pie["compute"] < 0.92   # paper 0.74
    assert 0.01 < pie["sram"] < 0.15      # paper 0.06
    assert 0.05 < pie["dram"] < 0.40      # paper 0.20
