"""Bench: Section 4.1.4 ablation — MPU TopK vs quick-select engine
(paper: 1.18x faster on average)."""

from conftest import run_experiment
from repro.experiments import abl_topk


def test_abl_topk(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, abl_topk, scale, seed)
    archive(result)
    assert 1.0 < result.data["geomean"] < 1.6  # paper 1.18x
