"""Bench: Fig. 6 — latency breakdowns on commodity hardware (paper:
mapping + movement >50% everywhere; TPU movement 60-90%)."""

from conftest import run_experiment
from repro.experiments import fig06_bottleneck


def test_fig06_bottleneck(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig06_bottleneck, scale, seed)
    archive(result)
    data = result.data
    for plat in ("CPU", "GPU", "mGPU", "CPU+TPU"):
        frac = data[("PointNet++(s)", plat)]
        assert frac["mapping"] + frac["movement"] > 0.5, plat
    tpu = data[("MinkNet(o)", "CPU+TPU")]
    assert 0.6 < tpu["movement"] < 0.99
    gpu = data[("MinkNet(o)", "GPU")]
    assert gpu["movement"] + gpu["mapping"] > 0.35
