"""Bench: input-scale robustness of the PointAcc advantage."""

from conftest import run_experiment
from repro.experiments import abl_scaling


def test_abl_scaling(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, abl_scaling, scale, seed)
    archive(result)
    for net, points in result.data.items():
        # The advantage holds at every operating point...
        assert all(p["speedup"] > 1.0 for p in points), net
        # ...and mapping never swallows PointAcc's latency (the MPU scales
        # with the cloud: "arbitrary scales of point clouds").
        assert all(p["mapping_frac"] < 0.5 for p in points), net
        # Latency grows with input size (sanity).
        ms = [p["pa_ms"] for p in points]
        assert ms == sorted(ms), net
