"""Benchmark harness configuration.

Each benchmark module regenerates one table/figure of the paper at full
scale (``REPRO_BENCH_SCALE`` overrides; 1.0 reproduces paper-like input
sizes).  Regenerated tables are printed and archived under
``benchmarks/_results/`` so EXPERIMENTS.md can reference them.

Traces are cached process-wide (``repro.nn.models.build_trace``), so the
first benchmark that needs a network pays its functional-execution cost and
the rest reuse it.
"""

import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def seed():
    return SEED


#: Archived tables double as golden files for
#: tests/experiments/test_golden_figures.py, so regenerating them must be a
#: deliberate act (`make bench` sets REPRO_BENCH_ARCHIVE=1) at the golden
#: settings — otherwise an ordinary `pytest`/`make test` run would rewrite
#: the goldens moments before the regression test compares against them,
#: and drift could never be caught.  Non-archiving runs still print.
ARCHIVING = (
    os.environ.get("REPRO_BENCH_ARCHIVE") == "1" and SCALE == 1.0 and SEED == 1
)


@pytest.fixture(scope="session")
def archive():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(result):
        table = result.table()
        if ARCHIVING:
            path = RESULTS_DIR / f"{result.experiment_id}.txt"
            path.write_text(table + "\n")
        print("\n" + table)
        return table

    return _archive


def run_experiment(benchmark, module, scale, seed):
    """Run one experiment under pytest-benchmark (single round: these are
    deterministic model evaluations, not microbenchmarks)."""
    return benchmark.pedantic(
        module.run, kwargs={"scale": scale, "seed": seed},
        rounds=1, iterations=1, warmup_rounds=0,
    )
