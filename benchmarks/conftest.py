"""Benchmark harness configuration.

Each benchmark module regenerates one table/figure of the paper at full
scale (``REPRO_BENCH_SCALE`` overrides; 1.0 reproduces paper-like input
sizes).  Regenerated tables are printed and archived under
``benchmarks/_results/`` so EXPERIMENTS.md can reference them.

Traces are cached process-wide (``repro.nn.models.build_trace``), so the
first benchmark that needs a network pays its functional-execution cost and
the rest reuse it.
"""

import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def seed():
    return SEED


@pytest.fixture(scope="session")
def archive():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(result):
        table = result.table()
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(table + "\n")
        print("\n" + table)
        return table

    return _archive


def run_experiment(benchmark, module, scale, seed):
    """Run one experiment under pytest-benchmark (single round: these are
    deterministic model evaluations, not microbenchmarks)."""
    return benchmark.pedantic(
        module.run, kwargs={"scale": scale, "seed": seed},
        rounds=1, iterations=1, warmup_rounds=0,
    )
