"""Bench: Fig. 14 — PointAcc.Edge vs edge devices (paper: 2.5x NX,
9.8x Nano, 141x RPi; 7.8x/16x/127x energy)."""

from conftest import run_experiment
from repro.experiments import fig14_edge


def test_fig14_edge(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig14_edge, scale, seed)
    archive(result)
    speedup = result.data["speedup"]
    energy = result.data["energy"]
    nx = speedup["Jetson Xavier NX"]["GeoMean"]
    nano = speedup["Jetson Nano"]["GeoMean"]
    rpi = speedup["Raspberry Pi 4B"]["GeoMean"]
    assert 1.5 < nx < 5.0           # paper 2.5x
    assert 5.0 < nano < 20.0        # paper 9.8x
    assert 60.0 < rpi < 280.0       # paper 141x
    assert nx < nano < rpi
    assert 3.0 < energy["Jetson Xavier NX"]["GeoMean"] < 16.0   # paper 7.8x
    assert 7.0 < energy["Jetson Nano"]["GeoMean"] < 32.0        # paper 16x
    assert 60.0 < energy["Raspberry Pi 4B"]["GeoMean"] < 260.0  # paper 127x
