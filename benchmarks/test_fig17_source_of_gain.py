"""Bench: Fig. 17 — kernel-mapping algorithm and conv-flow breakdowns
(paper: mergesort loses on CPU/GPU, wins 1.4x on-chip; F-D hurts GPU but
matches G-S matmul-only time on PointAcc)."""

from conftest import run_experiment
from repro.experiments import fig17_source_of_gain


def test_fig17_source_of_gain(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig17_source_of_gain, scale, seed)
    archive(result)
    left = result.data["kernel_mapping"]
    for plat in ("Xeon Gold 6130", "RTX 2080Ti"):
        assert left[plat]["mergesort_ms"] > left[plat]["hash_ms"]
    onchip = left["PointAcc"]["hash_ms"] / left["PointAcc"]["mergesort_ms"]
    assert 1.1 < onchip < 3.0  # paper 1.4x
    # PointAcc kernel mapping is far faster than CPU/GPU (paper: >10x).
    assert left["RTX 2080Ti"]["hash_ms"] > 3 * left["PointAcc"]["mergesort_ms"]
    right = result.data["conv_flow"]
    assert (right["RTX 2080Ti"]["fetch_on_demand_ms"]
            > right["RTX 2080Ti"]["gather_scatter_ms"])
    pa = right["PointAcc"]
    assert pa["fetch_on_demand_ms"] <= 1.6 * pa["gs_matmul_only_ms"]
