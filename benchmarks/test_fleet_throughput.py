"""Fleet throughput: cross-stream tile sharing vs per-stream-only caching.

The acceptance claim of the fleet PR: serving **4 overlapping streams**
through one :class:`~repro.fleet.FleetSession` — shared executor, world-
keyed tile store — must beat the same 4 streams served with
*per-stream-only caching* (each stream its own
:class:`~repro.stream.StreamSession`: private engine, private tile front,
identical tile configuration), while every stream's reports stay
bit-identical and :class:`~repro.fleet.FleetStats` shows nonzero
cross-stream tile hits.

The workload is the regime cross-stream sharing exists for — and the one
per-stream caching structurally cannot help: a *lockstep convoy* (same
trajectory, per-vehicle sensor noise) sweeping fast enough that
consecutive frames of one vehicle never overlap (``speed = 2 * fov``).
Temporal reuse then has nothing to grab — every solo frame recomputes its
world tiles — while vehicles at the same frame index share ~everything
except their own sensor returns, which is exactly what the world-keyed
store turns into cross-stream hits.  Overlap across *streams*, not across
time: the fleet claim isolated from the single-stream streaming claim
(``benchmarks/test_stream_throughput.py`` floors that one separately).

Floor history: PR 4 measured ~1.6x with the per-tile front on *both*
sides and floored at 1.5x.  PR 5's batched planner accelerated both
sides — the solo baseline by ~1.6x, the fleet path by ~1.3x — so the
*relative* sharing margin compressed (the per-tile walking overhead that
sharing used to amortize is simply gone); the sharing floor is now 1.15x
(~1.3x measured), and a second assertion pins the absolute progress:
the batched fleet must beat the same fleet on the per-tile front by
>= 1.1x, so the ratio compression is only ever allowed to come from the
whole system getting faster.

Every arm is measured over ``REPEATS`` fresh runs, interleaved, and
compared min-to-min — wall-clock noise only ever adds time, so the best
of each side is the comparable number (standard microbenchmark practice;
the table prints the mins).
"""

import time

from repro.experiments.common import ExperimentResult
from repro.fleet import FleetSession, StreamSpec
from repro.stream import FrameSequence, SequenceConfig, StreamSession

N_STREAMS = 4
N_FRAMES = 3
SPEEDUP_FLOOR = 1.15
BATCHED_PROGRESS_FLOOR = 1.1
REPEATS = 3
VOXEL_TILE = 128
FOV = 48.0


def _specs(scale):
    # One road, one convoy: identical world and trajectory, per-vehicle
    # sensor seeds.  jitter=0 keeps dynamic objects byte-shared across
    # sensors (the moving returns' *positions* are not sensor noise);
    # clutter stays per-sensor — each vehicle's genuinely private content.
    return [
        StreamSpec(
            name=f"veh{i}",
            sequence=FrameSequence(SequenceConfig(
                seed=7, n_frames=N_FRAMES, base_points=20000, fov=FOV,
                speed=2 * FOV, jitter=0.0, clutter_points=4, sensor_seed=i,
            )),
            benchmark="MinkNet(o)",
            scale=scale,
            n_frames=N_FRAMES,
        )
        for i in range(N_STREAMS)
    ]


def _run_solo(specs, scale):
    t0 = time.perf_counter()
    results = {
        spec.name: StreamSession(
            spec.sequence, spec.benchmark, scale=scale,
            voxel_tile=VOXEL_TILE, tenant=spec.name,
        ).run(N_FRAMES)
        for spec in specs
    }
    return results, time.perf_counter() - t0


def _run_fleet(specs, oracle=False):
    if oracle:
        # The retired per-tile arm: the oracle no longer serves, so it is
        # injected as a pre-built cluster mirroring the session-built one
        # (same shard count, shared WorldTileStore-wrapped front).
        from repro.cluster.cluster import EngineCluster
        from repro.fleet import WorldTileStore
        from repro.stream.incremental import PerTileOracle
        from repro.stream.pipeline import streaming_map_cache

        front = WorldTileStore(PerTileOracle(
            voxel_tile=VOXEL_TILE,
            compose_records=max(4, len(specs) + 2),
        ))
        cluster = EngineCluster(
            n_shards=1, backends=("pointacc",), l2=None,
            tile_cache=front, map_cache=streaming_map_cache,
        )
        fleet = FleetSession(specs, cluster=cluster)
    else:
        fleet = FleetSession(specs, n_shards=1, voxel_tile=VOXEL_TILE,
                             l2=None)
    t0 = time.perf_counter()
    results = fleet.run()
    return fleet, results, time.perf_counter() - t0


def test_fleet_sharing_vs_per_stream_caching(scale):
    # The sharing claim lives in dense frames, where per-tile map compute
    # outweighs fixed per-frame costs; smaller scales shrink the workload
    # out of that regime (and larger ones only get slower), so the
    # benchmark pins its own scale rather than following the harness knob.
    del scale
    eff = 1.0
    specs = _specs(eff)
    for spec in specs:
        spec.sequence.frame(0, scale=eff)  # pre-build the shared world —
        # the synthetic generator is test fixture, not the serving system.

    solo_times, fleet_times, per_tile_times = [], [], []
    solo_results = fleet_results = fleet = None
    for _ in range(REPEATS):
        solo_results, solo_s = _run_solo(specs, eff)
        solo_times.append(solo_s)
        fleet, fleet_results, fleet_s = _run_fleet(specs)
        fleet_times.append(fleet_s)
        _, _, per_tile_s = _run_fleet(specs, oracle=True)
        per_tile_times.append(per_tile_s)

    # Bit-identity: the fleet may never change a stream's results.
    for name, frames in solo_results.items():
        for solo_frame, fleet_frame in zip(frames, fleet_results[name]):
            assert (
                solo_frame.result.reports["pointacc"]
                == fleet_frame.result.reports["pointacc"]
            ), f"fleet changed stream {name} frame {fleet_frame.index}"

    solo_s, fleet_s = min(solo_times), min(fleet_times)
    per_tile_s = min(per_tile_times)
    speedup = solo_s / fleet_s
    progress = per_tile_s / fleet_s
    total = N_STREAMS * N_FRAMES
    world = fleet.summary()["world_tiles"]
    rows = [
        ["per-stream caching", f"{solo_s * 1e3:.0f}",
         f"{total / solo_s:.2f}", "-"],
        ["shared fleet (per-tile front)", f"{per_tile_s * 1e3:.0f}",
         f"{total / per_tile_s:.2f}", "-"],
        ["shared fleet (batched front)", f"{fleet_s * 1e3:.0f}",
         f"{total / fleet_s:.2f}",
         f"{world['cross_hits']}/{world['lookups']}"],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-fleet",
        title=(f"{N_STREAMS} convoy streams x {N_FRAMES} frames @ scale "
               f"{eff}: {speedup:.2f}x sharing, {progress:.2f}x batching"),
        headers=["mode", "wall ms", "frames/s", "cross-stream hits"],
        rows=rows,
        data={"speedup": speedup, "batched_progress": progress,
              "world_tiles": world},
    ).table())

    # The win must come from cross-stream sharing, and be visible as such.
    assert world["cross_hits"] > 0, "fleet shows no cross-stream tile hits"
    assert world["shared_keys"] > 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"(solo {solo_s:.3f}s vs fleet {fleet_s:.3f}s)"
    )
    # ...and the floor compression vs PR 4 must be paid for by absolute
    # progress: the batched fleet beats the per-tile fleet outright.
    assert progress >= BATCHED_PROGRESS_FLOOR, (
        f"batched fleet only {progress:.2f}x over the per-tile fleet "
        f"(per-tile {per_tile_s:.3f}s vs batched {fleet_s:.3f}s)"
    )


def test_disjoint_fleet_shares_nothing(scale):
    """Control: four streams in four *different* worlds share no tiles —
    cross-stream hits are earned by geometry, not by accounting."""
    eff = min(max(scale, 0.2), 0.4)
    specs = [
        StreamSpec(
            name=f"veh{i}",
            sequence=FrameSequence(SequenceConfig(
                seed=20 + i, n_frames=2, base_points=6000, fov=24.0,
                speed=2.0,
            )),
            benchmark="MinkNet(o)",
            scale=eff,
            n_frames=2,
        )
        for i in range(N_STREAMS)
    ]
    fleet = FleetSession(specs, n_shards=1, voxel_tile=VOXEL_TILE, l2=None)
    fleet.run()
    world = fleet.world_store.stats()
    assert world.cross_hits == 0
    assert world.misses > 0
