"""Worker scaling: fleet throughput vs shard-worker process count.

The acceptance claim of the worker-mode PR: serving 4 streams through one
:class:`~repro.fleet.FleetSession` with ``workers=4`` — each shard's
engine in a real OS process — must beat the identical in-process
(``workers=0``) fleet by >= 1.5x on a 4+-core box, with every stream's
reports bit-identical.  This is the first wall-clock win in the repo that
comes from *parallelism* rather than caching.

The workload is built so caching cannot stand in for parallelism —
otherwise a cache-hit-rich configuration would hide a broken worker path:

* four **disjoint** worlds (different seeds), so cross-stream tile
  sharing has nothing to share;
* ``speed = 2 * fov``: consecutive frames of one stream never overlap,
  so temporal tile reuse has nothing to grab either;
* ``l2=None``: no shared store to blur the process boundary.

Every frame is then full compute, and the only difference between the
arms is how many cores that compute occupies.  Runs below 4 CPUs skip:
on a starved box the arms measure scheduler contention, not the claim
(the dev loop is 1-core; CI runners have 4).

Each arm is measured over ``REPEATS`` fresh sessions and compared
min-to-min — wall-clock noise only ever adds time, so the best of each
side is the comparable number.
"""

import os
import time

import pytest

from repro.experiments.common import ExperimentResult
from repro.fleet import FleetSession, StreamSpec
from repro.stream import FrameSequence, SequenceConfig

N_STREAMS = 4
N_FRAMES = 3
SCALE = 0.5
FOV = 24.0
REPEATS = 2
SPEEDUP_FLOOR = 1.5
WORKER_ARMS = (2, 4)


def _specs():
    # Disjoint worlds, reuse-free trajectories: see the module docstring.
    return [
        StreamSpec(
            name=f"veh{i}",
            sequence=FrameSequence(SequenceConfig(
                seed=50 + i, n_frames=N_FRAMES, base_points=9000, fov=FOV,
                speed=2 * FOV,
            )),
            benchmark="MinkNet(o)",
            scale=SCALE,
            n_frames=N_FRAMES,
        )
        for i in range(N_STREAMS)
    ]


def _run_fleet(workers: int):
    specs = _specs()
    for spec in specs:
        spec.sequence.frame(0, scale=SCALE)  # pre-build the synthetic
        # worlds: generator cost is test fixture, not serving time (and in
        # worker mode the pre-built frames fork into every worker warm).
    with FleetSession(
        specs, n_shards=N_STREAMS, routing="least-loaded", l2=None,
        workers=workers,
    ) as fleet:
        t0 = time.perf_counter()
        results = fleet.run()
        return results, time.perf_counter() - t0


def test_fleet_throughput_scales_with_workers(scale):
    del scale  # the benchmark pins its own scale (see module docstring)
    if (os.cpu_count() or 1) < 4:
        pytest.skip("worker scaling needs a 4+-core box; this one has "
                    f"{os.cpu_count()}")

    times = {workers: [] for workers in (0, *WORKER_ARMS)}
    results = {}
    for _ in range(REPEATS):
        for workers in times:
            results[workers], elapsed = _run_fleet(workers)
            times[workers].append(elapsed)

    # Processes may never change a result: every worker arm must match
    # the in-process fleet frame for frame, float for float.
    for workers in WORKER_ARMS:
        for name, frames in results[0].items():
            for ref, frame in zip(frames, results[workers][name]):
                assert (
                    frame.result.reports["pointacc"]
                    == ref.result.reports["pointacc"]
                ), f"workers={workers} changed stream {name} frame {frame.index}"

    base_s = min(times[0])
    total = N_STREAMS * N_FRAMES
    speedups = {w: base_s / min(times[w]) for w in WORKER_ARMS}
    rows = [
        ["in-process (workers=0)", f"{base_s * 1e3:.0f}",
         f"{total / base_s:.2f}", "-"],
    ] + [
        [f"{w} worker processes", f"{min(times[w]) * 1e3:.0f}",
         f"{total / min(times[w]):.2f}", f"{speedups[w]:.2f}x"]
        for w in WORKER_ARMS
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-workers",
        title=(f"{N_STREAMS} disjoint streams x {N_FRAMES} reuse-free "
               f"frames @ scale {SCALE} on {os.cpu_count()} cores: "
               f"{speedups[4]:.2f}x at 4 workers"),
        headers=["mode", "wall ms", "frames/s", "speedup"],
        rows=rows,
        data={"worker_scaling": speedups[4],
              "speedups": {str(w): s for w, s in speedups.items()},
              "base_seconds": base_s},
    ).table())

    assert speedups[4] >= SPEEDUP_FLOOR, (
        f"4-worker fleet only {speedups[4]:.2f}x over in-process "
        f"(floor {SPEEDUP_FLOOR}x; base {base_s:.3f}s vs "
        f"{min(times[4]):.3f}s)"
    )
