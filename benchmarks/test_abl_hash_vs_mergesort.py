"""Bench: Section 4.1.1 ablation — mergesort vs hash kernel mapping
(paper: 1.4x faster, up to 14x smaller)."""

from conftest import run_experiment
from repro.experiments import abl_hash_vs_mergesort


def test_abl_hash_vs_mergesort(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, abl_hash_vs_mergesort, scale, seed)
    archive(result)
    for entry in result.data["layers"]:
        assert 1.1 < entry["speedup"] < 3.0, entry       # paper 1.4x
    assert max(e["area_ratio"] for e in result.data["layers"]) > 10.0
