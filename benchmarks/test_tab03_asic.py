"""Bench: Table 3 — ASIC configurations (paper: 15.7 / 3.9 mm2 at 40 nm,
8 TOPS / 512 GOPS)."""

from conftest import run_experiment
from repro.experiments import tab03_asic


def test_tab03_asic(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, tab03_asic, scale, seed)
    archive(result)
    data = result.data
    assert abs(data["PointAcc"]["area_mm2"] - 15.7) / 15.7 < 0.1
    assert abs(data["PointAcc.Edge"]["area_mm2"] - 3.9) / 3.9 < 0.2
    assert abs(data["PointAcc"]["peak_tops"] - 8.19) < 0.1
    assert abs(data["PointAcc.Edge"]["peak_tops"] - 0.512) < 0.01
