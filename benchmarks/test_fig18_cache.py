"""Bench: Fig. 18 — cache miss rate vs block size / kernel / channels
(paper: monotone decrease with block size, halves with channel width)."""

from conftest import run_experiment
from repro.experiments import fig18_cache


def test_fig18_cache(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig18_cache, scale, seed)
    archive(result)
    curves = result.data["curves"]
    for key, rates in curves.items():
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:])), key
        assert rates[0] < 0.45          # paper tops out around 30%
        assert rates[-1] < rates[0] / 3  # large blocks cut misses hard
    assert curves[(2, 128)][0] < 0.7 * curves[(2, 64)][0]
    assert curves[(3, 128)][0] < 0.7 * curves[(3, 64)][0]
