"""Bench: DRAM row-buffer locality gap (the bandwidth-model validation)."""

from conftest import run_experiment
from repro.experiments import abl_dram_timing


def test_abl_dram_timing(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, abl_dram_timing, scale, seed)
    archive(result)
    for name, d in result.data.items():
        assert d["sequential_gbps"] > d["random_gbps"], name
        assert d["sequential_hit_rate"] > 0.8, name
        assert d["gap"] > 1.5, name
