"""Engine throughput microbench: cached batch vs cold sequential simulation.

A repeated-cloud batch (every distinct workload appears ``REPEATS`` times,
the steady-state serving pattern) runs three ways:

* cold sequential — fresh trace + fresh models per request, no caches (the
  pre-engine behaviour);
* engine, map cache only — op-level content-addressed memoization of
  FPS/kNN/ball-query/kernel-map results, traces still rebuilt;
* engine, full — map cache plus the request-level trace/report memo.

The full engine must clear >= 1.5x throughput on this batch (the PR's
acceptance floor; structurally it sits near REPEATS x), and every report
must be bit-identical to the cold run — caching may never change a result.

Unlike the experiment benches this table is *printed, not archived*: every
cell is machine-dependent wall-clock timing, so writing it into
``benchmarks/_results/`` (the deterministic golden-figure store) would
churn on every machine.
"""

import time

from repro.engine import SimRequest, SimulationEngine, run_cold
from repro.experiments.common import ExperimentResult

REPEATS = 3
SPEEDUP_FLOOR = 1.5


def _batch(scale: float) -> list[SimRequest]:
    # The throughput bench does not need paper-size clouds; cap the scale so
    # the suite stays fast while the work mix stays representative.
    eff = min(scale, 0.35)
    distinct = [
        SimRequest("PointNet++(c)", scale=eff, seed=0),
        SimRequest("DGCNN", scale=eff, seed=0),
        SimRequest("PointNet++(c)", scale=eff, seed=1),
    ]
    return [r for r in distinct for _ in range(REPEATS)]


def test_engine_throughput(scale):
    batch = _batch(scale)
    n = len(batch)

    t0 = time.perf_counter()
    cold = [run_cold(r, backends=("pointacc",)) for r in batch]
    cold_s = time.perf_counter() - t0

    ops_engine = SimulationEngine(
        backends=("pointacc",), policy="bucketed", reuse_traces=False
    )
    t0 = time.perf_counter()
    ops_results = ops_engine.run_batch(batch)
    ops_s = time.perf_counter() - t0

    full_engine = SimulationEngine(backends=("pointacc",), policy="bucketed")
    t0 = time.perf_counter()
    full_results = full_engine.run_batch(batch)
    full_s = time.perf_counter() - t0

    for label, results in (("map-cache", ops_results), ("full", full_results)):
        for baseline, result in zip(cold, results):
            assert baseline.reports["pointacc"] == result.reports["pointacc"], (
                f"{label} engine changed a report for {result.request}"
            )

    full_stats = full_engine.stats()
    ops_stats = ops_engine.stats()
    speedup = cold_s / full_s
    rows = [
        ["cold sequential", f"{cold_s * 1e3:.1f}", f"{n / cold_s:.1f}", "-", "-"],
        ["engine map-cache only", f"{ops_s * 1e3:.1f}", f"{n / ops_s:.1f}",
         "0", str(ops_stats.map_cache.get("hits", 0))],
        ["engine full", f"{full_s * 1e3:.1f}", f"{n / full_s:.1f}",
         str(full_stats.trace_reuses),
         str(full_stats.map_cache.get("hits", 0))],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-engine",
        title=(f"Engine throughput on a repeated-cloud batch "
               f"({n} requests, x{REPEATS} repeats): {speedup:.1f}x"),
        headers=["mode", "wall ms", "req/s", "trace reuses", "map hits"],
        rows=rows,
        data={"speedup": speedup, "requests": n},
    ).table())

    assert full_stats.trace_reuses == n - n // REPEATS
    assert speedup >= SPEEDUP_FLOOR, (
        f"engine speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"(cold {cold_s:.3f}s vs engine {full_s:.3f}s)"
    )
