"""Shell-assembly microbench: whole-partition sweeps vs the per-tile walk.

Two microbenchmarks isolate the two mechanisms the vectorized front PR
paid for, each floored against the retired per-tile oracle on the same
inputs:

``test_vectorized_shell_assembly_beats_per_tile_walk``
    Cold shell assembly on a small-tile partition (a few points per
    tile, thousands of occupied tiles — the regime where the per-tile
    walk is pure Python overhead).  One
    :meth:`~repro.stream.tiles.TilePartition.fill_shells` sweep must
    beat calling :meth:`~repro.stream.tiles.TilePartition.shell` per
    occupied tile, with element-identical canonical index arrays.

``test_warm_voxelize_compose_beats_per_tile_remerge``
    Warm voxelize on a stream step, again in the small-tile regime:
    both fronts are warmed on frame A, then timed serving frame B
    (same cloud, one corner's points replaced).  The planner splices
    the surviving sorted runs around the recomputed tiles
    (:class:`~repro.stream.plan.VoxelComposer`); the oracle re-walks
    every tile and re-merges from scratch — the exact full re-argsort
    the composer retires.

Both are wall-clock microbenches: interleaved repeats, compared
min-to-min (noise only ever adds time), tables printed but never
archived.
"""

import time

import numpy as np

from repro.engine import MapCache
from repro.experiments.common import ExperimentResult
from repro.mapping.hooks import TieredLookup, use_map_cache
from repro.pointcloud.coords import voxelize
from repro.stream import TileMapCache
from repro.stream.incremental import PerTileOracle
from repro.stream.tiles import TilePartition

ASSEMBLY_SPEEDUP_FLOOR = 2.0
COMPOSE_SPEEDUP_FLOOR = 1.3
REPEATS = 3


def test_vectorized_shell_assembly_beats_per_tile_walk():
    rng = np.random.default_rng(11)
    coords = np.unique(rng.integers(0, 160, (30000, 3), dtype=np.int64),
                       axis=0)
    voxel_tile, reach = 8, 1

    # Exactness first: the sweep must hand back the oracle's canonical
    # index arrays element-for-element, tile by tile.
    part = TilePartition(coords, voxel_tile)
    digests, flat, bounds = part.fill_shells(reach)
    keys = list(part.keys())
    for i, key in enumerate(keys):
        _, canonical = part.shell(key, reach)
        assert np.array_equal(flat[bounds[i]:bounds[i + 1]], canonical)

    vec_times, walk_times = [], []
    n_tiles = len(keys)
    for _ in range(REPEATS):
        # Fresh partitions each repeat: both paths memoize, so timing a
        # second call on the same object would measure a dict lookup.
        vec = TilePartition(coords, voxel_tile)
        t0 = time.perf_counter()
        vec.fill_shells(reach)
        vec_times.append(time.perf_counter() - t0)

        walk = TilePartition(coords, voxel_tile)
        t0 = time.perf_counter()
        for key in walk.keys():
            walk.shell(key, reach)
        walk_times.append(time.perf_counter() - t0)
    vec_s, walk_s = min(vec_times), min(walk_times)

    speedup = walk_s / vec_s
    density = len(coords) / n_tiles
    rows = [
        ["per-tile shell() walk", f"{walk_s * 1e3:.1f}",
         f"{n_tiles / walk_s:.0f}"],
        ["fill_shells() sweep", f"{vec_s * 1e3:.1f}",
         f"{n_tiles / vec_s:.0f}"],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-shell-assembly",
        title=(f"Shell assembly over {n_tiles} tiles at {density:.1f} "
               f"points/tile: {speedup:.1f}x"),
        headers=["mode", "wall ms", "tiles/s"],
        rows=rows,
        data={"speedup": speedup, "tiles": n_tiles},
    ).table())

    assert speedup >= ASSEMBLY_SPEEDUP_FLOOR, (
        f"vectorized shell assembly only {speedup:.2f}x over the per-tile "
        f"walk (floor {ASSEMBLY_SPEEDUP_FLOOR}x; walk {walk_s * 1e3:.1f} ms "
        f"vs sweep {vec_s * 1e3:.1f} ms)"
    )


def test_warm_voxelize_compose_beats_per_tile_remerge():
    rng = np.random.default_rng(12)
    pts_a = rng.uniform(0, 48, (60000, 3))
    # Frame B: one corner's returns replaced — every other tile's sorted
    # run survives verbatim, which is exactly what the splice path reuses.
    corner = np.all(pts_a < 8.0, axis=1)
    pts_b = np.concatenate([
        pts_a[~corner],
        rng.uniform(0, 8.0, (int(corner.sum()), 3)),
    ])
    voxel_size, voxel_tile = 0.1, 8

    def front_chain(oracle):
        cls = PerTileOracle if oracle else TileMapCache
        front = cls(min_points=1, voxel_tile=voxel_tile)
        chain = TieredLookup([MapCache(max_entries=1 << 15)], front=front)
        return front, chain

    def serve_b(oracle):
        front, chain = front_chain(oracle)
        with use_map_cache(chain):
            voxelize(pts_a, voxel_size)           # warm (untimed)
            t0 = time.perf_counter()
            got = voxelize(pts_b, voxel_size)
            elapsed = time.perf_counter() - t0
        return elapsed, got, front

    planner_times, oracle_times = [], []
    planner_got = oracle_got = planner_front = None
    for _ in range(REPEATS):
        oracle_s, oracle_got, _ = serve_b(True)
        oracle_times.append(oracle_s)
        planner_s, planner_got, planner_front = serve_b(False)
        planner_times.append(planner_s)
    planner_s, oracle_s = min(planner_times), min(oracle_times)

    expect = voxelize(pts_b, voxel_size)
    for a, b, name in ((planner_got, expect, "planner"),
                       (oracle_got, expect, "oracle")):
        assert np.array_equal(a[0], b[0]), f"{name} changed voxel coords"
        assert np.array_equal(a[1], b[1]), f"{name} changed voxel index map"

    compose = planner_front.stats().snapshot()["vox_compose"]
    speedup = oracle_s / planner_s
    rows = [
        ["per-tile remerge (oracle)", f"{oracle_s * 1e3:.1f}", "-"],
        ["delta-spliced compose", f"{planner_s * 1e3:.1f}",
         f"{compose['splices']}/{compose['full_merges']}"],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-voxelize-compose",
        title=(f"Warm voxelize on a one-corner delta "
               f"({len(pts_b)} pts): {speedup:.2f}x"),
        headers=["mode", "wall ms", "splices/full merges"],
        rows=rows,
        data={"speedup": speedup, "compose": compose},
    ).table())

    # The win must come through the splice path, not a lucky full merge.
    assert compose["splices"] > 0, "warm serve never spliced"
    assert speedup >= COMPOSE_SPEEDUP_FLOOR, (
        f"spliced voxelize compose only {speedup:.2f}x over the per-tile "
        f"remerge (floor {COMPOSE_SPEEDUP_FLOOR}x; oracle "
        f"{oracle_s * 1e3:.1f} ms vs planner {planner_s * 1e3:.1f} ms)"
    )
