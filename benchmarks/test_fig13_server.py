"""Bench: Fig. 13 — speedup/energy vs server platforms (paper: 3.7x GPU,
53x TPU, 90x CPU; 22x/210x/176x energy)."""

from conftest import run_experiment
from repro.experiments import fig13_server


def test_fig13_server(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig13_server, scale, seed)
    archive(result)
    speedup = result.data["speedup"]
    energy = result.data["energy"]
    # PointAcc wins everywhere; platform ordering matches the paper.
    gpu = speedup["RTX 2080Ti"]["GeoMean"]
    tpu = speedup["Xeon Skylake + TPU V3"]["GeoMean"]
    cpu = speedup["Xeon Gold 6130"]["GeoMean"]
    assert 2.0 < gpu < 8.0          # paper 3.7x
    assert 25.0 < tpu < 110.0       # paper 53x
    assert 40.0 < cpu < 180.0       # paper 90x
    assert gpu < tpu and gpu < cpu
    assert 10.0 < energy["RTX 2080Ti"]["GeoMean"] < 60.0       # paper 22x
    assert 100.0 < energy["Xeon Skylake + TPU V3"]["GeoMean"] < 500.0
    assert energy["Xeon Gold 6130"]["GeoMean"] > 100.0
