"""Bench: Fig. 2 — point-cloud nets: higher accuracy, fewer MACs, slower on
GPU than 2D-projection CNNs (paper: 7x fewer MACs, 1.3x slower)."""

from conftest import run_experiment
from repro.experiments import fig02_motivation


def test_fig02_motivation(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig02_motivation, scale, seed)
    archive(result)
    d2 = result.data["2d"]["SalsaNext"]
    d3 = result.data["3d"]["MinkNet(o)"]
    assert d3["miou"] > d2["miou"]             # higher accuracy
    assert d3["gmacs"] < d2["gmacs"]           # fewer MACs
    assert d3["gpu_ms"] > d2["gpu_ms"]         # yet slower on GPU
