"""Streaming throughput microbench: warm streaming vs cold per-frame.

The acceptance claim of the streaming PR: on an overlapping synthetic
LiDAR sequence, a single-pass :class:`~repro.stream.StreamSession` —
tile-granular incremental map reuse + geometry-only trace construction +
resident weights — must clear >= 3x the throughput of the cold per-frame
baseline (:func:`repro.engine.run_cold` per frame: fresh functional
simulation, no caches — exactly what serving this stream looked like
before the subsystem existed), while every frame's report stays
bit-identical to that baseline.

Unlike the engine/cluster benches there is no warm-up pass: the session
starts cold and earns its reuse *within* the stream, frame over frame —
that is the streaming regime's actual win.  The table is printed, not
archived (wall-clock timings are machine-dependent and never touch the
golden store).
"""

import time

from repro.engine import SimRequest, SimulationEngine, run_cold
from repro.experiments.common import ExperimentResult
from repro.nn.models.registry import get_benchmark
from repro.pointcloud.coords import voxelize
from repro.stream import FrameSequence, SequenceConfig, StreamSession
from repro.stream.incremental import PerTileOracle
from repro.stream.pipeline import streaming_map_cache
from repro.stream.tiles import TilePartition

N_FRAMES = 8
SPEEDUP_FLOOR = 3.0
STEADY_HIT_RATE_FLOOR = 0.2
BATCHED_SPEEDUP_FLOOR = 1.5
SMALL_TILE_POINTS_CEILING = 100


def test_warm_streaming_vs_cold_per_frame(scale):
    # Below ~0.4 the frames shrink out of the regime the claim is about
    # (a few thousand voxels, where per-frame fixed costs dominate and no
    # realistic stream lives); above 1.0 the suite gets slow without
    # learning more.
    eff = min(max(scale, 0.4), 1.0)
    sequence = FrameSequence(SequenceConfig(
        seed=1, n_frames=N_FRAMES, base_points=20000, fov=32.0, speed=1.5,
    ))
    session = StreamSession(sequence, "MinkNet(o)", scale=eff)

    t0 = time.perf_counter()
    warm = session.run(N_FRAMES)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = [
        run_cold(SimRequest(benchmark=session.notation, scale=eff, seed=i))
        for i in range(N_FRAMES)
    ]
    cold_s = time.perf_counter() - t0

    for c, w in zip(cold, warm):
        assert c.reports["pointacc"] == w.result.reports["pointacc"], (
            f"streaming changed the report of frame {w.index}"
        )

    tiles = session.tile_cache.stats().snapshot()
    speedup = cold_s / warm_s
    rows = [
        ["cold per-frame", f"{cold_s * 1e3:.0f}", f"{N_FRAMES / cold_s:.2f}",
         "-"],
        ["warm streaming", f"{warm_s * 1e3:.0f}", f"{N_FRAMES / warm_s:.2f}",
         f"{tiles['tile_hits']}/{tiles['tile_lookups']}"],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-stream",
        title=(f"Single-pass streaming on {N_FRAMES} overlapping frames "
               f"@ scale {eff}: {speedup:.1f}x"),
        headers=["mode", "wall ms", "frames/s", "tile hits"],
        rows=rows,
        data={"speedup": speedup, "tiles": tiles},
    ).table())

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm streaming speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor (cold {cold_s:.3f}s vs warm {warm_s:.3f}s)"
    )

    # The win must be attributable to *tile* reuse, not just whole-op
    # digests: steady-state frames (everything after the cold first frame)
    # must serve a meaningful share of kernel-map sub-lookups from cache.
    assert session.geometry_only
    assert tiles["tile_hit_rate"] >= STEADY_HIT_RATE_FLOOR, (
        f"tile hit rate {tiles['tile_hit_rate']:.2f} below "
        f"{STEADY_HIT_RATE_FLOOR} — the stream is not reusing tiles"
    )
    assert tiles["by_op"].get("kernel_map/mergesort", {}).get("hits", 0) > 0


def test_batched_front_beats_per_tile_on_small_tiles():
    """The vectorized-front acceptance claim: in the small-tile regime
    (<= 100 points per kernel-map tile, where the per-tile walk is
    overhead-bound), the batched plan/execute front must clear >= 1.5x
    the throughput of the retired per-tile oracle on the same stream —
    with bit-identical frame reports.  The oracle no longer serves, so
    its arm is built by injecting an engine around
    :class:`~repro.stream.incremental.PerTileOracle`.

    The benchmark pins its own scale: the claim is about tile granularity,
    not about REPRO_BENCH_SCALE's input-size regime.
    """
    n_frames = 4
    repeats = 3
    voxel_tile = 16
    cfg = SequenceConfig(seed=3, n_frames=n_frames, base_points=16000,
                         fov=32.0, speed=1.5)

    # Pin the regime the claim is about: mean points per kernel-map tile
    # on the first frame's voxel cloud must sit under the ceiling.
    sequence = FrameSequence(cfg)
    bench = get_benchmark("MinkNet(o)")
    coords, _ = voxelize(sequence.frame(0, scale=0.6).points,
                         bench.voxel_size)
    density = len(coords) / len(TilePartition(coords, voxel_tile))
    assert density <= SMALL_TILE_POINTS_CEILING, (
        f"benchmark drifted out of the small-tile regime: "
        f"{density:.1f} points/tile"
    )

    def run(oracle):
        if oracle:
            engine = SimulationEngine(
                backends=("pointacc",), policy="fifo",
                map_cache=streaming_map_cache(),
                tile_cache=PerTileOracle(voxel_tile=voxel_tile),
            )
            session = StreamSession(FrameSequence(cfg), "MinkNet(o)",
                                    scale=0.6, engine=engine)
        else:
            session = StreamSession(FrameSequence(cfg), "MinkNet(o)",
                                    scale=0.6, voxel_tile=voxel_tile)
        t0 = time.perf_counter()
        results = session.run(n_frames)
        return time.perf_counter() - t0, results, session

    # Interleaved repeats, compared min-to-min: wall-clock noise (a busy
    # CI runner) only ever adds time, so the best of each side is the
    # comparable number — same practice as the fleet benchmark.
    per_tile_times, batched_times = [], []
    per_tile_results = batched_results = batched_session = None
    for _ in range(repeats):
        per_tile_s, per_tile_results, _ = run(True)
        per_tile_times.append(per_tile_s)
        batched_s, batched_results, batched_session = run(False)
        batched_times.append(batched_s)
    per_tile_s, batched_s = min(per_tile_times), min(batched_times)

    for a, b in zip(per_tile_results, batched_results):
        assert a.result.reports["pointacc"] == b.result.reports["pointacc"], (
            f"batched front changed the report of frame {b.index}"
        )

    tiles = batched_session.tile_cache.stats().snapshot()
    speedup = per_tile_s / batched_s
    rows = [
        ["per-tile front", f"{per_tile_s * 1e3:.0f}",
         f"{n_frames / per_tile_s:.2f}", "-"],
        ["batched front (min of {})".format(repeats),
         f"{batched_s * 1e3:.0f}", f"{n_frames / batched_s:.2f}",
         f"{tiles['compose']['splices']}/{tiles['compose']['full_sorts']}"],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-stream-batched",
        title=(f"Batched vs per-tile front, {n_frames} frames at "
               f"{density:.1f} points/tile: {speedup:.2f}x"),
        headers=["mode", "wall ms", "frames/s", "splices/full sorts"],
        rows=rows,
        data={"speedup": speedup, "points_per_tile": density},
    ).table())

    assert speedup >= BATCHED_SPEEDUP_FLOOR, (
        f"batched front speedup {speedup:.2f}x below the "
        f"{BATCHED_SPEEDUP_FLOOR}x floor (per-tile {per_tile_s:.3f}s vs "
        f"batched {batched_s:.3f}s)"
    )
    # The delta composer must actually be earning its keep on this stream.
    assert tiles["compose"]["splices"] > 0


def test_tile_reuse_beats_whole_op_digests(scale):
    """Ablation: on the same overlapping stream, a session with the tile
    front must reuse mapping work that a digest-only session cannot (whole
    frames are never bit-identical, so whole-op digests never hit)."""
    eff = min(max(scale, 0.2), 0.5)
    sequence = FrameSequence(SequenceConfig(
        seed=2, n_frames=4, base_points=12000, fov=28.0, speed=1.5,
    ))
    tiled = StreamSession(sequence, "MinkNet(o)", scale=eff)
    tiled.run(4)
    digest_only = StreamSession(sequence, "MinkNet(o)", scale=eff,
                                use_tiles=False)
    digest_only.run(4)

    assert tiled.tile_cache.stats().tile_hits > 0
    # Digest-only: every kernel-map lookup misses (frames never repeat).
    digest_stats = digest_only.executor.stats().map_cache
    assert digest_stats["hits"] == 0
