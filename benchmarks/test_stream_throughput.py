"""Streaming throughput microbench: warm streaming vs cold per-frame.

The acceptance claim of the streaming PR: on an overlapping synthetic
LiDAR sequence, a single-pass :class:`~repro.stream.StreamSession` —
tile-granular incremental map reuse + geometry-only trace construction +
resident weights — must clear >= 3x the throughput of the cold per-frame
baseline (:func:`repro.engine.run_cold` per frame: fresh functional
simulation, no caches — exactly what serving this stream looked like
before the subsystem existed), while every frame's report stays
bit-identical to that baseline.

Unlike the engine/cluster benches there is no warm-up pass: the session
starts cold and earns its reuse *within* the stream, frame over frame —
that is the streaming regime's actual win.  The table is printed, not
archived (wall-clock timings are machine-dependent and never touch the
golden store).
"""

import time

from repro.engine import SimRequest, run_cold
from repro.experiments.common import ExperimentResult
from repro.stream import FrameSequence, SequenceConfig, StreamSession

N_FRAMES = 8
SPEEDUP_FLOOR = 3.0
STEADY_HIT_RATE_FLOOR = 0.2


def test_warm_streaming_vs_cold_per_frame(scale):
    # Below ~0.4 the frames shrink out of the regime the claim is about
    # (a few thousand voxels, where per-frame fixed costs dominate and no
    # realistic stream lives); above 1.0 the suite gets slow without
    # learning more.
    eff = min(max(scale, 0.4), 1.0)
    sequence = FrameSequence(SequenceConfig(
        seed=1, n_frames=N_FRAMES, base_points=20000, fov=32.0, speed=1.5,
    ))
    session = StreamSession(sequence, "MinkNet(o)", scale=eff)

    t0 = time.perf_counter()
    warm = session.run(N_FRAMES)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = [
        run_cold(SimRequest(benchmark=session.notation, scale=eff, seed=i))
        for i in range(N_FRAMES)
    ]
    cold_s = time.perf_counter() - t0

    for c, w in zip(cold, warm):
        assert c.reports["pointacc"] == w.result.reports["pointacc"], (
            f"streaming changed the report of frame {w.index}"
        )

    tiles = session.tile_cache.stats().snapshot()
    speedup = cold_s / warm_s
    rows = [
        ["cold per-frame", f"{cold_s * 1e3:.0f}", f"{N_FRAMES / cold_s:.2f}",
         "-"],
        ["warm streaming", f"{warm_s * 1e3:.0f}", f"{N_FRAMES / warm_s:.2f}",
         f"{tiles['tile_hits']}/{tiles['tile_lookups']}"],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-stream",
        title=(f"Single-pass streaming on {N_FRAMES} overlapping frames "
               f"@ scale {eff}: {speedup:.1f}x"),
        headers=["mode", "wall ms", "frames/s", "tile hits"],
        rows=rows,
        data={"speedup": speedup, "tiles": tiles},
    ).table())

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm streaming speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor (cold {cold_s:.3f}s vs warm {warm_s:.3f}s)"
    )

    # The win must be attributable to *tile* reuse, not just whole-op
    # digests: steady-state frames (everything after the cold first frame)
    # must serve a meaningful share of kernel-map sub-lookups from cache.
    assert session.geometry_only
    assert tiles["tile_hit_rate"] >= STEADY_HIT_RATE_FLOOR, (
        f"tile hit rate {tiles['tile_hit_rate']:.2f} below "
        f"{STEADY_HIT_RATE_FLOOR} — the stream is not reusing tiles"
    )
    assert tiles["by_op"].get("kernel_map/mergesort", {}).get("hits", 0) > 0


def test_tile_reuse_beats_whole_op_digests(scale):
    """Ablation: on the same overlapping stream, a session with the tile
    front must reuse mapping work that a digest-only session cannot (whole
    frames are never bit-identical, so whole-op digests never hit)."""
    eff = min(max(scale, 0.2), 0.5)
    sequence = FrameSequence(SequenceConfig(
        seed=2, n_frames=4, base_points=12000, fov=28.0, speed=1.5,
    ))
    tiled = StreamSession(sequence, "MinkNet(o)", scale=eff)
    tiled.run(4)
    digest_only = StreamSession(sequence, "MinkNet(o)", scale=eff,
                                use_tiles=False)
    digest_only.run(4)

    assert tiled.tile_cache.stats().tile_hits > 0
    # Digest-only: every kernel-map lookup misses (frames never repeat).
    digest_stats = digest_only.executor.stats().map_cache
    assert digest_stats["hits"] == 0
