"""Bench: Fig. 19 — per-layer DRAM with/without caching (paper: 6.3x on
S3DIS, 3.5x on SemanticKITTI)."""

from conftest import run_experiment
from repro.experiments import fig19_dram


def test_fig19_dram(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig19_dram, scale, seed)
    archive(result)
    data = result.data
    assert 2.5 < data["MinkNet(i)"]["reduction"] < 10.0   # paper 6.3x
    assert 2.0 < data["MinkNet(o)"]["reduction"] < 8.0    # paper 3.5x
    assert data["MinkNet(i)"]["reduction"] > data["MinkNet(o)"]["reduction"]
