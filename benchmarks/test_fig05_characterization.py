"""Bench: Fig. 5 — dataset density and per-point workload (paper: outdoor
clouds <1e-4 dense; 100x MACs and feature bytes per point vs CNNs)."""

from conftest import run_experiment
from repro.experiments import fig05_characterization
from repro.experiments.fig05_characterization import PAPER_DENSITY_BANDS


def test_fig05_characterization(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig05_characterization, scale, seed)
    archive(result)
    for name, density in result.data["density"].items():
        lo, hi = PAPER_DENSITY_BANDS[name]
        assert lo <= density <= hi, (name, density)
    workloads = result.data["workloads"]
    # Point-cloud networks: 1e4..1e7 MACs/point (paper's 10^3..10^6 band
    # shifts with input size); CNNs sit at 6e3 / 8e4.
    for net, stats in workloads.items():
        assert stats.macs_per_point > 1e4, net
    assert workloads["MinkNet(i)"].feature_bytes_per_point > 2000
