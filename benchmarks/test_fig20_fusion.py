"""Bench: Fig. 20 — fusion-mode DRAM reduction (paper: 64% PointNet,
41%/33%/39% PointNet++ variants)."""

from conftest import run_experiment
from repro.experiments import fig20_fusion


def test_fig20_fusion(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig20_fusion, scale, seed)
    archive(result)
    data = result.data
    for net, d in data.items():
        assert 0.15 < d["reduction"] < 0.85, net
    # PointNet (no downsampling) fuses at least as much as the PN++ nets.
    assert data["PointNet"]["reduction"] >= 0.9 * max(
        data[n]["reduction"] for n in data if n != "PointNet"
    )
