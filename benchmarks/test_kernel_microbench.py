"""Microbenchmarks of the library's core kernels (wall-clock timings).

Unlike the experiment benches (which regenerate paper artifacts), these
time the actual Python implementations so performance regressions in the
substrate show up in ``--benchmark-only`` runs.
"""

import numpy as np
import pytest

from repro.core.mmu.cache import CacheConfig, simulate_conv_cache
from repro.core.mpu import ComparatorArray, StreamingMerger, mpu_topk
from repro.mapping import (
    farthest_point_sampling,
    kernel_map_hash,
    kernel_map_mergesort,
    knn_indices,
)
from repro.pointcloud import generate_sample


@pytest.fixture(scope="module")
def voxel_coords():
    cloud = generate_sample("s3dis", seed=0, n_points=20_000)
    return cloud.voxelize(0.05).coords


@pytest.fixture(scope="module")
def lidar_points():
    return generate_sample("semantickitti", seed=0, n_points=8192).points


def test_kernel_map_mergesort_speed(benchmark, voxel_coords):
    maps = benchmark(kernel_map_mergesort, voxel_coords, voxel_coords, 3, 1)
    assert maps.n_maps > len(voxel_coords)


def test_kernel_map_hash_speed(benchmark, voxel_coords):
    maps = benchmark(kernel_map_hash, voxel_coords, voxel_coords, 3, 1)
    assert maps.n_maps > len(voxel_coords)


def test_fps_speed(benchmark, lidar_points):
    idx = benchmark(farthest_point_sampling, lidar_points, 512)
    assert len(idx) == 512


def test_knn_speed(benchmark, lidar_points):
    queries = lidar_points[:512]
    idx, _ = benchmark(knn_indices, queries, lidar_points, 32)
    assert idx.shape == (512, 32)


def test_streaming_merger_speed(benchmark):
    rng = np.random.default_rng(0)
    a = np.sort(rng.integers(0, 10**6, size=2000))
    b = np.sort(rng.integers(0, 10**6, size=2000))
    merger = StreamingMerger(64)

    def run():
        return merger.merge(
            ComparatorArray(a.copy(), np.arange(len(a))),
            ComparatorArray(b.copy(), np.arange(len(b))),
        )

    merged, stats = benchmark(run)
    assert len(merged) == 4000


def test_mpu_topk_speed(benchmark):
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10**9, size=4096)

    def run():
        return mpu_topk(ComparatorArray.from_keys(keys), 32, 64)

    out, _ = benchmark(run)
    assert len(out) == 32


def test_cache_simulation_speed(benchmark, voxel_coords):
    maps = kernel_map_mergesort(voxel_coords, voxel_coords, 3, 1)
    cfg = CacheConfig(capacity_bytes=256 * 1024, block_points=16, c_in=64)
    stats = benchmark(simulate_conv_cache, maps, cfg)
    assert 0.0 <= stats.miss_rate <= 1.0
