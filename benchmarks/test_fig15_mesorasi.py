"""Bench: Fig. 15 — PointAcc.Edge vs Mesorasi SW/HW (paper figure: geomean
14x / 128x / 4.3x speedup; 15x / 110x / 11x energy)."""

from conftest import run_experiment
from repro.experiments import fig15_mesorasi


def test_fig15_mesorasi(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig15_mesorasi, scale, seed)
    archive(result)
    speedup = result.data["speedup"]
    hw = speedup["Mesorasi-HW"]["GeoMean"]
    nano = speedup["Mesorasi-SW on Jetson Nano"]["GeoMean"]
    rpi = speedup["Mesorasi-SW on Raspberry Pi 4B"]["GeoMean"]
    assert 2.0 < hw < 9.0           # paper figure 4.3x
    assert 3.0 < nano < 28.0        # paper 14x
    assert 30.0 < rpi < 260.0       # paper 128x
    assert hw < nano < rpi
    energy_hw = result.data["energy"]["Mesorasi-HW"]["GeoMean"]
    assert 2.0 < energy_hw < 22.0   # paper 11x
