"""Cluster throughput microbench: warm sharded fleet vs cold single engine.

Two claims from the cluster PR's acceptance criteria, both asserted here:

1. *Warm beats cold.*  On a repeated-workload stream (every distinct cloud
   appears ``REPEATS`` times — steady-state serving traffic), a 4-shard
   cluster that has already served the stream once (map caches, shared L2
   and trace memos hot) must clear >= 2x the throughput of a cold single
   ``SimulationEngine`` on the same stream.
2. *Persistence warm-starts across invocations.*  Two back-to-back
   ``serve-cluster`` CLI invocations pointed at one ``--cache-dir``: the
   second must already hit the map store on its *first* request (hit rate
   > 0 before anything in-process was cached).

Like the engine bench this table is *printed, not archived*: every cell is
machine-dependent wall-clock timing, so it never touches the deterministic
golden-figure store under ``benchmarks/_results/``.  The persistence spill
lives in pytest's ``tmp_path`` and is cleaned up with the fixture.
"""

import re
import time

from repro.cli import main
from repro.cluster import EngineCluster
from repro.engine import SimRequest, SimulationEngine
from repro.experiments.common import ExperimentResult

REPEATS = 4
SHARDS = 4
SPEEDUP_FLOOR = 2.0


def _stream(scale: float) -> list[SimRequest]:
    # Serving-shaped traffic, capped so the suite stays fast at full scale.
    eff = min(scale, 0.3)
    distinct = [
        SimRequest("PointNet++(c)", scale=eff, seed=0),
        SimRequest("DGCNN", scale=eff, seed=0),
        SimRequest("PointNet++(c)", scale=eff, seed=1),
    ]
    return [r for r in distinct for _ in range(REPEATS)]


def test_warm_cluster_vs_cold_single_engine(scale):
    stream = _stream(scale)
    n = len(stream)

    cold_engine = SimulationEngine(backends=("pointacc",), policy="bucketed")
    t0 = time.perf_counter()
    cold_results = cold_engine.run_batch(stream)
    cold_s = time.perf_counter() - t0

    cluster = EngineCluster(n_shards=SHARDS, backends=("pointacc",),
                            policy="bucketed", routing="affinity")
    cluster.run_batch(stream)  # warm-up pass: every tier hot
    t0 = time.perf_counter()
    warm_results = cluster.run_batch(stream)
    warm_s = time.perf_counter() - t0

    for cold, warm in zip(cold_results, warm_results):
        assert cold.reports["pointacc"] == warm.reports["pointacc"], (
            f"warm cluster changed a report for {warm.request}"
        )

    stats = cluster.stats()
    speedup = cold_s / warm_s
    rows = [
        ["cold single engine", f"{cold_s * 1e3:.1f}", f"{n / cold_s:.1f}", "-"],
        [f"warm cluster ({SHARDS} shards)", f"{warm_s * 1e3:.1f}",
         f"{n / warm_s:.1f}", str(stats.routing["counts"])],
    ]
    print("\n" + ExperimentResult(
        experiment_id="bench-cluster",
        title=(f"Warm {SHARDS}-shard cluster on a repeated-workload stream "
               f"({n} requests, x{REPEATS} repeats): {speedup:.1f}x"),
        headers=["mode", "wall ms", "req/s", "shard requests"],
        rows=rows,
        data={"speedup": speedup, "requests": n},
    ).table())

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm cluster speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x "
        f"floor (cold {cold_s:.3f}s vs warm {warm_s:.3f}s)"
    )


def test_second_cli_invocation_warm_starts_from_disk(tmp_path, capsys):
    cache_dir = tmp_path / "persisted-maps"
    argv = [
        "serve-cluster", "--requests", "4", "--scale", "0.1",
        "--seed-pool", "2", "--benchmarks", "PointNet++(c)",
        "--shards", "2", "--cache-dir", str(cache_dir),
    ]

    assert main(list(argv)) == 0
    first_out = capsys.readouterr().out
    cold_hits = int(re.search(r"first-request map hits: (\d+)", first_out)[1])
    assert cold_hits == 0  # nothing persisted yet: genuinely cold
    assert any(cache_dir.glob("*.map"))

    # "Second CLI invocation": a fresh parser, engine fleet and store —
    # only the spill directory survives, exactly like a new process.
    assert main(list(argv)) == 0
    second_out = capsys.readouterr().out
    warm_hits = int(re.search(r"first-request map hits: (\d+)", second_out)[1])
    assert warm_hits > 0, "persisted cache did not warm-start the first request"
