"""Bench: Table 2 — the 8-network suite executes end to end and covers
every mapping-operation category of Table 1."""

from conftest import run_experiment
from repro.experiments import tab02_benchmarks


def test_tab02_benchmarks(benchmark, scale, seed, archive):
    # Table 2 certification runs at a modest scale: it executes all eight
    # networks purely to certify coverage, not to measure them.
    result = run_experiment(benchmark, tab02_benchmarks, min(scale, 0.25), seed)
    archive(result)
    assert len(result.data) == 8
    used = set()
    for row in result.rows:
        used.update(row[-1].split(","))
    assert {"fps", "ball", "knn", "kernel", "quant"} <= used
