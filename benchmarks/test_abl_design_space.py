"""Bench: design-space sweeps justifying Table 3's design points."""

from conftest import run_experiment
from repro.experiments import abl_design_space


def test_abl_design_space(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, abl_design_space, scale, seed)
    archive(result)
    pe = {r["dim"]: r for r in result.data["pe"]}
    # Bigger arrays are faster but with diminishing returns past 64x64.
    assert pe[16]["latency_ms"] > pe[32]["latency_ms"] > pe[64]["latency_ms"]
    gain_32_to_64 = pe[32]["latency_ms"] / pe[64]["latency_ms"]
    gain_64_to_128 = pe[64]["latency_ms"] / pe[128]["latency_ms"]
    assert gain_64_to_128 < gain_32_to_64
    width = {r["width"]: r for r in result.data["merger_width"]}
    # Mapping time falls with merger width and floors out by N=64.
    assert width[8]["mapping_ms"] > width[32]["mapping_ms"]
    assert width[64]["mapping_ms"] <= width[32]["mapping_ms"]
    dram = {r["dram"]: r for r in result.data["dram"]}
    # The full configuration needs HBM2: DDR4 starves the 64x64 array.
    assert dram["HBM2"]["latency_ms"] < dram["DDR4-2133"]["latency_ms"]
    assert dram["DDR4-2133"]["movement_frac"] > dram["HBM2"]["movement_frac"]
    buf = {r["input_kb"]: r for r in result.data["input_buffer"]}
    assert buf[512]["dram_mb"] < buf[32]["dram_mb"]
