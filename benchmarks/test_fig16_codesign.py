"""Bench: Fig. 16 — co-design vs Mesorasi on S3DIS (paper: ~100x faster,
+9.1 mIoU)."""

from conftest import run_experiment
from repro.experiments import fig16_codesign


def test_fig16_codesign(benchmark, scale, seed, archive):
    result = run_experiment(benchmark, fig16_codesign, scale, seed)
    archive(result)
    assert 40.0 < result.data["speedup"] < 400.0  # paper ~100x
    assert abs(result.data["miou_gain"] - 9.1) < 1e-6
    assert result.data["sparse_rejected_by_mesorasi"]
