"""Memory Management Unit demo: caching, dataflows and layer fusion.

Walks through the paper's Section 4.2 mechanisms on real workloads:

1. the configurable-block cache sweep (Fig. 18) on a SparseConv layer;
2. gather-matmul-scatter vs fetch-on-demand DRAM traffic (Fig. 11c / 19);
3. temporal layer fusion with the MIR-container stack (Fig. 12 / 20).

Run:  python examples/memory_system_demo.py
"""

from repro.core import POINTACC_FULL, PointAccModel
from repro.core.mmu import (
    CacheConfig,
    FusionPlanner,
    gather_matmul_scatter_cost,
    fetch_on_demand_cost,
    simulate_conv_cache,
    simulate_fusion_stack,
)
from repro.mapping import kernel_map_mergesort
from repro.nn.models import build_trace
from repro.nn.trace import LayerKind, LayerSpec
from repro.pointcloud import generate_sample


def cache_sweep() -> None:
    print("=== Fig. 18: configurable-block cache ===")
    cloud = generate_sample("s3dis", seed=1, n_points=12_000)
    tensor = cloud.voxelize(0.05)
    maps = kernel_map_mergesort(tensor.coords, tensor.coords, 3, 1)
    print(f"submanifold conv: {tensor.n} voxels, {maps.n_maps} maps")
    print(f"{'block':>6s} {'miss rate':>10s} {'DRAM fill':>10s}")
    for block in (1, 4, 16, 64):
        cfg = CacheConfig(capacity_bytes=256 * 1024, block_points=block,
                          c_in=64)
        stats = simulate_conv_cache(maps, cfg)
        print(f"{block:6d} {stats.miss_rate * 100:9.1f}% "
              f"{stats.dram_bytes / 1e6:8.2f} MB")
    print()


def dataflow_comparison() -> None:
    print("=== Fig. 11c: gather-matmul-scatter vs fetch-on-demand ===")
    cloud = generate_sample("s3dis", seed=1, n_points=12_000)
    tensor = cloud.voxelize(0.05)
    maps = kernel_map_mergesort(tensor.coords, tensor.coords, 3, 1)
    spec = LayerSpec(
        name="conv", kind=LayerKind.SPARSE_CONV, n_in=tensor.n,
        n_out=tensor.n, c_in=64, c_out=64, rows=maps.n_maps,
        n_maps=maps.n_maps, kernel_volume=27,
    )
    gs = gather_matmul_scatter_cost(spec, elem_bytes=2)
    fd, cache_stats = fetch_on_demand_cost(
        spec, 256 * 1024, block_points=16, maps=maps
    )
    print(f"G-S flow: {gs.total_bytes / 1e6:7.2f} MB "
          f"(input features {gs.input_feature_bytes / 1e6:.2f} MB)")
    print(f"F-D flow: {fd.total_bytes / 1e6:7.2f} MB "
          f"(input fills {fd.input_read / 1e6:.2f} MB, "
          f"miss rate {cache_stats.miss_rate * 100:.1f}%)")
    print(f"-> {gs.total_bytes / fd.total_bytes:.1f}x less DRAM traffic; "
          f"input-feature saving "
          f"{gs.input_feature_bytes / fd.input_read:.1f}x (paper: >=3x)\n")


def fusion_walkthrough() -> None:
    print("=== Fig. 12: temporal layer fusion ===")
    trace = build_trace("PointNet++(c)", scale=0.5, seed=1)
    planner = FusionPlanner(
        feature_buffer_bytes=int(POINTACC_FULL.sram.input_kb * 1024),
        weight_buffer_bytes=int(POINTACC_FULL.sram.weight_kb * 1024),
    )
    plan = planner.plan(trace)
    multi = [g for g in plan.groups if g.n_layers > 1]
    print(f"{len(plan.groups)} fused groups, "
          f"{len(multi)} with more than one layer")
    for group in multi[:3]:
        sim = simulate_fusion_stack(
            group, int(POINTACC_FULL.sram.input_kb * 1024)
        )
        names = " + ".join(s.name for s in group.specs)
        print(f"  [{names}] tile={group.tile_points} pts, "
              f"stack depth {sim['peak_depth']}, "
              f"peak {sim['peak_bytes'] / 1024:.1f} KB, "
              f"saves {(1 - group.dram_bytes(2) / group.unfused_dram_bytes(2)) * 100:.0f}% DRAM")
    print(f"whole-network fusion saving: {plan.reduction(2) * 100:.0f}% "
          f"of dense-layer DRAM traffic\n")


def end_to_end() -> None:
    print("=== whole-network effect (MinkNet(o)) ===")
    trace = build_trace("MinkNet(o)", scale=0.25, seed=1)
    model = PointAccModel(POINTACC_FULL)
    fod = model.run(trace, flow="fetch_on_demand")
    gs = model.run(trace, flow="gather_scatter")
    print(f"fetch-on-demand: {fod.dram_bytes / 1e6:8.1f} MB DRAM, "
          f"{fod.total_seconds * 1e3:.2f} ms")
    print(f"gather-scatter : {gs.dram_bytes / 1e6:8.1f} MB DRAM, "
          f"{gs.total_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    cache_sweep()
    dataflow_comparison()
    fusion_walkthrough()
    end_to_end()
