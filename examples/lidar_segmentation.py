"""LiDAR semantic segmentation: the paper's headline workload end to end.

Simulates a spinning 64-beam LiDAR over a street scene (the SemanticKITTI
stand-in), runs MinkowskiUNet on the scan, and compares PointAcc against
every server platform in the paper's Fig. 13 — including per-category
latency breakdowns that mirror Fig. 6/21.

Run:  python examples/lidar_segmentation.py [--points N]
"""

import argparse

from repro.baselines import get_platform
from repro.core import PointAccModel, POINTACC_FULL
from repro.nn import Trace
from repro.nn.models import MinkowskiUNet
from repro.pointcloud import generate_sample


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=20_000,
                        help="LiDAR returns to simulate")
    args = parser.parse_args()

    cloud = generate_sample("semantickitti", seed=3, n_points=args.points)
    print(f"LiDAR scan: {cloud.n} returns")

    model = MinkowskiUNet(n_classes=19, seed=0)
    tensor = model.prepare_input(cloud, voxel_size=0.1)
    trace = Trace(name="MinkowskiUNet/SemanticKITTI")
    logits = model(tensor, trace)
    trace.input_points = tensor.n
    predictions = logits.argmax(axis=1)
    print(f"{tensor.n} voxels segmented into "
          f"{len(set(predictions.tolist()))} of 19 classes")
    print(f"workload: {trace.total_macs / 1e9:.1f} GMACs, "
          f"{len(trace.mapping_specs)} mapping ops\n")

    pointacc = PointAccModel(POINTACC_FULL).run(trace)
    rows = [("PointAcc", pointacc)]
    for name in ("RTX 2080Ti", "Xeon Skylake + TPU V3", "Xeon Gold 6130"):
        rows.append((name, get_platform(name).run(trace)))

    print(f"{'platform':24s} {'latency':>12s} {'FPS':>8s} {'energy':>10s} "
          f"{'mapping':>8s} {'matmul':>8s} {'movement':>9s}")
    for name, rep in rows:
        frac = rep.latency_fractions()
        print(
            f"{name:24s} {rep.total_seconds * 1e3:9.2f} ms "
            f"{rep.fps():8.1f} {rep.energy_joules * 1e3:7.1f} mJ "
            f"{frac['mapping'] * 100:7.0f}% {frac['matmul'] * 100:7.0f}% "
            f"{frac['movement'] * 100:8.0f}%"
        )
    base = rows[1][1]
    print(
        f"\nPointAcc vs GPU: "
        f"{base.total_seconds / pointacc.total_seconds:.1f}x faster, "
        f"{base.energy_joules / pointacc.energy_joules:.0f}x less energy "
        f"(paper Fig. 13: 2.4x / 13x on MinkNet(o))"
    )
    pie = pointacc.energy.breakdown()
    print(
        f"PointAcc energy: compute {pie['compute'] * 100:.0f}%, "
        f"SRAM {pie['sram'] * 100:.0f}%, DRAM {pie['dram'] * 100:.0f}% "
        f"(paper Fig. 21: 74/6/20)"
    )


if __name__ == "__main__":
    main()
