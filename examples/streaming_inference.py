"""Streaming inference: sustained frame rate over a LiDAR sequence.

Real deployments run frame after frame: kernel maps are recomputed per
frame (coordinates change), but weights stay resident after the first
frame.  This example drives MinkowskiUNet over a short synthetic drive
sequence (the scene evolves between frames) and reports per-frame and
sustained throughput on PointAcc vs Jetson Xavier NX — the paper's
"real-time interaction" motivation (Fig. 1) in numbers.

Run:  python examples/streaming_inference.py [--frames N]
"""

import argparse

from repro.baselines import get_platform
from repro.core import PointAccModel, POINTACC_EDGE
from repro.nn import Trace
from repro.nn.models import mini_minkunet
from repro.pointcloud import generate_sample


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--points", type=int, default=6000)
    args = parser.parse_args()

    model = mini_minkunet(n_classes=19, seed=0)
    accelerator = PointAccModel(POINTACC_EDGE)
    jetson = get_platform("Jetson Xavier NX")

    print(f"{'frame':>5s} {'voxels':>8s} {'Edge ms':>9s} {'NX ms':>8s} "
          f"{'Edge FPS':>9s}")
    edge_total = nx_total = 0.0
    for frame in range(args.frames):
        # Each frame is a fresh scan of an evolving scene.
        cloud = generate_sample(
            "semantickitti", seed=100 + frame, n_points=args.points
        )
        tensor = model.prepare_input(cloud, voxel_size=0.2)
        trace = Trace(name=f"frame{frame}")
        model(tensor, trace)
        trace.input_points = tensor.n
        edge_rep = accelerator.run(trace)
        nx_rep = jetson.run(trace)
        edge_total += edge_rep.total_seconds
        nx_total += nx_rep.total_seconds
        print(f"{frame:5d} {tensor.n:8d} "
              f"{edge_rep.total_seconds * 1e3:9.3f} "
              f"{nx_rep.total_seconds * 1e3:8.3f} "
              f"{edge_rep.fps():9.1f}")
    n = args.frames
    print(f"\nsustained: PointAcc.Edge {n / edge_total:.1f} FPS vs "
          f"Jetson NX {n / nx_total:.1f} FPS "
          f"({nx_total / edge_total:.1f}x)")
    lidar_hz = 10.0
    print(f"a 10 Hz LiDAR needs 10 FPS: Edge "
          f"{'meets' if n / edge_total >= lidar_hz else 'misses'} real time "
          f"with {(n / edge_total) / lidar_hz:.1f}x headroom")


if __name__ == "__main__":
    main()
