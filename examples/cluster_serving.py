"""Cluster serving: a sharded engine fleet with tiered caching and QoS.

The single-engine batch example (`batch_serving.py`) shows what one
SimulationEngine earns from its caches.  This example runs the full
production layer on top — repro.cluster — and walks the three things it
adds:

1. *Sharding*: requests are routed across engine instances.  Affinity
   routing hashes the workload key so repeats co-locate; every shard's
   private L1 map cache is backed by one shared L2 store.
2. *QoS*: per-request deadlines (admission rejects spent budgets,
   completions are scored met/missed) and per-tenant fair-share ordering.
3. *Persistence*: the L2 store spills to a cache directory, so a second
   cluster — think: the next CLI invocation — warm-starts from disk on its
   very first request.

Run:  python examples/cluster_serving.py [--shards N] [--requests N]
"""

import argparse
import tempfile

from repro.cluster import EngineCluster, synthetic_stream
from repro.engine import SimRequest


def serve(cluster, requests):
    print(f"{'req':>6s} {'benchmark':16s} {'shard':>5s} {'tenant':8s} "
          f"{'modeled ms':>11s} {'trace':>6s} {'deadline':>8s}")
    for result in cluster.stream(requests, window=8):
        if "cluster" in result.errors:
            print(f"{result.request.tag:>6s} {result.request.benchmark:16s} "
                  f"{'-':>5s} {result.request.tenant:8s} "
                  f"{'rejected':>11s} {'-':>6s} {'-':>8s}")
            continue
        report = result.report("pointacc")
        verdict = {True: "met", False: "MISSED", None: "-"}[result.deadline_met]
        print(f"{result.request.tag:>6s} {result.request.benchmark:16s} "
              f"{result.shard:5d} {result.request.tenant:8s} "
              f"{report.total_seconds * 1e3:11.3f} "
              f"{'reuse' if result.trace_reused else 'build':>6s} "
              f"{verdict:>8s}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--requests", type=int, default=10)
    parser.add_argument("--scale", type=float, default=0.15)
    args = parser.parse_args()

    requests = list(synthetic_stream(
        ["PointNet++(c)", "DGCNN"], args.requests, scale=args.scale,
        seed_pool=2, tenant_pool=2, deadline_ms=1e6,
    ))
    # One hopeless request: its deadline budget is already spent, so
    # admission rejects it before it can waste shard time.
    requests.append(SimRequest("PointNet++(c)", scale=args.scale,
                               tag="late", tenant="tenantA", deadline_ms=0))

    with tempfile.TemporaryDirectory() as cache_dir:
        print(f"=== cold cluster ({args.shards} shards, affinity routing, "
              f"persisting to {cache_dir}) ===")
        cluster = EngineCluster(n_shards=args.shards, backends=("pointacc",),
                                routing="affinity", cache_dir=cache_dir)
        serve(cluster, requests)

        stats = cluster.stats()
        print(f"\nserved {stats.admitted}/{stats.requests} "
              f"({stats.rejected} rejected) at "
              f"{stats.throughput_rps:.1f} req/s; "
              f"deadlines {stats.deadline_met} met / "
              f"{stats.deadline_missed} missed")
        print(f"shard requests: {stats.routing['counts']}")
        for tenant, acct in stats.tenants.items():
            print(f"  {tenant}: {acct['requests']} requests, "
                  f"{acct['modeled_seconds'] * 1e3:.3f} modeled ms")

        # A brand-new fleet pointed at the same cache dir: nothing is in
        # memory, yet the first trace build hits the persisted map store.
        print("\n=== warm-start: fresh cluster, same cache dir ===")
        warm = EngineCluster(n_shards=2, backends=("pointacc",),
                             routing="least-loaded", cache_dir=cache_dir)
        first = warm.run_batch(requests[:1])[0]
        print(f"first request on the fresh cluster: "
              f"{first.map_cache_hits} map hits, "
              f"{warm.l2.disk_hits} served from disk -> warm start")


if __name__ == "__main__":
    main()
