"""Mapping Unit walkthrough: the ranking-based kernel, stage by stage.

Demonstrates the paper's central idea (Section 4.1 / Figs. 8-10) on real
data: all four mapping operations executed on the six-stage MPU pipeline,
showing which stages and forwarding loops each one activates, plus the
merge-sort kernel-mapping example of Fig. 9 and the hash-engine comparison.

Run:  python examples/mapping_unit_walkthrough.py
"""

import numpy as np

from repro.core import POINTACC_FULL
from repro.core.area import AreaModel
from repro.core.mpu import MappingUnit, MPUPipeline
from repro.pointcloud import generate_sample
from repro.pointcloud.coords import kernel_offsets


def fig9_example() -> None:
    """The paper's worked example: shift, merge, intersect for w(-1,-1)."""
    print("=== Fig. 9: merge-sort kernel mapping, offset (-1,-1) ===")
    # The 2-D example clouds from the figure (input == output, stride 1).
    coords = np.array([[1, 1], [2, 2], [2, 4], [3, 2], [4, 3]])
    pipe = MPUPipeline(width=8)
    offsets = np.array([[-1, -1]])
    maps, _ = pipe.kernel_mapping(coords, coords, offsets)
    print("input cloud :", coords.tolist())
    print("shifted by (1,1):", (coords + 1).tolist())
    for i, o, _ in maps:
        print(f"  map: p{i}{coords[i].tolist()} -> q{o}{coords[o].tolist()}"
              f" via w(-1,-1)")
    assert {(m[0], m[1]) for m in maps} == {(0, 1), (3, 4)}
    print("-> 2 maps, exactly the figure's (p0,q1) and (p3,q4)\n")


def pipeline_paths() -> None:
    print("=== Fig. 7: one pipeline, three configurations ===")
    cloud = generate_sample("modelnet40", seed=2, n_points=400)
    tensor = cloud.voxelize(0.1)
    pipe = MPUPipeline(width=32)

    maps, trace = pipe.kernel_mapping(
        tensor.coords, tensor.coords, kernel_offsets(3, 3)
    )
    print(f"kernel mapping : stages {trace.active_stages()} "
          f"(DI active, CD bypassed) -> {len(maps)} maps")

    _, trace = pipe.knn(cloud.points[:16], cloud.points, 8)
    print(f"kNN            : stages {trace.active_stages()} "
          f"loops {sorted(trace.loops)} (iterative merge tree)")

    _, trace = pipe.fps(cloud.points, 32)
    print(f"FPS            : stages {trace.active_stages()} "
          f"loops {sorted(trace.loops)} (distance update + arg-max)\n")


def cost_comparison() -> None:
    print("=== Section 4.1.1: merge-sort vs hash engine on-chip ===")
    cloud = generate_sample("semantickitti", seed=2, n_points=12_000)
    tensor = cloud.voxelize(0.1)
    down = tensor.downsample(2)
    mpu = MappingUnit(POINTACC_FULL)
    maps, stats = mpu.kernel_map(tensor.coords, down.coords, 2,
                                 tensor.tensor_stride)
    hash_cycles = mpu.hash_kernel_map_cycles(tensor.n, down.n, 8)
    area = AreaModel(POINTACC_FULL)
    print(f"first downsampling layer: {tensor.n} -> {down.n} voxels, "
          f"{maps.n_maps} maps")
    print(f"mergesort engine: {stats.cycles} cycles")
    print(f"hash engine     : {hash_cycles} cycles "
          f"({hash_cycles / stats.cycles:.2f}x slower; paper: 1.4x)")
    print(f"hash engine area: {area.hash_vs_mergesort_ratio():.1f}x larger "
          f"(paper: up to 14x)")


if __name__ == "__main__":
    fig9_example()
    pipeline_paths()
    cost_comparison()
