"""Edge deployment study: PointAcc.Edge vs embedded devices and Mesorasi.

Evaluates PointNet++ classification (the canonical edge workload) and the
Fig. 16 co-design scenario — Mini-MinkowskiUNet on PointAcc.Edge against
PointNet++SSG on Mesorasi for whole-scene S3DIS segmentation.

Run:  python examples/edge_deployment.py
"""

from repro.baselines import MESORASI_HW, get_platform, mesorasi_sw
from repro.core import PointAccModel, POINTACC_EDGE
from repro.nn.models import build_trace, get_benchmark

EDGE_DEVICES = ("Jetson Xavier NX", "Jetson Nano", "Raspberry Pi 4B")


def classification_study() -> None:
    print("=== PointNet++ classification on the edge (1024 points) ===")
    trace = build_trace("PointNet++(c)", scale=1.0, seed=0)
    edge = PointAccModel(POINTACC_EDGE).run(trace)
    print(f"{'platform':26s} {'latency':>12s} {'energy':>11s} {'vs Edge':>8s}")
    print(f"{'PointAcc.Edge':26s} {edge.total_seconds * 1e3:9.3f} ms "
          f"{edge.energy_joules * 1e3:8.3f} mJ {'1.0x':>8s}")
    for name in EDGE_DEVICES:
        rep = get_platform(name).run(trace)
        print(f"{name:26s} {rep.total_seconds * 1e3:9.3f} ms "
              f"{rep.energy_joules * 1e3:8.3f} mJ "
              f"{rep.total_seconds / edge.total_seconds:7.1f}x")
    meso = MESORASI_HW.run(trace)
    print(f"{'Mesorasi (HW)':26s} {meso.total_seconds * 1e3:9.3f} ms "
          f"{meso.energy_joules * 1e3:8.3f} mJ "
          f"{meso.total_seconds / edge.total_seconds:7.1f}x")
    sw = mesorasi_sw(trace, get_platform("Jetson Nano"))
    print(f"{'Mesorasi-SW (Nano)':26s} {sw.total_seconds * 1e3:9.3f} ms "
          f"{sw.energy_joules * 1e3:8.3f} mJ "
          f"{sw.total_seconds / edge.total_seconds:7.1f}x")


def codesign_study() -> None:
    print("\n=== Co-design: S3DIS whole-scene segmentation (Fig. 16) ===")
    edge = PointAccModel(POINTACC_EDGE)
    block_trace = build_trace("PointNet++(s)", scale=1.0, seed=0)
    n_blocks = 10  # 40960-point scene / 4096-point blocks
    meso_scene_ms = MESORASI_HW.run(block_trace).total_seconds * n_blocks * 1e3
    mini_trace = build_trace("Mini-MinkowskiUNet", scale=1.0, seed=0)
    mini = edge.run(mini_trace)
    pnpp_miou = get_benchmark("PointNet++(s)").published["miou"]
    mini_miou = get_benchmark("Mini-MinkowskiUNet").published["miou"]
    print(f"Mesorasi + PointNet++SSG : {meso_scene_ms:9.1f} ms/scene, "
          f"mIoU {pnpp_miou:.1f} (published)")
    print(f"Edge + Mini-MinkowskiUNet: {mini.total_seconds * 1e3:9.2f} ms/scene, "
          f"mIoU {mini_miou:.1f} (published)")
    print(f"-> {meso_scene_ms / (mini.total_seconds * 1e3):.0f}x faster with "
          f"+{mini_miou - pnpp_miou:.1f} mIoU (paper: ~100x, +9.1)")


if __name__ == "__main__":
    classification_study()
    codesign_study()
