"""Fleet serving: concurrent tenant streams sharing one world's tiles.

The streaming example serves one vehicle; real deployments serve fleets,
and vehicles traversing the same map region keep recomputing each other's
geometry.  This example runs repro.fleet on a small convoy and walks its
two ideas:

1. *Multi-stream tenancy*: several `FrameSequence` streams interleave
   through one shared `EngineCluster` in rounds — in order per stream,
   QoS-ordered across streams, with per-tenant fair-share accounting.
2. *Cross-stream tile sharing*: the `WorldTileStore` front keys tile
   sub-results by world-region content digest, never by stream identity,
   so one vehicle's kNN / kernel-map / voxel tiles serve the whole
   convoy — and every hit is attributed self vs cross-stream.

As everywhere in this repo, sharing is wall-clock only: each stream's
reports stay bit-identical to running it cold and alone.

Run:  python examples/fleet_serving.py [--streams N] [--frames N] [--scale S]
"""

import argparse

from repro.engine import SimRequest, run_cold
from repro.fleet import FleetSession, StreamSpec
from repro.stream import FrameSequence, SequenceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=3)
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    # One road, one convoy: a shared world with staggered start positions
    # and per-vehicle sensor noise.
    specs = [
        StreamSpec(
            name=f"veh{i}",
            sequence=FrameSequence(SequenceConfig(
                seed=9, n_frames=args.frames, base_points=9000, fov=20.0,
                speed=2.0, start_x=0.5 * i, sensor_seed=i,
            )),
            benchmark="MinkNet(o)",
            scale=args.scale,
            n_frames=args.frames,
        )
        for i in range(args.streams)
    ]
    fleet = FleetSession(specs, n_shards=2)

    print(f"=== serving a {args.streams}-vehicle convoy, "
          f"{args.frames} frames each ===")
    print(f"{'round':>5s} " + " ".join(f"{s.name:>10s}" for s in specs))
    for r, round_results in enumerate(fleet.play()):
        cells = " ".join(f"{frame.latency_ms:8.0f}ms" for _, frame in round_results)
        print(f"{r:5d} {cells}")

    summary = fleet.summary()
    world = summary["world_tiles"]
    print(f"\n{summary['completed']} frames from {args.streams} streams at "
          f"{summary['throughput_fps']:.1f} frames/s")
    print(f"world tiles: {world['self_hits']} self hits, "
          f"{world['cross_hits']} cross-stream hits "
          f"({world['shared_keys']} world-tile keys shared across vehicles)")
    for name, counts in sorted(world["by_stream"].items()):
        print(f"  {name}: {counts['hits']} tile hits, "
              f"{counts['misses']} computed")

    # The sharing claim is only interesting because it is *exact*: any
    # frame replayed cold — fresh functional simulation, no caches, no
    # fleet — produces the same report, bit for bit.
    spec = specs[-1]
    check = args.frames - 1
    cold = run_cold(SimRequest(
        benchmark=spec.sequence.notation(spec.benchmark),
        scale=args.scale, seed=check,
    ))
    served = fleet.results()[spec.name][check]
    identical = cold.reports["pointacc"] == served.result.reports["pointacc"]
    print(f"cold replay of {spec.name} frame {check}: "
          f"reports bit-identical -> {identical}")


if __name__ == "__main__":
    main()
