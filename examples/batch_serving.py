"""Batch serving: many clouds through one engine, maps cached across requests.

A serving deployment sees the same geometry again and again — repeated
frames, popular scenes, retried requests.  The SimulationEngine exploits
that: one shared set of backend models, a content-addressed map cache, and
a request-level trace memo.  This example pushes a mixed batch with
repeated clouds through the engine and compares against the cold
sequential path the repo used before the engine existed.

Run:  python examples/batch_serving.py [--repeats N]
"""

import argparse
import time

from repro.engine import SimRequest, SimulationEngine, run_cold


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="times each distinct cloud appears in the batch")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    distinct = [
        SimRequest("PointNet++(c)", scale=args.scale, seed=0),
        SimRequest("DGCNN", scale=args.scale, seed=0),
        SimRequest("PointNet++(c)", scale=args.scale, seed=1, priority=1),
    ]
    batch = [r for r in distinct for _ in range(args.repeats)]

    t0 = time.perf_counter()
    for request in batch:
        run_cold(request, backends=("pointacc",))
    cold_s = time.perf_counter() - t0

    engine = SimulationEngine(backends=("pointacc",), policy="bucketed")
    t0 = time.perf_counter()
    results = engine.run_batch(batch)
    engine_s = time.perf_counter() - t0

    print(f"{'benchmark':16s} {'seed':>4s} {'points':>7s} "
          f"{'modeled ms':>11s} {'trace':>6s}")
    for result in results:
        report = result.report("pointacc")
        print(f"{result.request.benchmark:16s} {result.request.seed:4d} "
              f"{result.trace.input_points:7d} "
              f"{report.total_seconds * 1e3:11.3f} "
              f"{'reuse' if result.trace_reused else 'build':>6s}")

    stats = engine.stats()
    print(f"\nbatch of {len(batch)}: cold sequential {cold_s:.3f}s, "
          f"engine {engine_s:.3f}s -> {cold_s / engine_s:.1f}x throughput")
    print(f"traces built {stats.trace_builds}, reused {stats.trace_reuses}; "
          f"map-cache hit rate "
          f"{stats.map_cache.get('hit_rate', 0.0) * 100:.0f}%")


if __name__ == "__main__":
    main()
