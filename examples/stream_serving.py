"""Streaming: temporal frame sequences with tile-granular map reuse.

The batch and cluster examples reuse mapping work across *bit-identical*
clouds.  Real perception traffic is different: consecutive LiDAR frames
overlap heavily but never repeat exactly — the sensor moved, objects
moved, clutter changed.  This example runs repro.stream on that regime
and walks its three ideas:

1. *World-frame sequences*: a deterministic synthetic drive — static
   street geometry, oncoming traffic with per-frame jitter, a field of
   view that points enter and leave as the ego moves.
2. *Tile-granular incremental reuse*: each mapping op is decomposed into
   spatial tiles; tiles whose content did not change between frames are
   served from the cache, only dirty tiles (plus a boundary halo)
   recompute — and the result is bit-identical to a cold run.
3. *Geometry-only execution*: for SparseConv networks the trace is a pure
   function of coordinates, so the stream skips the dense feature math
   entirely (and the property suite proves the reports cannot tell).

Run:  python examples/stream_serving.py [--frames N] [--scale S]
"""

import argparse

from repro.engine import SimRequest, run_cold
from repro.stream import FrameSequence, SequenceConfig, StreamSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--benchmark", default="MinkNet(o)")
    args = parser.parse_args()

    sequence = FrameSequence(SequenceConfig(
        seed=4, n_frames=args.frames, base_points=16000, fov=28.0, speed=2.0,
    ))
    session = StreamSession(sequence, args.benchmark, scale=args.scale)

    print(f"=== streaming {args.frames} frames of a synthetic drive "
          f"through {args.benchmark} ===")
    print(f"{'frame':>5s} {'points':>7s} {'modeled ms':>11s} "
          f"{'tile hits':>9s} {'wall ms':>8s}")
    prev_hits = 0
    for frame in session.play(args.frames):
        hits = session.tile_cache.stats().tile_hits
        frame_hits, prev_hits = hits - prev_hits, hits
        report = frame.result.report("pointacc")
        print(f"{frame.index:5d} {frame.result.trace.input_points:7d} "
              f"{report.total_seconds * 1e3:11.3f} "
              f"{frame_hits:9d} {frame.latency_ms:8.1f}")

    summary = session.summary()
    tiles = summary["tiles"]
    print(f"\n{summary['completed']} frames at "
          f"{summary['throughput_fps']:.1f} frames/s "
          f"(p50 {summary['latency_p50_ms']:.0f} ms, "
          f"p99 {summary['latency_p99_ms']:.0f} ms, "
          f"geometry-only: {'yes' if summary['geometry_only'] else 'no'})")
    print(f"tile reuse: {tiles['tile_hits']}/{tiles['tile_lookups']} "
          f"sub-lookups served from cache "
          f"({tiles['tile_hit_rate'] * 100:.0f}%)")

    # The reuse claim is only interesting because it is *exact*: replaying
    # one frame cold — fresh functional simulation, no caches — produces
    # the same report, bit for bit.
    check = args.frames - 1
    cold = run_cold(SimRequest(benchmark=session.notation, scale=args.scale,
                               seed=check))
    # The streamed report sits in the engine's memo: replaying the request
    # through the executor is a pure cache hit.
    streamed = session.executor.run_batch([session.request(check)])[0]
    identical = cold.reports["pointacc"] == streamed.reports["pointacc"]
    print(f"cold replay of frame {check}: reports bit-identical -> "
          f"{identical}")


if __name__ == "__main__":
    main()
