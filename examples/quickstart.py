"""Quickstart: run a sparse convolution network through the PointAcc model.

Builds a synthetic indoor scan, voxelizes it, runs Mini-MinkowskiUNet
functionally (real numpy inference) while recording a workload trace, then
evaluates the trace on the PointAcc cycle-level model and on an RTX 2080Ti
baseline model.

Run:  python examples/quickstart.py
"""

from repro.baselines import get_platform
from repro.core import PointAccModel, POINTACC_FULL
from repro.nn import Trace
from repro.nn.models import mini_minkunet
from repro.pointcloud import generate_sample


def main() -> None:
    # 1. A synthetic S3DIS-like room scan (stand-in for the real dataset).
    cloud = generate_sample("s3dis", seed=0, n_points=8000)
    print(f"input cloud: {cloud.n} points")

    # 2. Voxelize and run the network functionally, recording the trace.
    model = mini_minkunet(n_classes=13, seed=0)
    tensor = model.prepare_input(cloud, voxel_size=0.08)
    trace = Trace(name="quickstart")
    logits = model(tensor, trace)
    trace.input_points = tensor.n
    print(f"voxelized to {tensor.n} voxels; per-voxel logits {logits.shape}")
    print(f"trace: {len(trace)} ops, {trace.total_macs / 1e9:.2f} GMACs, "
          f"{len(trace.mapping_specs)} mapping ops")

    # 3. Evaluate the same workload on PointAcc and on a GPU model.
    pointacc = PointAccModel(POINTACC_FULL).run(trace)
    gpu = get_platform("RTX 2080Ti").run(trace)
    for report in (pointacc, gpu):
        s = report.summary()
        breakdown = ", ".join(
            f"{k} {v * 100:.0f}%" for k, v in s["breakdown"].items() if v > 0
        )
        print(
            f"{report.platform:12s} latency {s['latency_ms']:8.3f} ms | "
            f"energy {s['energy_mj']:8.3f} mJ | DRAM {s['dram_mb']:7.2f} MB | "
            f"{breakdown}"
        )
    print(
        f"PointAcc speedup over GPU: "
        f"{gpu.total_seconds / pointacc.total_seconds:.1f}x, "
        f"energy saving {gpu.energy_joules / pointacc.energy_joules:.1f}x"
    )


if __name__ == "__main__":
    main()
