"""Unit tests for the simulation engine: cache, scheduler, engine plumbing."""

import numpy as np
import pytest

from repro.engine import (
    MapCache,
    SimRequest,
    SimulationEngine,
    backend_names,
    estimate_points,
    resolve_backend,
    run_cold,
    schedule,
)
from repro.mapping import MapTable, farthest_point_sampling, use_map_cache


class TestMapCache:
    def test_hit_miss_accounting(self, rng):
        cache = MapCache()
        pts = rng.normal(size=(64, 3))
        with use_map_cache(cache):
            a = farthest_point_sampling(pts, 8)
            b = farthest_point_sampling(pts, 8)
            c = farthest_point_sampling(pts, 9)  # different params -> miss
        assert np.array_equal(a, b)
        assert cache.stats().hits == 1 and cache.stats().misses == 2
        assert cache.stats().by_op["fps"] == {"hits": 1, "misses": 2}
        assert 0 < cache.stats().hit_rate < 1
        assert len(c) == 9

    def test_content_addressing_sees_values_not_objects(self, rng):
        cache = MapCache()
        pts = rng.normal(size=(32, 3))
        with use_map_cache(cache):
            a = farthest_point_sampling(pts, 6)
            b = farthest_point_sampling(pts.copy(), 6)  # equal content -> hit
        assert cache.stats().hits == 1
        assert np.array_equal(a, b)

    def test_hits_return_owned_uncorruptible_arrays(self, rng):
        cache = MapCache()
        pts = rng.normal(size=(32, 3))
        with use_map_cache(cache):
            first = farthest_point_sampling(pts, 6)
            first[:] = -1  # vandalize the returned array
            second = farthest_point_sampling(pts, 6)
        assert not np.shares_memory(first, second)
        assert np.array_equal(second, farthest_point_sampling(pts, 6))

    def test_memoize_copies_tuples_and_maptables(self):
        cache = MapCache()
        table = MapTable(np.arange(3), np.arange(3), np.zeros(3, np.int64), 4)
        out1 = cache.memoize("op", (np.arange(4),), {}, lambda: table)
        out2 = cache.memoize("op", (np.arange(4),), {}, lambda: table)
        assert out2.as_set() == table.as_set()
        assert not np.shares_memory(out2.in_idx, out1.in_idx)
        tup = cache.memoize("op2", (np.arange(2),), {}, lambda: (np.ones(2), np.zeros(2)))
        assert isinstance(tup, tuple) and len(tup) == 2

    def test_lru_eviction_by_entries(self):
        cache = MapCache(max_entries=2)
        for i in range(4):
            cache.memoize("op", (np.full(4, i),), {}, lambda i=i: np.full(2, i))
        assert len(cache) == 2
        assert cache.stats().evictions == 2

    def test_eviction_by_bytes(self):
        cache = MapCache(max_bytes=100)
        for i in range(3):
            cache.memoize("op", (np.full(4, i),), {}, lambda: np.zeros(32))
        assert cache.stats().stored_bytes <= 100 + 32 * 8
        assert cache.stats().evictions >= 2

    def test_nested_activation_restores_previous(self):
        outer, inner = MapCache(), MapCache()
        from repro.mapping import active_cache

        assert active_cache() is None
        with use_map_cache(outer):
            with use_map_cache(inner):
                assert active_cache() is inner
            assert active_cache() is outer
        assert active_cache() is None

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            MapCache(max_entries=0)
        with pytest.raises(ValueError):
            MapCache(max_bytes=0)

    def test_eviction_misses_distinct_from_cold_misses(self):
        cache = MapCache(max_entries=2)
        keys = [cache.key("op", (np.full(4, i),), {}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, np.full(2, i))
        assert cache.stats().evictions == 1  # keys[0] fell out
        assert cache.get(keys[0]) is None
        assert cache.get(cache.key("op", (np.full(4, 9),), {})) is None
        stats = cache.stats()
        # one capacity miss, one cold miss — reported distinctly
        assert stats.misses == 2
        assert stats.eviction_misses == 1
        assert stats.snapshot()["eviction_misses"] == 1

    def test_reinserted_key_stops_counting_as_evicted(self):
        cache = MapCache(max_entries=2)
        keys = [cache.key("op", (np.full(4, i),), {}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, np.full(2, i))
        cache.put(keys[0], np.full(2, 0))  # back in residence
        assert cache.get(keys[0]) is not None
        assert cache.stats().eviction_misses == 0

    def test_clear_and_reset_stats(self, rng):
        cache = MapCache()
        pts = rng.normal(size=(16, 3))
        with use_map_cache(cache):
            farthest_point_sampling(pts, 4)
            farthest_point_sampling(pts, 4)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1  # counters survive a plain clear
        cache.clear(reset_stats=True)
        assert cache.stats().hits == 0 and cache.stats().lookups == 0

    def test_get_put_round_trip_owned(self):
        cache = MapCache()
        key = cache.key("op", (np.arange(4),), {"k": 2})
        assert cache.get(key, "op") is None
        stored = np.arange(6)
        cache.put(key, stored, "op")
        out = cache.get(key, "op")
        assert np.array_equal(out, stored)
        assert not np.shares_memory(out, stored)
        assert cache.stats().by_op["op"] == {"hits": 1, "misses": 1}


class TestScheduler:
    def _reqs(self):
        return [
            SimRequest("MinkNet(o)", scale=0.2, seed=0),          # large
            SimRequest("PointNet++(c)", scale=0.2, seed=1),       # small
            SimRequest("PointNet++(c)", scale=0.2, seed=0, priority=5),
            SimRequest("PointNet++(c)", scale=0.2, seed=1),       # dup of [1]
        ]

    def test_fifo_preserves_order(self):
        assert schedule(self._reqs(), "fifo") == [0, 1, 2, 3]

    def test_priority_is_stable(self):
        order = schedule(self._reqs(), "priority")
        assert order[0] == 2  # highest priority first
        assert order[1:] == [0, 1, 3]  # ties keep arrival order

    def test_bucketed_groups_small_first_and_duplicates_adjacent(self):
        order = schedule(self._reqs(), "bucketed")
        assert order[-1] == 0  # the big MinkNet cloud goes last
        dup_positions = [order.index(1), order.index(3)]
        assert abs(dup_positions[0] - dup_positions[1]) == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            schedule(self._reqs(), "lifo")

    def test_bucketed_equal_keys_keep_submission_order(self):
        # Regression: requests identical under the sort key must come back
        # in submission order — the explicit index tie-break, not sort
        # internals, decides.
        reqs = [SimRequest("PointNet++(c)", scale=0.2, seed=7, tag=f"t{i}")
                for i in range(6)]
        assert schedule(reqs, "bucketed") == list(range(6))

    def test_bucketed_normalizes_workload_key_types(self):
        # scale=1 vs 1.0 is the same workload; both spellings sort adjacent
        # and deterministically, int/float mix notwithstanding.
        reqs = [
            SimRequest("PointNet++(c)", scale=1.0, seed=0),
            SimRequest("PointNet++(c)", scale=0.2, seed=0),
            SimRequest("PointNet++(c)", scale=1, seed=0),
        ]
        order = schedule(reqs, "bucketed")
        assert order == [1, 0, 2]  # small bucket first; dup keeps 0 before 2

    def test_bucketed_deterministic_across_calls(self):
        reqs = self._reqs() * 3
        orders = {tuple(schedule(reqs, "bucketed")) for _ in range(5)}
        assert len(orders) == 1

    def test_estimate_points_scales(self):
        small = estimate_points("PointNet++(c)", 0.1)
        big = estimate_points("PointNet++(c)", 1.0)
        assert 16 <= small < big
        # n_points override honored (S3DIS blocks are 4096 points)
        assert estimate_points("PointNet++(s)", 1.0) == 4096


class TestBackends:
    def test_names_cover_accelerators_and_platforms(self):
        names = backend_names()
        assert "pointacc" in names and "mesorasi" in names
        assert "RTX 2080Ti" in names

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_backend("TPUv9")


class TestSimulationEngine:
    def test_batch_returns_submission_order(self):
        engine = SimulationEngine(backends=("pointacc",), policy="priority")
        reqs = [
            SimRequest("PointNet++(c)", scale=0.1, seed=0, priority=0),
            SimRequest("PointNet++(c)", scale=0.1, seed=1, priority=9),
        ]
        results = engine.run_batch(reqs)
        assert [r.request for r in results] == reqs

    def test_trace_reuse_and_meta_stamp(self):
        engine = SimulationEngine(backends=("pointacc",))
        reqs = [SimRequest("PointNet++(c)", scale=0.1, seed=0)] * 3
        results = engine.run_batch(reqs)
        assert [r.trace_reused for r in results] == [False, True, True]
        trace = results[0].trace
        assert trace.meta["workload_key"] == reqs[0].workload_key
        assert trace.meta["map_cache"]["misses"] > 0
        stats = engine.stats()
        assert stats.trace_builds == 1 and stats.trace_reuses == 2
        assert stats.report_reuses == 2
        assert stats.throughput_rps > 0

    def test_stream_yields_everything_across_windows(self):
        engine = SimulationEngine(backends=("pointacc",), policy="bucketed")
        reqs = [SimRequest("PointNet++(c)", scale=0.1, seed=i % 2)
                for i in range(5)]
        results = list(engine.stream(iter(reqs), window=2))
        assert len(results) == 5
        assert {r.request.seed for r in results} == {0, 1}

    def test_unsupported_backend_is_isolated(self):
        engine = SimulationEngine(backends=("pointacc", "mesorasi"))
        result = engine.run_batch([SimRequest("MinkNet(i)", scale=0.08)])[0]
        assert "pointacc" in result.reports
        assert "mesorasi" in result.errors
        assert "delayed aggregation" in result.errors["mesorasi"]
        # .report() falls back to the first available backend
        assert result.report().platform.startswith("PointAcc")

    def test_report_raises_when_everything_failed(self):
        result = run_cold(SimRequest("MinkNet(i)", scale=0.08),
                          backends=("mesorasi",))
        assert result.errors
        with pytest.raises(KeyError):
            result.report()

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SimulationEngine(backends=())
        with pytest.raises(ValueError):
            SimulationEngine(policy="random")
        engine = SimulationEngine(backends=("pointacc",))
        with pytest.raises(ValueError):
            next(engine.stream(iter([]), window=0))

    def test_disabled_map_cache(self):
        engine = SimulationEngine(backends=("pointacc",), map_cache=None)
        results = engine.run_batch(
            [SimRequest("PointNet++(c)", scale=0.1)] * 2
        )
        assert results[0].map_cache_hits == 0
        assert engine.stats().map_cache == {}

    def test_injected_l2_builds_tiered_lookup(self):
        from repro.mapping import TieredLookup

        l2 = MapCache()
        engine = SimulationEngine(backends=("pointacc",), l2=l2,
                                  reuse_traces=False)
        assert isinstance(engine._lookup, TieredLookup)
        engine.run_batch([SimRequest("PointNet++(c)", scale=0.1)] * 2)
        # both tiers saw the build; the repeat was served from a tier
        assert l2.stats().lookups > 0
        snap = engine.stats().map_cache
        assert snap["hits"] > 0 and len(snap["tiers"]) == 2
        # a sibling engine sharing the same L2 hits immediately
        sibling = SimulationEngine(backends=("pointacc",), l2=l2,
                                   reuse_traces=False)
        sibling.run_batch([SimRequest("PointNet++(c)", scale=0.1)])
        assert l2.stats().hits > 0
