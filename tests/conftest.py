"""Shared fixtures: small deterministic clouds and tensors."""

import numpy as np
import pytest

from repro.pointcloud import PointCloud, generate_sample


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def object_cloud():
    """A small ModelNet-like object (256 points, unit sphere)."""
    return generate_sample("modelnet40", seed=7, n_points=256)


@pytest.fixture
def indoor_cloud():
    """A small S3DIS-like room (1500 points, meters)."""
    return generate_sample("s3dis", seed=7, n_points=1500)


@pytest.fixture
def outdoor_cloud():
    """A small SemanticKITTI-like LiDAR scan."""
    return generate_sample("semantickitti", seed=7, n_points=2000)


@pytest.fixture
def voxel_tensor(indoor_cloud):
    """A stride-1 sparse tensor with features attached."""
    tensor = indoor_cloud.voxelize(0.08)
    rng = np.random.default_rng(0)
    return tensor.with_features(rng.normal(size=(tensor.n, 8)))
