"""Engine equivalence properties: caching must never change a result.

Two families of properties, both required by the PR acceptance criteria:

1. *Batched == sequential, bit-identical.*  For any batch of requests, every
   engine configuration (any scheduling policy, map cache on/off, trace memo
   on/off) produces per-request ``PerfReport``s exactly equal — dataclass
   equality, every float — to cold sequential ``PointAccModel`` runs.
2. *Cache hit/miss transparency at the op level.*  For random geometry, a
   mapping op called through an active ``MapCache`` (miss then hit) returns
   arrays bit-identical to the uncached call.

The heavyweight network-level properties enumerate seeded batches (the
benchmark registry is the input space — the clouds inside are already
randomized per seed); the op-level properties use hypothesis directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine import MapCache, SimRequest, SimulationEngine, run_cold
from repro.mapping import (
    ball_query_indices,
    farthest_point_sampling,
    kernel_map_hash,
    kernel_map_mergesort,
    knn_indices,
    use_map_cache,
)

point_arrays = hnp.arrays(
    np.float64, st.tuples(st.integers(2, 40), st.just(3)),
    elements=st.floats(-10, 10, allow_nan=False).map(lambda v: round(v, 3)),
)
# Sparse-tensor coordinates are duplicate-free by construction (voxelized
# clouds); the kernel-map algorithms document that precondition.
coord_arrays = hnp.arrays(
    np.int64, st.tuples(st.integers(1, 30), st.just(3)),
    elements=st.integers(-20, 20),
).map(lambda a: np.unique(a, axis=0))


def _mixed_batch(seed: int) -> list[SimRequest]:
    """A small mixed batch with duplicates, derived from one seed."""
    rng = np.random.default_rng(seed)
    pool = ["PointNet++(c)", "DGCNN", "PointNet"]
    requests = [
        SimRequest(
            benchmark=pool[int(rng.integers(len(pool)))],
            scale=0.1,
            seed=int(rng.integers(3)),
            priority=int(rng.integers(3)),
        )
        for _ in range(5)
    ]
    requests.append(requests[0])  # force at least one exact repeat
    return requests


@pytest.mark.parametrize("batch_seed", [0, 1])
@pytest.mark.parametrize(
    "policy,map_cache,reuse_traces",
    [
        ("fifo", "auto", True),
        ("bucketed", "auto", False),  # op-level cache only
        ("priority", None, True),     # trace memo only
    ],
)
def test_engine_bit_identical_to_sequential(
    batch_seed, policy, map_cache, reuse_traces
):
    batch = _mixed_batch(batch_seed)
    sequential = [run_cold(r, backends=("pointacc",)) for r in batch]
    engine = SimulationEngine(
        backends=("pointacc",),
        policy=policy,
        map_cache=map_cache,
        reuse_traces=reuse_traces,
    )
    results = engine.run_batch(batch)
    assert len(results) == len(batch)
    for cold, hot in zip(sequential, results):
        assert hot.request == cold.request
        # Dataclass equality covers every field of every LayerRecord —
        # seconds, cycles, DRAM bytes, the full energy ledger, detail dicts.
        assert hot.reports["pointacc"] == cold.reports["pointacc"]


def test_cache_hit_and_miss_reports_identical():
    """Serving the same batch twice (cold caches vs fully warm) must agree."""
    batch = _mixed_batch(2)
    engine = SimulationEngine(backends=("pointacc",), policy="bucketed")
    first = engine.run_batch(batch)
    second = engine.run_batch(batch)  # all hits this time
    assert all(r.trace_reused for r in second)
    for a, b in zip(first, second):
        assert a.reports["pointacc"] == b.reports["pointacc"]


def test_sparseconv_requests_equivalent_through_engine():
    """Kernel-map caching path (MinkNet) is covered too, both cache modes."""
    batch = [SimRequest("MinkNet(i)", scale=0.08, seed=s % 2) for s in range(3)]
    sequential = [run_cold(r, backends=("pointacc",)) for r in batch]
    for reuse_traces in (True, False):
        engine = SimulationEngine(
            backends=("pointacc",), reuse_traces=reuse_traces
        )
        for cold, hot in zip(sequential, engine.run_batch(batch)):
            assert hot.reports["pointacc"] == cold.reports["pointacc"]


# ----------------------------------------------------------------------
# Op-level transparency: miss stores what compute returned, hit returns it
# bit-identically, and the caller can never tell which happened.
# ----------------------------------------------------------------------


@given(points=point_arrays, n_samples=st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_fps_transparent_through_cache(points, n_samples):
    plain = farthest_point_sampling(points, n_samples)
    with use_map_cache(MapCache()) as cache:
        miss = farthest_point_sampling(points, n_samples)
        hit = farthest_point_sampling(points, n_samples)
    assert cache.stats().hits == 1 and cache.stats().misses == 1
    assert np.array_equal(plain, miss)
    assert np.array_equal(plain, hit)
    assert hit.dtype == plain.dtype


@given(points=point_arrays, k=st.integers(1, 8), radius=st.floats(0.1, 5.0))
@settings(max_examples=40, deadline=None)
def test_knn_and_ball_transparent_through_cache(points, k, radius):
    queries = points[: max(1, len(points) // 2)]
    plain_idx, plain_dist = knn_indices(queries, points, k)
    plain_ball = ball_query_indices(queries, points, radius, k)
    with use_map_cache(MapCache()):
        for _ in range(2):  # miss pass then hit pass
            idx, dist = knn_indices(queries, points, k)
            ball = ball_query_indices(queries, points, radius, k)
            assert np.array_equal(idx, plain_idx)
            assert np.array_equal(dist, plain_dist)
            assert np.array_equal(ball, plain_ball)


@given(in_coords=coord_arrays, out_coords=coord_arrays)
@settings(max_examples=30, deadline=None)
def test_kernel_map_transparent_and_algorithms_keyed_apart(in_coords, out_coords):
    plain_ms = kernel_map_mergesort(in_coords, out_coords, 3, 1)
    plain_hash = kernel_map_hash(in_coords, out_coords, 3, 1)
    with use_map_cache(MapCache()) as cache:
        for _ in range(2):
            ms = kernel_map_mergesort(in_coords, out_coords, 3, 1)
            hh = kernel_map_hash(in_coords, out_coords, 3, 1)
            # Bit-identical to the uncached tables, including row order.
            assert np.array_equal(ms.in_idx, plain_ms.in_idx)
            assert np.array_equal(ms.out_idx, plain_ms.out_idx)
            assert np.array_equal(ms.weight_idx, plain_ms.weight_idx)
            assert np.array_equal(hh.in_idx, plain_hash.in_idx)
            assert hh.as_set() == ms.as_set()
    by_op = cache.stats().by_op
    assert by_op["kernel_map/mergesort"] == {"hits": 1, "misses": 1}
    assert by_op["kernel_map/hash"] == {"hits": 1, "misses": 1}
