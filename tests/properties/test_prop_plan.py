"""Plan/execute + delta-composition equivalence properties.

The acceptance contract of the batched tile front: for every op family it
decomposes ({kNN, ball query, kernel map, voxelize}), across executors
({engine, cluster, fleet}) and tile sizes, the plan path — vectorized
digests, ``get_many`` batching, whole-call reuse, delta-composed kernel
maps — produces results bit-identical to the cold reference computation
AND to the per-tile oracle it replaced (:class:`PerTileOracle`), cold and
warm, frame over frame.  Splices, certificates, whole-call hits and the
density bypass are wall-clock phenomena only.
"""

import numpy as np
import pytest

from repro.cluster import EngineCluster
from repro.engine import MapCache, SimRequest, run_cold
from repro.fleet import FleetSession, StreamSpec
from repro.mapping.ball_query import ball_query_indices
from repro.mapping.hooks import TieredLookup, use_map_cache
from repro.mapping.kernel_map import kernel_map
from repro.mapping.knn import knn_indices
from repro.pointcloud.coords import quantize_unique, voxelize
from repro.stream import (
    FrameSequence,
    SequenceConfig,
    StreamSession,
    TileMapCache,
)
from repro.stream.incremental import PerTileOracle

N_FRAMES = 3
CFG = SequenceConfig(seed=23, n_frames=N_FRAMES, base_points=2200,
                     fov=16.0, speed=2.0, n_dynamic=2)


# ----------------------------------------------------------------------
# Op level: batched == per-tile == reference, over perturbed frames
# ----------------------------------------------------------------------


def _drifting_clouds(rng, n=900, span=32.0, frames=3):
    """Frames where one region churns and the rest stays byte-stable."""
    base = rng.uniform(0, span, (n, 3))
    out = [base]
    for i in range(1, frames):
        nxt = out[-1].copy()
        corner = np.all(nxt < 8.0 + 2 * i, axis=1)
        nxt[corner] += 0.25
        out.append(nxt)
    return out


def _chains(**kwargs):
    kwargs.setdefault("min_points", 1)
    out = []
    for cls in (TileMapCache, PerTileOracle):
        front = cls(**kwargs)
        out.append((front,
                    TieredLookup([MapCache(max_entries=1 << 15)], front=front)))
    return out


@pytest.mark.parametrize("tile_size,halo", [(3.0, 1), (6.0, 2), (10.0, 0)])
def test_knn_and_ball_modes_agree_across_frames(rng, tile_size, halo):
    frames = _drifting_clouds(rng)
    (batched, chain_b), (legacy, chain_l) = _chains(
        tile_size=tile_size, halo=halo
    )
    for cloud in frames:
        expect_idx, expect_dist = knn_indices(cloud, cloud, 6)
        expect_ball = ball_query_indices(cloud, cloud, 2.0, 5)
        with use_map_cache(chain_b):
            got_idx, got_dist = knn_indices(cloud, cloud, 6)
            got_ball = ball_query_indices(cloud, cloud, 2.0, 5)
        with use_map_cache(chain_l):
            leg_idx, leg_dist = knn_indices(cloud, cloud, 6)
            leg_ball = ball_query_indices(cloud, cloud, 2.0, 5)
        assert np.array_equal(expect_idx, got_idx)
        assert np.array_equal(expect_idx, leg_idx)
        assert np.array_equal(expect_ball, got_ball)
        assert np.array_equal(expect_ball, leg_ball)
        assert np.allclose(expect_dist, got_dist, rtol=1e-12, atol=1e-9)
        assert np.allclose(expect_dist, leg_dist, rtol=1e-12, atol=1e-9)
    assert batched.stats().tile_hits > 0
    assert legacy.stats().tile_hits > 0


@pytest.mark.parametrize("voxel_tile", [4, 8, 32])
@pytest.mark.parametrize("algorithm", ["mergesort", "hash"])
def test_kernel_map_modes_agree_across_frames(rng, voxel_tile, algorithm):
    (batched, chain_b), (legacy, chain_l) = _chains(voxel_tile=voxel_tile)
    coords, _ = quantize_unique(rng.integers(0, 64, (900, 3)), 1)
    for step in range(3):
        keep = ~np.all(coords < 8 * step, axis=1)
        frame = np.ascontiguousarray(coords[keep])
        expect = kernel_map(frame, frame, kernel_size=3, algorithm=algorithm)
        with use_map_cache(chain_b):
            got = kernel_map(frame, frame, kernel_size=3, algorithm=algorithm)
        with use_map_cache(chain_l):
            leg = kernel_map(frame, frame, kernel_size=3, algorithm=algorithm)
        for table in (got, leg):
            assert np.array_equal(expect.in_idx, table.in_idx)
            assert np.array_equal(expect.out_idx, table.out_idx)
            assert np.array_equal(expect.weight_idx, table.weight_idx)
            assert expect.kernel_volume == table.kernel_volume
    assert batched._composer.splices + batched._composer.full_sorts >= 3


def test_voxelize_modes_agree_across_frames(rng):
    (batched, chain_b), (legacy, chain_l) = _chains(voxel_tile=8)
    for cloud in _drifting_clouds(rng, n=2500):
        expect = voxelize(cloud, 0.2)
        with use_map_cache(chain_b):
            got = voxelize(cloud, 0.2)
        with use_map_cache(chain_l):
            leg = voxelize(cloud, 0.2)
        for pair in (got, leg):
            assert np.array_equal(expect[0], pair[0])
            assert np.array_equal(expect[1], pair[1])


# ----------------------------------------------------------------------
# Network level: engine / cluster / fleet executors
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sequence():
    return FrameSequence(CFG)


@pytest.fixture(scope="module")
def oracles(sequence):
    out = {}
    for benchmark in ("MinkNet(o)", "PointNet++(c)"):
        notation = sequence.notation(benchmark)
        out[benchmark] = [
            run_cold(SimRequest(benchmark=notation, scale=0.25, seed=i))
            for i in range(N_FRAMES)
        ]
    return out


def _assert_matches(session, oracle):
    results = session.run(N_FRAMES)
    for cold, frame in zip(oracle, results):
        assert frame.completed
        assert frame.result.reports["pointacc"] == cold.reports["pointacc"]


@pytest.mark.parametrize("tiles", [
    {"tile_size": 3.0, "halo": 1, "voxel_tile": 16},
    {"tile_size": 8.0, "halo": 1, "voxel_tile": 48},
])
@pytest.mark.parametrize("bench_name", ["MinkNet(o)", "PointNet++(c)"])
def test_engine_stream_batched_bit_identical(sequence, oracles, bench_name,
                                             tiles):
    session = StreamSession(
        sequence, bench_name, scale=0.25, min_points=64, **tiles,
    )
    _assert_matches(session, oracles[bench_name])
    assert session.tile_cache.stats().decomposed_calls > 0
    if bench_name == "MinkNet(o)":
        compose = session.tile_cache.stats().snapshot()["compose"]
        assert compose["splices"] + compose["full_sorts"] > 0


@pytest.mark.parametrize("bench_name", ["MinkNet(o)", "PointNet++(c)"])
def test_cluster_stream_batched_bit_identical(sequence, oracles, bench_name,
                                              tmp_path):
    cluster = EngineCluster(
        n_shards=2,
        backends=("pointacc",),
        tile_cache=TileMapCache(tile_size=4.0, halo=1, min_points=64),
        cache_dir=tmp_path / "spill",
    )
    session = StreamSession(sequence, bench_name, scale=0.25,
                            cluster=cluster)
    _assert_matches(session, oracles[bench_name])
    assert cluster.tile_cache.stats().tile_hits > 0


@pytest.mark.parametrize("bench_name", ["MinkNet(o)", "PointNet++(c)"])
def test_fleet_batched_bit_identical(bench_name):
    """Two same-world staggered streams through one shared batched front
    (the WorldTileStore-wrapped chain): every frame equals its own cold
    oracle, and the overlap earns cross-stream hits — for the kernel-map/
    voxelize family and the kNN/ball-query family alike."""
    sequences = [
        FrameSequence(SequenceConfig(
            seed=23, n_frames=N_FRAMES, base_points=2200, fov=16.0,
            speed=2.0, n_dynamic=2, start_x=i * 1.0, sensor_seed=i,
        ))
        for i in range(2)
    ]
    specs = [
        StreamSpec(name=f"veh{i}", sequence=seq, benchmark=bench_name,
                   scale=0.25, n_frames=N_FRAMES)
        for i, seq in enumerate(sequences)
    ]
    fleet = FleetSession(specs, n_shards=1, min_points=64)
    results = fleet.run()
    for i, seq in enumerate(sequences):
        notation = seq.notation(bench_name)
        for frame_i in range(N_FRAMES):
            cold = run_cold(SimRequest(benchmark=notation, scale=0.25,
                                       seed=frame_i))
            frame = results[f"veh{i}"][frame_i]
            assert frame.result.reports["pointacc"] == cold.reports["pointacc"]
    store = fleet.world_store
    assert store is not None
    # The second vehicle rides tiles the first one paid for.
    assert store.stats().cross_hits > 0


def test_bypassed_session_bit_identical(sequence, oracles):
    """An aggressive density floor (everything bypasses) must still equal
    the oracle — the bypass only re-routes to the digest path."""
    session = StreamSession(
        sequence, "MinkNet(o)", scale=0.25, min_points=64,
        min_points_per_tile=1 << 16,
    )
    _assert_matches(session, oracles["MinkNet(o)"])
    assert session.tile_cache.stats().bypassed_calls > 0
    assert session.tile_cache.stats().decomposed_calls == 0
