"""Hypothesis property tests for the cache and fusion models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.mmu import (
    CacheConfig,
    FusionPlanner,
    InputFeatureCache,
    simulate_conv_cache,
    simulate_fusion_stack,
)
from repro.mapping.maps import MapTable
from repro.nn.trace import LayerKind, LayerSpec


@st.composite
def map_tables(draw):
    n_in = draw(st.integers(4, 120))
    n_maps = draw(st.integers(1, 600))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    return MapTable(
        rng.integers(0, n_in, n_maps),
        rng.integers(0, n_in, n_maps),
        rng.integers(0, 27, n_maps),
        kernel_volume=27,
    )


cache_configs = st.builds(
    CacheConfig,
    capacity_bytes=st.sampled_from([2048, 8192, 65536]),
    block_points=st.sampled_from([1, 2, 4, 8]),
    c_in=st.sampled_from([8, 16, 64, 128]),
)


@given(maps=map_tables(), cfg=cache_configs)
@settings(max_examples=50, deadline=None)
def test_vectorized_cache_equals_stepwise(maps, cfg):
    fast = simulate_conv_cache(maps, cfg)
    slow = InputFeatureCache(cfg)
    for p in maps.sorted_by(by="weight").in_idx.tolist():
        slow.access_point(int(p))
    assert fast.misses == slow.stats.misses
    assert fast.accesses == slow.stats.accesses
    assert fast.dram_bytes == slow.stats.dram_bytes


@given(maps=map_tables(), cfg=cache_configs)
@settings(max_examples=50, deadline=None)
def test_cache_invariants(maps, cfg):
    stats = simulate_conv_cache(maps, cfg)
    assert 0 <= stats.misses <= stats.accesses
    # At least one cold miss per distinct block touched; no more misses
    # than point accesses.
    touched_blocks = len(set((maps.in_idx // cfg.block_points).tolist()))
    assert stats.misses >= min(touched_blocks, 1)
    assert stats.misses <= maps.n_maps
    assert stats.dram_bytes == stats.misses * cfg.block_bytes


@given(maps=map_tables(), block=st.sampled_from([1, 2, 4]),
       c_in=st.sampled_from([16, 64]))
@settings(max_examples=30, deadline=None)
def test_bigger_cache_never_more_misses(maps, block, c_in):
    small = simulate_conv_cache(
        maps, CacheConfig(4096, block, c_in)
    )
    # Direct-mapped caches can show Belady anomalies under adversarial
    # conflict patterns, but with the same block size and 16x the sets a
    # superset-of-sets argument holds: every hit in the small cache whose
    # line survives also hits in the big one. Allow a tiny slack for the
    # modulo-mapping edge cases.
    big = simulate_conv_cache(
        maps, CacheConfig(65536, block, c_in)
    )
    assert big.misses <= small.misses + maps.n_maps // 50 + 1


@st.composite
def dense_chains(draw):
    rows = draw(st.integers(32, 512))
    n_layers = draw(st.integers(1, 5))
    widths = [draw(st.sampled_from([8, 16, 32, 64]))
              for _ in range(n_layers + 1)]
    return [
        LayerSpec(
            name=f"l{i}", kind=LayerKind.DENSE_MM, n_in=rows, n_out=rows,
            c_in=widths[i], c_out=widths[i + 1], rows=rows, fusible=True,
        )
        for i in range(n_layers)
    ]


@given(chain=dense_chains(),
       feat_kb=st.sampled_from([16, 64, 256]),
       weight_kb=st.sampled_from([8, 64]))
@settings(max_examples=50, deadline=None)
def test_fusion_plan_is_partition_and_never_worse(chain, feat_kb, weight_kb):
    planner = FusionPlanner(feat_kb * 1024, weight_kb * 1024)
    groups = planner.plan_chain(chain)
    # The groups partition the chain in order.
    flattened = [s for g in groups for s in g.specs]
    assert flattened == chain
    # Fusion never increases DRAM traffic vs layer-by-layer.
    fused = sum(g.dram_bytes(2) for g in groups)
    unfused = sum(g.unfused_dram_bytes(2) for g in groups)
    assert fused <= unfused


@given(chain=dense_chains(), feat_kb=st.sampled_from([32, 256]))
@settings(max_examples=50, deadline=None)
def test_fusion_stack_simulation_safe(chain, feat_kb):
    planner = FusionPlanner(feat_kb * 1024, 10**9)
    for group in planner.plan_chain(chain):
        result = simulate_fusion_stack(group, feat_kb * 1024)
        assert result["peak_bytes"] <= feat_kb * 1024
        assert result["rows_computed"] == [group.rows] * group.n_layers
