"""Hypothesis property tests on the hardware cost models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import PointAccModel, POINTACC_EDGE, POINTACC_FULL
from repro.core.mxu import MatrixUnit
from repro.nn.trace import LayerKind, LayerSpec, Trace


def _dense(rows, c_in, c_out):
    return LayerSpec(
        name="d", kind=LayerKind.DENSE_MM, n_in=rows, n_out=rows,
        c_in=c_in, c_out=c_out, rows=rows, fusible=True,
    )


def _sparse(n, c_in, c_out, maps_per_point, kv=27):
    n_maps = n * maps_per_point
    return LayerSpec(
        name="s", kind=LayerKind.SPARSE_CONV, n_in=n, n_out=n,
        c_in=c_in, c_out=c_out, rows=n_maps, n_maps=n_maps,
        kernel_volume=kv,
    )


channels = st.sampled_from([1, 4, 16, 64, 200])
rows = st.integers(1, 20_000)


@given(rows=rows, c_in=channels, c_out=channels)
@settings(max_examples=60, deadline=None)
def test_mxu_utilization_bounded(rows, c_in, c_out):
    mxu = MatrixUnit(64, 64)
    stats = mxu.dense_mm(rows, c_in, c_out)
    assert stats.cycles > 0
    # The array can never exceed one MAC per PE per cycle.
    assert stats.macs <= stats.cycles * 64 * 64


@given(rows=rows, c_in=channels, c_out=channels)
@settings(max_examples=40, deadline=None)
def test_mxu_cycles_monotone_in_rows(rows, c_in, c_out):
    mxu = MatrixUnit(16, 16)
    a = mxu.dense_mm(rows, c_in, c_out).cycles
    b = mxu.dense_mm(rows + 100, c_in, c_out).cycles
    assert b > a


@given(
    n=st.integers(10, 3000),
    c=st.sampled_from([8, 32, 64]),
    maps_per_point=st.integers(1, 27),
)
@settings(max_examples=40, deadline=None)
def test_accelerator_invariants_on_sparse_conv(n, c, maps_per_point):
    trace = Trace(name="prop")
    trace.record(_sparse(n, c, c, maps_per_point))
    model = PointAccModel(POINTACC_FULL)
    rep = model.run(trace)
    assert rep.total_seconds > 0
    assert rep.energy_joules > 0
    assert rep.total_macs == trace.total_macs
    # Latency is at least the compute floor of the systolic array.
    floor = trace.total_macs / (64 * 64) / 1e9
    assert rep.total_seconds >= floor * 0.99


@given(
    n=st.integers(64, 4000),
    widths=st.lists(st.sampled_from([8, 16, 64, 128]), min_size=2,
                    max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_fusion_never_hurts(n, widths):
    trace = Trace(name="prop")
    for i in range(len(widths) - 1):
        trace.record(_dense(n, widths[i], widths[i + 1]))
    model = PointAccModel(POINTACC_FULL)
    fused = model.run(trace, fusion=True)
    unfused = model.run(trace, fusion=False)
    assert fused.dram_bytes <= unfused.dram_bytes * 1.001
    assert fused.total_macs == unfused.total_macs


@given(n=st.integers(100, 5000), c=st.sampled_from([64, 128, 256]))
@settings(max_examples=30, deadline=None)
def test_edge_never_faster_than_full_on_wide_layers(n, c):
    """For layers at least as wide as the edge array, the full config's
    16x channel parallelism wins (the MXU parallelizes across channels,
    not points — Section 4.3)."""
    trace = Trace(name="prop")
    trace.record(_sparse(n, c, c, 8))
    trace.record(_dense(n, c, c))
    full = PointAccModel(POINTACC_FULL).run(trace)
    edge = PointAccModel(POINTACC_EDGE).run(trace)
    assert edge.total_seconds >= full.total_seconds


def test_narrow_layers_do_not_benefit_from_bigger_array():
    """Found by hypothesis, kept as a documented behaviour: with c <= 16
    both arrays stream one row per cycle (channel parallelism is the only
    parallelism — Section 4.3), so the 64x64 array only adds fill/drain
    latency on narrow layers."""
    trace = Trace(name="narrow")
    trace.record(_sparse(100, 16, 16, 8))
    full = PointAccModel(POINTACC_FULL).run(trace)
    edge = PointAccModel(POINTACC_EDGE).run(trace)
    assert edge.total_seconds < full.total_seconds


@given(
    n=st.integers(100, 3000),
    kind=st.sampled_from([
        LayerKind.MAP_FPS, LayerKind.MAP_KNN, LayerKind.MAP_KERNEL,
        LayerKind.MAP_QUANT,
    ]),
)
@settings(max_examples=40, deadline=None)
def test_mapping_costs_scale_with_cloud(n, kind):
    def mapping_spec(points):
        return LayerSpec(
            name="m", kind=kind, n_in=points, n_out=max(points // 4, 1),
            rows=points, n_maps=points * 2, kernel_volume=8,
        )

    model = PointAccModel(POINTACC_FULL)
    small = model._mapping_stats(mapping_spec(n))
    large = model._mapping_stats(mapping_spec(n * 4))
    assert large.cycles >= small.cycles
