"""Streaming equivalence properties: streams may never change a result.

The acceptance contract for the streaming subsystem: serving a frame
sequence through :class:`~repro.stream.StreamSession` — tile-granular
incremental reuse, geometry-only execution, engine or cluster, any tile
size and halo width — yields per-frame ``PerfReport``s exactly equal
(dataclass equality, every float) to cold per-frame sequential runs
(:func:`repro.engine.run_cold` on the same sourced notation).  Tiles,
halos, certificates, geometry-only ghosts and cache tiers are wall-clock
phenomena only.

A second family proves the geometry-only claim at its root: a
geometry-only run's report equals a *full functional* run's report on the
same frames (features computed and then ignored), for the SparseConv
family where the mode applies.
"""

import pytest

from repro.cluster import EngineCluster
from repro.engine import SimRequest, run_cold
from repro.stream import (
    FrameSequence,
    SequenceConfig,
    StreamSession,
    TileMapCache,
)

N_FRAMES = 3
CFG = SequenceConfig(seed=11, n_frames=N_FRAMES, base_points=2200,
                     fov=16.0, speed=2.0, n_dynamic=2)

TILE_CONFIGS = [
    {"tile_size": 3.0, "halo": 1, "voxel_tile": 16},
    {"tile_size": 6.0, "halo": 1, "voxel_tile": 48},
    {"tile_size": 3.0, "halo": 2, "voxel_tile": 8},
    {"tile_size": 10.0, "halo": 0, "voxel_tile": 32},
]

# One SparseConv stream (kernel-map tiles + geometry-only) and one
# PointNet++ stream (FPS passthrough + ball-query/kNN tiles + functional).
BENCHMARKS = ["MinkNet(o)", "PointNet++(c)"]


@pytest.fixture(scope="module")
def sequence():
    return FrameSequence(CFG)


@pytest.fixture(scope="module")
def oracles(sequence):
    """Cold sequential per-frame runs — computed once per benchmark."""
    out = {}
    for benchmark in BENCHMARKS:
        notation = sequence.notation(benchmark)
        out[benchmark] = [
            run_cold(SimRequest(benchmark=notation, scale=0.25, seed=i))
            for i in range(N_FRAMES)
        ]
    return out


def _assert_stream_matches(session, oracle):
    results = session.run(N_FRAMES)
    assert len(results) == len(oracle)
    for cold, frame in zip(oracle, results):
        assert frame.completed and not frame.dropped
        # Dataclass equality covers every field of every LayerRecord —
        # seconds, cycles, DRAM bytes, the full energy ledger.
        assert frame.result.reports["pointacc"] == cold.reports["pointacc"]


@pytest.mark.parametrize("tiles", TILE_CONFIGS,
                         ids=lambda t: f"t{t['tile_size']}h{t['halo']}v{t['voxel_tile']}")
@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_stream_bit_identical_across_tile_configs(sequence, oracles,
                                                  bench_name, tiles):
    session = StreamSession(
        sequence, bench_name, scale=0.25, min_points=64, **tiles
    )
    _assert_stream_matches(session, oracles[bench_name])
    if bench_name == "MinkNet(o)":
        assert session.geometry_only  # the mode under test is actually on
        assert session.tile_cache.stats().decomposed_calls > 0


@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_stream_without_tiles_bit_identical(sequence, oracles, bench_name):
    session = StreamSession(sequence, bench_name, scale=0.25, use_tiles=False)
    _assert_stream_matches(session, oracles[bench_name])


@pytest.mark.parametrize("n_shards", [1, 2])
def test_cluster_stream_bit_identical(sequence, oracles, n_shards, tmp_path):
    """Engine-vs-cluster execution: shared tile front, shared L2, disk
    spill — still the cold oracle, bit for bit."""
    cluster = EngineCluster(
        n_shards=n_shards,
        backends=("pointacc",),
        tile_cache=TileMapCache(tile_size=4.0, halo=1, min_points=64),
        cache_dir=tmp_path / "spill",
    )
    session = StreamSession(sequence, "MinkNet(o)", scale=0.25, cluster=cluster)
    _assert_stream_matches(session, oracles["MinkNet(o)"])
    assert cluster.tile_cache.stats().decomposed_calls > 0


def test_geometry_only_equals_full_functional(sequence):
    """The root claim behind geometry-only execution: feature arithmetic
    cannot reach the report.  Run the same frames with geometry_only off
    (full feature math) and on; reports must be equal exactly."""
    notation = sequence.notation("MinkNet(o)")
    for i in range(N_FRAMES):
        functional = run_cold(
            SimRequest(benchmark=notation, scale=0.25, seed=i,
                       geometry_only=False)
        )
        geometry = run_cold(
            SimRequest(benchmark=notation, scale=0.25, seed=i,
                       geometry_only=True)
        )
        assert functional.reports["pointacc"] == geometry.reports["pointacc"]


def test_warm_second_pass_still_bit_identical(sequence, oracles):
    """Replaying the sequence on a hot session (every tile cached, trace
    memo full) must still match the oracle."""
    session = StreamSession(sequence, "MinkNet(o)", scale=0.25, min_points=64)
    session.run(N_FRAMES)
    session._next_frame = 0  # rewind: same frames, hot caches
    _assert_stream_matches(session, oracles["MinkNet(o)"])
    assert session.tile_cache.stats().tile_hits > 0
