"""Property-suite harness knobs.

``REPRO_TRACE=1`` runs the whole property suite with a live tracer
installed — every bit-identity proof then doubles as a proof that
tracing is observability only (spans may change wall-clock, never a
result).  Off by default so the plain run keeps measuring the disabled
hook path.
"""

import os

import pytest

from repro.obs.trace import Tracer, use_tracer


@pytest.fixture(autouse=True)
def _tracing_mode():
    if os.environ.get("REPRO_TRACE") == "1":
        with use_tracer(Tracer()):
            yield
    else:
        yield
