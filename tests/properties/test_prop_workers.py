"""Worker-mode equivalence properties: processes may never change a result.

The acceptance contract for PR 6: ``EngineCluster(workers=N)`` — real OS
processes hosting the shard engines, requests/results crossing pickled,
the disk tier of :class:`~repro.cluster.store.SharedMapStore` standing in
for a shared L2 — produces per-request ``PerfReport``\\ s exactly equal,
dataclass equality on every float, to both the in-process ``workers=0``
cluster and the cold sequential oracle (:func:`repro.engine.run_cold`).
The matrix covers both routing modes and every cache-tier configuration,
plus fleet serving (per-worker tile-front copies, merged attribution) and
the intra-engine trace/cost overlap pipeline.  Parallelism, pickling, and
disk sharing are wall-clock phenomena only.
"""

import pytest

from repro.cluster import EngineCluster
from repro.engine import SimRequest, SimulationEngine, run_cold
from repro.fleet import FleetSession, StreamSpec
from repro.stream import FrameSequence, SequenceConfig

ROUTINGS = ("affinity", "least-loaded")
TIERS = ("l1", "l1+l2", "l1+l2+disk")


def _mixed_batch() -> list[SimRequest]:
    """Mixed batch with repeats (request- and op-level reuse both fire)
    and a SparseConv model so the kernel-map path crosses the pipes."""
    return [
        SimRequest("PointNet++(c)", scale=0.1, seed=0),
        SimRequest("DGCNN", scale=0.1, seed=0, priority=2),
        SimRequest("PointNet++(c)", scale=0.1, seed=1),
        SimRequest("MinkNet(i)", scale=0.08, seed=0),
        SimRequest("PointNet++(c)", scale=0.1, seed=0, tag="repeat"),
    ]


@pytest.fixture(scope="module")
def oracle():
    """Cold sequential runs — computed once, compared against every config."""
    return [run_cold(r, backends=("pointacc",)) for r in _mixed_batch()]


def _cluster(routing, tiers, tmp_path, workers, subdir):
    kwargs = {}
    if tiers == "l1":
        kwargs["l2"] = None
    elif tiers == "l1+l2+disk":
        kwargs["cache_dir"] = tmp_path / subdir
    return EngineCluster(
        n_shards=4, backends=("pointacc",), routing=routing,
        workers=workers, **kwargs,
    )


@pytest.mark.parametrize("routing", ROUTINGS)
@pytest.mark.parametrize("tiers", TIERS)
def test_workers_bit_identical_to_in_process_and_cold(
    routing, tiers, oracle, tmp_path
):
    batch = _mixed_batch()
    inproc = _cluster(routing, tiers, tmp_path, workers=0, subdir="inproc")
    baseline = inproc.run_batch(batch)
    with _cluster(routing, tiers, tmp_path, workers=2, subdir="workers") as cluster:
        results = cluster.run_batch(batch)
        assert cluster.workers == 2
        stats = cluster.stats()
    assert len(results) == len(oracle)
    for cold, warm, hot in zip(oracle, baseline, results):
        assert hot.request == cold.request
        # Dataclass equality covers every field of every LayerRecord —
        # seconds, cycles, DRAM bytes, the full energy ledger, detail dicts.
        assert hot.reports["pointacc"] == cold.reports["pointacc"]
        assert hot.reports["pointacc"] == warm.reports["pointacc"]
        assert hot.shard == warm.shard  # routing is process-agnostic
    # Merged stats cover every shard and the whole batch.
    assert stats.workers == 2
    assert len(stats.shards) == 4
    assert sum(s["requests"] for s in stats.shards) == len(batch)
    if tiers != "l1":
        assert stats.l2.get("lookups", 0) > 0


@pytest.mark.parametrize("routing", ROUTINGS)
def test_worker_disk_tier_shared_across_processes(routing, oracle, tmp_path):
    """The cross-process L2: a worker cluster pointed at another cluster's
    cache_dir warm-starts from disk — and still matches the oracle."""
    cache_dir = tmp_path / "spill"
    seeder = _cluster(routing, "l1+l2+disk", tmp_path, workers=0, subdir="spill")
    seeder.run_batch(_mixed_batch())
    assert any(cache_dir.glob("*.map"))
    with EngineCluster(
        n_shards=4, backends=("pointacc",), routing=routing,
        workers=2, cache_dir=cache_dir,
    ) as warm:
        results = warm.run_batch(_mixed_batch())
        stats = warm.stats()
    assert stats.l2.get("disk_hits", 0) > 0  # genuinely served from disk
    for cold, hot in zip(oracle, results):
        assert hot.reports["pointacc"] == cold.reports["pointacc"]


def test_workers_clamped_and_validated(tmp_path):
    with EngineCluster(n_shards=2, workers=8) as cluster:
        assert cluster.workers == 2  # clamped to shard granularity
    with pytest.raises(ValueError):
        EngineCluster(n_shards=2, workers=-1)
    from repro.cluster import SharedMapStore
    with pytest.raises(ValueError):
        EngineCluster(n_shards=2, workers=2, l2=SharedMapStore())


def test_fleet_workers_bit_identical_to_in_process():
    """Fleet serving with worker processes: per-stream frame reports match
    the in-process fleet exactly, and the merged per-worker attribution
    still surfaces cross-stream sharing."""
    base = dict(n_frames=2, base_points=1500, fov=14.0, speed=2.0,
                n_dynamic=2)
    def specs():
        return [
            StreamSpec(
                name=f"veh{i}",
                sequence=FrameSequence(
                    SequenceConfig(seed=31, start_x=0.4 * i, sensor_seed=i,
                                   **base)
                ),
                benchmark="MinkNet(o)", scale=0.2, n_frames=2,
            )
            for i in range(2)
        ]
    baseline_session = FleetSession(specs(), n_shards=2, min_points=64)
    baseline = baseline_session.run()
    with FleetSession(specs(), n_shards=2, min_points=64, workers=2) as fleet:
        results = fleet.run()
        summary = fleet.summary()
    for name, frames in baseline.items():
        worker_frames = results[name]
        assert len(worker_frames) == len(frames)
        for ref, frame in zip(frames, worker_frames):
            assert frame.completed and not frame.dropped
            assert (
                frame.result.reports["pointacc"]
                == ref.result.reports["pointacc"]
            ), f"{name} frame {frame.index} diverged from workers=0"
    assert summary["executor"]["workers"] == 2
    # Attribution now comes from the merged per-worker snapshots.
    assert summary["world_tiles"]["lookups"] > 0
    assert summary["world_tiles"]["cross_hits"] > 0


def test_engine_overlap_bit_identical():
    """The intra-shard pipeline: overlap=True (trace k+1 builds while
    cost model k evaluates) must not perturb a single float."""
    batch = _mixed_batch()
    plain = SimulationEngine(backends=("pointacc",)).run_batch(batch)
    overlapped = SimulationEngine(
        backends=("pointacc",), overlap=True
    ).run_batch(batch)
    for ref, hot in zip(plain, overlapped):
        assert hot.reports["pointacc"] == ref.reports["pointacc"]
