"""Cluster equivalence properties: the fleet may never change a result.

The acceptance contract for the cluster subsystem: for every shard count
{1, 2, 4}, both routing modes, and every cache-tier configuration (L1 only,
L1+L2, L1+L2+disk), serving a batch through :class:`EngineCluster` yields
per-request ``PerfReport``s exactly equal — dataclass equality, every
float — to cold sequential :class:`~repro.core.PointAccModel` runs
(:func:`repro.engine.run_cold`).  Sharding, QoS ordering, L2 sharing and
disk warm-starts are all wall-clock phenomena only.

A second family checks QoS-field invariance (tenants/deadlines/priorities
reorder, never alter) and that a *warm-started* cluster — same cache dir,
fresh process-equivalent state — still reproduces the cold oracle bit for
bit, which is exactly the persistence path the CLI exercises.
"""

import pytest

from repro.cluster import EngineCluster
from repro.engine import SimRequest, run_cold

SHARD_COUNTS = (1, 2, 4)
ROUTINGS = ("affinity", "least-loaded")
TIERS = ("l1", "l1+l2", "l1+l2+disk")


def _mixed_batch() -> list[SimRequest]:
    """Small mixed batch with repeats: both request-level and op-level reuse
    fire, plus a SparseConv model so the kernel-map path is covered."""
    batch = [
        SimRequest("PointNet++(c)", scale=0.1, seed=0),
        SimRequest("DGCNN", scale=0.1, seed=0, priority=2),
        SimRequest("PointNet++(c)", scale=0.1, seed=1),
        SimRequest("MinkNet(i)", scale=0.08, seed=0),
        SimRequest("PointNet++(c)", scale=0.1, seed=0, tag="repeat"),
    ]
    return batch


@pytest.fixture(scope="module")
def oracle():
    """Cold sequential runs — computed once, compared against every config."""
    return [run_cold(r, backends=("pointacc",)) for r in _mixed_batch()]


def _cluster(n_shards, routing, tiers, tmp_path):
    kwargs = {}
    if tiers == "l1":
        kwargs["l2"] = None
    elif tiers == "l1+l2+disk":
        kwargs["cache_dir"] = tmp_path / "spill"
    return EngineCluster(
        n_shards=n_shards, backends=("pointacc",), routing=routing, **kwargs
    )


@pytest.mark.parametrize("routing", ROUTINGS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("tiers", TIERS)
def test_cluster_bit_identical_to_cold_sequential(
    n_shards, routing, tiers, oracle, tmp_path
):
    cluster = _cluster(n_shards, routing, tiers, tmp_path)
    results = cluster.run_batch(_mixed_batch())
    assert len(results) == len(oracle)
    for cold, hot in zip(oracle, results):
        assert hot.request == cold.request
        # Dataclass equality covers every field of every LayerRecord —
        # seconds, cycles, DRAM bytes, the full energy ledger, detail dicts.
        assert hot.reports["pointacc"] == cold.reports["pointacc"]


@pytest.mark.parametrize("routing", ROUTINGS)
def test_warm_started_cluster_still_bit_identical(routing, oracle, tmp_path):
    """The persistence path: a fresh cluster served entirely from another
    cluster's disk spill must still match the cold oracle exactly."""
    cache_dir = tmp_path / "spill"
    _cluster(4, routing, "l1+l2+disk", tmp_path).run_batch(_mixed_batch())
    warm = _cluster(4, routing, "l1+l2+disk", tmp_path)
    results = warm.run_batch(_mixed_batch())
    assert warm.l2.disk_hits > 0  # genuinely warm-started, not recomputed
    for cold, hot in zip(oracle, results):
        assert hot.reports["pointacc"] == cold.reports["pointacc"]
    assert any(cache_dir.glob("*.map"))


def test_qos_fields_never_change_results(oracle):
    """Tenants, deadlines and priorities reorder execution; results match
    the oracle request for request regardless."""
    decorated = [
        SimRequest(
            r.benchmark, scale=r.scale, seed=r.seed,
            priority=(3 - i) % 4, tag=f"q{i}",
            tenant=f"tenant{i % 2}", deadline_ms=1e9 - i,
        )
        for i, r in enumerate(_mixed_batch())
    ]
    cluster = EngineCluster(n_shards=2, backends=("pointacc",))
    results = cluster.run_batch(decorated)
    for cold, hot in zip(oracle, results):
        assert hot.request.workload_key == cold.request.workload_key
        assert hot.reports["pointacc"] == cold.reports["pointacc"]
    stats = cluster.stats()
    assert stats.deadline_met == len(decorated)  # generous budgets all met
