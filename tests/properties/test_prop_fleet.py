"""Fleet equivalence properties: sharing may never change a result.

The acceptance contract of ``repro.fleet``: each stream served through a
:class:`~repro.fleet.FleetSession` — interleaved rounds, shared executor,
world-keyed cross-stream tile store, incremental voxelizer — produces
per-frame ``PerfReport``\\ s exactly equal to running that stream **cold
and alone** (:func:`repro.engine.run_cold` per frame: fresh functional
simulation, no caches, no fleet).  The matrix covers {2, 4} streams x
overlapping vs disjoint world regions x engine vs cluster execution x
incremental vs cold voxelizer.
"""

import pytest

from repro.engine import SimRequest, run_cold
from repro.fleet import FleetSession, StreamSpec
from repro.stream import FrameSequence, SequenceConfig

N_FRAMES = 2
SCALE = 0.2
BASE = dict(n_frames=N_FRAMES, base_points=1800, fov=14.0, speed=2.0,
            n_dynamic=2)


def _configs(n_streams: int, regions: str):
    if regions == "overlapping":
        # One world: staggered trajectories and per-vehicle sensor noise.
        return [
            SequenceConfig(seed=31, start_x=0.4 * i, sensor_seed=i, **BASE)
            for i in range(n_streams)
        ]
    return [SequenceConfig(seed=40 + i, **BASE) for i in range(n_streams)]


def _specs(n_streams: int, regions: str):
    return [
        StreamSpec(name=f"veh{i}", sequence=FrameSequence(config),
                   benchmark="MinkNet(o)", scale=SCALE, n_frames=N_FRAMES)
        for i, config in enumerate(_configs(n_streams, regions))
    ]


@pytest.fixture(scope="module")
def oracles():
    """Cold per-frame runs for every sequence the matrix uses, computed
    once per distinct config."""
    out = {}
    for regions in ("overlapping", "disjoint"):
        for spec in _specs(4, regions):
            out[spec.sequence.token] = [
                run_cold(SimRequest(
                    benchmark=spec.sequence.notation(spec.benchmark),
                    scale=SCALE, seed=i,
                ))
                for i in range(N_FRAMES)
            ]
    return out


@pytest.mark.parametrize("incremental_voxelize", [True, False],
                         ids=["vox-incr", "vox-cold"])
@pytest.mark.parametrize("n_shards", [0, 2], ids=["engine", "cluster"])
@pytest.mark.parametrize("regions", ["overlapping", "disjoint"])
@pytest.mark.parametrize("n_streams", [2, 4])
def test_fleet_bit_identical_to_cold_alone(oracles, n_streams, regions,
                                           n_shards, incremental_voxelize):
    specs = _specs(n_streams, regions)
    fleet = FleetSession(
        specs, n_shards=n_shards, min_points=64,
        incremental_voxelize=incremental_voxelize,
    )
    results = fleet.run()
    for spec in specs:
        cold = oracles[spec.sequence.token]
        frames = results[spec.name]
        assert len(frames) == N_FRAMES
        for cold_result, frame in zip(cold, frames):
            assert frame.completed and not frame.dropped
            # Dataclass equality covers every field of every LayerRecord.
            assert (
                frame.result.reports["pointacc"]
                == cold_result.reports["pointacc"]
            ), f"{spec.name} frame {frame.index} diverged from cold oracle"
    world = fleet.world_store.stats()
    if regions == "overlapping":
        assert world.cross_hits > 0  # sharing actually engaged
    else:
        assert world.cross_hits == 0  # and never invents overlap
