"""Ledger properties: completeness and bit-identity.

Two contracts from the observability acceptance criteria:

* **Completeness** — with a ledger installed, every tile the batched
  planner plans is classified by exactly one tile event: per
  ``(frame, op)``, the tile-event counts (hits + recomputes + fallbacks)
  sum exactly to the planned tile counts on the call events.  Holds for
  every in-process executor shape (single engine, cluster shards, fleet
  rounds).  Worker processes keep their events process-local, so the
  property is stated for ``workers=0`` — the mode where the parent's
  ledger sees the planner.
* **Bit-identity** — the ledger is observability only: a run with a
  ledger installed yields reports equal to a run without one.
"""

from collections import Counter

import pytest

from repro.cluster import EngineCluster
from repro.obs.ledger import RecomputeLedger, TILE_CAUSES, use_ledger
from repro.stream import (
    FrameSequence,
    SequenceConfig,
    StreamSession,
    TileMapCache,
)

N_FRAMES = 3
SCALE = 0.2
CFG = SequenceConfig(seed=11, n_frames=N_FRAMES, base_points=2200,
                     fov=16.0, speed=2.0, n_dynamic=2)

# One SparseConv stream (kernel-map + voxelize tiles) and one PointNet++
# stream (ball-query/kNN tiles) — together they cross every tile op.
BENCHMARKS = ["MinkNet(o)", "PointNet++(c)"]


def _check_completeness(ledger):
    """Per (frame, op): tile-event counts sum to planned call tiles."""
    planned = Counter()
    classified = Counter()
    for event in ledger.events():
        key = (event["frame"], event.get("op"))
        if event["kind"] == "call" and event["cause"] == "planned":
            planned[key] += event["tiles"]
        elif event["kind"] == "tile":
            classified[key] += event["n"]
    assert planned, "run emitted no planned calls — nothing was exercised"
    assert classified == planned
    # Every frame tag was stamped (no event escaped the request scope).
    assert all(frame is not None for frame, _ in planned)
    # No cause outside the documented taxonomy.
    causes = {e["cause"] for e in ledger.events() if e["kind"] == "tile"}
    assert causes <= set(TILE_CAUSES)


@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_engine_session_classifies_every_planned_tile(bench_name):
    ledger = RecomputeLedger()
    with use_ledger(ledger):
        session = StreamSession(FrameSequence(CFG), bench_name, scale=SCALE)
        session.run(N_FRAMES)
        summary = session.summary()
    _check_completeness(ledger)
    assert summary["ledger"]["planned_tiles"] == ledger.planned_tiles


def test_cluster_session_classifies_every_planned_tile():
    ledger = RecomputeLedger()
    with use_ledger(ledger):
        cluster = EngineCluster(
            n_shards=2, backends=("pointacc",),
            tile_cache=TileMapCache(tile_size=4.0, halo=1),
        )
        with StreamSession(FrameSequence(CFG), "MinkNet(o)", scale=SCALE,
                           cluster=cluster) as session:
            session.run(N_FRAMES)
    _check_completeness(ledger)


def test_fleet_session_classifies_every_planned_tile():
    from repro.fleet import FleetSession, StreamSpec

    # Distinct sequence seeds: identical streams would collapse into the
    # engine's whole-request trace memo and never reach the planner.
    specs = [
        StreamSpec(name=f"veh{i}",
                   sequence=FrameSequence(
                       SequenceConfig(seed=11 + i, n_frames=N_FRAMES,
                                      base_points=2200, fov=16.0,
                                      speed=2.0, n_dynamic=2)),
                   benchmark="MinkNet(o)", scale=SCALE, n_frames=2)
        for i in range(2)
    ]
    ledger = RecomputeLedger()
    with use_ledger(ledger):
        session = FleetSession(specs, backends=("pointacc",), n_shards=1)
        session.run()
        summary = session.summary()
    _check_completeness(ledger)
    # Fleet frame tags carry the stream name, so per-vehicle attribution
    # survives the join.
    frames = {e["frame"] for e in ledger.events() if e["kind"] == "call"}
    assert any(str(f).startswith("veh0/") for f in frames)
    assert any(str(f).startswith("veh1/") for f in frames)
    assert summary["ledger"]["calls"] == ledger.calls


@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_ledger_preserves_bit_identity(bench_name):
    """The ledger may change wall-clock only: reports from a ledgered
    session equal those from an unledgered one."""
    plain = StreamSession(FrameSequence(CFG), bench_name,
                          scale=SCALE).run(N_FRAMES)
    with use_ledger(RecomputeLedger()):
        ledgered = StreamSession(FrameSequence(CFG), bench_name,
                                 scale=SCALE).run(N_FRAMES)
    assert len(plain) == len(ledgered)
    for a, b in zip(plain, ledgered):
        assert a.result.reports == b.result.reports


def test_memory_evictions_reach_the_ledger():
    """Force the engine's L1 map cache small enough to evict during a
    short run; each drop must surface as a (key, tier, bytes) event."""
    from repro.engine import SimulationEngine
    from repro.engine.map_cache import MapCache

    ledger = RecomputeLedger()
    with use_ledger(ledger):
        engine = SimulationEngine(
            backends=("pointacc",),
            map_cache=MapCache(max_entries=8),
            tile_cache=TileMapCache(tile_size=4.0, halo=1),
        )
        StreamSession(FrameSequence(CFG), "MinkNet(o)", scale=SCALE,
                      engine=engine).run(2)
    evictions = [e for e in ledger.events() if e["kind"] == "eviction"]
    assert evictions, "an 8-entry L1 must evict on a tiled frame"
    assert all(e["tier"] == "memory" and e["bytes"] >= 0 for e in evictions)
    assert ledger.evictions["memory"]["count"] == len(evictions)
